// Shared typed error taxonomy (header-only so every layer — deploy,
// emulation, measure — can use it without linking the core library).
// Errors carry a category, the subject they concern (host, machine,
// router), and whether retrying the same operation can plausibly
// succeed: transient transfer corruption is retryable, a dead host or a
// diverging control plane is not.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace autonet::core {

enum class ErrorCategory {
  kTransfer,     // archive transfer or checksum failure
  kBoot,         // a machine failed to boot
  kHostDown,     // an emulation host is unreachable
  kDeadline,     // a phase exceeded its time budget
  kConvergence,  // control plane failed to converge or oscillated
  kConfig,       // deployment misconfiguration (e.g. unassigned devices)
  kMeasurement,  // a measurement command failed
  kInternal,
};

[[nodiscard]] inline const char* to_string(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kTransfer: return "transfer";
    case ErrorCategory::kBoot: return "boot";
    case ErrorCategory::kHostDown: return "host-down";
    case ErrorCategory::kDeadline: return "deadline";
    case ErrorCategory::kConvergence: return "convergence";
    case ErrorCategory::kConfig: return "config";
    case ErrorCategory::kMeasurement: return "measurement";
    case ErrorCategory::kInternal: return "internal";
  }
  return "?";
}

struct Error {
  ErrorCategory category = ErrorCategory::kInternal;
  /// What the error concerns: a host, machine, or router name.
  std::string subject;
  std::string message;
  /// Whether retrying the same operation can succeed.
  bool retryable = false;

  [[nodiscard]] std::string to_string() const {
    std::string out = "[";
    out += core::to_string(category);
    out += "] ";
    if (!subject.empty()) {
      out += subject;
      out += ": ";
    }
    out += message;
    out += retryable ? " (retryable)" : " (permanent)";
    return out;
  }

  friend bool operator==(const Error&, const Error&) = default;
};

using ErrorList = std::vector<Error>;

/// Structured outcome of a convergence loop that ran out of its round
/// budget (replaces the old silent max-rounds cap): how far it got and
/// which routers were still flapping when the budget expired, so a
/// supervisor can decide between raising the budget, degrading, or
/// aborting — and an operator sees *who* failed to settle, not just that
/// something did.
struct ConvergenceTimeout {
  std::size_t rounds_completed = 0;
  std::size_t budget_rounds = 0;
  /// Routers whose best-route selection still changed in the final
  /// round (sorted; the partial state worth reporting).
  std::vector<std::string> unsettled_routers;

  [[nodiscard]] std::string to_string() const {
    std::string out = "convergence budget exhausted after " +
                      std::to_string(rounds_completed) + "/" +
                      std::to_string(budget_rounds) + " rounds";
    if (!unsettled_routers.empty()) {
      out += "; unsettled:";
      for (const std::string& r : unsettled_routers) {
        out += ' ';
        out += r;
      }
    }
    return out;
  }

  [[nodiscard]] Error to_error(std::string subject) const {
    // Retryable: unlike an oscillation, a budget miss can succeed with a
    // larger budget.
    return {ErrorCategory::kConvergence, std::move(subject), to_string(), true};
  }

  friend bool operator==(const ConvergenceTimeout&,
                         const ConvergenceTimeout&) = default;
};

/// One-line-per-error rendering for logs and reports.
[[nodiscard]] inline std::string to_string(const ErrorList& errors) {
  std::string out;
  for (const Error& e : errors) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace autonet::core

// Shared typed error taxonomy (header-only so every layer — deploy,
// emulation, measure — can use it without linking the core library).
// Errors carry a category, the subject they concern (host, machine,
// router), and whether retrying the same operation can plausibly
// succeed: transient transfer corruption is retryable, a dead host or a
// diverging control plane is not.
#pragma once

#include <string>
#include <vector>

namespace autonet::core {

enum class ErrorCategory {
  kTransfer,     // archive transfer or checksum failure
  kBoot,         // a machine failed to boot
  kHostDown,     // an emulation host is unreachable
  kDeadline,     // a phase exceeded its time budget
  kConvergence,  // control plane failed to converge or oscillated
  kConfig,       // deployment misconfiguration (e.g. unassigned devices)
  kMeasurement,  // a measurement command failed
  kInternal,
};

[[nodiscard]] inline const char* to_string(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kTransfer: return "transfer";
    case ErrorCategory::kBoot: return "boot";
    case ErrorCategory::kHostDown: return "host-down";
    case ErrorCategory::kDeadline: return "deadline";
    case ErrorCategory::kConvergence: return "convergence";
    case ErrorCategory::kConfig: return "config";
    case ErrorCategory::kMeasurement: return "measurement";
    case ErrorCategory::kInternal: return "internal";
  }
  return "?";
}

struct Error {
  ErrorCategory category = ErrorCategory::kInternal;
  /// What the error concerns: a host, machine, or router name.
  std::string subject;
  std::string message;
  /// Whether retrying the same operation can succeed.
  bool retryable = false;

  [[nodiscard]] std::string to_string() const {
    std::string out = "[";
    out += core::to_string(category);
    out += "] ";
    if (!subject.empty()) {
      out += subject;
      out += ": ";
    }
    out += message;
    out += retryable ? " (retryable)" : " (permanent)";
    return out;
  }

  friend bool operator==(const Error&, const Error&) = default;
};

using ErrorList = std::vector<Error>;

/// One-line-per-error rendering for logs and reports.
[[nodiscard]] inline std::string to_string(const ErrorList& errors) {
  std::string out;
  for (const Error& e : errors) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace autonet::core

#include "core/workflow.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "deploy/archive.hpp"
#include "incremental/hot_apply.hpp"
#include "nidb/value.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"
#include "verify/analysis/cache.hpp"

namespace autonet::core {

namespace {

/// The pipeline order checkpoints restore in; save_phase() invalidates
/// everything after a freshly executed phase.
constexpr const char* kPipeline[] = {"load",   "design", "compile", "render",
                                     "lint",   "deploy", "measure"};

// --- Phase-state (de)serialization ----------------------------------------
// DeployResult, lint Report, and the measure outcome have no library
// from_json; the encodings here are checkpoint-private.

nidb::Value string_list_to_value(const std::vector<std::string>& items) {
  nidb::Array out;
  for (const std::string& s : items) out.emplace_back(s);
  return nidb::Value(std::move(out));
}

std::vector<std::string> string_list_from_value(const nidb::Value* v) {
  std::vector<std::string> out;
  if (v == nullptr || !v->is_array()) return out;
  for (const auto& e : *v->as_array()) {
    if (const auto* s = e.as_string()) out.push_back(*s);
  }
  return out;
}

ErrorCategory error_category_from_string(const std::string& name) {
  for (ErrorCategory c :
       {ErrorCategory::kTransfer, ErrorCategory::kBoot, ErrorCategory::kHostDown,
        ErrorCategory::kDeadline, ErrorCategory::kConvergence,
        ErrorCategory::kConfig, ErrorCategory::kMeasurement,
        ErrorCategory::kInternal}) {
    if (name == to_string(c)) return c;
  }
  return ErrorCategory::kInternal;
}

nidb::Value deploy_result_to_value(const deploy::DeployResult& r) {
  nidb::Object out;
  out["success"] = r.success;
  out["degraded"] = r.degraded;
  out["booted"] = string_list_to_value(r.booted);
  out["failed_machines"] = string_list_to_value(r.failed_machines);
  out["transfer_attempts"] = static_cast<std::int64_t>(r.transfer_attempts);
  out["boot_attempts"] = static_cast<std::int64_t>(r.boot_attempts);
  out["backoff_ms"] = static_cast<std::int64_t>(r.backoff_ms);
  nidb::Object conv;
  conv["converged"] = r.convergence.converged;
  conv["oscillating"] = r.convergence.oscillating;
  conv["rounds"] = static_cast<std::int64_t>(r.convergence.rounds);
  conv["period"] = static_cast<std::int64_t>(r.convergence.period);
  conv["updates"] = static_cast<std::int64_t>(r.convergence.updates);
  if (r.convergence.timeout) {
    nidb::Object t;
    t["rounds_completed"] =
        static_cast<std::int64_t>(r.convergence.timeout->rounds_completed);
    t["budget_rounds"] =
        static_cast<std::int64_t>(r.convergence.timeout->budget_rounds);
    t["unsettled"] = string_list_to_value(r.convergence.timeout->unsettled_routers);
    conv["timeout"] = nidb::Value(std::move(t));
  }
  out["convergence"] = nidb::Value(std::move(conv));
  nidb::Array errors;
  for (const Error& e : r.errors) {
    nidb::Object err;
    err["category"] = std::string(to_string(e.category));
    err["subject"] = e.subject;
    err["message"] = e.message;
    err["retryable"] = e.retryable;
    errors.emplace_back(std::move(err));
  }
  out["errors"] = nidb::Value(std::move(errors));
  return nidb::Value(std::move(out));
}

deploy::DeployResult deploy_result_from_value(const nidb::Value& v) {
  deploy::DeployResult r;
  if (const auto* f = v.find("success")) r.success = f->as_bool().value_or(false);
  if (const auto* f = v.find("degraded")) r.degraded = f->as_bool().value_or(false);
  r.booted = string_list_from_value(v.find("booted"));
  r.failed_machines = string_list_from_value(v.find("failed_machines"));
  if (const auto* f = v.find("transfer_attempts")) {
    r.transfer_attempts = static_cast<int>(f->as_int().value_or(0));
  }
  if (const auto* f = v.find("boot_attempts")) {
    r.boot_attempts = static_cast<int>(f->as_int().value_or(0));
  }
  if (const auto* f = v.find("backoff_ms")) {
    r.backoff_ms = static_cast<int>(f->as_int().value_or(0));
  }
  if (const auto* conv = v.find("convergence")) {
    if (const auto* f = conv->find("converged")) {
      r.convergence.converged = f->as_bool().value_or(false);
    }
    if (const auto* f = conv->find("oscillating")) {
      r.convergence.oscillating = f->as_bool().value_or(false);
    }
    if (const auto* f = conv->find("rounds")) {
      r.convergence.rounds = static_cast<std::size_t>(f->as_int().value_or(0));
    }
    if (const auto* f = conv->find("period")) {
      r.convergence.period = static_cast<std::size_t>(f->as_int().value_or(0));
    }
    if (const auto* f = conv->find("updates")) {
      r.convergence.updates = static_cast<std::size_t>(f->as_int().value_or(0));
    }
    if (const auto* t = conv->find("timeout")) {
      ConvergenceTimeout timeout;
      if (const auto* f = t->find("rounds_completed")) {
        timeout.rounds_completed = static_cast<std::size_t>(f->as_int().value_or(0));
      }
      if (const auto* f = t->find("budget_rounds")) {
        timeout.budget_rounds = static_cast<std::size_t>(f->as_int().value_or(0));
      }
      timeout.unsettled_routers = string_list_from_value(t->find("unsettled"));
      r.convergence.timeout = std::move(timeout);
    }
  }
  if (const auto* errors = v.find("errors"); errors != nullptr && errors->is_array()) {
    for (const auto& e : *errors->as_array()) {
      Error err;
      if (const auto* f = e.find("category"); f != nullptr && f->as_string()) {
        err.category = error_category_from_string(*f->as_string());
      }
      if (const auto* f = e.find("subject"); f != nullptr && f->as_string()) {
        err.subject = *f->as_string();
      }
      if (const auto* f = e.find("message"); f != nullptr && f->as_string()) {
        err.message = *f->as_string();
      }
      if (const auto* f = e.find("retryable")) {
        err.retryable = f->as_bool().value_or(false);
      }
      r.errors.push_back(std::move(err));
    }
  }
  return r;
}

verify::Report lint_report_from_json(const std::string& text) {
  const nidb::Value doc = nidb::parse_json(text);
  verify::Report report;
  if (const auto* findings = doc.find("findings");
      findings != nullptr && findings->is_array()) {
    for (const auto& f : *findings->as_array()) {
      verify::Finding finding;
      if (const auto* sev = f.find("severity"); sev != nullptr && sev->as_string()) {
        finding.severity = *sev->as_string() == "warning"
                               ? verify::Severity::kWarning
                               : verify::Severity::kError;
      }
      if (const auto* s = f.find("code"); s != nullptr && s->as_string()) {
        finding.code = *s->as_string();
      }
      if (const auto* s = f.find("device"); s != nullptr && s->as_string()) {
        finding.device = *s->as_string();
      }
      if (const auto* s = f.find("message"); s != nullptr && s->as_string()) {
        finding.message = *s->as_string();
      }
      if (const auto* s = f.find("path"); s != nullptr && s->as_string()) {
        finding.path = *s->as_string();
      }
      if (const auto* s = f.find("origin"); s != nullptr && s->as_string()) {
        finding.origin = *s->as_string();
      }
      report.findings.push_back(std::move(finding));
    }
  }
  report.finalize();
  return report;
}

}  // namespace

std::string IncrementalReport::to_text() const {
  std::ostringstream out;
  out << "incremental: mode=" << mode << "\n";
  if (!delta.empty()) {
    out << "input delta (" << delta.size() << " change"
        << (delta.size() == 1 ? "" : "s") << "):\n"
        << delta.to_text();
  }
  for (const std::string& line : plan.explain) out << line << "\n";
  if (mode == "partial") {
    out << "compile: " << devices_reused_compile << " device(s) reused\n";
    out << "render: " << devices_reused_render << " device(s) reused\n";
    out << "lint: " << lint_rules_reused << " template rule(s) replayed\n";
  }
  if (hot_applied) out << "deploy: delta hot-applied to the running emulation\n";
  return out.str();
}

double PhaseTimings::total() const {
  double sum = 0;
  for (const auto& [phase, value] : ms) sum += value;
  return sum;
}

std::string PhaseTimings::to_string() const {
  std::ostringstream out;
  for (const char* phase :
       {"load", "design", "compile", "render", "lint", "deploy", "measure"}) {
    auto it = ms.find(phase);
    if (it != ms.end()) out << phase << "=" << it->second << "ms ";
  }
  out << "total=" << total() << "ms";
  return out.str();
}

Workflow::Workflow(WorkflowOptions options) : options_(std::move(options)) {}
Workflow::~Workflow() = default;
Workflow::Workflow(Workflow&&) noexcept = default;
Workflow& Workflow::operator=(Workflow&&) noexcept = default;

// Each phase runs under an obs span (in the workflow's registry, made
// current for the duration so every layer's instrumentation lands in the
// same place); the PhaseTimings entry is the span's duration. The
// PhaseScope makes flight-recorder events carry this phase name and
// phase-relative timestamps; at phase end the recorder is drained and
// the phase's slice kept for the run report (and, when checkpointing,
// persisted next to the phase artifact). On interruption the unsaved
// recorder tail is dumped next to the checkpoint before rethrowing.
template <typename F>
void Workflow::timed(const std::string& phase, F&& f) {
  obs::Registry& registry = telemetry();
  obs::RegistryScope use(registry);
  obs::PhaseScope phase_scope(phase);
  obs::Span span(registry, phase);
  try {
    f();
  } catch (...) {
    span.stop_ms();
    dump_flight_tail(phase);
    throw;
  }
  timings_.ms[phase] = span.stop_ms();
  if (registry.enabled()) {
    std::vector<obs::RecorderEvent> slice;
    for (obs::RecorderEvent& event : registry.recorder().drain()) {
      // Out-of-phase stragglers (checkpoint writes after the previous
      // drain) are bookkeeping, not phase work: they are excluded so a
      // phase's slice is a pure function of the phase body.
      if (event.phase == phase) slice.push_back(std::move(event));
    }
    phase_events_[phase] = std::move(slice);
  }
}

// --- Checkpoint plumbing ---------------------------------------------------

Workflow& Workflow::checkpoint_to(const std::string& dir) {
  ckpt_ = std::make_unique<CheckpointStore>(dir);
  return *this;
}

Workflow& Workflow::incremental_from(const std::string& baseline_dir) {
  baseline_ = std::make_unique<CheckpointStore>(baseline_dir);
  incr_.enabled = true;
  return *this;
}

std::string Workflow::signature_text(bool include_deploy) const {
  std::ostringstream sig;
  sig << "platform=" << options_.platform << ";ibgp=" << options_.ibgp
      << ";isis=" << options_.enable_isis << ";dns=" << options_.enable_dns
      << ";rpki=" << options_.enable_rpki << ";lint=" << options_.lint.enabled
      << "," << options_.lint.fail_fast << ","
      << options_.lint.options.fail_on_warning << ","
      << options_.lint.analysis;
  if (include_deploy) {
    sig << ";deploy=" << options_.deploy.max_transfer_attempts << ","
        << options_.deploy.max_boot_attempts << ","
        << options_.deploy.backoff_base_ms << ","
        << options_.deploy.backoff_max_ms << ","
        << options_.deploy.backoff_seed << ","
        << options_.deploy.transfer_deadline_ms << ","
        << options_.deploy.boot_deadline_ms << ","
        << options_.deploy.allow_partial << "," << options_.deploy.min_booted
        << "," << options_.deploy.min_host_quorum;
  }
  // The design-rule knobs: previously absent, which let a checkpoint
  // recorded under different OSPF/IP/RR settings restore silently.
  sig << ";ospf=" << options_.ospf.default_area << ","
      << options_.ospf.default_cost << "," << options_.ospf.cost_attr << ","
      << options_.ospf.area_attr
      << ";ip=" << options_.ip.infra_block << "," << options_.ip.loopback_block
      << "," << options_.ip.ipv6 << "," << options_.ip.ipv6_infra_block << ","
      << options_.ip.ipv6_loopback_block
      << ";rr=" << options_.rr_select.per_as << "," << options_.rr_select.metric
      << "," << options_.rr_select.min_as_size;
  for (const auto& [id, on] : options_.lint.options.enabled) {
    sig << ";L:" << id << "=" << on;
  }
  for (const auto& [id, sev] : options_.lint.options.severity) {
    sig << ";S:" << id << "=" << static_cast<int>(sev);
  }
  return sig.str();
}

std::string Workflow::options_signature() const {
  return std::to_string(checkpoint_hash(signature_text(true)));
}

std::string Workflow::build_signature() const {
  return std::to_string(checkpoint_hash(signature_text(false)));
}

std::string Workflow::lint_signature() const {
  std::ostringstream sig;
  sig << "lint=" << options_.lint.enabled << "," << options_.lint.fail_fast
      << "," << options_.lint.options.fail_on_warning << ","
      << options_.lint.analysis;
  for (const auto& [id, on] : options_.lint.options.enabled) {
    sig << ";L:" << id << "=" << on;
  }
  for (const auto& [id, sev] : options_.lint.options.severity) {
    sig << ";S:" << id << "=" << static_cast<int>(sev);
  }
  return std::to_string(checkpoint_hash(sig.str()));
}

incremental::DesignSpec Workflow::design_spec() const {
  incremental::DesignSpec spec;
  spec.ibgp = options_.ibgp;
  spec.enable_isis = options_.enable_isis;
  spec.enable_dns = options_.enable_dns;
  spec.enable_rpki = options_.enable_rpki;
  spec.ospf = options_.ospf;
  spec.ip = options_.ip;
  spec.rr_select = options_.rr_select;
  return spec;
}

// A checkpoint only describes one (input, options) pair; anything else
// recorded in the directory is from a different run and must not leak
// into this one.
void Workflow::validate_checkpoint(const graph::Graph& input) {
  // The input signature is kept even without a store: run reports embed
  // it so two reports are comparable without the checkpoint directory.
  input_hash_ =
      std::to_string(checkpoint_hash(graph_to_value(input).to_json(false)));
  if (ckpt_ != nullptr) {
    const std::string& input_hash = input_hash_;
    const std::string options_sig = options_signature();
    const std::string old_input = ckpt_->meta("input_hash");
    const std::string old_options = ckpt_->meta("options");
    if ((!old_input.empty() && old_input != input_hash) ||
        (!old_options.empty() && old_options != options_sig)) {
      ckpt_->discard();
    }
    if (ckpt_->meta("input_hash") != input_hash) {
      ckpt_->set_meta("input_hash", input_hash);
    }
    if (ckpt_->meta("options") != options_sig) {
      ckpt_->set_meta("options", options_sig);
    }
    if (ckpt_->meta("options_build") != build_signature()) {
      ckpt_->set_meta("options_build", build_signature());
    }
  }
  prepare_incremental();
}

// Decides, once per run, what the baseline can contribute: everything
// ("warm"), the snapshot-planned subset ("partial"), or nothing
// ("cold"). Partial mode eagerly loads the baseline's design/compile/
// render/lint artifacts — each later phase consults them.
void Workflow::prepare_incremental() {
  if (baseline_ == nullptr) return;
  incr_.enabled = true;
  const std::string base_options = baseline_->meta("options");
  const std::string base_input = baseline_->meta("input_hash");
  // Build-phase compatibility is what reuse needs; the full signature
  // (deploy knobs included) additionally gates warm deploy restore.
  // Baselines recorded before the signature split carry no
  // "options_build" meta — fall back to the full signature, which is
  // strictly more conservative.
  const std::string base_build = baseline_->meta("options_build");
  const bool build_match =
      base_build.empty() ? (!base_options.empty() &&
                            base_options == options_signature())
                         : base_build == build_signature();
  if (!build_match) {
    incr_.mode = incr_.plan.mode = "cold";
    incr_.plan.explain.push_back(
        "baseline options differ (or baseline is empty): full recompute");
    return;
  }
  if (base_input == input_hash_ && base_options == options_signature()) {
    incr_warm_ = true;
    incr_.mode = incr_.plan.mode = "warm";
    incr_.plan.explain.push_back(
        "input unchanged: every phase restores from the baseline");
    return;
  }
  std::ifstream snap_in(baseline_->dir() + "/snapshot.json", std::ios::binary);
  if (snap_in) {
    std::ostringstream ss;
    ss << snap_in.rdbuf();
    base_snap_ = incremental::Snapshot::from_json(ss.str());
  }
  if (!base_snap_) {
    incr_.mode = incr_.plan.mode = "cold";
    incr_.plan.explain.push_back(
        "baseline left no usable snapshot.json: full recompute");
    return;
  }
  try {
    if (baseline_->has_phase("design")) {
      anm::AbstractNetworkModel fresh;
      anm_from_value(nidb::parse_json(baseline_->artifact("design")), fresh);
      baseline_anm_.emplace(std::move(fresh));
    }
    if (baseline_->has_phase("compile")) {
      baseline_nidb_ = nidb::Nidb::from_json(baseline_->artifact("compile"));
    }
    if (baseline_->has_phase("render")) {
      const nidb::Value doc = nidb::parse_json(baseline_->artifact("render"));
      if (const auto* files = doc.as_object()) {
        render::ConfigTree tree;
        for (const auto& [path, content] : *files) {
          if (const auto* text = content.as_string()) tree.put(path, *text);
        }
        baseline_configs_ = std::move(tree);
      }
    }
    if (baseline_->has_phase("lint")) {
      baseline_lint_ = lint_report_from_json(baseline_->artifact("lint"));
    }
  } catch (const std::exception&) {
    baseline_anm_.reset();
    baseline_nidb_.reset();
    baseline_configs_.reset();
    baseline_lint_.reset();
    base_snap_.reset();
    incr_.mode = incr_.plan.mode = "cold";
    incr_.plan.explain.push_back("baseline artifacts unreadable: full recompute");
    return;
  }
  incr_partial_ = true;
  incr_.mode = incr_.plan.mode = "partial";
  if (base_input == input_hash_) {
    incr_.plan.explain.push_back(
        "input unchanged, deploy options differ: build phases reuse, "
        "deploy runs fresh");
  }
}

bool Workflow::try_restore(const std::string& phase) {
  if (fresh_executed_) return false;
  // Own checkpoint first (resume); in warm incremental mode a phase the
  // own store lacks restores from the baseline instead.
  CheckpointStore* src = nullptr;
  bool from_baseline = false;
  if (ckpt_ != nullptr && ckpt_->has_phase(phase)) {
    src = ckpt_.get();
  } else if (incr_warm_ && baseline_ != nullptr && baseline_->has_phase(phase)) {
    src = baseline_.get();
    from_baseline = true;
  }
  if (src == nullptr) return false;
  obs::Registry& registry = telemetry();
  obs::RegistryScope use(registry);
  try {
    restore_phase_state(phase, src->artifact(phase));
    // Replay the phase's persisted flight-recorder slice so the run
    // report's timeline is byte-identical to an uninterrupted run's. A
    // record without a slice (pre-recorder checkpoint) restores with an
    // empty one.
    if (src->has_events(phase)) {
      phase_events_[phase] = events_from_jsonl(src->events(phase));
    } else {
      phase_events_[phase] = {};
    }
  } catch (const std::exception&) {
    // A corrupt or stale artifact is not fatal: execute the phase fresh
    // (which re-records it and invalidates anything downstream).
    phase_events_.erase(phase);
    return false;
  }
  timings_.ms[phase] = src->phase_ms(phase);
  restored_.push_back(phase);
  registry.counter("ckpt.phase_restored").inc();
  if (from_baseline) {
    registry.counter("incr.phase_reused").inc();
    // Chain: record the phase into this run's own store so the next run
    // in a campaign can use this directory as its baseline.
    if (ckpt_ != nullptr) save_phase(phase);
  }
  if (!resume_counted_) {
    registry.counter("ckpt.resume").inc();
    resume_counted_ = true;
  }
  return true;
}

void Workflow::begin_phase(const std::string& phase) {
  // Any fresh execution invalidates downstream checkpoints — they derive
  // from state this phase is about to recompute.
  fresh_executed_ = true;
  core::checkpoint(control_, "phase." + phase);
}

void Workflow::save_phase(const std::string& phase) {
  if (ckpt_ == nullptr) return;
  obs::Registry& registry = telemetry();
  obs::RegistryScope use(registry);
  std::vector<std::string> stale{phase};
  bool after = false;
  for (const char* name : kPipeline) {
    if (after) stale.emplace_back(name);
    if (phase == name) after = true;
  }
  ckpt_->invalidate(stale);
  std::optional<std::string> events;
  if (const auto it = phase_events_.find(phase); it != phase_events_.end()) {
    events = obs::events_to_jsonl(it->second);
  }
  ckpt_->record_phase(phase, phase + ".json", phase_artifact(phase),
                      timings_.ms[phase], events);
}

// A cancelled, deadline-expired, or otherwise-thrown-out-of phase leaves
// its black box behind: every event the recorder still holds (the
// interrupted phase's partial slice plus bookkeeping stragglers) goes to
// flight.jsonl, and a partial run report — what completed, what was
// restored, where it stopped — next to it. Both sit in the checkpoint
// directory so the post-mortem and the resume start from the same place.
void Workflow::dump_flight_tail(const std::string& phase) noexcept {
  if (ckpt_ == nullptr) return;
  try {
    obs::Registry& registry = telemetry();
    const std::vector<obs::RecorderEvent> tail = registry.recorder().drain();
    write_file_atomic(ckpt_->dir() + "/flight.jsonl", obs::events_to_jsonl(tail));
    std::ostringstream report;
    report << "{\n  \"interrupted_phase\": \"" << phase << "\",\n";
    report << "  \"status\": \"interrupted\",\n";
    report << "  \"input_hash\": \"" << input_hash_ << "\",\n";
    report << "  \"options_signature\": \"" << options_signature() << "\",\n";
    report << "  \"restored\": [";
    for (std::size_t i = 0; i < restored_.size(); ++i) {
      report << (i > 0 ? ", " : "") << "\"" << restored_[i] << "\"";
    }
    report << "],\n  \"completed_phases\": [";
    bool first = true;
    for (const char* name : kPipeline) {
      const auto it = timings_.ms.find(name);
      if (it == timings_.ms.end()) continue;
      if (!first) report << ", ";
      first = false;
      report << "\"" << name << "\"";
    }
    report << "],\n  \"tail_events\": " << tail.size() << "\n}\n";
    write_file_atomic(ckpt_->dir() + "/run_report.partial.json", report.str());
  } catch (...) {
    // Post-mortem artifacts are best-effort; the interruption itself is
    // what must propagate.
  }
}

std::string Workflow::phase_artifact(const std::string& phase) const {
  if (phase == "load" || phase == "design") {
    return anm_to_value(anm_).to_json(true);
  }
  if (phase == "compile") return nidb_->to_json(true);
  if (phase == "render") {
    nidb::Object files;
    for (const auto& [path, content] : *configs_) files[path] = content;
    return nidb::Value(std::move(files)).to_json(true);
  }
  if (phase == "lint") return lint_report_->to_json(true);
  if (phase == "deploy") return deploy_result_to_value(deploy_result_).to_json(true);
  if (phase == "measure") {
    nidb::Object out;
    out["ok"] = measure_report_->ok;
    out["missing"] = string_list_to_value(measure_report_->missing);
    out["unexpected"] = string_list_to_value(measure_report_->unexpected);
    out["probes"] = static_cast<std::int64_t>(measure_probes_);
    out["reachable"] = static_cast<std::int64_t>(measure_reachable_);
    return nidb::Value(std::move(out)).to_json(true);
  }
  throw CheckpointError("unknown workflow phase '" + phase + "'");
}

void Workflow::restore_phase_state(const std::string& phase,
                                   const std::string& artifact) {
  if (phase == "load" || phase == "design") {
    anm::AbstractNetworkModel fresh;
    anm_from_value(nidb::parse_json(artifact), fresh);
    anm_ = std::move(fresh);
    loaded_ = true;
    return;
  }
  if (phase == "compile") {
    nidb_ = nidb::Nidb::from_json(artifact);
    return;
  }
  if (phase == "render") {
    const nidb::Value doc = nidb::parse_json(artifact);
    const auto* files = doc.as_object();
    if (files == nullptr) throw CheckpointError("render checkpoint is not an object");
    render::ConfigTree tree;
    for (const auto& [path, content] : *files) {
      if (const auto* text = content.as_string()) tree.put(path, *text);
    }
    configs_ = std::move(tree);
    return;
  }
  if (phase == "lint") {
    lint_report_ = lint_report_from_json(artifact);
    return;
  }
  if (phase == "deploy") {
    deploy_result_ = deploy_result_from_value(nidb::parse_json(artifact));
    rehydrate_network();
    return;
  }
  if (phase == "measure") {
    const nidb::Value doc = nidb::parse_json(artifact);
    measure::ValidationReport report;
    if (const auto* f = doc.find("ok")) report.ok = f->as_bool().value_or(true);
    report.missing = string_list_from_value(doc.find("missing"));
    report.unexpected = string_list_from_value(doc.find("unexpected"));
    measure_report_ = std::move(report);
    measure_probes_ = 0;
    measure_reachable_ = 0;
    if (const auto* f = doc.find("probes")) {
      measure_probes_ = static_cast<std::uint64_t>(f->as_int().value_or(0));
    }
    if (const auto* f = doc.find("reachable")) {
      measure_reachable_ = static_cast<std::uint64_t>(f->as_int().value_or(0));
    }
    // Replay the phase's counter contributions so a resumed run's
    // registry export matches the uninterrupted one.
    auto scope = obs::Registry::current().scope("measure");
    scope.counter("reachability_probes").inc(measure_probes_);
    scope.counter("reachable_pairs").inc(measure_reachable_);
    return;
  }
  throw CheckpointError("unknown workflow phase '" + phase + "'");
}

// Restoring a deploy phase must leave network() usable for measure and
// probes. The deploy *decisions* (retries, casualties, degradation) come
// verbatim from the checkpoint; only the deterministic final handoff —
// extract configs, start the control plane over the booted set — is
// replayed, which also republishes the same emulation counter deltas an
// uninterrupted run records.
void Workflow::rehydrate_network() {
  host_ = std::make_unique<deploy::EmulationHost>("localhost");
  if (!deploy_result_.success) return;
  host_->receive(deploy::pack(*configs_));
  host_->extract();
  std::set<std::string> only;
  if (deploy_result_.degraded) {
    only.insert(deploy_result_.booted.begin(), deploy_result_.booted.end());
  }
  host_->start_network(*nidb_, host_->filesystem(), only, nullptr);
}

// --- Incremental reuse ------------------------------------------------------

// Satisfies one design rule from the baseline instead of re-running it:
// the rule's overlay is copied wholesale (each rule's writes land in its
// own overlay, including the overlay-local data() blocks ip and ibgp
// record), plus the phy-node annotations the rr-auto selector leaves
// behind. Returns false when the rule must run fresh.
bool Workflow::copy_design_rule(const std::string& name) {
  if (!incr_partial_ || !baseline_anm_ || !incr_.plan.rule_reused(name)) {
    return false;
  }
  if (!baseline_anm_->has_overlay(name)) return false;
  if (!anm_.has_overlay(name)) anm_.add_overlay(name);
  anm_[name].unwrap() = (*baseline_anm_)[name].unwrap();
  if (name == "ibgp" && options_.ibgp == "rr-auto") {
    // The selector also marks phy nodes (rr, rr_cluster); carry those
    // over so the designed model matches a fresh run byte for byte.
    auto phy = anm_["phy"];
    for (const auto& base_node : (*baseline_anm_)["phy"].nodes()) {
      auto cur = phy.node(base_node.name());
      if (!cur) continue;
      for (const char* key : {"rr", "rr_cluster"}) {
        if (base_node.attr(key).is_set()) cur->set(key, base_node.attr(key));
      }
    }
  }
  return true;
}

// Persists this run's snapshot next to its phase checkpoints once both
// halves exist (rule projections from design entry, device signatures
// from compile entry, NIDB hashes from render entry) — the data a later
// `--incremental --since <this dir>` run plans against.
void Workflow::maybe_write_snapshot() {
  if (ckpt_ == nullptr || !snap_has_rules_ || !snap_has_sigs_) return;
  cur_snap_.input_hash = input_hash_;
  cur_snap_.platform = options_.platform;
  cur_snap_.lint_sig = lint_signature();
  cur_snap_.template_hashes =
      incremental::template_base_hashes(render::TemplateStore::builtins());
  write_file_atomic(ckpt_->dir() + "/snapshot.json", cur_snap_.to_json());
}

// --- Phases ----------------------------------------------------------------

Workflow& Workflow::load(const graph::Graph& input) {
  validate_checkpoint(input);
  if (try_restore("load")) return *this;
  begin_phase("load");
  timed("load", [this, &input]() {
    auto g_in = anm_["input"];
    // Copy the raw input graph into the 'input' overlay, every attribute
    // retained.
    for (graph::NodeId n : input.nodes()) {
      auto node = g_in.add_node(input.node_name(n));
      for (const auto& [key, value] : input.node_attrs(n)) node.set(key, value);
      // Apply paper defaults: device_type=router, platform, syntax.
      if (!node.attr("device_type").is_set()) node.set("device_type", "router");
    }
    for (graph::EdgeId e : input.edges()) {
      auto edge = g_in.add_edge(input.node_name(input.edge_src(e)),
                                input.node_name(input.edge_dst(e)));
      for (const auto& [key, value] : input.edge_attrs(e)) edge.set(key, value);
    }
    design::build_phy(anm_);
    loaded_ = true;
  });
  save_phase("load");
  return *this;
}

Workflow& Workflow::design() {
  if (!loaded_) throw std::logic_error("Workflow::design before load");
  // Rule projections hash the *post-load* model, so they must be taken
  // here — a checkpoint restore replaces anm_ with the designed state.
  // Consumers: the partial-mode design plan, and snapshot.json (own
  // store only) — a warm run without a checkpoint needs neither.
  if (ckpt_ != nullptr || incr_partial_) {
    cur_snap_.rule_hashes = incremental::rule_projections(anm_, design_spec());
    snap_has_rules_ = true;
  }
  if (incr_partial_ && baseline_anm_) {
    incr_.delta = incremental::diff_graphs((*baseline_anm_)["input"].unwrap(),
                                           anm_["input"].unwrap());
    incremental::plan_design(*base_snap_, cur_snap_.rule_hashes,
                             design_spec().rule_order(), incr_.plan);
  }
  if (try_restore("design")) return *this;
  begin_phase("design");
  timed("design", [this]() {
    // One child span per design rule: the per-rule breakdown the §3.2
    // phase timings could not see. Each rule is a cancellation point. A
    // rule the recompute plan marks clean copies its baseline overlay
    // instead of running, under the same span/record telemetry — the
    // design artifact and report timeline stay byte-identical.
    auto rule = [this](const char* name, auto&& f) {
      core::checkpoint(control_, std::string("design.") + name);
      obs::Span span(std::string("design.") + name);
      if (!copy_design_rule(name)) f();
      obs::record("design", "rule", {{"rule", name}});
    };
    rule("ospf", [this] { design::build_ospf(anm_, options_.ospf); });
    if (options_.enable_isis) rule("isis", [this] { design::build_isis(anm_); });
    rule("ebgp", [this] { design::build_ebgp(anm_); });
    rule("ibgp", [this] {
      if (options_.ibgp == "mesh") {
        design::build_ibgp_full_mesh(anm_);
      } else if (options_.ibgp == "rr") {
        design::build_ibgp_route_reflectors(anm_);
      } else if (options_.ibgp == "rr-auto") {
        design::select_route_reflectors(anm_, options_.rr_select);
        design::build_ibgp_route_reflectors(anm_);
      } else {
        throw std::invalid_argument("unknown ibgp mode '" + options_.ibgp + "'");
      }
    });
    rule("ip", [this] { design::build_ip(anm_, options_.ip); });
    if (options_.enable_dns) rule("dns", [this] { design::build_dns(anm_); });
    if (options_.enable_rpki) rule("rpki", [this] { design::build_rpki(anm_); });
  });
  save_phase("design");
  return *this;
}

Workflow& Workflow::compile() {
  if (!anm_.has_overlay("ip")) throw std::logic_error("Workflow::compile before design");
  // Device signatures read the fully designed model — available here
  // whether design() ran fresh or restored. Same consumers as the rule
  // projections: the device plan and snapshot.json.
  if ((ckpt_ != nullptr || incr_partial_) && !snap_has_sigs_) {
    incremental::DeviceSignatures sigs =
        incremental::device_signatures(anm_, options_.platform);
    cur_snap_.global_digest = sigs.global_digest;
    cur_snap_.device_sigs = sigs.sigs;
    snap_has_sigs_ = true;
    if (incr_partial_ && !incr_planned_devices_) {
      incr_planned_devices_ = true;
      incremental::plan_devices(*base_snap_, sigs, incr_.plan);
      // Published outside any phase: visible in the registry export but
      // never in the (byte-compared) run report timeline.
      obs::Registry& registry = telemetry();
      obs::RegistryScope use(registry);
      auto scope = registry.scope("delta");
      scope.counter("dirty_devices").inc(incr_.plan.dirty_devices.size());
      scope.counter("reused").inc(incr_.plan.reused_devices.size());
    }
  }
  if (try_restore("compile")) return *this;
  begin_phase("compile");
  timed("compile", [this]() {
    const auto& pc = compiler::platform_compiler_for(options_.platform);
    if (incr_partial_ && baseline_nidb_ && !incr_.plan.reused_devices.empty()) {
      compiler::CompileReuse reuse;
      reuse.baseline = &*baseline_nidb_;
      reuse.devices = &incr_.plan.reused_devices;
      reuse.reused_out = &incr_.devices_reused_compile;
      nidb_ = pc.compile(anm_, {}, &reuse);
    } else {
      nidb_ = pc.compile(anm_);
    }
  });
  save_phase("compile");
  return *this;
}

Workflow& Workflow::render() {
  if (!nidb_) throw std::logic_error("Workflow::render before compile");
  // The full-NIDB content hash is only persisted (snapshot.json); the
  // data()-section hash additionally drives render reuse in partial
  // mode. Hashing the whole NIDB is the expensive one — skip it when
  // nothing will be written.
  if (ckpt_ != nullptr) {
    cur_snap_.nidb_hash = verify::analysis::nidb_content_hash(*nidb_);
  }
  if (ckpt_ != nullptr || incr_partial_) {
    cur_snap_.data_hash = incremental::fnv1a(nidb_->data().to_json(false));
  }
  if (try_restore("render")) {
    maybe_write_snapshot();
    return *this;
  }
  begin_phase("render");
  timed("render", [this]() {
    if (incr_partial_ && baseline_configs_ && !incr_.plan.reused_devices.empty()) {
      render::RenderReuse reuse;
      reuse.baseline = &*baseline_configs_;
      reuse.devices = &incr_.plan.reused_devices;
      reuse.data_changed =
          base_snap_ && base_snap_->data_hash != cur_snap_.data_hash;
      reuse.reused_out = &incr_.devices_reused_render;
      configs_ = render::render_configs(*nidb_, render::TemplateStore::builtins(),
                                        control_, &reuse);
    } else {
      configs_ = render::render_configs(*nidb_, render::TemplateStore::builtins(),
                                        control_);
    }
  });
  save_phase("render");
  maybe_write_snapshot();
  return *this;
}

Workflow& Workflow::lint() {
  if (!nidb_) throw std::logic_error("Workflow::lint before compile");
  if (incr_partial_ && !incr_planned_lint_) {
    incr_planned_lint_ = true;
    incremental::plan_lint(
        *base_snap_, lint_signature(),
        incremental::template_base_hashes(render::TemplateStore::builtins()),
        incr_.plan);
  }
  if (!try_restore("lint")) {
    begin_phase("lint");
    timed("lint", [this]() {
      verify::LintInput input;
      input.nidb = &*nidb_;
      input.templates = &render::TemplateStore::builtins();
      const verify::RuleRegistry& registry =
          options_.lint.analysis ? verify::RuleRegistry::with_analysis()
                                 : verify::RuleRegistry::builtin();
      if (incr_.plan.lint_reusable && baseline_lint_) {
        verify::LintReuse reuse;
        reuse.baseline = &*baseline_lint_;
        reuse.reused_out = &incr_.lint_rules_reused;
        lint_report_ = verify::run_lint(input, options_.lint.options, registry,
                                        control_, &reuse);
      } else {
        lint_report_ =
            verify::run_lint(input, options_.lint.options, registry, control_);
      }
    });
    save_phase("lint");
  }
  // The gate re-fires on restore too: resuming a workflow whose lint
  // failed the threshold behaves exactly like re-running it.
  if (options_.lint.fail_fast && options_.lint.options.should_fail(*lint_report_)) {
    throw LintError("lint gate: refusing to deploy\n" + lint_report_->to_string(),
                    *lint_report_);
  }
  return *this;
}

Workflow& Workflow::deploy() {
  if (!configs_) throw std::logic_error("Workflow::deploy before render");
  if (try_restore("deploy")) return *this;
  // Hot-apply: when every input change maps to a scoped action (link
  // cost, link failure), boot the *baseline* emulation and mutate it in
  // place instead of deploying the re-rendered configs from scratch.
  // Routers keep their identity and sessions; one reconvergence pass
  // settles the applied actions. Excluded from the byte-equivalence
  // contract — its deploy artifact is a synthesis, validated by the
  // FIB-equivalence tests instead.
  if (hot_apply_ && incr_partial_ && baseline_nidb_ && baseline_configs_ &&
      !incr_.delta.empty()) {
    const incremental::HotApplyPlan hplan =
        incremental::plan_hot_apply(incr_.delta, options_.ospf.cost_attr);
    if (hplan.applicable()) {
      begin_phase("deploy");
      timed("deploy", [this, &hplan]() {
        host_ = std::make_unique<deploy::EmulationHost>("localhost");
        host_->receive(deploy::pack(*baseline_configs_));
        host_->extract();
        host_->start_network(*baseline_nidb_, host_->filesystem(), {}, nullptr);
        const incremental::HotApplyResult result =
            incremental::hot_apply(*host_->network(), hplan, 128, control_);
        deploy_result_ = {};
        deploy_result_.success =
            result.failed == 0 && result.convergence.converged;
        for (const auto* rec : baseline_nidb_->devices()) {
          deploy_result_.booted.push_back(rec->name);
        }
        deploy_result_.convergence = result.convergence;
        incr_.hot_applied = true;
      });
      save_phase("deploy");
      return *this;
    }
    incr_.plan.explain.push_back("hot-apply not applicable: full deploy");
    for (const std::string& reason : hplan.unsupported) {
      incr_.plan.explain.push_back("  " + reason);
    }
  }
  begin_phase("deploy");
  timed("deploy", [this]() {
    host_ = std::make_unique<deploy::EmulationHost>("localhost");
    host_->attach_faults(faults_);
    deploy::Deployer deployer(*host_);
    deploy::DeployOptions opts = options_.deploy;
    if (opts.control == nullptr) opts.control = control_;
    deploy_result_ = deployer.deploy(*configs_, *nidb_, opts);
  });
  save_phase("deploy");
  return *this;
}

Workflow& Workflow::measure() {
  if (!host_ || host_->network() == nullptr) {
    throw std::logic_error("Workflow::measure before a successful deploy");
  }
  if (try_restore("measure")) return *this;
  begin_phase("measure");
  timed("measure", [this]() {
    {
      core::checkpoint(control_, "measure.validate_ospf");
      obs::Span span("measure.validate_ospf");
      measure_report_ = measure::validate_ospf(*host_->network(), anm_);
    }
    core::checkpoint(control_, "measure.reachability");
    obs::Span span("measure.reachability");
    auto matrix = measurement().reachability();
    auto scope = obs::Registry::current().scope("measure");
    measure_probes_ = matrix.routers.size() * (matrix.routers.size() - 1);
    measure_reachable_ = matrix.reachable_pairs();
    scope.counter("reachability_probes").inc(measure_probes_);
    scope.counter("reachable_pairs").inc(measure_reachable_);
    obs::record("measure",
                measure_reachable_ == measure_probes_ ? obs::Severity::kInfo
                                                      : obs::Severity::kWarning,
                "reachability",
                {{"probes", std::to_string(measure_probes_)},
                 {"reachable", std::to_string(measure_reachable_)}});
  });
  save_phase("measure");
  return *this;
}

Workflow& Workflow::run(const graph::Graph& input) {
  load(input).design().compile().render();
  if (options_.lint.enabled) lint();
  return deploy();
}

const nidb::Nidb& Workflow::nidb() const {
  if (!nidb_) throw std::logic_error("compile() has not run");
  return *nidb_;
}

const render::ConfigTree& Workflow::configs() const {
  if (!configs_) throw std::logic_error("render() has not run");
  return *configs_;
}

emulation::EmulatedNetwork& Workflow::network() {
  if (!host_ || host_->network() == nullptr) {
    throw std::logic_error("deploy() has not run successfully");
  }
  return *host_->network();
}

const deploy::DeployResult& Workflow::deploy_result() const { return deploy_result_; }

measure::MeasurementClient Workflow::measurement() const {
  if (!host_ || host_->network() == nullptr || !nidb_) {
    throw std::logic_error("deploy() has not run successfully");
  }
  return measure::MeasurementClient(*host_->network(), *nidb_);
}

verify::Report Workflow::static_check() const {
  return verify::static_check(nidb());
}

const verify::Report& Workflow::lint_report() const {
  if (!lint_report_) throw std::logic_error("lint() has not run");
  return *lint_report_;
}

measure::ValidationReport Workflow::validate_ospf() const {
  if (!host_ || host_->network() == nullptr) {
    throw std::logic_error("deploy() has not run successfully");
  }
  return measure::validate_ospf(*host_->network(), anm_);
}

const measure::ValidationReport& Workflow::measure_report() const {
  if (!measure_report_) throw std::logic_error("measure() has not run");
  return *measure_report_;
}

}  // namespace autonet::core

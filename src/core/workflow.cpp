#include "core/workflow.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/span.hpp"

namespace autonet::core {

double PhaseTimings::total() const {
  double sum = 0;
  for (const auto& [phase, value] : ms) sum += value;
  return sum;
}

std::string PhaseTimings::to_string() const {
  std::ostringstream out;
  for (const char* phase :
       {"load", "design", "compile", "render", "lint", "deploy", "measure"}) {
    auto it = ms.find(phase);
    if (it != ms.end()) out << phase << "=" << it->second << "ms ";
  }
  out << "total=" << total() << "ms";
  return out.str();
}

Workflow::Workflow(WorkflowOptions options) : options_(std::move(options)) {}
Workflow::~Workflow() = default;
Workflow::Workflow(Workflow&&) noexcept = default;
Workflow& Workflow::operator=(Workflow&&) noexcept = default;

// Each phase runs under an obs span (in the workflow's registry, made
// current for the duration so every layer's instrumentation lands in the
// same place); the PhaseTimings entry is the span's duration.
template <typename F>
void Workflow::timed(const std::string& phase, F&& f) {
  obs::Registry& registry = telemetry();
  obs::RegistryScope use(registry);
  obs::Span span(registry, phase);
  f();
  timings_.ms[phase] = span.stop_ms();
}

Workflow& Workflow::load(const graph::Graph& input) {
  timed("load", [this, &input]() {
    auto g_in = anm_["input"];
    // Copy the raw input graph into the 'input' overlay, every attribute
    // retained.
    for (graph::NodeId n : input.nodes()) {
      auto node = g_in.add_node(input.node_name(n));
      for (const auto& [key, value] : input.node_attrs(n)) node.set(key, value);
      // Apply paper defaults: device_type=router, platform, syntax.
      if (!node.attr("device_type").is_set()) node.set("device_type", "router");
    }
    for (graph::EdgeId e : input.edges()) {
      auto edge = g_in.add_edge(input.node_name(input.edge_src(e)),
                                input.node_name(input.edge_dst(e)));
      for (const auto& [key, value] : input.edge_attrs(e)) edge.set(key, value);
    }
    design::build_phy(anm_);
    loaded_ = true;
  });
  return *this;
}

Workflow& Workflow::design() {
  if (!loaded_) throw std::logic_error("Workflow::design before load");
  timed("design", [this]() {
    // One child span per design rule: the per-rule breakdown the §3.2
    // phase timings could not see.
    auto rule = [](const char* name, auto&& f) {
      obs::Span span(std::string("design.") + name);
      f();
    };
    rule("ospf", [this] { design::build_ospf(anm_, options_.ospf); });
    if (options_.enable_isis) rule("isis", [this] { design::build_isis(anm_); });
    rule("ebgp", [this] { design::build_ebgp(anm_); });
    rule("ibgp", [this] {
      if (options_.ibgp == "mesh") {
        design::build_ibgp_full_mesh(anm_);
      } else if (options_.ibgp == "rr") {
        design::build_ibgp_route_reflectors(anm_);
      } else if (options_.ibgp == "rr-auto") {
        design::select_route_reflectors(anm_, options_.rr_select);
        design::build_ibgp_route_reflectors(anm_);
      } else {
        throw std::invalid_argument("unknown ibgp mode '" + options_.ibgp + "'");
      }
    });
    rule("ip", [this] { design::build_ip(anm_, options_.ip); });
    if (options_.enable_dns) rule("dns", [this] { design::build_dns(anm_); });
    if (options_.enable_rpki) rule("rpki", [this] { design::build_rpki(anm_); });
  });
  return *this;
}

Workflow& Workflow::compile() {
  if (!anm_.has_overlay("ip")) throw std::logic_error("Workflow::compile before design");
  timed("compile", [this]() {
    const auto& pc = compiler::platform_compiler_for(options_.platform);
    nidb_ = pc.compile(anm_);
  });
  return *this;
}

Workflow& Workflow::render() {
  if (!nidb_) throw std::logic_error("Workflow::render before compile");
  timed("render", [this]() { configs_ = render::render_configs(*nidb_); });
  return *this;
}

Workflow& Workflow::lint() {
  if (!nidb_) throw std::logic_error("Workflow::lint before compile");
  timed("lint", [this]() {
    verify::LintInput input;
    input.nidb = &*nidb_;
    input.templates = &render::TemplateStore::builtins();
    lint_report_ = verify::run_lint(input, options_.lint.options);
  });
  if (options_.lint.fail_fast && options_.lint.options.should_fail(*lint_report_)) {
    throw LintError("lint gate: refusing to deploy\n" + lint_report_->to_string(),
                    *lint_report_);
  }
  return *this;
}

Workflow& Workflow::deploy() {
  if (!configs_) throw std::logic_error("Workflow::deploy before render");
  timed("deploy", [this]() {
    host_ = std::make_unique<deploy::EmulationHost>("localhost");
    host_->attach_faults(faults_);
    deploy::Deployer deployer(*host_);
    deploy_result_ = deployer.deploy(*configs_, *nidb_, options_.deploy);
  });
  return *this;
}

Workflow& Workflow::measure() {
  if (!host_ || host_->network() == nullptr) {
    throw std::logic_error("Workflow::measure before a successful deploy");
  }
  timed("measure", [this]() {
    {
      obs::Span span("measure.validate_ospf");
      measure_report_ = measure::validate_ospf(*host_->network(), anm_);
    }
    obs::Span span("measure.reachability");
    auto matrix = measurement().reachability();
    auto scope = obs::Registry::current().scope("measure");
    scope.counter("reachability_probes")
        .inc(matrix.routers.size() * (matrix.routers.size() - 1));
    scope.counter("reachable_pairs").inc(matrix.reachable_pairs());
  });
  return *this;
}

Workflow& Workflow::run(const graph::Graph& input) {
  load(input).design().compile().render();
  if (options_.lint.enabled) lint();
  return deploy();
}

const nidb::Nidb& Workflow::nidb() const {
  if (!nidb_) throw std::logic_error("compile() has not run");
  return *nidb_;
}

const render::ConfigTree& Workflow::configs() const {
  if (!configs_) throw std::logic_error("render() has not run");
  return *configs_;
}

emulation::EmulatedNetwork& Workflow::network() {
  if (!host_ || host_->network() == nullptr) {
    throw std::logic_error("deploy() has not run successfully");
  }
  return *host_->network();
}

const deploy::DeployResult& Workflow::deploy_result() const { return deploy_result_; }

measure::MeasurementClient Workflow::measurement() const {
  if (!host_ || host_->network() == nullptr || !nidb_) {
    throw std::logic_error("deploy() has not run successfully");
  }
  return measure::MeasurementClient(*host_->network(), *nidb_);
}

verify::Report Workflow::static_check() const {
  return verify::static_check(nidb());
}

const verify::Report& Workflow::lint_report() const {
  if (!lint_report_) throw std::logic_error("lint() has not run");
  return *lint_report_;
}

measure::ValidationReport Workflow::validate_ospf() const {
  if (!host_ || host_->network() == nullptr) {
    throw std::logic_error("deploy() has not run successfully");
  }
  return measure::validate_ospf(*host_->network(), anm_);
}

const measure::ValidationReport& Workflow::measure_report() const {
  if (!measure_report_) throw std::logic_error("measure() has not run");
  return *measure_report_;
}

}  // namespace autonet::core

#include "core/workflow.hpp"

#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "deploy/archive.hpp"
#include "nidb/value.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"

namespace autonet::core {

namespace {

/// The pipeline order checkpoints restore in; save_phase() invalidates
/// everything after a freshly executed phase.
constexpr const char* kPipeline[] = {"load",   "design", "compile", "render",
                                     "lint",   "deploy", "measure"};

// --- Phase-state (de)serialization ----------------------------------------
// DeployResult, lint Report, and the measure outcome have no library
// from_json; the encodings here are checkpoint-private.

nidb::Value string_list_to_value(const std::vector<std::string>& items) {
  nidb::Array out;
  for (const std::string& s : items) out.emplace_back(s);
  return nidb::Value(std::move(out));
}

std::vector<std::string> string_list_from_value(const nidb::Value* v) {
  std::vector<std::string> out;
  if (v == nullptr || !v->is_array()) return out;
  for (const auto& e : *v->as_array()) {
    if (const auto* s = e.as_string()) out.push_back(*s);
  }
  return out;
}

ErrorCategory error_category_from_string(const std::string& name) {
  for (ErrorCategory c :
       {ErrorCategory::kTransfer, ErrorCategory::kBoot, ErrorCategory::kHostDown,
        ErrorCategory::kDeadline, ErrorCategory::kConvergence,
        ErrorCategory::kConfig, ErrorCategory::kMeasurement,
        ErrorCategory::kInternal}) {
    if (name == to_string(c)) return c;
  }
  return ErrorCategory::kInternal;
}

nidb::Value deploy_result_to_value(const deploy::DeployResult& r) {
  nidb::Object out;
  out["success"] = r.success;
  out["degraded"] = r.degraded;
  out["booted"] = string_list_to_value(r.booted);
  out["failed_machines"] = string_list_to_value(r.failed_machines);
  out["transfer_attempts"] = static_cast<std::int64_t>(r.transfer_attempts);
  out["boot_attempts"] = static_cast<std::int64_t>(r.boot_attempts);
  out["backoff_ms"] = static_cast<std::int64_t>(r.backoff_ms);
  nidb::Object conv;
  conv["converged"] = r.convergence.converged;
  conv["oscillating"] = r.convergence.oscillating;
  conv["rounds"] = static_cast<std::int64_t>(r.convergence.rounds);
  conv["period"] = static_cast<std::int64_t>(r.convergence.period);
  conv["updates"] = static_cast<std::int64_t>(r.convergence.updates);
  if (r.convergence.timeout) {
    nidb::Object t;
    t["rounds_completed"] =
        static_cast<std::int64_t>(r.convergence.timeout->rounds_completed);
    t["budget_rounds"] =
        static_cast<std::int64_t>(r.convergence.timeout->budget_rounds);
    t["unsettled"] = string_list_to_value(r.convergence.timeout->unsettled_routers);
    conv["timeout"] = nidb::Value(std::move(t));
  }
  out["convergence"] = nidb::Value(std::move(conv));
  nidb::Array errors;
  for (const Error& e : r.errors) {
    nidb::Object err;
    err["category"] = std::string(to_string(e.category));
    err["subject"] = e.subject;
    err["message"] = e.message;
    err["retryable"] = e.retryable;
    errors.emplace_back(std::move(err));
  }
  out["errors"] = nidb::Value(std::move(errors));
  return nidb::Value(std::move(out));
}

deploy::DeployResult deploy_result_from_value(const nidb::Value& v) {
  deploy::DeployResult r;
  if (const auto* f = v.find("success")) r.success = f->as_bool().value_or(false);
  if (const auto* f = v.find("degraded")) r.degraded = f->as_bool().value_or(false);
  r.booted = string_list_from_value(v.find("booted"));
  r.failed_machines = string_list_from_value(v.find("failed_machines"));
  if (const auto* f = v.find("transfer_attempts")) {
    r.transfer_attempts = static_cast<int>(f->as_int().value_or(0));
  }
  if (const auto* f = v.find("boot_attempts")) {
    r.boot_attempts = static_cast<int>(f->as_int().value_or(0));
  }
  if (const auto* f = v.find("backoff_ms")) {
    r.backoff_ms = static_cast<int>(f->as_int().value_or(0));
  }
  if (const auto* conv = v.find("convergence")) {
    if (const auto* f = conv->find("converged")) {
      r.convergence.converged = f->as_bool().value_or(false);
    }
    if (const auto* f = conv->find("oscillating")) {
      r.convergence.oscillating = f->as_bool().value_or(false);
    }
    if (const auto* f = conv->find("rounds")) {
      r.convergence.rounds = static_cast<std::size_t>(f->as_int().value_or(0));
    }
    if (const auto* f = conv->find("period")) {
      r.convergence.period = static_cast<std::size_t>(f->as_int().value_or(0));
    }
    if (const auto* f = conv->find("updates")) {
      r.convergence.updates = static_cast<std::size_t>(f->as_int().value_or(0));
    }
    if (const auto* t = conv->find("timeout")) {
      ConvergenceTimeout timeout;
      if (const auto* f = t->find("rounds_completed")) {
        timeout.rounds_completed = static_cast<std::size_t>(f->as_int().value_or(0));
      }
      if (const auto* f = t->find("budget_rounds")) {
        timeout.budget_rounds = static_cast<std::size_t>(f->as_int().value_or(0));
      }
      timeout.unsettled_routers = string_list_from_value(t->find("unsettled"));
      r.convergence.timeout = std::move(timeout);
    }
  }
  if (const auto* errors = v.find("errors"); errors != nullptr && errors->is_array()) {
    for (const auto& e : *errors->as_array()) {
      Error err;
      if (const auto* f = e.find("category"); f != nullptr && f->as_string()) {
        err.category = error_category_from_string(*f->as_string());
      }
      if (const auto* f = e.find("subject"); f != nullptr && f->as_string()) {
        err.subject = *f->as_string();
      }
      if (const auto* f = e.find("message"); f != nullptr && f->as_string()) {
        err.message = *f->as_string();
      }
      if (const auto* f = e.find("retryable")) {
        err.retryable = f->as_bool().value_or(false);
      }
      r.errors.push_back(std::move(err));
    }
  }
  return r;
}

verify::Report lint_report_from_json(const std::string& text) {
  const nidb::Value doc = nidb::parse_json(text);
  verify::Report report;
  if (const auto* findings = doc.find("findings");
      findings != nullptr && findings->is_array()) {
    for (const auto& f : *findings->as_array()) {
      verify::Finding finding;
      if (const auto* sev = f.find("severity"); sev != nullptr && sev->as_string()) {
        finding.severity = *sev->as_string() == "warning"
                               ? verify::Severity::kWarning
                               : verify::Severity::kError;
      }
      if (const auto* s = f.find("code"); s != nullptr && s->as_string()) {
        finding.code = *s->as_string();
      }
      if (const auto* s = f.find("device"); s != nullptr && s->as_string()) {
        finding.device = *s->as_string();
      }
      if (const auto* s = f.find("message"); s != nullptr && s->as_string()) {
        finding.message = *s->as_string();
      }
      if (const auto* s = f.find("path"); s != nullptr && s->as_string()) {
        finding.path = *s->as_string();
      }
      if (const auto* s = f.find("origin"); s != nullptr && s->as_string()) {
        finding.origin = *s->as_string();
      }
      report.findings.push_back(std::move(finding));
    }
  }
  report.finalize();
  return report;
}

}  // namespace

double PhaseTimings::total() const {
  double sum = 0;
  for (const auto& [phase, value] : ms) sum += value;
  return sum;
}

std::string PhaseTimings::to_string() const {
  std::ostringstream out;
  for (const char* phase :
       {"load", "design", "compile", "render", "lint", "deploy", "measure"}) {
    auto it = ms.find(phase);
    if (it != ms.end()) out << phase << "=" << it->second << "ms ";
  }
  out << "total=" << total() << "ms";
  return out.str();
}

Workflow::Workflow(WorkflowOptions options) : options_(std::move(options)) {}
Workflow::~Workflow() = default;
Workflow::Workflow(Workflow&&) noexcept = default;
Workflow& Workflow::operator=(Workflow&&) noexcept = default;

// Each phase runs under an obs span (in the workflow's registry, made
// current for the duration so every layer's instrumentation lands in the
// same place); the PhaseTimings entry is the span's duration. The
// PhaseScope makes flight-recorder events carry this phase name and
// phase-relative timestamps; at phase end the recorder is drained and
// the phase's slice kept for the run report (and, when checkpointing,
// persisted next to the phase artifact). On interruption the unsaved
// recorder tail is dumped next to the checkpoint before rethrowing.
template <typename F>
void Workflow::timed(const std::string& phase, F&& f) {
  obs::Registry& registry = telemetry();
  obs::RegistryScope use(registry);
  obs::PhaseScope phase_scope(phase);
  obs::Span span(registry, phase);
  try {
    f();
  } catch (...) {
    span.stop_ms();
    dump_flight_tail(phase);
    throw;
  }
  timings_.ms[phase] = span.stop_ms();
  if (registry.enabled()) {
    std::vector<obs::RecorderEvent> slice;
    for (obs::RecorderEvent& event : registry.recorder().drain()) {
      // Out-of-phase stragglers (checkpoint writes after the previous
      // drain) are bookkeeping, not phase work: they are excluded so a
      // phase's slice is a pure function of the phase body.
      if (event.phase == phase) slice.push_back(std::move(event));
    }
    phase_events_[phase] = std::move(slice);
  }
}

// --- Checkpoint plumbing ---------------------------------------------------

Workflow& Workflow::checkpoint_to(const std::string& dir) {
  ckpt_ = std::make_unique<CheckpointStore>(dir);
  return *this;
}

std::string Workflow::options_signature() const {
  std::ostringstream sig;
  sig << "platform=" << options_.platform << ";ibgp=" << options_.ibgp
      << ";isis=" << options_.enable_isis << ";dns=" << options_.enable_dns
      << ";rpki=" << options_.enable_rpki << ";lint=" << options_.lint.enabled
      << "," << options_.lint.fail_fast << ","
      << options_.lint.options.fail_on_warning << ","
      << options_.lint.analysis
      << ";deploy=" << options_.deploy.max_transfer_attempts << ","
      << options_.deploy.max_boot_attempts << ","
      << options_.deploy.backoff_base_ms << "," << options_.deploy.backoff_max_ms
      << "," << options_.deploy.backoff_seed << ","
      << options_.deploy.transfer_deadline_ms << ","
      << options_.deploy.boot_deadline_ms << "," << options_.deploy.allow_partial
      << "," << options_.deploy.min_booted << ","
      << options_.deploy.min_host_quorum;
  for (const auto& [id, on] : options_.lint.options.enabled) {
    sig << ";L:" << id << "=" << on;
  }
  for (const auto& [id, sev] : options_.lint.options.severity) {
    sig << ";S:" << id << "=" << static_cast<int>(sev);
  }
  return std::to_string(checkpoint_hash(sig.str()));
}

// A checkpoint only describes one (input, options) pair; anything else
// recorded in the directory is from a different run and must not leak
// into this one.
void Workflow::validate_checkpoint(const graph::Graph& input) {
  // The input signature is kept even without a store: run reports embed
  // it so two reports are comparable without the checkpoint directory.
  input_hash_ =
      std::to_string(checkpoint_hash(graph_to_value(input).to_json(false)));
  if (ckpt_ == nullptr) return;
  const std::string& input_hash = input_hash_;
  const std::string options_sig = options_signature();
  const std::string old_input = ckpt_->meta("input_hash");
  const std::string old_options = ckpt_->meta("options");
  if ((!old_input.empty() && old_input != input_hash) ||
      (!old_options.empty() && old_options != options_sig)) {
    ckpt_->discard();
  }
  if (ckpt_->meta("input_hash") != input_hash) {
    ckpt_->set_meta("input_hash", input_hash);
  }
  if (ckpt_->meta("options") != options_sig) {
    ckpt_->set_meta("options", options_sig);
  }
}

bool Workflow::try_restore(const std::string& phase) {
  if (ckpt_ == nullptr || fresh_executed_) return false;
  if (!ckpt_->has_phase(phase)) return false;
  obs::Registry& registry = telemetry();
  obs::RegistryScope use(registry);
  try {
    restore_phase_state(phase, ckpt_->artifact(phase));
    // Replay the phase's persisted flight-recorder slice so the run
    // report's timeline is byte-identical to an uninterrupted run's. A
    // record without a slice (pre-recorder checkpoint) restores with an
    // empty one.
    if (ckpt_->has_events(phase)) {
      phase_events_[phase] = events_from_jsonl(ckpt_->events(phase));
    } else {
      phase_events_[phase] = {};
    }
  } catch (const std::exception&) {
    // A corrupt or stale artifact is not fatal: execute the phase fresh
    // (which re-records it and invalidates anything downstream).
    phase_events_.erase(phase);
    return false;
  }
  timings_.ms[phase] = ckpt_->phase_ms(phase);
  restored_.push_back(phase);
  registry.counter("ckpt.phase_restored").inc();
  if (!resume_counted_) {
    registry.counter("ckpt.resume").inc();
    resume_counted_ = true;
  }
  return true;
}

void Workflow::begin_phase(const std::string& phase) {
  // Any fresh execution invalidates downstream checkpoints — they derive
  // from state this phase is about to recompute.
  fresh_executed_ = true;
  core::checkpoint(control_, "phase." + phase);
}

void Workflow::save_phase(const std::string& phase) {
  if (ckpt_ == nullptr) return;
  obs::Registry& registry = telemetry();
  obs::RegistryScope use(registry);
  std::vector<std::string> stale{phase};
  bool after = false;
  for (const char* name : kPipeline) {
    if (after) stale.emplace_back(name);
    if (phase == name) after = true;
  }
  ckpt_->invalidate(stale);
  std::optional<std::string> events;
  if (const auto it = phase_events_.find(phase); it != phase_events_.end()) {
    events = obs::events_to_jsonl(it->second);
  }
  ckpt_->record_phase(phase, phase + ".json", phase_artifact(phase),
                      timings_.ms[phase], events);
}

// A cancelled, deadline-expired, or otherwise-thrown-out-of phase leaves
// its black box behind: every event the recorder still holds (the
// interrupted phase's partial slice plus bookkeeping stragglers) goes to
// flight.jsonl, and a partial run report — what completed, what was
// restored, where it stopped — next to it. Both sit in the checkpoint
// directory so the post-mortem and the resume start from the same place.
void Workflow::dump_flight_tail(const std::string& phase) noexcept {
  if (ckpt_ == nullptr) return;
  try {
    obs::Registry& registry = telemetry();
    const std::vector<obs::RecorderEvent> tail = registry.recorder().drain();
    write_file_atomic(ckpt_->dir() + "/flight.jsonl", obs::events_to_jsonl(tail));
    std::ostringstream report;
    report << "{\n  \"interrupted_phase\": \"" << phase << "\",\n";
    report << "  \"status\": \"interrupted\",\n";
    report << "  \"input_hash\": \"" << input_hash_ << "\",\n";
    report << "  \"options_signature\": \"" << options_signature() << "\",\n";
    report << "  \"restored\": [";
    for (std::size_t i = 0; i < restored_.size(); ++i) {
      report << (i > 0 ? ", " : "") << "\"" << restored_[i] << "\"";
    }
    report << "],\n  \"completed_phases\": [";
    bool first = true;
    for (const char* name : kPipeline) {
      const auto it = timings_.ms.find(name);
      if (it == timings_.ms.end()) continue;
      if (!first) report << ", ";
      first = false;
      report << "\"" << name << "\"";
    }
    report << "],\n  \"tail_events\": " << tail.size() << "\n}\n";
    write_file_atomic(ckpt_->dir() + "/run_report.partial.json", report.str());
  } catch (...) {
    // Post-mortem artifacts are best-effort; the interruption itself is
    // what must propagate.
  }
}

std::string Workflow::phase_artifact(const std::string& phase) const {
  if (phase == "load" || phase == "design") {
    return anm_to_value(anm_).to_json(true);
  }
  if (phase == "compile") return nidb_->to_json(true);
  if (phase == "render") {
    nidb::Object files;
    for (const auto& [path, content] : *configs_) files[path] = content;
    return nidb::Value(std::move(files)).to_json(true);
  }
  if (phase == "lint") return lint_report_->to_json(true);
  if (phase == "deploy") return deploy_result_to_value(deploy_result_).to_json(true);
  if (phase == "measure") {
    nidb::Object out;
    out["ok"] = measure_report_->ok;
    out["missing"] = string_list_to_value(measure_report_->missing);
    out["unexpected"] = string_list_to_value(measure_report_->unexpected);
    out["probes"] = static_cast<std::int64_t>(measure_probes_);
    out["reachable"] = static_cast<std::int64_t>(measure_reachable_);
    return nidb::Value(std::move(out)).to_json(true);
  }
  throw CheckpointError("unknown workflow phase '" + phase + "'");
}

void Workflow::restore_phase_state(const std::string& phase,
                                   const std::string& artifact) {
  if (phase == "load" || phase == "design") {
    anm::AbstractNetworkModel fresh;
    anm_from_value(nidb::parse_json(artifact), fresh);
    anm_ = std::move(fresh);
    loaded_ = true;
    return;
  }
  if (phase == "compile") {
    nidb_ = nidb::Nidb::from_json(artifact);
    return;
  }
  if (phase == "render") {
    const nidb::Value doc = nidb::parse_json(artifact);
    const auto* files = doc.as_object();
    if (files == nullptr) throw CheckpointError("render checkpoint is not an object");
    render::ConfigTree tree;
    for (const auto& [path, content] : *files) {
      if (const auto* text = content.as_string()) tree.put(path, *text);
    }
    configs_ = std::move(tree);
    return;
  }
  if (phase == "lint") {
    lint_report_ = lint_report_from_json(artifact);
    return;
  }
  if (phase == "deploy") {
    deploy_result_ = deploy_result_from_value(nidb::parse_json(artifact));
    rehydrate_network();
    return;
  }
  if (phase == "measure") {
    const nidb::Value doc = nidb::parse_json(artifact);
    measure::ValidationReport report;
    if (const auto* f = doc.find("ok")) report.ok = f->as_bool().value_or(true);
    report.missing = string_list_from_value(doc.find("missing"));
    report.unexpected = string_list_from_value(doc.find("unexpected"));
    measure_report_ = std::move(report);
    measure_probes_ = 0;
    measure_reachable_ = 0;
    if (const auto* f = doc.find("probes")) {
      measure_probes_ = static_cast<std::uint64_t>(f->as_int().value_or(0));
    }
    if (const auto* f = doc.find("reachable")) {
      measure_reachable_ = static_cast<std::uint64_t>(f->as_int().value_or(0));
    }
    // Replay the phase's counter contributions so a resumed run's
    // registry export matches the uninterrupted one.
    auto scope = obs::Registry::current().scope("measure");
    scope.counter("reachability_probes").inc(measure_probes_);
    scope.counter("reachable_pairs").inc(measure_reachable_);
    return;
  }
  throw CheckpointError("unknown workflow phase '" + phase + "'");
}

// Restoring a deploy phase must leave network() usable for measure and
// probes. The deploy *decisions* (retries, casualties, degradation) come
// verbatim from the checkpoint; only the deterministic final handoff —
// extract configs, start the control plane over the booted set — is
// replayed, which also republishes the same emulation counter deltas an
// uninterrupted run records.
void Workflow::rehydrate_network() {
  host_ = std::make_unique<deploy::EmulationHost>("localhost");
  if (!deploy_result_.success) return;
  host_->receive(deploy::pack(*configs_));
  host_->extract();
  std::set<std::string> only;
  if (deploy_result_.degraded) {
    only.insert(deploy_result_.booted.begin(), deploy_result_.booted.end());
  }
  host_->start_network(*nidb_, host_->filesystem(), only, nullptr);
}

// --- Phases ----------------------------------------------------------------

Workflow& Workflow::load(const graph::Graph& input) {
  validate_checkpoint(input);
  if (try_restore("load")) return *this;
  begin_phase("load");
  timed("load", [this, &input]() {
    auto g_in = anm_["input"];
    // Copy the raw input graph into the 'input' overlay, every attribute
    // retained.
    for (graph::NodeId n : input.nodes()) {
      auto node = g_in.add_node(input.node_name(n));
      for (const auto& [key, value] : input.node_attrs(n)) node.set(key, value);
      // Apply paper defaults: device_type=router, platform, syntax.
      if (!node.attr("device_type").is_set()) node.set("device_type", "router");
    }
    for (graph::EdgeId e : input.edges()) {
      auto edge = g_in.add_edge(input.node_name(input.edge_src(e)),
                                input.node_name(input.edge_dst(e)));
      for (const auto& [key, value] : input.edge_attrs(e)) edge.set(key, value);
    }
    design::build_phy(anm_);
    loaded_ = true;
  });
  save_phase("load");
  return *this;
}

Workflow& Workflow::design() {
  if (!loaded_) throw std::logic_error("Workflow::design before load");
  if (try_restore("design")) return *this;
  begin_phase("design");
  timed("design", [this]() {
    // One child span per design rule: the per-rule breakdown the §3.2
    // phase timings could not see. Each rule is a cancellation point.
    auto rule = [this](const char* name, auto&& f) {
      core::checkpoint(control_, std::string("design.") + name);
      obs::Span span(std::string("design.") + name);
      f();
      obs::record("design", "rule", {{"rule", name}});
    };
    rule("ospf", [this] { design::build_ospf(anm_, options_.ospf); });
    if (options_.enable_isis) rule("isis", [this] { design::build_isis(anm_); });
    rule("ebgp", [this] { design::build_ebgp(anm_); });
    rule("ibgp", [this] {
      if (options_.ibgp == "mesh") {
        design::build_ibgp_full_mesh(anm_);
      } else if (options_.ibgp == "rr") {
        design::build_ibgp_route_reflectors(anm_);
      } else if (options_.ibgp == "rr-auto") {
        design::select_route_reflectors(anm_, options_.rr_select);
        design::build_ibgp_route_reflectors(anm_);
      } else {
        throw std::invalid_argument("unknown ibgp mode '" + options_.ibgp + "'");
      }
    });
    rule("ip", [this] { design::build_ip(anm_, options_.ip); });
    if (options_.enable_dns) rule("dns", [this] { design::build_dns(anm_); });
    if (options_.enable_rpki) rule("rpki", [this] { design::build_rpki(anm_); });
  });
  save_phase("design");
  return *this;
}

Workflow& Workflow::compile() {
  if (!anm_.has_overlay("ip")) throw std::logic_error("Workflow::compile before design");
  if (try_restore("compile")) return *this;
  begin_phase("compile");
  timed("compile", [this]() {
    const auto& pc = compiler::platform_compiler_for(options_.platform);
    nidb_ = pc.compile(anm_);
  });
  save_phase("compile");
  return *this;
}

Workflow& Workflow::render() {
  if (!nidb_) throw std::logic_error("Workflow::render before compile");
  if (try_restore("render")) return *this;
  begin_phase("render");
  timed("render", [this]() {
    configs_ =
        render::render_configs(*nidb_, render::TemplateStore::builtins(), control_);
  });
  save_phase("render");
  return *this;
}

Workflow& Workflow::lint() {
  if (!nidb_) throw std::logic_error("Workflow::lint before compile");
  if (!try_restore("lint")) {
    begin_phase("lint");
    timed("lint", [this]() {
      verify::LintInput input;
      input.nidb = &*nidb_;
      input.templates = &render::TemplateStore::builtins();
      const verify::RuleRegistry& registry =
          options_.lint.analysis ? verify::RuleRegistry::with_analysis()
                                 : verify::RuleRegistry::builtin();
      lint_report_ =
          verify::run_lint(input, options_.lint.options, registry, control_);
    });
    save_phase("lint");
  }
  // The gate re-fires on restore too: resuming a workflow whose lint
  // failed the threshold behaves exactly like re-running it.
  if (options_.lint.fail_fast && options_.lint.options.should_fail(*lint_report_)) {
    throw LintError("lint gate: refusing to deploy\n" + lint_report_->to_string(),
                    *lint_report_);
  }
  return *this;
}

Workflow& Workflow::deploy() {
  if (!configs_) throw std::logic_error("Workflow::deploy before render");
  if (try_restore("deploy")) return *this;
  begin_phase("deploy");
  timed("deploy", [this]() {
    host_ = std::make_unique<deploy::EmulationHost>("localhost");
    host_->attach_faults(faults_);
    deploy::Deployer deployer(*host_);
    deploy::DeployOptions opts = options_.deploy;
    if (opts.control == nullptr) opts.control = control_;
    deploy_result_ = deployer.deploy(*configs_, *nidb_, opts);
  });
  save_phase("deploy");
  return *this;
}

Workflow& Workflow::measure() {
  if (!host_ || host_->network() == nullptr) {
    throw std::logic_error("Workflow::measure before a successful deploy");
  }
  if (try_restore("measure")) return *this;
  begin_phase("measure");
  timed("measure", [this]() {
    {
      core::checkpoint(control_, "measure.validate_ospf");
      obs::Span span("measure.validate_ospf");
      measure_report_ = measure::validate_ospf(*host_->network(), anm_);
    }
    core::checkpoint(control_, "measure.reachability");
    obs::Span span("measure.reachability");
    auto matrix = measurement().reachability();
    auto scope = obs::Registry::current().scope("measure");
    measure_probes_ = matrix.routers.size() * (matrix.routers.size() - 1);
    measure_reachable_ = matrix.reachable_pairs();
    scope.counter("reachability_probes").inc(measure_probes_);
    scope.counter("reachable_pairs").inc(measure_reachable_);
    obs::record("measure",
                measure_reachable_ == measure_probes_ ? obs::Severity::kInfo
                                                      : obs::Severity::kWarning,
                "reachability",
                {{"probes", std::to_string(measure_probes_)},
                 {"reachable", std::to_string(measure_reachable_)}});
  });
  save_phase("measure");
  return *this;
}

Workflow& Workflow::run(const graph::Graph& input) {
  load(input).design().compile().render();
  if (options_.lint.enabled) lint();
  return deploy();
}

const nidb::Nidb& Workflow::nidb() const {
  if (!nidb_) throw std::logic_error("compile() has not run");
  return *nidb_;
}

const render::ConfigTree& Workflow::configs() const {
  if (!configs_) throw std::logic_error("render() has not run");
  return *configs_;
}

emulation::EmulatedNetwork& Workflow::network() {
  if (!host_ || host_->network() == nullptr) {
    throw std::logic_error("deploy() has not run successfully");
  }
  return *host_->network();
}

const deploy::DeployResult& Workflow::deploy_result() const { return deploy_result_; }

measure::MeasurementClient Workflow::measurement() const {
  if (!host_ || host_->network() == nullptr || !nidb_) {
    throw std::logic_error("deploy() has not run successfully");
  }
  return measure::MeasurementClient(*host_->network(), *nidb_);
}

verify::Report Workflow::static_check() const {
  return verify::static_check(nidb());
}

const verify::Report& Workflow::lint_report() const {
  if (!lint_report_) throw std::logic_error("lint() has not run");
  return *lint_report_;
}

measure::ValidationReport Workflow::validate_ospf() const {
  if (!host_ || host_->network() == nullptr) {
    throw std::logic_error("deploy() has not run successfully");
  }
  return measure::validate_ospf(*host_->network(), anm_);
}

const measure::ValidationReport& Workflow::measure_report() const {
  if (!measure_report_) throw std::logic_error("measure() has not run");
  return *measure_report_;
}

}  // namespace autonet::core

#include "core/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/recorder.hpp"
#include "obs/registry.hpp"

namespace autonet::core {

namespace fs = std::filesystem;

std::uint64_t checkpoint_hash(std::string_view data) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw CheckpointError(what + " " + path + ": " + std::strerror(errno));
}

void write_all(int fd, std::string_view content, const std::string& path) {
  const char* p = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("write", path);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // directory fsync is best-effort on odd filesystems
  ::fsync(fd);
  ::close(fd);
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::uint64_t parse_hash_hex(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

// Doubles are encoded as %.17g strings so the manifest and attribute
// artifacts round-trip bit-exactly (JSON double formatting would not).
std::string double_repr(double d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

double parse_double_repr(const std::string& s) { return std::strtod(s.c_str(), nullptr); }

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  const fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
  }
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open", tmp);
  write_all(fd, content, tmp);
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) throw_errno("rename", path);
  fsync_dir(target.has_parent_path() ? target.parent_path().string() : ".");
}

void append_line_durable(const std::string& path, std::string_view line) {
  const fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) throw_errno("open", path);
  std::string payload(line);
  payload.push_back('\n');
  write_all(fd, payload, path);
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync", path);
  }
  ::close(fd);
}

// --- CheckpointStore -------------------------------------------------------

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  load_manifest();
}

void CheckpointStore::load_manifest() {
  phases_.clear();
  order_.clear();
  meta_.clear();
  std::ifstream in(dir_ + "/manifest.json", std::ios::binary);
  if (!in) return;
  std::ostringstream buf;
  buf << in.rdbuf();
  nidb::Value manifest;
  try {
    manifest = nidb::parse_json(buf.str());
  } catch (const std::exception&) {
    return;  // torn or foreign manifest: treat as empty
  }
  const auto* obj = manifest.as_object();
  if (obj == nullptr) return;
  if (const auto* meta = manifest.find("meta"); meta != nullptr && meta->is_object()) {
    for (const auto& [k, v] : *meta->as_object()) {
      if (const auto* s = v.as_string()) meta_[k] = *s;
    }
  }
  const auto* order = manifest.find("order");
  const auto* phases = manifest.find("phases");
  if (order == nullptr || !order->is_array() || phases == nullptr ||
      !phases->is_object()) {
    return;
  }
  for (const auto& name_v : *order->as_array()) {
    const auto* name = name_v.as_string();
    if (name == nullptr) continue;
    const auto* rec = phases->find(*name);
    if (rec == nullptr || !rec->is_object()) continue;
    PhaseRecord record;
    if (const auto* art = rec->find("artifact"); art != nullptr && art->as_string()) {
      record.artifact = *art->as_string();
    }
    if (const auto* hash = rec->find("hash"); hash != nullptr && hash->as_string()) {
      record.hash = parse_hash_hex(*hash->as_string());
    }
    if (const auto* ms = rec->find("ms"); ms != nullptr && ms->as_string()) {
      record.ms = parse_double_repr(*ms->as_string());
    }
    if (const auto* ev = rec->find("events"); ev != nullptr && ev->as_string()) {
      record.events_file = *ev->as_string();
    }
    if (const auto* eh = rec->find("events_hash");
        eh != nullptr && eh->as_string()) {
      record.events_hash = parse_hash_hex(*eh->as_string());
    }
    order_.push_back(*name);
    phases_[*name] = std::move(record);
  }
}

void CheckpointStore::write_manifest() {
  nidb::Object phases;
  nidb::Array order;
  for (const auto& name : order_) {
    const PhaseRecord& rec = phases_.at(name);
    nidb::Object entry;
    entry["artifact"] = rec.artifact;
    entry["hash"] = hash_hex(rec.hash);
    entry["ms"] = double_repr(rec.ms);
    if (!rec.events_file.empty()) {
      entry["events"] = rec.events_file;
      entry["events_hash"] = hash_hex(rec.events_hash);
    }
    phases[name] = nidb::Value(std::move(entry));
    order.emplace_back(name);
  }
  nidb::Object meta;
  for (const auto& [k, v] : meta_) meta[k] = v;
  nidb::Object manifest;
  manifest["version"] = 1;
  manifest["meta"] = nidb::Value(std::move(meta));
  manifest["order"] = nidb::Value(std::move(order));
  manifest["phases"] = nidb::Value(std::move(phases));
  write_file_atomic(dir_ + "/manifest.json",
                    nidb::Value(std::move(manifest)).to_json(true) + "\n");
}

bool CheckpointStore::has_phase(std::string_view phase) const {
  const auto it = phases_.find(std::string(phase));
  if (it == phases_.end()) return false;
  std::ifstream in(dir_ + "/" + it->second.artifact, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return checkpoint_hash(buf.str()) == it->second.hash;
}

std::string CheckpointStore::artifact(std::string_view phase) const {
  const auto it = phases_.find(std::string(phase));
  if (it == phases_.end()) {
    throw CheckpointError("no checkpoint for phase '" + std::string(phase) + "'");
  }
  std::ifstream in(dir_ + "/" + it->second.artifact, std::ios::binary);
  if (!in) {
    throw CheckpointError("missing checkpoint artifact " + it->second.artifact);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  if (checkpoint_hash(content) != it->second.hash) {
    throw CheckpointError("corrupt checkpoint artifact " + it->second.artifact +
                          " (content hash mismatch)");
  }
  return content;
}

double CheckpointStore::phase_ms(std::string_view phase) const {
  const auto it = phases_.find(std::string(phase));
  return it == phases_.end() ? 0 : it->second.ms;
}

std::vector<std::string> CheckpointStore::phases() const { return order_; }

void CheckpointStore::record_phase(const std::string& phase,
                                   const std::string& artifact_file,
                                   const std::string& content, double ms,
                                   const std::optional<std::string>& events) {
  write_file_atomic(dir_ + "/" + artifact_file, content);
  PhaseRecord rec;
  rec.artifact = artifact_file;
  rec.hash = checkpoint_hash(content);
  rec.ms = ms;
  if (events) {
    rec.events_file = phase + ".events.jsonl";
    rec.events_hash = checkpoint_hash(*events);
    write_file_atomic(dir_ + "/" + rec.events_file, *events);
  }
  if (phases_.find(phase) == phases_.end()) order_.push_back(phase);
  phases_[phase] = std::move(rec);
  write_manifest();
  obs::Registry::current().counter("ckpt.write").inc();
  obs::record("ckpt", "write", {{"phase", phase}});
}

bool CheckpointStore::has_events(std::string_view phase) const {
  const auto it = phases_.find(std::string(phase));
  if (it == phases_.end() || it->second.events_file.empty()) return false;
  std::ifstream in(dir_ + "/" + it->second.events_file, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return checkpoint_hash(buf.str()) == it->second.events_hash;
}

std::string CheckpointStore::events(std::string_view phase) const {
  const auto it = phases_.find(std::string(phase));
  if (it == phases_.end() || it->second.events_file.empty()) {
    throw CheckpointError("no event slice for phase '" + std::string(phase) + "'");
  }
  std::ifstream in(dir_ + "/" + it->second.events_file, std::ios::binary);
  if (!in) {
    throw CheckpointError("missing event slice " + it->second.events_file);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  if (checkpoint_hash(content) != it->second.events_hash) {
    throw CheckpointError("corrupt event slice " + it->second.events_file +
                          " (content hash mismatch)");
  }
  return content;
}

void CheckpointStore::set_meta(const std::string& key, std::string value) {
  meta_[key] = std::move(value);
  write_manifest();
}

std::string CheckpointStore::meta(const std::string& key) const {
  const auto it = meta_.find(key);
  return it == meta_.end() ? "" : it->second;
}

void CheckpointStore::invalidate(const std::vector<std::string>& phases) {
  bool changed = false;
  for (const std::string& name : phases) {
    const auto it = phases_.find(name);
    if (it == phases_.end()) continue;
    std::error_code ec;
    fs::remove(fs::path(dir_) / it->second.artifact, ec);
    if (!it->second.events_file.empty()) {
      fs::remove(fs::path(dir_) / it->second.events_file, ec);
    }
    phases_.erase(it);
    order_.erase(std::remove(order_.begin(), order_.end(), name), order_.end());
    changed = true;
  }
  if (changed) write_manifest();
}

void CheckpointStore::discard() {
  for (const auto& [name, rec] : phases_) {
    std::error_code ec;
    fs::remove(fs::path(dir_) / rec.artifact, ec);
    if (!rec.events_file.empty()) {
      fs::remove(fs::path(dir_) / rec.events_file, ec);
    }
  }
  phases_.clear();
  order_.clear();
  meta_.clear();
  write_manifest();
}

// --- Attribute / graph serialization ---------------------------------------

namespace {

nidb::Value attr_to_value(const graph::AttrValue& attr) {
  nidb::Object tagged;
  if (!attr.is_set()) {
    tagged["t"] = "unset";
  } else if (attr.is_bool()) {
    tagged["t"] = "bool";
    tagged["v"] = *attr.as_bool();
  } else if (attr.is_int()) {
    tagged["t"] = "int";
    tagged["v"] = *attr.as_int();
  } else if (attr.is_double()) {
    tagged["t"] = "double";
    tagged["v"] = double_repr(*attr.as_double());
  } else if (attr.is_string()) {
    tagged["t"] = "string";
    tagged["v"] = *attr.as_string();
  } else if (attr.is_int_list()) {
    tagged["t"] = "ints";
    nidb::Array items;
    for (std::int64_t i : *attr.as_int_list()) items.emplace_back(i);
    tagged["v"] = nidb::Value(std::move(items));
  } else {
    tagged["t"] = "strings";
    nidb::Array items;
    for (const std::string& s : *attr.as_string_list()) items.emplace_back(s);
    tagged["v"] = nidb::Value(std::move(items));
  }
  return nidb::Value(std::move(tagged));
}

graph::AttrValue attr_from_value(const nidb::Value& v) {
  const auto* type = v.find("t");
  if (type == nullptr || type->as_string() == nullptr) {
    throw CheckpointError("malformed attribute record in checkpoint");
  }
  const std::string& t = *type->as_string();
  const auto* payload = v.find("v");
  if (t == "unset") return {};
  if (payload == nullptr) throw CheckpointError("attribute record missing value");
  if (t == "bool") return graph::AttrValue(payload->as_bool().value_or(false));
  if (t == "int") return graph::AttrValue(payload->as_int().value_or(0));
  if (t == "double") {
    const auto* s = payload->as_string();
    return graph::AttrValue(s != nullptr ? parse_double_repr(*s)
                                         : payload->as_double().value_or(0));
  }
  if (t == "string") {
    const auto* s = payload->as_string();
    return graph::AttrValue(s != nullptr ? *s : std::string());
  }
  if (t == "ints") {
    std::vector<std::int64_t> items;
    if (const auto* arr = payload->as_array()) {
      for (const auto& e : *arr) items.push_back(e.as_int().value_or(0));
    }
    return graph::AttrValue(std::move(items));
  }
  if (t == "strings") {
    std::vector<std::string> items;
    if (const auto* arr = payload->as_array()) {
      for (const auto& e : *arr) items.push_back(e.as_string() ? *e.as_string() : "");
    }
    return graph::AttrValue(std::move(items));
  }
  throw CheckpointError("unknown attribute type tag '" + t + "'");
}

nidb::Value attrs_to_value(const graph::AttrMap& attrs) {
  nidb::Object out;
  for (const auto& [key, value] : attrs) out[key] = attr_to_value(value);
  return nidb::Value(std::move(out));
}

void attrs_from_value(const nidb::Value& v, graph::AttrMap& out) {
  if (const auto* obj = v.as_object()) {
    for (const auto& [key, value] : *obj) out[key] = attr_from_value(value);
  }
}

// Fills an existing (empty) graph from its serialized form; shared by the
// standalone and in-place (overlay) restore paths.
void graph_fill_from_value(const nidb::Value& v, graph::Graph& g) {
  if (const auto* data = v.find("data")) attrs_from_value(*data, g.data());
  if (const auto* nodes = v.find("nodes"); nodes != nullptr && nodes->is_array()) {
    for (const auto& node : *nodes->as_array()) {
      const auto* name = node.find("name");
      if (name == nullptr || name->as_string() == nullptr) {
        throw CheckpointError("node record missing name in checkpoint");
      }
      const graph::NodeId id = g.add_node(*name->as_string());
      if (const auto* attrs = node.find("attrs")) {
        attrs_from_value(*attrs, g.node_attrs(id));
      }
    }
  }
  if (const auto* edges = v.find("edges"); edges != nullptr && edges->is_array()) {
    for (const auto& edge : *edges->as_array()) {
      const auto* u = edge.find("u");
      const auto* w = edge.find("v");
      if (u == nullptr || u->as_string() == nullptr || w == nullptr ||
          w->as_string() == nullptr) {
        throw CheckpointError("edge record missing endpoint in checkpoint");
      }
      const graph::EdgeId id = g.add_edge(*u->as_string(), *w->as_string());
      if (const auto* attrs = edge.find("attrs")) {
        attrs_from_value(*attrs, g.edge_attrs(id));
      }
    }
  }
}

}  // namespace

nidb::Value graph_to_value(const graph::Graph& g) {
  nidb::Object out;
  out["name"] = g.name();
  out["directed"] = g.directed();
  out["data"] = attrs_to_value(g.data());
  nidb::Array nodes;
  for (const graph::NodeId id : g.nodes()) {
    nidb::Object node;
    node["name"] = g.node_name(id);
    node["attrs"] = attrs_to_value(g.node_attrs(id));
    nodes.emplace_back(std::move(node));
  }
  out["nodes"] = nidb::Value(std::move(nodes));
  nidb::Array edges;
  for (const graph::EdgeId id : g.edges()) {
    nidb::Object edge;
    edge["u"] = g.node_name(g.edge_src(id));
    edge["v"] = g.node_name(g.edge_dst(id));
    edge["attrs"] = attrs_to_value(g.edge_attrs(id));
    edges.emplace_back(std::move(edge));
  }
  out["edges"] = nidb::Value(std::move(edges));
  return nidb::Value(std::move(out));
}

graph::Graph graph_from_value(const nidb::Value& v) {
  const auto* directed = v.find("directed");
  const auto* name = v.find("name");
  graph::Graph g(directed != nullptr && directed->as_bool().value_or(false),
                 name != nullptr && name->as_string() ? *name->as_string() : "");
  graph_fill_from_value(v, g);
  return g;
}

nidb::Value anm_to_value(const anm::AbstractNetworkModel& anm) {
  nidb::Array overlays;
  for (const std::string& name : anm.overlay_names()) {
    overlays.push_back(graph_to_value(anm.overlay(name).unwrap()));
  }
  nidb::Object out;
  out["overlays"] = nidb::Value(std::move(overlays));
  return nidb::Value(std::move(out));
}

obs::RecorderEvent event_from_value(const nidb::Value& doc) {
  obs::RecorderEvent event;
  if (const auto* ts = doc.find("ts_us")) {
    event.ts_us = static_cast<std::uint64_t>(ts->as_int().value_or(0));
  }
  if (const auto* s = doc.find("phase"); s != nullptr && s->as_string()) {
    event.phase = *s->as_string();
  }
  if (const auto* s = doc.find("category"); s != nullptr && s->as_string()) {
    event.category = *s->as_string();
  }
  if (const auto* s = doc.find("severity"); s != nullptr && s->as_string()) {
    event.severity = obs::severity_from_label(*s->as_string());
  }
  if (const auto* s = doc.find("name"); s != nullptr && s->as_string()) {
    event.name = *s->as_string();
  }
  if (const auto* fields = doc.find("fields");
      fields != nullptr && fields->is_object()) {
    // nidb objects iterate in sorted key order — the same order
    // obs::event_to_json emits — so parse→serialize round trips are
    // byte-stable.
    for (const auto& [key, value] : *fields->as_object()) {
      event.fields.emplace_back(key,
                                value.as_string() ? *value.as_string() : "");
    }
  }
  return event;
}

std::vector<obs::RecorderEvent> events_from_jsonl(const std::string& text) {
  std::vector<obs::RecorderEvent> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    nidb::Value doc;
    try {
      doc = nidb::parse_json(line);
    } catch (const std::exception& e) {
      throw CheckpointError(std::string("malformed event line: ") + e.what());
    }
    out.push_back(event_from_value(doc));
  }
  return out;
}

void anm_from_value(const nidb::Value& v, anm::AbstractNetworkModel& anm) {
  const auto* overlays = v.find("overlays");
  if (overlays == nullptr || !overlays->is_array()) {
    throw CheckpointError("ANM checkpoint missing overlays array");
  }
  for (const auto& overlay : *overlays->as_array()) {
    const auto* name = overlay.find("name");
    if (name == nullptr || name->as_string() == nullptr) {
      throw CheckpointError("overlay record missing name in checkpoint");
    }
    const auto* directed = overlay.find("directed");
    // The ANM constructor pre-creates 'input' and 'phy'; restoring into a
    // fresh model replaces those empty graphs so the creation order (and
    // directedness) comes from the checkpoint.
    if (anm.has_overlay(*name->as_string())) {
      anm.remove_overlay(*name->as_string());
    }
    anm::OverlayGraph og = anm.add_overlay(
        *name->as_string(), directed != nullptr && directed->as_bool().value_or(false));
    graph_fill_from_value(overlay, og.unwrap());
  }
}

}  // namespace autonet::core

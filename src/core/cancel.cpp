#include "core/cancel.hpp"

#include <csignal>

#include "obs/recorder.hpp"
#include "obs/registry.hpp"

namespace autonet::core {

namespace {
// Async-signal-safe interrupt flag. The handler only stores; linked
// tokens poll it from cooperative checkpoints.
std::atomic<bool> g_sigint{false};
std::atomic<bool> g_handler_installed{false};

void sigint_handler(int) { g_sigint.store(true, std::memory_order_relaxed); }
}  // namespace

void CancellationToken::request_cancel(std::string reason) {
  std::lock_guard lock(mutex_);
  if (cancelled_.load(std::memory_order_relaxed)) return;  // first wins
  reason_ = std::move(reason);
  cancelled_.store(true, std::memory_order_release);
}

bool CancellationToken::cancelled() const {
  if (cancelled_.load(std::memory_order_acquire)) return true;
  return sigint_linked_.load(std::memory_order_relaxed) &&
         g_sigint.load(std::memory_order_relaxed);
}

std::string CancellationToken::reason() const {
  {
    std::lock_guard lock(mutex_);
    if (!reason_.empty()) return reason_;
  }
  if (sigint_linked_.load(std::memory_order_relaxed) &&
      g_sigint.load(std::memory_order_relaxed)) {
    return "user interrupt (SIGINT)";
  }
  return "";
}

void CancellationToken::link_sigint() {
  if (!g_handler_installed.exchange(true)) {
    std::signal(SIGINT, sigint_handler);
  }
  sigint_linked_.store(true, std::memory_order_relaxed);
}

bool CancellationToken::sigint_received() {
  return g_sigint.load(std::memory_order_relaxed);
}

void CancellationToken::reset_sigint() {
  g_sigint.store(false, std::memory_order_relaxed);
}

Deadline Deadline::after_ms(std::uint64_t budget_ms) {
  Deadline d;
  d.armed_ = true;
  d.start_us_ = obs::Registry::current().now_us();
  d.budget_us_ = budget_ms * 1000;
  return d;
}

std::uint64_t Deadline::elapsed_us() const {
  if (!armed_) return 0;
  const std::uint64_t now = obs::Registry::current().now_us();
  return now > start_us_ ? now - start_us_ : 0;
}

std::uint64_t Deadline::remaining_us() const {
  if (!armed_) return UINT64_MAX;
  const std::uint64_t elapsed = elapsed_us();
  return elapsed >= budget_us_ ? 0 : budget_us_ - elapsed;
}

int Deadline::clamp_delay_ms(int delay_ms) const {
  if (!armed_ || delay_ms <= 0) return delay_ms;
  const std::uint64_t remaining_ms = remaining_us() / 1000;
  if (static_cast<std::uint64_t>(delay_ms) <= remaining_ms) return delay_ms;
  return static_cast<int>(remaining_ms);
}

void RunControl::checkpoint(std::string_view where) {
  if (trip_hook && trip_hook(where)) {
    token.request_cancel("chaos trip at " + std::string(where));
  }
  if (token.cancelled()) {
    obs::Registry::current().counter("cancel.observed").inc();
    obs::record("cancel", obs::Severity::kWarning, "observed",
                {{"where", std::string(where)}});
    throw Cancelled(std::string(where), token.reason());
  }
  if (deadline.expired()) {
    obs::Registry::current().counter("deadline.observed").inc();
    obs::record("cancel", obs::Severity::kWarning, "deadline",
                {{"where", std::string(where)}});
    throw DeadlineExceeded(std::string(where), deadline.budget_us(),
                           deadline.elapsed_us());
  }
}

}  // namespace autonet::core

// Cooperative cancellation and deadlines for supervised pipeline
// execution. Long-running phases (design, render, lint, deploy,
// emulation convergence, measure) call RunControl::checkpoint() at phase
// and sub-phase boundaries; when an operator interrupt (SIGINT), an
// explicit request_cancel(), or an expired Deadline is observed there,
// the phase throws a typed core::Cancelled / core::DeadlineExceeded.
// Partial results survive the throw: completed phases keep their
// artifacts (and, with a CheckpointStore attached, are already durable
// on disk), so a later Workflow::resume() restarts at the last finished
// phase instead of re-running hours of work.
//
// Deadlines are virtual-clock aware: time is read through the current
// obs::Registry clock, so a campaign run under a VirtualClock enforces
// (and tests) deadlines deterministically without wall-clock leakage.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

namespace autonet::core {

/// Common base for control-flow interrupts (cancellation, deadlines), so
/// supervisors can catch both with one handler while keeping the two
/// causes distinguishable. `where()` names the cooperative checkpoint
/// that observed the interrupt ("phase.deploy", "deploy.boot.r3", ...).
class Interrupted : public std::runtime_error {
 public:
  Interrupted(const std::string& what, std::string where)
      : std::runtime_error(what), where_(std::move(where)) {}
  [[nodiscard]] const std::string& where() const { return where_; }

 private:
  std::string where_;
};

/// Thrown by RunControl::checkpoint() after request_cancel() (or SIGINT
/// with a linked token). The in-flight phase is abandoned; completed
/// phases keep their results.
class Cancelled : public Interrupted {
 public:
  // `where` is passed (not moved) into the base: constructor argument
  // evaluation order is unspecified, so a move here could empty the
  // string before the message concatenation reads it.
  Cancelled(const std::string& where, const std::string& reason)
      : Interrupted("cancelled at " + where + ": " + reason, where),
        reason_(reason) {}
  [[nodiscard]] const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
};

/// Thrown by RunControl::checkpoint() when the run deadline has expired.
class DeadlineExceeded : public Interrupted {
 public:
  // Same evaluation-order hazard as Cancelled: `where` must not be moved
  // into the base while the message expression still reads it.
  DeadlineExceeded(const std::string& where, std::uint64_t budget_us,
                   std::uint64_t elapsed_us)
      : Interrupted("deadline exceeded at " + where + " (" +
                        std::to_string(elapsed_us / 1000) + "ms elapsed, " +
                        std::to_string(budget_us / 1000) + "ms budget)",
                    where),
        budget_us_(budget_us), elapsed_us_(elapsed_us) {}
  [[nodiscard]] std::uint64_t budget_us() const { return budget_us_; }
  [[nodiscard]] std::uint64_t elapsed_us() const { return elapsed_us_; }

 private:
  std::uint64_t budget_us_;
  std::uint64_t elapsed_us_;
};

/// Thread-safe cancel flag. request_cancel() is sticky; a token linked
/// to SIGINT (link_sigint) also observes the process-wide interrupt
/// flag, which the async-signal-safe handler merely stores.
class CancellationToken {
 public:
  void request_cancel(std::string reason = "cancelled");
  [[nodiscard]] bool cancelled() const;
  /// The first request's reason ("user interrupt (SIGINT)" for a linked
  /// signal); empty while not cancelled.
  [[nodiscard]] std::string reason() const;

  /// Installs (once per process) a SIGINT handler that sets a global
  /// flag, and makes this token observe it. Safe to call repeatedly.
  void link_sigint();
  /// True when a SIGINT arrived since the handler was installed.
  [[nodiscard]] static bool sigint_received();
  /// Clears the process-wide SIGINT flag (tests).
  static void reset_sigint();

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> sigint_linked_{false};
  std::string reason_;
};

/// A time budget measured on the telemetry clock of the current
/// obs::Registry (virtual-clock aware — see file comment). Default
/// constructed deadlines are unarmed and never expire.
class Deadline {
 public:
  Deadline() = default;

  /// Arms a deadline `budget_ms` from now (now = the current registry's
  /// clock reading at the call).
  static Deadline after_ms(std::uint64_t budget_ms);

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] std::uint64_t budget_us() const { return budget_us_; }
  /// Microseconds since arming (current registry clock).
  [[nodiscard]] std::uint64_t elapsed_us() const;
  /// Microseconds left; 0 when expired. Unarmed: UINT64_MAX.
  [[nodiscard]] std::uint64_t remaining_us() const;
  [[nodiscard]] bool expired() const { return armed_ && remaining_us() == 0; }

  /// Clamps a backoff delay so a virtual sleep never overshoots the
  /// deadline: min(delay_ms, remaining). Unarmed deadlines pass the
  /// delay through.
  [[nodiscard]] int clamp_delay_ms(int delay_ms) const;

 private:
  bool armed_ = false;
  std::uint64_t start_us_ = 0;
  std::uint64_t budget_us_ = 0;
};

/// The supervision bundle threaded through the pipeline: one token, one
/// optional deadline, and the cooperative checkpoint() the layers call.
/// Non-owning pointers to a RunControl are passed down (WorkflowOptions,
/// DeployOptions, EmulatedNetwork::start) so a single operator interrupt
/// reaches every layer within one sub-phase step.
struct RunControl {
  CancellationToken token;
  Deadline deadline;
  /// Chaos hook (tests): called with every checkpoint's `where` before
  /// the cancel/deadline tests; returning true requests cancellation
  /// there. This is how the chaos-resume harness kills a pipeline at an
  /// exact, deterministic boundary.
  std::function<bool(std::string_view where)> trip_hook;

  /// Cooperative checkpoint: throws Cancelled / DeadlineExceeded when
  /// the token is cancelled or the deadline expired, incrementing the
  /// "cancel.observed" / "deadline.observed" counters in the current
  /// obs registry. Cheap when neither has fired.
  void checkpoint(std::string_view where);

  /// Non-throwing poll (loop guards that prefer structured errors).
  [[nodiscard]] bool should_stop() const {
    return token.cancelled() || deadline.expired();
  }
};

/// Null-safe helper: checkpoint(control, where) for optional controls.
inline void checkpoint(RunControl* control, std::string_view where) {
  if (control != nullptr) control->checkpoint(where);
}

}  // namespace autonet::core

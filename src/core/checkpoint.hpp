// Crash-consistent workflow checkpointing. A CheckpointStore is a
// directory holding one content-hashed artifact per completed pipeline
// phase plus a manifest describing what is durable; every write goes
// through write-temp + fsync + atomic-rename, so a kill at any byte
// leaves either the previous or the next consistent state — never a torn
// one. Workflow::checkpoint_to() records phases as they finish and
// restores the longest completed prefix on a later run, so a killed
// pipeline resumes at the last finished phase, and a resumed run's
// artifacts and metrics are byte-identical to an uninterrupted one
// (virtual-clock registry discipline, see experiment::CampaignRunner).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "anm/anm.hpp"
#include "graph/graph.hpp"
#include "nidb/value.hpp"
#include "obs/event.hpp"

namespace autonet::core {

class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a 64-bit content hash (stable across platforms); the checkpoint
/// manifest stores it per artifact so resume detects corruption.
[[nodiscard]] std::uint64_t checkpoint_hash(std::string_view data);

/// Writes `content` to `path` crash-consistently: a temp file in the
/// same directory is written, flushed with fsync, then renamed over the
/// target (and the directory entry is fsynced). Throws CheckpointError
/// on I/O failure. Shared by the checkpoint store and the experiment
/// journal's recovery-critical writes.
void write_file_atomic(const std::string& path, std::string_view content);

/// Appends `line` + '\n' to `path` with O_APPEND + fsync (torn tails are
/// possible on a kill mid-append, never interleaved or reordered ones).
void append_line_durable(const std::string& path, std::string_view line);

class CheckpointStore {
 public:
  struct PhaseRecord {
    std::string artifact;   // file name inside the directory
    std::uint64_t hash = 0; // checkpoint_hash of the artifact content
    double ms = 0;          // the phase's span duration (restored timings)
    /// Flight-recorder event slice for the phase ("<phase>.events.jsonl";
    /// empty name = recorded before events existed). Replayed on restore
    /// so a resumed run's run report is byte-identical to an
    /// uninterrupted one.
    std::string events_file;
    std::uint64_t events_hash = 0;
  };

  /// Opens (creating the directory if needed) and loads the manifest.
  /// A missing or torn manifest is an empty checkpoint.
  explicit CheckpointStore(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// True when the manifest records `phase` and its artifact is intact
  /// (present with a matching content hash).
  [[nodiscard]] bool has_phase(std::string_view phase) const;
  /// The artifact content for a completed phase; throws CheckpointError
  /// when absent or corrupt.
  [[nodiscard]] std::string artifact(std::string_view phase) const;
  [[nodiscard]] double phase_ms(std::string_view phase) const;
  /// Phase names present in the manifest (manifest order).
  [[nodiscard]] std::vector<std::string> phases() const;

  /// Records a completed phase: writes the artifact atomically, then the
  /// updated manifest atomically — a crash between the two leaves the
  /// phase unrecorded (and re-run on resume), never half-recorded.
  /// Increments the "ckpt.write" obs counter and emits a "ckpt" flight
  /// event. When `events` is set, the phase's flight-recorder slice is
  /// persisted alongside the artifact as "<phase>.events.jsonl".
  void record_phase(const std::string& phase, const std::string& artifact_file,
                    const std::string& content, double ms,
                    const std::optional<std::string>& events = std::nullopt);

  /// True when `phase` has an intact persisted event slice.
  [[nodiscard]] bool has_events(std::string_view phase) const;
  /// The persisted event-slice JSONL for a phase; throws CheckpointError
  /// when absent or corrupt.
  [[nodiscard]] std::string events(std::string_view phase) const;

  /// Free-form metadata (options hash, input hash, CLI options...),
  /// persisted in the manifest.
  void set_meta(const std::string& key, std::string value);
  [[nodiscard]] std::string meta(const std::string& key) const;

  /// Removes the named phases in one manifest rewrite (absent names are
  /// ignored). Workflow uses this to drop downstream records the moment
  /// an upstream phase re-executes — their inputs just changed.
  void invalidate(const std::vector<std::string>& phases);

  /// Drops all recorded phases and metadata (input/options changed: the
  /// checkpoint no longer describes this run). Artifact files are
  /// removed best-effort; the manifest rewrite is what invalidates them.
  void discard();

 private:
  void load_manifest();
  void write_manifest();

  std::string dir_;
  std::map<std::string, PhaseRecord> phases_;
  std::vector<std::string> order_;
  std::map<std::string, std::string> meta_;
};

// --- Artifact (de)serialization -------------------------------------------
// Lossless JSON encodings for the pipeline states a checkpoint snapshots.
// Attribute values are type-tagged ({"t":"int","v":5}); doubles round-trip
// through %.17g strings so restored graphs compare equal byte-for-byte.

[[nodiscard]] nidb::Value graph_to_value(const graph::Graph& g);
[[nodiscard]] graph::Graph graph_from_value(const nidb::Value& v);

/// Serializes every overlay (nodes, edges, attrs, overlay-level data) in
/// creation order.
[[nodiscard]] nidb::Value anm_to_value(const anm::AbstractNetworkModel& anm);
/// Restores overlays into `anm` (which may already hold the default
/// 'input'/'phy' overlays; their contents are replaced).
void anm_from_value(const nidb::Value& v, anm::AbstractNetworkModel& anm);

/// Parses one serialized flight-recorder event (the object form
/// obs::event_to_json emits) out of a JSON value.
[[nodiscard]] obs::RecorderEvent event_from_value(const nidb::Value& v);

/// Parses flight-recorder events back out of obs::events_to_jsonl text
/// (checkpoint event slices, run-report timelines). Torn or malformed
/// lines throw CheckpointError — a corrupt slice must degrade to fresh
/// re-execution, not to a silently shorter timeline.
[[nodiscard]] std::vector<obs::RecorderEvent> events_from_jsonl(
    const std::string& text);

}  // namespace autonet::core

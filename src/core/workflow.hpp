// The Workflow façade: the paper's Figure-2 pipeline as one API.
//   input topology -> network design -> compile -> render -> deploy ->
//   measure (with visualization export at any stage)
// Each phase is timed, reproducing the §3.2 measurement methodology
// ("15 seconds to load and build network topologies, 27 seconds to
// compile the network model, and 2 minutes to render").
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "anm/anm.hpp"
#include "compiler/platform_compiler.hpp"
#include "core/cancel.hpp"
#include "core/checkpoint.hpp"
#include "core/error.hpp"
#include "deploy/deployer.hpp"
#include "deploy/faults.hpp"
#include "design/bgp.hpp"
#include "design/igp.hpp"
#include "design/ip_allocation.hpp"
#include "design/services.hpp"
#include "measure/client.hpp"
#include "measure/validate.hpp"
#include "nidb/nidb.hpp"
#include "obs/registry.hpp"
#include "render/renderer.hpp"
#include "verify/static_check.hpp"

namespace autonet::core {

/// The pre-deployment lint gate: run() executes the static analyser
/// between render and deploy, and with fail_fast refuses to deploy a
/// network whose report crosses the failure threshold.
struct LintGate {
  bool enabled = true;
  /// Throw LintError from lint()/run() when options.should_fail(report);
  /// when false the report is recorded (see lint_report()) but the
  /// pipeline continues.
  bool fail_fast = true;
  /// Opt-in: also run the semantic "analysis" rule family (predicted
  /// FIBs, reachability/loop/blackhole, k=1 what-if) in the gate, i.e.
  /// use RuleRegistry::with_analysis() instead of builtin().
  bool analysis = false;
  /// Per-rule enable/disable, severity overrides and the threshold.
  verify::LintOptions options;
};

struct WorkflowOptions {
  std::string platform = "netkit";
  /// iBGP mode: "mesh", "rr" (attribute-based), or "rr-auto"
  /// (centrality-selected reflectors, §7.1).
  std::string ibgp = "mesh";
  bool enable_isis = false;
  bool enable_dns = false;
  bool enable_rpki = false;
  design::IpOptions ip;
  design::OspfOptions ospf;
  design::RrSelectOptions rr_select;
  /// Deployment behaviour (retries, backoff, graceful degradation).
  deploy::DeployOptions deploy;
  LintGate lint;
};

/// Thrown by the lint gate (fail-fast mode) when static analysis finds
/// violations past the configured threshold; carries the full report.
class LintError : public std::runtime_error {
 public:
  LintError(const std::string& what, verify::Report report)
      : std::runtime_error(what), report_(std::move(report)) {}
  [[nodiscard]] const verify::Report& report() const { return report_; }

 private:
  verify::Report report_;
};

struct PhaseTimings {
  /// Milliseconds per phase, keyed "load", "design", "compile", "render",
  /// "lint", "deploy", "measure". Values are derived from the obs phase spans
  /// (each entry is the duration of the span of the same name).
  std::map<std::string, double> ms;
  [[nodiscard]] double total() const;
  [[nodiscard]] std::string to_string() const;
};

/// Drives the full pipeline over an input topology graph. The individual
/// modules remain directly usable; Workflow wires the default
/// composition used by the examples and benchmarks.
class Workflow {
 public:
  explicit Workflow(WorkflowOptions options = {});
  ~Workflow();
  Workflow(Workflow&&) noexcept;
  Workflow& operator=(Workflow&&) noexcept;

  /// Phase 1: loads the input graph into the ANM ('input' + 'phy').
  Workflow& load(const graph::Graph& input);
  /// Phase 2: runs the design rules (OSPF, eBGP, iBGP, IP, services).
  Workflow& design();
  /// Phase 3: platform compilation into the Resource Database.
  Workflow& compile();
  /// Phase 4: template rendering into the configuration tree.
  Workflow& render();
  /// Phase 4.5: the static-analysis gate — lints the compiled NIDB and
  /// the builtin template sets. Respects options.lint: skipped when
  /// disabled, throws LintError past the threshold with fail_fast.
  Workflow& lint();
  /// Phase 5: archive/transfer/extract/boot on a simulated host; starts
  /// the emulated network.
  Workflow& deploy();
  /// Phase 6: post-deployment measurement — design-vs-running OSPF
  /// validation plus the loopback reachability matrix, timed like every
  /// other phase (the paper's §3.2 numbers previously left it untimed).
  Workflow& measure();

  /// All phases in order. Deployment faults do not throw: inspect ok(),
  /// errors(), and deploy_result() afterwards — a degraded deploy still
  /// leaves a (partial) network() to measure.
  Workflow& run(const graph::Graph& input);

  /// Attaches a fault-injection plan consulted by the emulation host
  /// during deploy(); pass nullptr to detach.
  Workflow& use_faults(deploy::FaultPlan* plan) {
    faults_ = plan;
    return *this;
  }

  /// Records telemetry (phase spans, per-rule/per-device spans, counters)
  /// into `registry` instead of obs::Registry::global(); pass nullptr to
  /// revert. Used by tests to golden-compare isolated exports.
  Workflow& use_telemetry(obs::Registry* registry) {
    obs_ = registry;
    return *this;
  }
  /// The registry this workflow records into.
  [[nodiscard]] obs::Registry& telemetry() const {
    return obs_ != nullptr ? *obs_ : obs::Registry::global();
  }

  /// Attaches run supervision (cooperative cancellation + a virtual-time
  /// deadline): every phase and sub-phase boundary polls it, so a cancel
  /// or an expired deadline interrupts the pipeline within one unit of
  /// work (one design rule, one rendered device, one lint rule, one BGP
  /// round, one deploy attempt) while completed phases' results — and
  /// their checkpoints — stay intact. Non-owning; pass nullptr to detach.
  Workflow& use_control(core::RunControl* control) {
    control_ = control;
    return *this;
  }
  [[nodiscard]] core::RunControl* control() const { return control_; }

  /// Enables crash-consistent checkpointing into `dir`: each phase's
  /// state is snapshotted (write-temp + fsync + rename) as it completes,
  /// and phases already recorded there — by a previous, possibly killed
  /// or cancelled, run over the same input and options — are restored
  /// instead of re-executed. A restored prefix plus a freshly executed
  /// suffix yields results byte-identical to an uninterrupted run (the
  /// emulated network is rehydrated by replaying its deterministic
  /// start). Obs counters: "ckpt.write" per snapshot,
  /// "ckpt.phase_restored" per phase skipped, "ckpt.resume" once per
  /// workflow that restored anything.
  Workflow& checkpoint_to(const std::string& dir);
  /// The attached store; nullptr when checkpointing is off.
  [[nodiscard]] CheckpointStore* checkpoint_store() { return ckpt_.get(); }
  /// Phases satisfied from the checkpoint by this run, pipeline order.
  [[nodiscard]] const std::vector<std::string>& restored_phases() const {
    return restored_;
  }

  // --- Flight-recorder / run-report surface -----------------------------
  /// Per-phase flight-recorder event slices: each completed phase's
  /// events (phase-relative timestamps), drained at phase end. Restored
  /// phases carry the slice their original execution persisted, so the
  /// map — and any report built from it — is identical whether a phase
  /// ran fresh or came from a checkpoint.
  [[nodiscard]] const std::map<std::string, std::vector<obs::RecorderEvent>>&
  phase_events() const {
    return phase_events_;
  }
  /// FNV-1a hash of the serialized input graph (set by load()); the same
  /// value checkpointing stores as "input_hash".
  [[nodiscard]] const std::string& input_hash() const { return input_hash_; }
  /// Stable hash of the workflow options (platform, iBGP mode, deploy
  /// and lint settings); the same value checkpointing stores as
  /// "options".
  [[nodiscard]] std::string options_signature() const;

  // --- Results ----------------------------------------------------------
  [[nodiscard]] anm::AbstractNetworkModel& anm() { return anm_; }
  [[nodiscard]] const anm::AbstractNetworkModel& anm() const { return anm_; }
  [[nodiscard]] const nidb::Nidb& nidb() const;
  [[nodiscard]] const render::ConfigTree& configs() const;
  [[nodiscard]] emulation::EmulatedNetwork& network();
  [[nodiscard]] const deploy::DeployResult& deploy_result() const;
  /// True when deploy ran and reported no faults (full, non-degraded
  /// success).
  [[nodiscard]] bool ok() const {
    return deploy_result_.success && deploy_result_.errors.empty();
  }
  /// Typed partial-failure report from deployment (empty before deploy
  /// and on clean runs).
  [[nodiscard]] const core::ErrorList& errors() const {
    return deploy_result_.errors;
  }
  [[nodiscard]] const PhaseTimings& timings() const { return timings_; }

  /// A measurement client bound to the running network.
  [[nodiscard]] measure::MeasurementClient measurement() const;
  /// Design-vs-running validation of OSPF adjacencies.
  [[nodiscard]] measure::ValidationReport validate_ospf() const;
  /// Results of the measure() phase; throws before measure() has run.
  [[nodiscard]] const measure::ValidationReport& measure_report() const;
  /// Pre-deployment static verification of the compiled NIDB (§8).
  [[nodiscard]] verify::Report static_check() const;
  /// Report recorded by the lint() phase; throws before lint() has run.
  [[nodiscard]] const verify::Report& lint_report() const;

 private:
  template <typename F>
  void timed(const std::string& phase, F&& f);

  // Checkpoint/resume plumbing (all no-ops when ckpt_ is null).
  void validate_checkpoint(const graph::Graph& input);
  bool try_restore(const std::string& phase);
  /// Interruption path: drains the recorder's unsaved tail into
  /// flight.jsonl + run_report.partial.json next to the checkpoint
  /// (no-op without a store; never throws).
  void dump_flight_tail(const std::string& phase) noexcept;
  void restore_phase_state(const std::string& phase, const std::string& artifact);
  void begin_phase(const std::string& phase);
  void save_phase(const std::string& phase);
  [[nodiscard]] std::string phase_artifact(const std::string& phase) const;
  void rehydrate_network();

  WorkflowOptions options_;
  anm::AbstractNetworkModel anm_;
  std::optional<nidb::Nidb> nidb_;
  std::optional<render::ConfigTree> configs_;
  std::unique_ptr<deploy::EmulationHost> host_;
  deploy::FaultPlan* faults_ = nullptr;
  obs::Registry* obs_ = nullptr;  // nullptr = obs::Registry::global()
  deploy::DeployResult deploy_result_;
  std::optional<verify::Report> lint_report_;
  std::optional<measure::ValidationReport> measure_report_;
  PhaseTimings timings_;
  bool loaded_ = false;

  core::RunControl* control_ = nullptr;  // non-owning supervision
  std::unique_ptr<CheckpointStore> ckpt_;
  std::vector<std::string> restored_;
  std::map<std::string, std::vector<obs::RecorderEvent>> phase_events_;
  std::string input_hash_;
  /// Once any phase executes fresh, downstream checkpoint records are
  /// stale — restores stop and save_phase() invalidates them.
  bool fresh_executed_ = false;
  bool resume_counted_ = false;
  /// Measure-phase counter values, snapshotted so a restored measure
  /// phase can replay its registry contributions exactly.
  std::uint64_t measure_probes_ = 0;
  std::uint64_t measure_reachable_ = 0;
};

}  // namespace autonet::core

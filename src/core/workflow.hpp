// The Workflow façade: the paper's Figure-2 pipeline as one API.
//   input topology -> network design -> compile -> render -> deploy ->
//   measure (with visualization export at any stage)
// Each phase is timed, reproducing the §3.2 measurement methodology
// ("15 seconds to load and build network topologies, 27 seconds to
// compile the network model, and 2 minutes to render").
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "anm/anm.hpp"
#include "compiler/platform_compiler.hpp"
#include "core/cancel.hpp"
#include "core/checkpoint.hpp"
#include "core/error.hpp"
#include "deploy/deployer.hpp"
#include "deploy/faults.hpp"
#include "design/bgp.hpp"
#include "design/igp.hpp"
#include "design/ip_allocation.hpp"
#include "design/services.hpp"
#include "incremental/delta.hpp"
#include "incremental/plan.hpp"
#include "incremental/snapshot.hpp"
#include "measure/client.hpp"
#include "measure/validate.hpp"
#include "nidb/nidb.hpp"
#include "obs/registry.hpp"
#include "render/renderer.hpp"
#include "verify/static_check.hpp"

namespace autonet::core {

/// The pre-deployment lint gate: run() executes the static analyser
/// between render and deploy, and with fail_fast refuses to deploy a
/// network whose report crosses the failure threshold.
struct LintGate {
  bool enabled = true;
  /// Throw LintError from lint()/run() when options.should_fail(report);
  /// when false the report is recorded (see lint_report()) but the
  /// pipeline continues.
  bool fail_fast = true;
  /// Opt-in: also run the semantic "analysis" rule family (predicted
  /// FIBs, reachability/loop/blackhole, k=1 what-if) in the gate, i.e.
  /// use RuleRegistry::with_analysis() instead of builtin().
  bool analysis = false;
  /// Per-rule enable/disable, severity overrides and the threshold.
  verify::LintOptions options;
};

struct WorkflowOptions {
  std::string platform = "netkit";
  /// iBGP mode: "mesh", "rr" (attribute-based), or "rr-auto"
  /// (centrality-selected reflectors, §7.1).
  std::string ibgp = "mesh";
  bool enable_isis = false;
  bool enable_dns = false;
  bool enable_rpki = false;
  design::IpOptions ip;
  design::OspfOptions ospf;
  design::RrSelectOptions rr_select;
  /// Deployment behaviour (retries, backoff, graceful degradation).
  deploy::DeployOptions deploy;
  LintGate lint;
};

/// Thrown by the lint gate (fail-fast mode) when static analysis finds
/// violations past the configured threshold; carries the full report.
class LintError : public std::runtime_error {
 public:
  LintError(const std::string& what, verify::Report report)
      : std::runtime_error(what), report_(std::move(report)) {}
  [[nodiscard]] const verify::Report& report() const { return report_; }

 private:
  verify::Report report_;
};

/// What an incremental run did: its mode, the input delta against the
/// baseline, the recompute plan, and per-phase reuse tallies. mode is
/// "cold" (no usable baseline), "warm" (input unchanged — every phase
/// restores), or "partial" (snapshot-planned minimal recompute).
struct IncrementalReport {
  bool enabled = false;
  std::string mode = "cold";
  incremental::DeltaSet delta;
  incremental::RecomputePlan plan;
  std::size_t devices_reused_compile = 0;
  std::size_t devices_reused_render = 0;
  std::size_t lint_rules_reused = 0;
  bool hot_applied = false;

  /// The --explain rendering: mode, delta, then one line per plan
  /// decision and reuse tally.
  [[nodiscard]] std::string to_text() const;
};

struct PhaseTimings {
  /// Milliseconds per phase, keyed "load", "design", "compile", "render",
  /// "lint", "deploy", "measure". Values are derived from the obs phase spans
  /// (each entry is the duration of the span of the same name).
  std::map<std::string, double> ms;
  [[nodiscard]] double total() const;
  [[nodiscard]] std::string to_string() const;
};

/// Drives the full pipeline over an input topology graph. The individual
/// modules remain directly usable; Workflow wires the default
/// composition used by the examples and benchmarks.
class Workflow {
 public:
  explicit Workflow(WorkflowOptions options = {});
  ~Workflow();
  Workflow(Workflow&&) noexcept;
  Workflow& operator=(Workflow&&) noexcept;

  /// Phase 1: loads the input graph into the ANM ('input' + 'phy').
  Workflow& load(const graph::Graph& input);
  /// Phase 2: runs the design rules (OSPF, eBGP, iBGP, IP, services).
  Workflow& design();
  /// Phase 3: platform compilation into the Resource Database.
  Workflow& compile();
  /// Phase 4: template rendering into the configuration tree.
  Workflow& render();
  /// Phase 4.5: the static-analysis gate — lints the compiled NIDB and
  /// the builtin template sets. Respects options.lint: skipped when
  /// disabled, throws LintError past the threshold with fail_fast.
  Workflow& lint();
  /// Phase 5: archive/transfer/extract/boot on a simulated host; starts
  /// the emulated network.
  Workflow& deploy();
  /// Phase 6: post-deployment measurement — design-vs-running OSPF
  /// validation plus the loopback reachability matrix, timed like every
  /// other phase (the paper's §3.2 numbers previously left it untimed).
  Workflow& measure();

  /// All phases in order. Deployment faults do not throw: inspect ok(),
  /// errors(), and deploy_result() afterwards — a degraded deploy still
  /// leaves a (partial) network() to measure.
  Workflow& run(const graph::Graph& input);

  /// Attaches a fault-injection plan consulted by the emulation host
  /// during deploy(); pass nullptr to detach.
  Workflow& use_faults(deploy::FaultPlan* plan) {
    faults_ = plan;
    return *this;
  }

  /// Records telemetry (phase spans, per-rule/per-device spans, counters)
  /// into `registry` instead of obs::Registry::global(); pass nullptr to
  /// revert. Used by tests to golden-compare isolated exports.
  Workflow& use_telemetry(obs::Registry* registry) {
    obs_ = registry;
    return *this;
  }
  /// The registry this workflow records into.
  [[nodiscard]] obs::Registry& telemetry() const {
    return obs_ != nullptr ? *obs_ : obs::Registry::global();
  }

  /// Attaches run supervision (cooperative cancellation + a virtual-time
  /// deadline): every phase and sub-phase boundary polls it, so a cancel
  /// or an expired deadline interrupts the pipeline within one unit of
  /// work (one design rule, one rendered device, one lint rule, one BGP
  /// round, one deploy attempt) while completed phases' results — and
  /// their checkpoints — stay intact. Non-owning; pass nullptr to detach.
  Workflow& use_control(core::RunControl* control) {
    control_ = control;
    return *this;
  }
  [[nodiscard]] core::RunControl* control() const { return control_; }

  /// Enables crash-consistent checkpointing into `dir`: each phase's
  /// state is snapshotted (write-temp + fsync + rename) as it completes,
  /// and phases already recorded there — by a previous, possibly killed
  /// or cancelled, run over the same input and options — are restored
  /// instead of re-executed. A restored prefix plus a freshly executed
  /// suffix yields results byte-identical to an uninterrupted run (the
  /// emulated network is rehydrated by replaying its deterministic
  /// start). Obs counters: "ckpt.write" per snapshot,
  /// "ckpt.phase_restored" per phase skipped, "ckpt.resume" once per
  /// workflow that restored anything.
  Workflow& checkpoint_to(const std::string& dir);
  /// The attached store; nullptr when checkpointing is off.
  [[nodiscard]] CheckpointStore* checkpoint_store() { return ckpt_.get(); }
  /// Phases satisfied from the checkpoint by this run, pipeline order.
  [[nodiscard]] const std::vector<std::string>& restored_phases() const {
    return restored_;
  }

  // --- Incremental pipeline ---------------------------------------------
  /// Chains this run off a previous run's checkpoint directory. When the
  /// input and options match the baseline exactly, every phase restores
  /// from it ("warm"); when only the input differs and the baseline left
  /// a snapshot.json, the delta engine diffs the two snapshots and
  /// re-executes only dirty design rules, dirty devices (compile and
  /// render), and NIDB-reading lint rules ("partial") — reused work is
  /// rehydrated with telemetry parity, so results and run reports stay
  /// byte-identical to a from-scratch run. Obs counters:
  /// "delta.dirty_devices", "delta.reused", "incr.phase_reused",
  /// "incr.hot_apply".
  Workflow& incremental_from(const std::string& baseline_dir);
  /// Opt-in: when the input delta maps entirely onto scoped emulation
  /// actions (link cost changes, link removals), deploy() boots the
  /// baseline configuration and hot-applies the delta instead of a full
  /// redeploy. The resulting control plane converges to the new design;
  /// the deploy result is synthesized (see docs/incremental.md).
  Workflow& set_hot_apply(bool on) {
    hot_apply_ = on;
    return *this;
  }
  /// What the incremental machinery decided and did this run.
  [[nodiscard]] const IncrementalReport& incremental_report() const {
    return incr_;
  }
  /// True once compile() has produced (or restored) the NIDB.
  [[nodiscard]] bool has_nidb() const { return nidb_.has_value(); }

  // --- Flight-recorder / run-report surface -----------------------------
  /// Per-phase flight-recorder event slices: each completed phase's
  /// events (phase-relative timestamps), drained at phase end. Restored
  /// phases carry the slice their original execution persisted, so the
  /// map — and any report built from it — is identical whether a phase
  /// ran fresh or came from a checkpoint.
  [[nodiscard]] const std::map<std::string, std::vector<obs::RecorderEvent>>&
  phase_events() const {
    return phase_events_;
  }
  /// FNV-1a hash of the serialized input graph (set by load()); the same
  /// value checkpointing stores as "input_hash".
  [[nodiscard]] const std::string& input_hash() const { return input_hash_; }
  /// Stable hash of the workflow options (platform, iBGP mode, deploy
  /// and lint settings); the same value checkpointing stores as
  /// "options".
  [[nodiscard]] std::string options_signature() const;

  // --- Results ----------------------------------------------------------
  [[nodiscard]] anm::AbstractNetworkModel& anm() { return anm_; }
  [[nodiscard]] const anm::AbstractNetworkModel& anm() const { return anm_; }
  [[nodiscard]] const nidb::Nidb& nidb() const;
  [[nodiscard]] const render::ConfigTree& configs() const;
  [[nodiscard]] emulation::EmulatedNetwork& network();
  [[nodiscard]] const deploy::DeployResult& deploy_result() const;
  /// True when deploy ran and reported no faults (full, non-degraded
  /// success).
  [[nodiscard]] bool ok() const {
    return deploy_result_.success && deploy_result_.errors.empty();
  }
  /// Typed partial-failure report from deployment (empty before deploy
  /// and on clean runs).
  [[nodiscard]] const core::ErrorList& errors() const {
    return deploy_result_.errors;
  }
  [[nodiscard]] const PhaseTimings& timings() const { return timings_; }

  /// A measurement client bound to the running network.
  [[nodiscard]] measure::MeasurementClient measurement() const;
  /// Design-vs-running validation of OSPF adjacencies.
  [[nodiscard]] measure::ValidationReport validate_ospf() const;
  /// Results of the measure() phase; throws before measure() has run.
  [[nodiscard]] const measure::ValidationReport& measure_report() const;
  /// Pre-deployment static verification of the compiled NIDB (§8).
  [[nodiscard]] verify::Report static_check() const;
  /// Report recorded by the lint() phase; throws before lint() has run.
  [[nodiscard]] const verify::Report& lint_report() const;

 private:
  template <typename F>
  void timed(const std::string& phase, F&& f);

  // Checkpoint/resume plumbing (all no-ops when ckpt_ is null).
  void validate_checkpoint(const graph::Graph& input);
  bool try_restore(const std::string& phase);
  // Incremental plumbing (all no-ops when baseline_ is null).
  void prepare_incremental();
  /// Canonical option text hashed into the signatures; the deploy knobs
  /// are separable because they affect no phase before deploy().
  [[nodiscard]] std::string signature_text(bool include_deploy) const;
  /// Deploy-independent slice of the options signature: two runs with
  /// equal build signatures produce identical design/compile/render/lint
  /// results, even when deploy knobs (retry budgets, the per-run backoff
  /// seed campaigns inject) differ — so incremental reuse of the build
  /// phases stays sound across a campaign's per-run seeds.
  [[nodiscard]] std::string build_signature() const;
  [[nodiscard]] incremental::DesignSpec design_spec() const;
  /// Lint-option slice of the options signature; part of snapshot.json.
  [[nodiscard]] std::string lint_signature() const;
  /// Copies a reused design rule's baseline overlay (and, for rr-auto,
  /// the phy reflector attributes) instead of executing the rule.
  /// Returns false — run the rule — when the plan or baseline cannot
  /// vouch for it.
  bool copy_design_rule(const std::string& name);
  /// Persists snapshot.json next to the phase checkpoints once the rule
  /// projections and device signatures for this run are both known.
  void maybe_write_snapshot();
  /// Interruption path: drains the recorder's unsaved tail into
  /// flight.jsonl + run_report.partial.json next to the checkpoint
  /// (no-op without a store; never throws).
  void dump_flight_tail(const std::string& phase) noexcept;
  void restore_phase_state(const std::string& phase, const std::string& artifact);
  void begin_phase(const std::string& phase);
  void save_phase(const std::string& phase);
  [[nodiscard]] std::string phase_artifact(const std::string& phase) const;
  void rehydrate_network();

  WorkflowOptions options_;
  anm::AbstractNetworkModel anm_;
  std::optional<nidb::Nidb> nidb_;
  std::optional<render::ConfigTree> configs_;
  std::unique_ptr<deploy::EmulationHost> host_;
  deploy::FaultPlan* faults_ = nullptr;
  obs::Registry* obs_ = nullptr;  // nullptr = obs::Registry::global()
  deploy::DeployResult deploy_result_;
  std::optional<verify::Report> lint_report_;
  std::optional<measure::ValidationReport> measure_report_;
  PhaseTimings timings_;
  bool loaded_ = false;

  core::RunControl* control_ = nullptr;  // non-owning supervision
  std::unique_ptr<CheckpointStore> ckpt_;
  std::vector<std::string> restored_;
  std::map<std::string, std::vector<obs::RecorderEvent>> phase_events_;
  std::string input_hash_;
  /// Once any phase executes fresh, downstream checkpoint records are
  /// stale — restores stop and save_phase() invalidates them.
  bool fresh_executed_ = false;
  bool resume_counted_ = false;
  /// Measure-phase counter values, snapshotted so a restored measure
  /// phase can replay its registry contributions exactly.
  std::uint64_t measure_probes_ = 0;
  std::uint64_t measure_reachable_ = 0;

  // --- Incremental state -------------------------------------------------
  std::unique_ptr<CheckpointStore> baseline_;  // incremental_from() source
  bool incr_warm_ = false;     // baseline input+options match: full restore
  bool incr_partial_ = false;  // options match, input differs: plan reuse
  bool hot_apply_ = false;
  std::optional<incremental::Snapshot> base_snap_;
  incremental::Snapshot cur_snap_;
  bool snap_has_rules_ = false;
  bool snap_has_sigs_ = false;
  bool incr_planned_devices_ = false;
  bool incr_planned_lint_ = false;
  std::optional<anm::AbstractNetworkModel> baseline_anm_;
  std::optional<nidb::Nidb> baseline_nidb_;
  std::optional<render::ConfigTree> baseline_configs_;
  std::optional<verify::Report> baseline_lint_;
  IncrementalReport incr_;
};

}  // namespace autonet::core

#include "verify/rules.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "nidb/value.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "verify/index.hpp"

namespace autonet::verify {

void Emitter::emit(std::string device, std::string message, std::string path) {
  Finding f;
  f.severity = severity_;
  f.code = info_->id;
  f.device = std::move(device);
  f.message = std::move(message);
  f.path = std::move(path);
  f.origin = info_->origin;
  report_->findings.push_back(std::move(f));
  ++emitted_;
}

void RuleRegistry::add(Rule rule) {
  auto [it, inserted] = by_id_.emplace(rule.info.id, rules_.size());
  if (!inserted) {
    throw std::invalid_argument("duplicate lint rule id '" + rule.info.id + "'");
  }
  rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::find(std::string_view id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &rules_[it->second];
}

const RuleRegistry& RuleRegistry::builtin() {
  static const RuleRegistry registry = [] {
    RuleRegistry r;
    register_nidb_rules(r);
    register_signaling_rules(r);
    register_template_rules(r);
    return r;
  }();
  return registry;
}

bool LintOptions::rule_enabled(std::string_view id) const {
  auto it = enabled.find(id);
  return it == enabled.end() ? true : it->second;
}

Severity LintOptions::severity_for(const RuleInfo& info) const {
  auto it = severity.find(info.id);
  return it == severity.end() ? info.default_severity : it->second;
}

bool LintOptions::should_fail(const Report& report) const {
  if (report.error_count() > 0) return true;
  return fail_on_warning && report.warning_count() > 0;
}

void LintOptions::merge(const LintOptions& other) {
  for (const auto& [id, on] : other.enabled) enabled[id] = on;
  for (const auto& [id, sev] : other.severity) severity[id] = sev;
  fail_on_warning = fail_on_warning || other.fail_on_warning;
}

namespace {

Severity parse_severity(const std::string& word, int line) {
  if (word == "error") return Severity::kError;
  if (word == "warning" || word == "warn") return Severity::kWarning;
  throw std::runtime_error("lint config line " + std::to_string(line) +
                           ": unknown severity '" + word + "'");
}

}  // namespace

LintOptions LintOptions::parse_config(std::string_view text) {
  LintOptions opts;
  std::istringstream in{std::string(text)};
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    std::istringstream words(raw);
    std::string keyword;
    if (!(words >> keyword) || keyword.front() == '#') continue;
    std::string arg;
    if (keyword == "disable" || keyword == "enable") {
      if (!(words >> arg)) {
        throw std::runtime_error("lint config line " + std::to_string(line) +
                                 ": '" + keyword + "' needs a rule id");
      }
      opts.enabled[arg] = keyword == "enable";
    } else if (keyword == "severity") {
      std::string level;
      if (!(words >> arg >> level)) {
        throw std::runtime_error("lint config line " + std::to_string(line) +
                                 ": usage: severity <rule-id> error|warning");
      }
      opts.severity[arg] = parse_severity(level, line);
    } else if (keyword == "fail-on") {
      if (!(words >> arg)) {
        throw std::runtime_error("lint config line " + std::to_string(line) +
                                 ": usage: fail-on error|warning");
      }
      opts.fail_on_warning = parse_severity(arg, line) == Severity::kWarning;
    } else {
      throw std::runtime_error("lint config line " + std::to_string(line) +
                               ": unknown directive '" + keyword + "'");
    }
    std::string extra;
    if (words >> extra) {
      throw std::runtime_error("lint config line " + std::to_string(line) +
                               ": trailing token '" + extra + "'");
    }
  }
  return opts;
}

LintOptions LintOptions::load_config_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read lint config " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_config(ss.str());
}

Report run_lint(const LintInput& input, const LintOptions& options,
                const RuleRegistry& registry, core::RunControl* control) {
  Report report;
  std::optional<detail::NidbIndex> index;
  if (input.nidb != nullptr) index = detail::NidbIndex::build(*input.nidb);

  RuleContext ctx;
  ctx.input = &input;
  ctx.index = index ? &*index : nullptr;

  obs::Registry& obs = obs::Registry::current();
  auto scope = obs.scope("lint");
  for (const Rule& rule : registry.rules()) {
    core::checkpoint(control, "lint." + rule.info.id);
    if (!options.rule_enabled(rule.info.id)) continue;
    if (rule.needs_nidb && input.nidb == nullptr) continue;
    if (rule.needs_templates && input.templates == nullptr &&
        input.template_files.empty()) {
      continue;
    }
    obs::Span span(obs, "lint." + rule.info.id);
    Emitter emitter(rule.info, options.severity_for(rule.info), report);
    rule.run(ctx, emitter);
    span.arg("findings", std::to_string(emitter.emitted()));
    scope.counter("rules_run").inc();
    // Verdict severity mirrors the findings: clean rules are routine,
    // warning findings warn, error findings flag the event red.
    obs::Severity verdict = obs::Severity::kInfo;
    if (emitter.emitted() > 0) {
      scope.counter("findings").inc(emitter.emitted());
      scope.counter(emitter.severity() == Severity::kError ? "errors" : "warnings")
          .inc(emitter.emitted());
      verdict = emitter.severity() == Severity::kError ? obs::Severity::kError
                                                       : obs::Severity::kWarning;
    }
    obs::record("lint", verdict, rule.info.id,
                {{"findings", std::to_string(emitter.emitted())}});
  }
  report.finalize();
  return report;
}

std::string to_sarif(const Report& report, const RuleRegistry& registry) {
  using nidb::Array;
  using nidb::Object;
  using nidb::Value;

  Object driver;
  driver["name"] = "autonet-lint";
  driver["informationUri"] = "https://example.org/autonet/docs/static_analysis";
  driver["version"] = "1.0.0";
  Array rules;
  for (const Rule& rule : registry.rules()) {
    Object r;
    r["id"] = rule.info.id;
    Object desc;
    desc["text"] = rule.info.description;
    r["shortDescription"] = Value(std::move(desc));
    Object props;
    props["category"] = rule.info.category;
    if (!rule.info.origin.empty()) props["origin"] = rule.info.origin;
    r["properties"] = Value(std::move(props));
    Object config;
    config["level"] = std::string(severity_name(rule.info.default_severity));
    r["defaultConfiguration"] = Value(std::move(config));
    rules.emplace_back(std::move(r));
  }
  driver["rules"] = Value(std::move(rules));

  Array results;
  for (const Finding& f : report.findings) {
    Object result;
    result["ruleId"] = f.code;
    result["level"] = std::string(severity_name(f.severity));
    Object message;
    message["text"] = f.message;
    result["message"] = Value(std::move(message));
    if (!f.device.empty() || !f.path.empty()) {
      Object logical;
      if (!f.device.empty()) logical["name"] = f.device;
      logical["fullyQualifiedName"] =
          f.device.empty() ? f.path
                           : (f.path.empty() ? f.device : f.device + "." + f.path);
      Object location;
      location["logicalLocations"] = Value(Array{Value(std::move(logical))});
      result["locations"] = Value(Array{Value(std::move(location))});
    }
    if (!f.origin.empty()) {
      Object props;
      props["origin"] = f.origin;
      result["properties"] = Value(std::move(props));
    }
    results.emplace_back(std::move(result));
  }

  Object tool;
  tool["driver"] = Value(std::move(driver));
  Object run;
  run["tool"] = Value(std::move(tool));
  run["results"] = Value(std::move(results));
  Object doc;
  doc["$schema"] = "https://json.schemastore.org/sarif-2.1.0.json";
  doc["version"] = "2.1.0";
  doc["runs"] = Value(Array{Value(std::move(run))});
  return Value(std::move(doc)).to_json(true);
}

}  // namespace autonet::verify

#include "verify/rules.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <fstream>
#include <future>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "nidb/value.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "verify/analysis/cache.hpp"
#include "verify/analysis/workspace.hpp"
#include "verify/index.hpp"

namespace autonet::verify {

void Emitter::emit(std::string device, std::string message, std::string path) {
  Finding f;
  f.severity = severity_;
  f.code = info_->id;
  f.device = std::move(device);
  f.message = std::move(message);
  f.path = std::move(path);
  f.origin = info_->origin;
  report_->findings.push_back(std::move(f));
  ++emitted_;
}

void RuleRegistry::add(Rule rule) {
  auto [it, inserted] = by_id_.emplace(rule.info.id, rules_.size());
  if (!inserted) {
    throw std::invalid_argument("duplicate lint rule id '" + rule.info.id + "'");
  }
  rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::find(std::string_view id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &rules_[it->second];
}

const RuleRegistry& RuleRegistry::builtin() {
  static const RuleRegistry registry = [] {
    RuleRegistry r;
    register_nidb_rules(r);
    register_signaling_rules(r);
    register_template_rules(r);
    return r;
  }();
  return registry;
}

const RuleRegistry& RuleRegistry::with_analysis() {
  static const RuleRegistry registry = [] {
    RuleRegistry r;
    register_nidb_rules(r);
    register_signaling_rules(r);
    register_template_rules(r);
    register_analysis_rules(r);
    return r;
  }();
  return registry;
}

bool LintOptions::rule_enabled(std::string_view id) const {
  auto it = enabled.find(id);
  return it == enabled.end() ? true : it->second;
}

Severity LintOptions::severity_for(const RuleInfo& info) const {
  auto it = severity.find(info.id);
  return it == severity.end() ? info.default_severity : it->second;
}

bool LintOptions::should_fail(const Report& report) const {
  if (report.error_count() > 0) return true;
  return fail_on_warning && report.warning_count() > 0;
}

void LintOptions::merge(const LintOptions& other) {
  for (const auto& [id, on] : other.enabled) enabled[id] = on;
  for (const auto& [id, sev] : other.severity) severity[id] = sev;
  fail_on_warning = fail_on_warning || other.fail_on_warning;
}

namespace {

/// "file.autonetlint:3: " when a source name is known, the legacy
/// "lint config line 3: " otherwise.
std::string config_at(const std::string& source, int line) {
  if (source.empty()) return "lint config line " + std::to_string(line) + ": ";
  return source + ":" + std::to_string(line) + ": ";
}

Severity parse_severity(const std::string& word, const std::string& source,
                        int line) {
  if (word == "error") return Severity::kError;
  if (word == "warning" || word == "warn") return Severity::kWarning;
  throw std::runtime_error(config_at(source, line) + "unknown severity '" +
                           word + "'");
}

}  // namespace

LintOptions LintOptions::parse_config(std::string_view text,
                                      const std::string& source) {
  LintOptions opts;
  std::istringstream in{std::string(text)};
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    std::istringstream words(raw);
    std::string keyword;
    if (!(words >> keyword) || keyword.front() == '#') continue;
    std::string arg;
    if (keyword == "disable" || keyword == "enable") {
      if (!(words >> arg)) {
        throw std::runtime_error(config_at(source, line) + "'" + keyword +
                                 "' needs a rule id");
      }
      opts.enabled[arg] = keyword == "enable";
    } else if (keyword == "severity") {
      std::string level;
      if (!(words >> arg >> level)) {
        throw std::runtime_error(config_at(source, line) +
                                 "usage: severity <rule-id> error|warning");
      }
      opts.severity[arg] = parse_severity(level, source, line);
    } else if (keyword == "fail-on") {
      if (!(words >> arg)) {
        throw std::runtime_error(config_at(source, line) +
                                 "usage: fail-on error|warning");
      }
      opts.fail_on_warning = parse_severity(arg, source, line) == Severity::kWarning;
    } else {
      throw std::runtime_error(config_at(source, line) + "unknown directive '" +
                               keyword + "'");
    }
    std::string extra;
    if (words >> extra) {
      throw std::runtime_error(config_at(source, line) + "trailing token '" +
                               extra + "'");
    }
  }
  return opts;
}

LintOptions LintOptions::load_config_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read lint config " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_config(ss.str(), path);
}

Report run_lint(const LintInput& input, const LintOptions& options,
                const RuleRegistry& registry, core::RunControl* control,
                const LintReuse* reuse) {
  Report report;
  std::optional<detail::NidbIndex> index;
  std::optional<analysis::Workspace> workspace;
  if (input.nidb != nullptr) {
    index = detail::NidbIndex::build(*input.nidb);
    workspace.emplace(*input.nidb);
  }
  const analysis::FibCache::Stats fib_before = analysis::FibCache::global().stats();

  RuleContext ctx;
  ctx.input = &input;
  ctx.index = index ? &*index : nullptr;
  ctx.analysis = workspace ? &*workspace : nullptr;

  // Rule bodies run on a worker pool; everything observable — findings,
  // spans, counters, flight-recorder events — is merged here on the
  // calling thread in registry order, so the report and all telemetry
  // stay byte-deterministic regardless of scheduling. (The obs registry
  // is thread-local; workers must not touch it.)
  struct Task {
    const Rule* rule = nullptr;
    Severity severity = Severity::kError;
    Report partial;
    std::size_t emitted = 0;
    std::exception_ptr error;
    std::promise<void> done;
    std::future<void> finished;
  };
  std::vector<Task> tasks;
  std::set<const Rule*> replayed;
  for (const Rule& rule : registry.rules()) {
    if (!options.rule_enabled(rule.info.id)) continue;
    if (rule.needs_nidb && input.nidb == nullptr) continue;
    if (rule.needs_templates && input.templates == nullptr &&
        input.template_files.empty()) {
      continue;
    }
    // Template-family rules see only the template sets; when the caller
    // vouches those are unchanged, the baseline's findings are this
    // run's findings (incremental pipeline).
    if (reuse != nullptr && reuse->baseline != nullptr &&
        rule.needs_templates && !rule.needs_nidb) {
      replayed.insert(&rule);
      continue;
    }
    Task task;
    task.rule = &rule;
    task.severity = options.severity_for(rule.info);
    tasks.push_back(std::move(task));
  }
  for (Task& task : tasks) task.finished = task.done.get_future();

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> abort{false};
  auto work = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      Task& task = tasks[i];
      Emitter emitter(task.rule->info, task.severity, task.partial);
      try {
        task.rule->run(ctx, emitter);
      } catch (...) {
        task.error = std::current_exception();
      }
      task.emitted = emitter.emitted();
      task.done.set_value();
    }
  };
  std::size_t workers =
      options.jobs != 0 ? options.jobs : std::thread::hardware_concurrency();
  workers = std::clamp<std::size_t>(workers, 1,
                                    std::max<std::size_t>(tasks.size(), 1));
  workers = std::min<std::size_t>(workers, 8);
  std::vector<std::thread> pool;
  struct Joiner {
    std::vector<std::thread>* pool;
    std::atomic<bool>* abort;
    ~Joiner() {
      abort->store(true, std::memory_order_relaxed);
      for (std::thread& t : *pool) t.join();
    }
  } joiner{&pool, &abort};
  if (!tasks.empty()) {
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(work);
  }

  obs::Registry& obs = obs::Registry::current();
  auto scope = obs.scope("lint");
  std::size_t next_task = 0;
  for (const Rule& rule : registry.rules()) {
    core::checkpoint(control, "lint." + rule.info.id);
    if (replayed.contains(&rule)) {
      // Replay with the exact telemetry shape of a fresh run: same span,
      // same counters, same flight-recorder record.
      obs::Span span(obs, "lint." + rule.info.id);
      std::vector<Finding> hydrated;
      for (const Finding& f : reuse->baseline->findings) {
        if (f.code == rule.info.id) hydrated.push_back(f);
      }
      span.arg("findings", std::to_string(hydrated.size()));
      scope.counter("rules_run").inc();
      const Severity sev = options.severity_for(rule.info);
      obs::Severity verdict = obs::Severity::kInfo;
      if (!hydrated.empty()) {
        scope.counter("findings").inc(hydrated.size());
        scope.counter(sev == Severity::kError ? "errors" : "warnings")
            .inc(hydrated.size());
        verdict = sev == Severity::kError ? obs::Severity::kError
                                          : obs::Severity::kWarning;
      }
      obs::record("lint", verdict, rule.info.id,
                  {{"findings", std::to_string(hydrated.size())}});
      for (Finding& finding : hydrated) {
        report.findings.push_back(std::move(finding));
      }
      if (reuse->reused_out != nullptr) ++*reuse->reused_out;
      continue;
    }
    if (next_task >= tasks.size() || tasks[next_task].rule != &rule) continue;
    Task& task = tasks[next_task++];
    obs::Span span(obs, "lint." + rule.info.id);
    task.finished.wait();
    if (task.error) std::rethrow_exception(task.error);
    span.arg("findings", std::to_string(task.emitted));
    scope.counter("rules_run").inc();
    // Verdict severity mirrors the findings: clean rules are routine,
    // warning findings warn, error findings flag the event red.
    obs::Severity verdict = obs::Severity::kInfo;
    if (task.emitted > 0) {
      scope.counter("findings").inc(task.emitted);
      scope.counter(task.severity == Severity::kError ? "errors" : "warnings")
          .inc(task.emitted);
      verdict = task.severity == Severity::kError ? obs::Severity::kError
                                                  : obs::Severity::kWarning;
    }
    obs::record("lint", verdict, rule.info.id,
                {{"findings", std::to_string(task.emitted)}});
    for (Finding& finding : task.partial.findings) {
      report.findings.push_back(std::move(finding));
    }
  }

  // Publish the analysis work counters (main thread — workers only
  // bumped the workspace's atomics). Gated on actual work so runs
  // without analysis rules emit byte-identical telemetry to before.
  if (workspace) {
    const analysis::Stats stats = workspace->stats();
    if (stats.fib_builds > 0 || stats.fib_cache_hits > 0 ||
        stats.whatif_scenarios > 0) {
      auto analysis_scope = obs.scope("analysis");
      analysis_scope.counter("fib_builds").inc(stats.fib_builds);
      analysis_scope.counter("fib_cache_hits").inc(stats.fib_cache_hits);
      analysis_scope.counter("spf_runs").inc(stats.spf_runs);
      analysis_scope.counter("bgp_rounds").inc(stats.bgp_rounds);
      analysis_scope.counter("whatif_scenarios").inc(stats.whatif_scenarios);
      obs::record("analysis", obs::Severity::kInfo, "predicted_fibs",
                  {{"fib_builds", std::to_string(stats.fib_builds)},
                   {"cache_hits", std::to_string(stats.fib_cache_hits)},
                   {"whatif_scenarios", std::to_string(stats.whatif_scenarios)}});
    }
    // FibCache traffic this run, as deltas of the process-global totals.
    // Concurrent campaign runs share the cache, so these are advisory —
    // counters never enter run reports.
    const analysis::FibCache::Stats fib_after =
        analysis::FibCache::global().stats();
    // Saturating deltas: a concurrent FibCache::clear() resets totals.
    auto delta = [](std::uint64_t now, std::uint64_t then) {
      return now >= then ? now - then : now;
    };
    const std::uint64_t hits = delta(fib_after.hits, fib_before.hits);
    const std::uint64_t misses = delta(fib_after.misses, fib_before.misses);
    const std::uint64_t evictions = delta(fib_after.evictions, fib_before.evictions);
    if (hits + misses + evictions > 0) {
      auto fib_scope = obs.scope("fibcache");
      fib_scope.counter("hit").inc(hits);
      fib_scope.counter("miss").inc(misses);
      fib_scope.counter("evict").inc(evictions);
    }
  }
  report.finalize();
  return report;
}

std::string to_sarif(const Report& report, const RuleRegistry& registry) {
  using nidb::Array;
  using nidb::Object;
  using nidb::Value;

  Object driver;
  driver["name"] = "autonet-lint";
  driver["informationUri"] = "https://example.org/autonet/docs/static_analysis";
  driver["version"] = "1.0.0";
  Array rules;
  for (const Rule& rule : registry.rules()) {
    Object r;
    r["id"] = rule.info.id;
    Object desc;
    desc["text"] = rule.info.description;
    r["shortDescription"] = Value(std::move(desc));
    Object props;
    props["category"] = rule.info.category;
    if (!rule.info.origin.empty()) props["origin"] = rule.info.origin;
    r["properties"] = Value(std::move(props));
    Object config;
    config["level"] = std::string(severity_name(rule.info.default_severity));
    r["defaultConfiguration"] = Value(std::move(config));
    rules.emplace_back(std::move(r));
  }
  driver["rules"] = Value(std::move(rules));

  Array results;
  for (const Finding& f : report.findings) {
    Object result;
    result["ruleId"] = f.code;
    result["level"] = std::string(severity_name(f.severity));
    Object message;
    message["text"] = f.message;
    result["message"] = Value(std::move(message));
    if (!f.device.empty() || !f.path.empty()) {
      Object logical;
      if (!f.device.empty()) logical["name"] = f.device;
      logical["fullyQualifiedName"] =
          f.device.empty() ? f.path
                           : (f.path.empty() ? f.device : f.device + "." + f.path);
      Object location;
      location["logicalLocations"] = Value(Array{Value(std::move(logical))});
      result["locations"] = Value(Array{Value(std::move(location))});
    }
    if (!f.origin.empty()) {
      Object props;
      props["origin"] = f.origin;
      result["properties"] = Value(std::move(props));
    }
    results.emplace_back(std::move(result));
  }

  Object tool;
  tool["driver"] = Value(std::move(driver));
  Object run;
  run["tool"] = Value(std::move(tool));
  run["results"] = Value(std::move(results));
  Object doc;
  doc["$schema"] = "https://json.schemastore.org/sarif-2.1.0.json";
  doc["version"] = "2.1.0";
  doc["runs"] = Value(Array{Value(std::move(run))});
  return Value(std::move(doc)).to_json(true);
}

}  // namespace autonet::verify

// Control-plane signaling analysis: statically predicts whether the iBGP
// signaling graph distributes routes to every router in each AS
// (full-mesh or route-reflector topologies, modelling the RFC 4456
// reflection rules), detects reflector cluster loops, flags iBGP
// sessions whose loopback next hop the IGP cannot resolve, and checks
// that eBGP peers share a collision domain.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "addressing/ipv4.hpp"
#include "verify/index.hpp"
#include "verify/rules.hpp"

namespace autonet::verify {

using addressing::Ipv4Addr;
using addressing::Ipv4Prefix;
using detail::NidbIndex;

using detail::IbgpView;

namespace {

/// RFC 4456 propagation: which routers receive a route originated at
/// `source`, given reflection semantics. A reflector forwards routes
/// learned from a client to everyone and routes learned from a
/// non-client to its clients only; an ordinary router never forwards.
std::set<std::string> ibgp_reach(const IbgpView& view, const std::string& source) {
  enum How : int { kFromClient = 0, kFromNonClient = 1 };
  std::set<std::pair<std::string, int>> visited;
  std::set<std::string> reached;
  std::deque<std::pair<std::string, int>> queue;

  auto is_client = [&](const std::string& of, const std::string& peer) {
    auto it = view.clients_of.find(of);
    return it != view.clients_of.end() && it->second.contains(peer);
  };
  auto deliver = [&](const std::string& to, const std::string& from) {
    const int how = is_client(to, from) ? kFromClient : kFromNonClient;
    if (visited.insert({to, how}).second) {
      reached.insert(to);
      queue.emplace_back(to, how);
    }
  };

  // The origin advertises to all of its peers.
  if (auto it = view.sessions.find(source); it != view.sessions.end()) {
    for (const auto& peer : it->second) deliver(peer, source);
  }
  while (!queue.empty()) {
    auto [router, how] = queue.front();
    queue.pop_front();
    auto clients = view.clients_of.find(router);
    const bool reflector = clients != view.clients_of.end() && !clients->second.empty();
    if (!reflector) continue;  // ordinary iBGP speakers do not forward
    auto peers = view.sessions.find(router);
    if (peers == view.sessions.end()) continue;
    for (const auto& peer : peers->second) {
      if (peer == source) continue;
      // Client routes reflect to everyone; non-client routes to clients.
      if (how == kFromClient || clients->second.contains(peer)) {
        deliver(peer, router);
      }
    }
  }
  reached.erase(source);
  return reached;
}

void check_ibgp_partition(const RuleContext& ctx, Emitter& out) {
  const IbgpView& view = ctx.index->ibgp;
  const std::string& mode = ctx.index->ibgp_mode;
  for (const auto& [asn, members] : view.members) {
    if (members.size() < 2) continue;
    for (const auto& source : members) {
      const std::set<std::string> reached = ibgp_reach(view, source);
      std::string missing;
      for (const auto& member : members) {
        if (member == source || reached.contains(member)) continue;
        missing += (missing.empty() ? "" : ", ") + member;
      }
      if (!missing.empty()) {
        out.emit(source,
                 "iBGP signaling in AS" + std::to_string(asn) +
                     (mode.empty() ? "" : " (" + mode + ")") + ": routes from " +
                     source + " do not reach: " + missing,
                 "bgp.ibgp_neighbors");
      }
    }
  }
}

void check_rr_cluster_loop(const RuleContext& ctx, Emitter& out) {
  const IbgpView& view = ctx.index->ibgp;
  // Cycle detection over the reflector -> client digraph; a loop means
  // reflected routes can circulate between clusters forever.
  enum Color { kWhite, kGrey, kBlack };
  std::map<std::string, Color> color;
  std::vector<std::string> stack;
  std::set<std::string> reported;

  auto dfs = [&](auto&& self, const std::string& node) -> void {
    color[node] = kGrey;
    stack.push_back(node);
    auto edges = view.clients_of.find(node);
    if (edges != view.clients_of.end()) {
      for (const auto& next : edges->second) {
        auto c = color.find(next);
        if (c != color.end() && c->second == kGrey) {
          // Found a loop: report it anchored at its smallest member so
          // the same cycle is emitted exactly once.
          auto start = std::find(stack.begin(), stack.end(), next);
          std::string anchor = *std::min_element(start, stack.end());
          if (reported.insert(anchor).second) {
            std::string cycle;
            for (auto it = start; it != stack.end(); ++it) cycle += *it + " -> ";
            cycle += next;
            out.emit(anchor, "route-reflector cluster loop: " + cycle,
                     "bgp.ibgp_neighbors");
          }
        } else if (c == color.end() || c->second == kWhite) {
          self(self, next);
        }
      }
    }
    stack.pop_back();
    color[node] = kBlack;
  };
  for (const auto& [node, clients] : view.clients_of) {
    if (color.find(node) == color.end() || color[node] == kWhite) dfs(dfs, node);
  }
}

void check_ibgp_nexthop(const RuleContext& ctx, Emitter& out) {
  const NidbIndex& index = *ctx.index;
  for (const auto& n : index.neighbors) {
    if (!n.ibgp || n.neighbor_ip.empty()) continue;
    auto owner = index.address_owner.find(n.neighbor_ip);
    if (owner == index.address_owner.end()) continue;
    const std::string& peer = owner->second;
    auto as_a = index.device_asn.find(n.device);
    auto as_b = index.device_asn.find(peer);
    if (as_a == index.device_asn.end() || as_b == index.device_asn.end() ||
        as_a->second != as_b->second) {
      continue;
    }
    // Only reason about next-hop resolution when this device runs an
    // IGP; without one there is no coverage to check against.
    auto own_igp = index.ospf_covered.find(n.device);
    if (own_igp == index.ospf_covered.end() || own_igp->second.empty()) continue;

    auto addr = Ipv4Addr::parse(n.neighbor_ip);
    if (!addr) continue;
    bool resolvable = false;
    // Directly connected: the loopback sits inside a subnet we attach to.
    for (const auto& iface : index.interfaces) {
      if (iface.device != n.device) continue;
      if (auto p = Ipv4Prefix::parse(iface.subnet); p && p->contains(*addr)) {
        resolvable = true;
        break;
      }
    }
    // Advertised by the peer's IGP process.
    if (!resolvable) {
      auto peer_igp = index.ospf_covered.find(peer);
      if (peer_igp != index.ospf_covered.end()) {
        for (const auto& network : peer_igp->second) {
          if (auto p = Ipv4Prefix::parse(network); p && p->contains(*addr)) {
            resolvable = true;
            break;
          }
        }
      }
    }
    if (!resolvable) {
      out.emit(n.device,
               "iBGP neighbor " + n.neighbor_ip + " (" + peer +
                   ") is unresolvable: " + peer +
                   " does not advertise it into the IGP and it is not on a "
                   "connected subnet",
               n.path());
    }
  }
}

void check_ebgp_adjacency(const RuleContext& ctx, Emitter& out) {
  const NidbIndex& index = *ctx.index;
  for (const auto& n : index.neighbors) {
    if (n.ibgp || n.multihop || n.neighbor_ip.empty()) continue;
    auto owner = index.address_owner.find(n.neighbor_ip);
    if (owner == index.address_owner.end()) continue;  // bgp-unknown-peer
    auto addr = Ipv4Addr::parse(n.neighbor_ip);
    if (!addr) continue;
    bool adjacent = false;
    for (const auto& iface : index.interfaces) {
      if (iface.device != n.device) continue;
      if (auto p = Ipv4Prefix::parse(iface.subnet); p && p->contains(*addr)) {
        adjacent = true;
        break;
      }
    }
    if (!adjacent) {
      out.emit(n.device,
               "eBGP neighbor " + n.neighbor_ip + " (" + owner->second +
                   ") is on no collision domain shared with " + n.device,
               n.path());
    }
  }
}

Rule signaling_rule(std::string id, std::string description, std::string origin,
                    void (*fn)(const RuleContext&, Emitter&)) {
  Rule rule;
  rule.info = {std::move(id), "signaling", Severity::kError,
               std::move(description), std::move(origin)};
  rule.run = fn;
  rule.needs_nidb = true;
  return rule;
}

}  // namespace

void register_signaling_rules(RuleRegistry& registry) {
  registry.add(signaling_rule(
      "ibgp-partition",
      "the iBGP signaling graph fails to distribute routes to every router "
      "in an AS under RFC 4456 reflection semantics",
      "design.ibgp", check_ibgp_partition));
  registry.add(signaling_rule(
      "rr-cluster-loop",
      "route-reflector client edges form a cycle, so reflected routes can "
      "circulate between clusters",
      "design.ibgp", check_rr_cluster_loop));
  registry.add(signaling_rule(
      "ibgp-nexthop-unresolved",
      "an iBGP session targets a loopback the IGP does not cover, so the "
      "session and learned next hops cannot resolve",
      "design.ibgp", check_ibgp_nexthop));
  registry.add(signaling_rule(
      "ebgp-peer-not-adjacent",
      "an eBGP neighbor address is outside every collision domain the "
      "device attaches to",
      "design.ebgp", check_ebgp_adjacency));
}

}  // namespace autonet::verify

// The symbolic control-plane model behind `autonet analyze`: compiles
// the NIDB straight into per-router configurations (no rendering, no
// emulation boot) and derives predicted FIBs offline — link-state SPF
// per OSPF area, the full iBGP/eBGP decision process, connected routes,
// and admin-distance arbitration. The algorithms deliberately mirror
// src/emulation/ semantics step for step so `--cross-check` can use the
// emulation as a differential oracle; only the *inputs* differ (NIDB
// records here, rendered-and-reparsed configs there).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "addressing/ipv4.hpp"
#include "emulation/router.hpp"
#include "nidb/nidb.hpp"

namespace autonet::verify::analysis {

/// A point-to-point or LAN link: one collision-domain subnet shared by
/// at least two routers. The unit of what-if failure enumeration.
struct Link {
  std::string a;  // lexicographically first member
  std::string b;  // second member (representative on LANs)
  addressing::Ipv4Prefix subnet;
  /// Every router attached to the subnet, sorted.
  std::vector<std::string> members;
};

/// Immutable network model lifted from the NIDB device records. Safe to
/// share read-only across analysis worker threads.
class Model {
 public:
  [[nodiscard]] static Model from_nidb(const nidb::Nidb& nidb);

  [[nodiscard]] const std::vector<emulation::RouterConfig>& routers() const {
    return configs_;
  }
  [[nodiscard]] std::size_t size() const { return configs_.size(); }
  [[nodiscard]] const emulation::RouterConfig* router(std::string_view name) const;
  [[nodiscard]] std::optional<std::size_t> index_of(std::string_view name) const;
  /// Which router owns this address (interface or loopback)?
  [[nodiscard]] std::optional<std::string> owner_of(addressing::Ipv4Addr addr) const;
  [[nodiscard]] const std::map<std::uint32_t, std::size_t>& by_address() const {
    return by_address_;
  }
  /// Failure-enumerable links: subnets attached to >= 2 routers, in
  /// deterministic (subnet) order.
  [[nodiscard]] std::vector<Link> links() const;

 private:
  std::vector<emulation::RouterConfig> configs_;  // sorted by hostname
  std::map<std::string, std::size_t, std::less<>> by_name_;
  std::map<std::uint32_t, std::size_t> by_address_;
};

/// Predicted control-plane outcome for one (model, failure set) pair.
struct Prediction {
  /// fibs[i] belongs to Model::routers()[i].
  std::vector<std::vector<emulation::FibEntry>> fibs;
  /// igp_dist[r]: router index -> IGP distance (same semantics as the
  /// emulation's igp_dist_).
  std::vector<std::map<std::size_t, double>> igp_dist;
  bool bgp_converged = false;
  bool bgp_oscillating = false;
  std::size_t bgp_rounds = 0;
  std::size_t bgp_sessions = 0;
  std::size_t spf_runs = 0;
};

/// Derives the predicted FIBs with the given subnets administratively
/// down. Pure function of its arguments; thread-safe.
[[nodiscard]] Prediction predict(const Model& model,
                                 const std::set<addressing::Ipv4Prefix>& failed_subnets = {},
                                 std::size_t max_bgp_rounds = 128);

/// Longest-prefix match over one predicted FIB (ties: lowest admin
/// distance, then metric) — VirtualRouter::lookup over a plain vector.
[[nodiscard]] const emulation::FibEntry* lookup(
    const std::vector<emulation::FibEntry>& fib, addressing::Ipv4Addr dst);

struct PathHop {
  addressing::Ipv4Addr address;
  std::string router;
};

/// A predicted forwarding path, hop semantics identical to the
/// emulation's traceroute.
struct Path {
  bool reached = false;
  /// TTL exhausted: the predicted FIBs forward in a cycle.
  bool looped = false;
  /// Router whose FIB dropped the packet when !reached && !looped; equal
  /// to the source router when the source itself had no route.
  std::string dropped_at;
  std::vector<PathHop> hops;
};

/// Walks the predicted FIBs from `src_router` towards `dst`.
[[nodiscard]] Path trace(const Model& model, const Prediction& prediction,
                         std::string_view src_router, addressing::Ipv4Addr dst,
                         int max_ttl = 30);

/// Traces to a router's loopback (first interface when it has none).
[[nodiscard]] Path trace_to_router(const Model& model, const Prediction& prediction,
                                   std::string_view src_router,
                                   std::string_view dst_router, int max_ttl = 30);

/// The router sequence a path visits, starting at `src`.
[[nodiscard]] std::vector<std::string> router_sequence(std::string_view src,
                                                       const Path& path);

}  // namespace autonet::verify::analysis

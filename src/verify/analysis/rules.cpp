// The "analysis" rule family: semantic checks over predicted FIBs.
// Unlike the structural nidb/signaling/template families these rules
// reason about where traffic actually goes — all-pairs reachability,
// forwarding loops, blackholes, path asymmetry, and static k=1
// link-failure what-if. Registered via RuleRegistry::with_analysis(),
// not builtin(): they are opt-in (autonet analyze, or the workflow
// gate's `analysis` flag) because they judge outcomes, not config shape.
#include <algorithm>
#include <atomic>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "verify/analysis/workspace.hpp"
#include "verify/rules.hpp"

namespace autonet::verify {
namespace {

using analysis::Link;
using analysis::Model;
using analysis::Path;
using analysis::Prediction;
using analysis::Workspace;

Rule analysis_rule(std::string id, std::string description, Severity severity,
                   std::function<void(const RuleContext&, Emitter&)> run) {
  Rule rule;
  rule.info.id = std::move(id);
  rule.info.category = "analysis";
  rule.info.default_severity = severity;
  rule.info.description = std::move(description);
  rule.info.origin = "analysis.fib";
  rule.run = std::move(run);
  rule.needs_nidb = true;
  return rule;
}

/// Joins up to `cap` items with ", ", appending "… (+N more)" past the cap.
std::string join_capped(const std::vector<std::string>& items, std::size_t cap) {
  std::string out;
  for (std::size_t i = 0; i < items.size() && i < cap; ++i) {
    if (i > 0) out += ", ";
    out += items[i];
  }
  if (items.size() > cap) {
    out += "… (+" + std::to_string(items.size() - cap) + " more)";
  }
  return out;
}

void check_unreachable(const RuleContext& ctx, Emitter& out) {
  const Workspace& ws = *ctx.analysis;
  const Model& model = ws.model();
  const auto& paths = ws.baseline_paths();
  const auto& routers = model.routers();
  for (std::size_t s = 0; s < model.size(); ++s) {
    std::vector<std::string> missing;
    for (std::size_t d = 0; d < model.size(); ++d) {
      if (s == d) continue;
      const Path& path = paths[s][d];
      if (path.reached || path.looped) continue;
      if (path.dropped_at == routers[s].hostname) {
        missing.push_back(routers[d].hostname);
      }
    }
    if (missing.empty()) continue;
    out.emit(routers[s].hostname,
             "no predicted route to " + std::to_string(missing.size()) +
                 " router(s): " + join_capped(missing, 5),
             "fib");
  }
}

void check_blackhole(const RuleContext& ctx, Emitter& out) {
  const Workspace& ws = *ctx.analysis;
  const Model& model = ws.model();
  const auto& paths = ws.baseline_paths();
  const auto& routers = model.routers();

  // Transit drops: the source had a route, but a router along the
  // predicted path has none and silently discards the traffic.
  std::map<std::string, std::vector<std::string>> drops;
  for (std::size_t s = 0; s < model.size(); ++s) {
    for (std::size_t d = 0; d < model.size(); ++d) {
      if (s == d) continue;
      const Path& path = paths[s][d];
      if (path.reached || path.looped) continue;
      if (path.dropped_at.empty() || path.dropped_at == routers[s].hostname) {
        continue;
      }
      drops[path.dropped_at].push_back(routers[s].hostname + "->" +
                                       routers[d].hostname);
    }
  }
  for (const auto& [dropper, pairs] : drops) {
    out.emit(dropper,
             "predicted blackhole: drops traffic for " +
                 std::to_string(pairs.size()) + " pair(s): " +
                 join_capped(pairs, 5),
             "fib");
  }

  // Origination blackholes: a router advertises a BGP prefix it has no
  // route into and owns no address under — attracted traffic dies here.
  auto prediction = ws.baseline();
  for (std::size_t r = 0; r < model.size(); ++r) {
    const auto& cfg = routers[r];
    for (const auto& advertised : cfg.bgp_networks) {
      bool owns = false;
      if (cfg.loopback && advertised.contains(cfg.loopback->address)) owns = true;
      for (const auto& iface : cfg.interfaces) {
        if (advertised.contains(iface.address.address)) owns = true;
      }
      if (owns) continue;
      bool routed = false;
      for (const auto& entry : prediction->fibs[r]) {
        if (advertised.contains(entry.prefix) ||
            entry.prefix.contains(advertised)) {
          routed = true;
          break;
        }
      }
      if (routed) continue;
      out.emit(cfg.hostname,
               "advertises " + advertised.to_string() +
                   " but has no route into it: attracted traffic is "
                   "blackholed",
               "bgp.networks");
    }
  }
}

void check_forwarding_loop(const RuleContext& ctx, Emitter& out) {
  const Workspace& ws = *ctx.analysis;
  const Model& model = ws.model();
  const auto& paths = ws.baseline_paths();
  const auto& routers = model.routers();
  // canonical cycle key -> (lead router, message)
  std::map<std::string, std::pair<std::string, std::string>> cycles;
  for (std::size_t s = 0; s < model.size(); ++s) {
    for (std::size_t d = 0; d < model.size(); ++d) {
      if (s == d || !paths[s][d].looped) continue;
      const auto sequence =
          analysis::router_sequence(routers[s].hostname, paths[s][d]);
      // First repeated router delimits the cycle.
      std::map<std::string, std::size_t> first_seen;
      std::vector<std::string> cycle;
      for (std::size_t i = 0; i < sequence.size(); ++i) {
        auto [it, inserted] = first_seen.emplace(sequence[i], i);
        if (inserted) continue;
        cycle.assign(sequence.begin() + static_cast<std::ptrdiff_t>(it->second),
                     sequence.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        break;
      }
      if (cycle.empty()) continue;  // TTL ran out on a long simple path
      // Canonicalise: rotate so the smallest name leads, so the same
      // physical loop found from different pairs dedups to one finding.
      auto min_it = std::min_element(cycle.begin(), cycle.end() - 1);
      std::vector<std::string> canon(min_it, cycle.end() - 1);
      canon.insert(canon.end(), cycle.begin(), min_it);
      canon.push_back(canon.front());
      std::string key;
      std::string shown;
      for (const auto& hop : canon) {
        key += hop + "|";
        if (!shown.empty()) shown += " -> ";
        shown += hop;
      }
      cycles.emplace(key,
                     std::make_pair(canon.front(),
                                    "predicted forwarding loop " + shown +
                                        " (first seen tracing " +
                                        routers[s].hostname + " -> " +
                                        routers[d].hostname + ")"));
    }
  }
  for (const auto& [key, finding] : cycles) {
    (void)key;
    out.emit(finding.first, finding.second, "fib");
  }
}

void check_asymmetric(const RuleContext& ctx, Emitter& out) {
  const Workspace& ws = *ctx.analysis;
  const Model& model = ws.model();
  const auto& paths = ws.baseline_paths();
  const auto& routers = model.routers();
  // One aggregated finding per source router (ITZ-scale models have
  // hundreds of thousands of asymmetric pairs; per-pair findings would
  // swamp the report), with the first pair spelled out as an example.
  for (std::size_t s = 0; s < model.size(); ++s) {
    std::vector<std::string> peers;
    std::string example;
    for (std::size_t d = s + 1; d < model.size(); ++d) {
      const Path& forward = paths[s][d];
      const Path& reverse = paths[d][s];
      if (!forward.reached || !reverse.reached) continue;
      auto fwd = analysis::router_sequence(routers[s].hostname, forward);
      auto rev = analysis::router_sequence(routers[d].hostname, reverse);
      std::reverse(rev.begin(), rev.end());
      if (fwd == rev) continue;
      peers.push_back(routers[d].hostname);
      if (example.empty()) {
        std::string fwd_s;
        std::string rev_s;
        for (const auto& hop : fwd) {
          if (!fwd_s.empty()) fwd_s += " -> ";
          fwd_s += hop;
        }
        for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
          if (!rev_s.empty()) rev_s += " -> ";
          rev_s += *it;
        }
        example = "e.g. forward " + fwd_s + ", reverse " + rev_s;
      }
    }
    if (peers.empty()) continue;
    out.emit(routers[s].hostname,
             "asymmetric predicted paths with " + std::to_string(peers.size()) +
                 " router(s): " + join_capped(peers, 5) + "; " + example,
             "fib");
  }
}

void check_whatif(const RuleContext& ctx, Emitter& out) {
  const Workspace& ws = *ctx.analysis;
  const Model& model = ws.model();
  const auto& baseline_paths = ws.baseline_paths();
  const auto& routers = model.routers();
  const std::vector<Link> links = model.links();
  if (links.empty()) return;

  // Pairs reachable in the intact design; only their loss is a finding.
  std::vector<std::pair<std::size_t, std::size_t>> reachable;
  for (std::size_t s = 0; s < model.size(); ++s) {
    for (std::size_t d = 0; d < model.size(); ++d) {
      if (s != d && baseline_paths[s][d].reached) reachable.emplace_back(s, d);
    }
  }
  if (reachable.empty()) return;

  // Enumeration bound: the sweep costs one re-prediction plus
  // |reachable| re-traces per link, so ITZ-scale models (the
  // 1158-router NREN generator) would take minutes. Links are
  // enumerated in deterministic sorted order until the trace budget is
  // spent; past the budget the remaining links are not evaluated. The
  // bound is documented in docs/static_analysis.md.
  constexpr std::size_t kTraceBudget = 500'000;
  const std::size_t considered =
      std::min(links.size(), kTraceBudget / reachable.size());
  if (considered == 0) return;

  // Evaluate scenarios in a scoped worker batch (Workspace::whatif is
  // thread-safe); merge results by scenario index so the emitted
  // findings are deterministic regardless of scheduling.
  std::vector<std::vector<std::string>> lost(considered);
  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= considered) return;
      auto prediction = ws.whatif({links[i].subnet});
      for (const auto& [s, d] : reachable) {
        const Path path = analysis::trace_to_router(
            model, *prediction, routers[s].hostname, routers[d].hostname);
        if (!path.reached) {
          lost[i].push_back(routers[s].hostname + "->" + routers[d].hostname);
        }
      }
    }
  };
  const std::size_t workers = std::clamp<std::size_t>(
      std::thread::hardware_concurrency(), 1,
      std::min<std::size_t>(considered, 8));
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < considered; ++i) {
    if (lost[i].empty()) continue;
    out.emit(links[i].a,
             "failure of link " + links[i].a + "<->" + links[i].b + " (" +
                 links[i].subnet.to_string() + ") loses predicted "
                 "reachability for " + std::to_string(lost[i].size()) +
                 " pair(s): " + join_capped(lost[i], 5),
             links[i].subnet.to_string());
  }
}

}  // namespace

void register_analysis_rules(RuleRegistry& registry) {
  {
    Rule rule = analysis_rule(
        "predicted-unreachable",
        "Router has no predicted route to another router's loopback",
        Severity::kError, check_unreachable);
    rule.info.origin = "analysis.reachability";
    registry.add(std::move(rule));
  }
  registry.add(analysis_rule(
      "predicted-blackhole",
      "Predicted FIBs drop traffic in transit or attract traffic into a "
      "prefix with no underlying route",
      Severity::kError, check_blackhole));
  registry.add(analysis_rule(
      "forwarding-loop",
      "Predicted FIBs forward traffic in a cycle (TTL exhaustion)",
      Severity::kError, check_forwarding_loop));
  {
    Rule rule = analysis_rule(
        "asymmetric-path",
        "Forward and reverse predicted paths between two routers differ",
        Severity::kWarning, check_asymmetric);
    rule.info.origin = "analysis.path";
    registry.add(std::move(rule));
  }
  {
    Rule rule = analysis_rule(
        "whatif-link-failure",
        "Single-link failure loses predicted reachability for some pair",
        Severity::kWarning, check_whatif);
    rule.info.origin = "analysis.whatif";
    registry.add(std::move(rule));
  }
}

}  // namespace autonet::verify

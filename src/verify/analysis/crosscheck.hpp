// Differential testing between the static analyzer and the emulation:
// boots the emulated network from the same NIDB (via its rendered
// configs, exercising the full render -> parse path) and asserts the
// predicted traceroutes match the emulated ones hop for hop. A
// divergence is a bug in one of the two layers — this is the
// correctness oracle for both.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nidb/nidb.hpp"
#include "render/config_tree.hpp"
#include "verify/analysis/model.hpp"

namespace autonet::verify::analysis {

struct Divergence {
  std::string src;
  std::string dst;
  std::string detail;
};

struct CrossCheckResult {
  std::size_t pairs = 0;  // ordered router pairs compared
  std::vector<Divergence> divergences;
  [[nodiscard]] bool clean() const { return divergences.empty(); }
};

/// Compares predicted vs. emulated traceroutes for every ordered router
/// pair. `configs` must be the rendered tree for `nidb` (the emulation
/// boots from it; the prediction never looks at it).
[[nodiscard]] CrossCheckResult cross_check(const nidb::Nidb& nidb,
                                           const render::ConfigTree& configs,
                                           std::size_t max_bgp_rounds = 128);

}  // namespace autonet::verify::analysis

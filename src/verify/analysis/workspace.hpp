// Shared state for one analysis run: the symbolic model, the baseline
// prediction, the all-pairs path matrix, and what-if predictions, each
// computed lazily and exactly once no matter how many rule threads ask.
// Deliberately obs-free — the obs registry is thread-local, so all
// telemetry is published by the engine on the main thread from the
// stats() snapshot after the rules finish.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "verify/analysis/cache.hpp"
#include "verify/analysis/model.hpp"

namespace autonet::verify::analysis {

/// Work counters for one analysis run (snapshot, plain values).
struct Stats {
  std::size_t fib_builds = 0;        // predictions computed (cache misses)
  std::size_t fib_cache_hits = 0;    // predictions served from the cache
  std::size_t spf_runs = 0;          // Dijkstra invocations across builds
  std::size_t bgp_rounds = 0;        // BGP propagation rounds across builds
  std::size_t whatif_scenarios = 0;  // failure scenarios evaluated
};

class Workspace {
 public:
  explicit Workspace(const nidb::Nidb& nidb) : nidb_(&nidb) {}
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The symbolic model, built on first use.
  const Model& model() const;
  /// FNV-1a content hash of the NIDB backing this workspace.
  std::uint64_t content_hash() const;
  /// The no-failures prediction, via the global FibCache.
  std::shared_ptr<const Prediction> baseline() const;
  /// Prediction with `failed_subnets` administratively down.
  std::shared_ptr<const Prediction> whatif(
      const std::set<addressing::Ipv4Prefix>& failed_subnets) const;
  /// All-pairs loopback-to-loopback paths over the baseline prediction;
  /// paths()[src][dst] indexed like Model::routers(). Diagonal entries
  /// are default-constructed.
  const std::vector<std::vector<Path>>& baseline_paths() const;

  [[nodiscard]] Stats stats() const;

 private:
  std::shared_ptr<const Prediction> predict_cached(
      const std::set<addressing::Ipv4Prefix>& failed_subnets) const;

  const nidb::Nidb* nidb_;
  mutable std::once_flag model_once_;
  mutable std::once_flag baseline_once_;
  mutable std::once_flag paths_once_;
  mutable Model model_;
  mutable std::uint64_t hash_ = 0;
  mutable std::shared_ptr<const Prediction> baseline_;
  mutable std::vector<std::vector<Path>> paths_;

  mutable std::atomic<std::size_t> fib_builds_{0};
  mutable std::atomic<std::size_t> fib_cache_hits_{0};
  mutable std::atomic<std::size_t> spf_runs_{0};
  mutable std::atomic<std::size_t> bgp_rounds_{0};
  mutable std::atomic<std::size_t> whatif_scenarios_{0};
};

}  // namespace autonet::verify::analysis

#include "verify/analysis/model.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <utility>

#include "nidb/value.hpp"

namespace autonet::verify::analysis {

using addressing::Ipv4Addr;
using addressing::Ipv4Interface;
using addressing::Ipv4Prefix;
using emulation::BgpNeighborConfig;
using emulation::BgpRoute;
using emulation::FibEntry;
using emulation::InterfaceConfig;
using emulation::OspfNetworkConfig;
using emulation::RouteSource;
using emulation::RouterConfig;
using nidb::Array;
using nidb::Value;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const std::string* find_string(const Value& v, std::string_view path) {
  const Value* f = v.find_path(path);
  return f != nullptr ? f->as_string() : nullptr;
}

std::int64_t find_int(const Value& v, std::string_view path, std::int64_t fallback) {
  const Value* f = v.find_path(path);
  if (f == nullptr) return fallback;
  return f->as_int().value_or(fallback);
}

std::optional<Ipv4Interface> parse_interface_addr(std::string_view with_len) {
  auto slash = with_len.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(with_len.substr(0, slash));
  auto prefix = Ipv4Prefix::parse(with_len);
  if (!addr || !prefix) return std::nullopt;
  return Ipv4Interface{*addr, *prefix};
}

/// VirtualRouter::router_id over a bare config: explicit, else loopback,
/// else highest interface address.
Ipv4Addr router_id(const RouterConfig& cfg) {
  if (cfg.router_id) return *cfg.router_id;
  if (cfg.loopback) return cfg.loopback->address;
  Ipv4Addr best;
  for (const auto& iface : cfg.interfaces) {
    best = std::max(best, iface.address.address);
  }
  return best;
}

/// VirtualRouter::ospf_covers: the first matching network statement wins.
bool ospf_covers(const RouterConfig& cfg, const Ipv4Prefix& subnet,
                 std::int64_t* area = nullptr) {
  if (!cfg.ospf_enabled) return false;
  for (const auto& net : cfg.ospf_networks) {
    if (net.network.contains(subnet)) {
      if (area != nullptr) *area = net.area;
      return true;
    }
  }
  return false;
}

bool owns_address(const RouterConfig& cfg, Ipv4Addr addr) {
  if (cfg.loopback && cfg.loopback->address == addr) return true;
  for (const auto& iface : cfg.interfaces) {
    if (iface.address.address == addr) return true;
  }
  return false;
}

/// The local address a router uses on a session to `peer_addr`
/// (emulation session_source).
Ipv4Addr session_source(const RouterConfig& cfg, Ipv4Addr peer_addr,
                        bool update_source_loopback) {
  if (!update_source_loopback) {
    for (const auto& iface : cfg.interfaces) {
      if (iface.address.prefix.contains(peer_addr)) return iface.address.address;
    }
  }
  if (cfg.loopback) return cfg.loopback->address;
  return cfg.interfaces.empty() ? Ipv4Addr{} : cfg.interfaces[0].address.address;
}

struct Adjacency {
  std::size_t to;
  double cost;
  std::string out_interface;
  Ipv4Addr next_hop;  // peer's interface address on the shared subnet
};

struct SpfResult {
  std::map<std::size_t, double> dist;
  std::map<std::size_t, const Adjacency*> first_hop;
};

SpfResult spf(std::size_t src,
              const std::map<std::size_t, std::vector<Adjacency>>& adj) {
  SpfResult out;
  out.dist[src] = 0;
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    auto du = out.dist.find(u);
    if (du != out.dist.end() && d > du->second) continue;
    auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (const auto& a : it->second) {
      double nd = d + a.cost;
      auto dv = out.dist.find(a.to);
      if (dv == out.dist.end() || nd < dv->second) {
        out.dist[a.to] = nd;
        out.first_hop[a.to] = u == src ? &a : out.first_hop[u];
        heap.emplace(nd, a.to);
      }
    }
  }
  return out;
}

struct SegmentMember {
  std::size_t router;
  std::size_t iface;
};
struct Segment {
  Ipv4Prefix subnet;
  std::vector<SegmentMember> members;
};

std::vector<Segment> build_segments(const std::vector<RouterConfig>& routers,
                                    const std::set<Ipv4Prefix>& failed_subnets) {
  std::map<Ipv4Prefix, std::vector<SegmentMember>> groups;
  for (std::size_t r = 0; r < routers.size(); ++r) {
    const RouterConfig& cfg = routers[r];
    for (std::size_t i = 0; i < cfg.interfaces.size(); ++i) {
      const Ipv4Prefix& subnet = cfg.interfaces[i].address.prefix;
      if (failed_subnets.contains(subnet)) continue;
      groups[subnet].push_back(SegmentMember{r, i});
    }
  }
  std::vector<Segment> segments;
  segments.reserve(groups.size());
  for (auto& [subnet, members] : groups) {
    segments.push_back(Segment{subnet, std::move(members)});
  }
  return segments;
}

}  // namespace

Model Model::from_nidb(const nidb::Nidb& nidb) {
  Model model;
  for (const nidb::DeviceRecord* rec : nidb.devices()) {
    const Value& d = rec->data;
    const std::string* type = find_string(d, "device_type");
    if (type == nullptr || *type != "router") continue;

    RouterConfig cfg;
    cfg.hostname = rec->name;
    if (const std::string* syntax = find_string(d, "syntax")) cfg.syntax = *syntax;
    if (const std::string* lo = find_string(d, "loopback")) {
      cfg.loopback = parse_interface_addr(*lo);
    }
    if (const Value* ifaces = d.find("interfaces")) {
      if (const Array* arr = ifaces->as_array()) {
        for (const Value& iface : *arr) {
          const std::string* id = iface.find("id") != nullptr
                                      ? iface.find("id")->as_string()
                                      : nullptr;
          const std::string* ip = iface.find("ip_address") != nullptr
                                      ? iface.find("ip_address")->as_string()
                                      : nullptr;
          const Value* len = iface.find("prefixlen");
          if (id == nullptr || ip == nullptr || len == nullptr) continue;
          auto parsed = parse_interface_addr(
              *ip + "/" + std::to_string(len->as_int().value_or(0)));
          if (!parsed) continue;
          InterfaceConfig ic;
          ic.id = *id;
          ic.address = *parsed;
          if (const Value* cost = iface.find("ospf_cost")) {
            ic.ospf_cost = cost->as_int().value_or(1);
          }
          cfg.interfaces.push_back(std::move(ic));
        }
      }
    }

    if (const Value* ospf = d.find("ospf")) {
      cfg.ospf_enabled = true;
      if (const std::string* rid = find_string(*ospf, "router_id")) {
        cfg.router_id = Ipv4Addr::parse(*rid);
      }
      if (const Value* links = ospf->find("ospf_links")) {
        if (const Array* arr = links->as_array()) {
          for (const Value& link : *arr) {
            const std::string* network = link.find("network") != nullptr
                                             ? link.find("network")->as_string()
                                             : nullptr;
            if (network == nullptr) continue;
            auto prefix = Ipv4Prefix::parse(*network);
            if (!prefix) continue;
            OspfNetworkConfig net;
            net.network = *prefix;
            if (const Value* area = link.find("area")) {
              net.area = area->as_int().value_or(0);
            }
            cfg.ospf_networks.push_back(net);
          }
        }
      }
    }

    if (const Value* bgp = d.find("bgp")) {
      cfg.bgp_enabled = true;
      cfg.asn = find_int(*bgp, "asn", find_int(d, "asn", 0));
      if (!cfg.router_id) {
        if (const std::string* rid = find_string(*bgp, "router_id")) {
          cfg.router_id = Ipv4Addr::parse(*rid);
        }
      }
      if (const Value* tiebreak = bgp->find("igp_tiebreak")) {
        cfg.igp_tiebreak = tiebreak->truthy();
      }
      if (const Value* networks = bgp->find("networks")) {
        if (const Array* arr = networks->as_array()) {
          for (const Value& network : *arr) {
            const std::string* s = network.as_string();
            if (s == nullptr) continue;
            if (auto prefix = Ipv4Prefix::parse(*s)) {
              cfg.bgp_networks.push_back(*prefix);
            }
          }
        }
      }
      for (const bool ibgp : {true, false}) {
        const Value* list =
            bgp->find(ibgp ? "ibgp_neighbors" : "ebgp_neighbors");
        const Array* arr = list != nullptr ? list->as_array() : nullptr;
        if (arr == nullptr) continue;
        for (const Value& n : *arr) {
          const std::string* ip = n.find("neighbor") != nullptr
                                      ? n.find("neighbor")->as_string()
                                      : nullptr;
          if (ip == nullptr) continue;
          auto addr = Ipv4Addr::parse(*ip);
          if (!addr) continue;
          BgpNeighborConfig nc;
          nc.neighbor = *addr;
          nc.remote_as = find_int(n, "remote_as", 0);
          if (ibgp) {
            const std::string* us = find_string(n, "update_source");
            nc.update_source_loopback = us != nullptr && !us->empty();
            if (const Value* nhs = n.find("next_hop_self")) {
              nc.next_hop_self = nhs->truthy();
            }
            if (const Value* rr = n.find("rr_client")) {
              nc.rr_client = rr->truthy();
            }
          } else {
            if (const Value* olo = n.find("only_local_out")) {
              nc.only_local_out = olo->truthy();
            }
            nc.local_pref_in = find_int(n, "local_pref_in", 0);
            nc.med_out = find_int(n, "med_out", -1);
          }
          cfg.bgp_neighbors.push_back(std::move(nc));
        }
      }
    } else {
      cfg.asn = find_int(d, "asn", 0);
    }
    model.configs_.push_back(std::move(cfg));
  }

  // nidb.devices() is name-sorted; keep that order and index it.
  for (std::size_t r = 0; r < model.configs_.size(); ++r) {
    const RouterConfig& cfg = model.configs_[r];
    model.by_name_[cfg.hostname] = r;
    if (cfg.loopback) model.by_address_[cfg.loopback->address.value()] = r;
    for (const auto& iface : cfg.interfaces) {
      model.by_address_[iface.address.address.value()] = r;
    }
  }
  return model;
}

const RouterConfig* Model::router(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &configs_[it->second];
}

std::optional<std::size_t> Model::index_of(std::string_view name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Model::owner_of(Ipv4Addr addr) const {
  auto it = by_address_.find(addr.value());
  if (it == by_address_.end()) return std::nullopt;
  return configs_[it->second].hostname;
}

std::vector<Link> Model::links() const {
  std::vector<Link> links;
  for (const Segment& segment : build_segments(configs_, {})) {
    std::set<std::string> names;
    for (const SegmentMember& m : segment.members) {
      names.insert(configs_[m.router].hostname);
    }
    if (names.size() < 2) continue;
    Link link;
    link.subnet = segment.subnet;
    link.members.assign(names.begin(), names.end());
    link.a = link.members[0];
    link.b = link.members[1];
    links.push_back(std::move(link));
  }
  return links;
}

// ---------------------------------------------------------------------------
// predict(): OSPF SPF per area, BGP decision process, FIB install. Every
// stage mirrors the corresponding src/emulation/ algorithm; divergence
// here is a bug that `autonet analyze --cross-check` exists to catch.
// ---------------------------------------------------------------------------

Prediction predict(const Model& model, const std::set<Ipv4Prefix>& failed_subnets,
                   std::size_t max_bgp_rounds) {
  const std::vector<RouterConfig>& routers = model.routers();
  const std::size_t n = routers.size();
  Prediction out;
  out.fibs.assign(n, {});
  out.igp_dist.assign(n, {});

  const std::vector<Segment> segments = build_segments(routers, failed_subnets);

  // --- OSPF: adjacency per area (both ends cover the subnet in the same
  // area), per-(router, area) SPF, inter-area routing through ABRs.
  std::map<std::int64_t, std::map<std::size_t, std::vector<Adjacency>>> area_adj;
  std::map<std::size_t, std::set<std::int64_t>> router_areas;
  for (const auto& segment : segments) {
    for (const auto& a : segment.members) {
      std::int64_t area_a = 0;
      if (!ospf_covers(routers[a.router], segment.subnet, &area_a)) continue;
      router_areas[a.router].insert(area_a);
      const auto& iface_a = routers[a.router].interfaces[a.iface];
      for (const auto& b : segment.members) {
        if (a.router == b.router) continue;
        std::int64_t area_b = 0;
        if (!ospf_covers(routers[b.router], segment.subnet, &area_b)) continue;
        if (area_a != area_b) continue;  // mismatched areas: no adjacency
        const auto& iface_b = routers[b.router].interfaces[b.iface];
        area_adj[area_a][a.router].push_back(
            {b.router, static_cast<double>(iface_a.ospf_cost), iface_a.id,
             iface_b.address.address});
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    const RouterConfig& cfg = routers[r];
    if (!cfg.ospf_enabled) continue;
    if (cfg.loopback) {
      std::int64_t area = 0;
      if (ospf_covers(cfg, cfg.loopback->prefix, &area)) {
        router_areas[r].insert(area);
      }
    }
  }

  std::map<std::pair<std::size_t, std::int64_t>, SpfResult> spf_of;
  for (const auto& [area, adj] : area_adj) {
    for (const auto& [r, list] : adj) {
      (void)list;
      ++out.spf_runs;
      spf_of[{r, area}] = spf(r, adj);
    }
  }
  auto spf_for = [&spf_of](std::size_t r, std::int64_t area) -> const SpfResult* {
    auto it = spf_of.find({r, area});
    return it == spf_of.end() ? nullptr : &it->second;
  };

  std::map<std::int64_t, std::vector<std::size_t>> abrs;
  for (const auto& [r, areas] : router_areas) {
    if (!areas.contains(0)) continue;
    for (std::int64_t area : areas) {
      if (area != 0) abrs[area].push_back(r);
    }
  }

  struct Advertised {
    std::size_t owner;
    Ipv4Prefix prefix;
    std::int64_t area;
  };
  std::vector<Advertised> prefixes;
  for (const auto& segment : segments) {
    std::set<std::pair<std::size_t, std::int64_t>> done;
    for (const auto& m : segment.members) {
      std::int64_t area = 0;
      if (!ospf_covers(routers[m.router], segment.subnet, &area)) continue;
      if (done.insert({m.router, area}).second) {
        prefixes.push_back({m.router, segment.subnet, area});
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    const RouterConfig& cfg = routers[r];
    std::int64_t area = 0;
    if (cfg.loopback && ospf_covers(cfg, cfg.loopback->prefix, &area)) {
      prefixes.push_back({r, cfg.loopback->prefix, area});
    }
  }

  auto intra_dist = [&](std::size_t r, std::int64_t area,
                        std::size_t d) -> std::pair<double, const Adjacency*> {
    if (r == d) return {0.0, nullptr};
    const SpfResult* result = spf_for(r, area);
    if (result == nullptr) return {kInf, nullptr};
    auto it = result->dist.find(d);
    if (it == result->dist.end()) return {kInf, nullptr};
    return {it->second, result->first_hop.at(d)};
  };

  for (std::size_t r = 0; r < n; ++r) {
    auto& fib = out.fibs[r];
    const RouterConfig& cfg = routers[r];
    for (const auto& iface : cfg.interfaces) {
      fib.push_back(FibEntry{iface.address.prefix, RouteSource::kConnected,
                             iface.id, std::nullopt, 0});
    }
    if (cfg.loopback) {
      fib.push_back(FibEntry{cfg.loopback->prefix, RouteSource::kConnected, "",
                             std::nullopt, 0});
    }
    if (!cfg.ospf_enabled) continue;
    const auto& my_areas = router_areas[r];

    struct Candidate {
      bool intra = false;
      double metric = kInf;
      const Adjacency* hop = nullptr;
    };
    std::map<Ipv4Prefix, Candidate> best;
    auto offer = [&best](const Ipv4Prefix& prefix, bool intra, double metric,
                         const Adjacency* hop) {
      if (metric == kInf || hop == nullptr) return;
      Candidate& cur = best[prefix];
      if ((intra && !cur.intra) || (intra == cur.intra && metric < cur.metric)) {
        cur = {intra, metric, hop};
      }
    };

    for (const auto& adv : prefixes) {
      if (adv.owner == r) continue;
      if (my_areas.contains(adv.area)) {
        auto [dist, hop] = intra_dist(r, adv.area, adv.owner);
        offer(adv.prefix, true, dist, hop);
      }
      if (adv.area != 0 || !my_areas.contains(0)) {
        const auto& target_abrs =
            adv.area == 0 ? std::vector<std::size_t>{adv.owner} : abrs[adv.area];
        for (std::size_t abr_b : target_abrs) {
          double remote = 0.0;
          if (abr_b != adv.owner) {
            remote = intra_dist(abr_b, adv.area, adv.owner).first;
          }
          if (remote == kInf) continue;
          if (my_areas.contains(0)) {
            auto [d0, hop] = intra_dist(r, 0, abr_b);
            offer(adv.prefix, false, d0 + remote, hop);
          } else {
            for (std::int64_t area : my_areas) {
              for (std::size_t abr_a : abrs[area]) {
                double backbone =
                    abr_a == abr_b ? 0.0 : intra_dist(abr_a, 0, abr_b).first;
                if (backbone == kInf) continue;
                auto [da, hop] = intra_dist(r, area, abr_a);
                offer(adv.prefix, false, da + backbone + remote, hop);
              }
            }
          }
        }
      }
    }

    for (const auto& [prefix, cand] : best) {
      bool connected = false;
      for (const auto& iface : cfg.interfaces) {
        if (iface.address.prefix == prefix) connected = true;
      }
      if (cfg.loopback && cfg.loopback->prefix == prefix) connected = true;
      if (connected) continue;
      fib.push_back(FibEntry{prefix, RouteSource::kOspf, cand.hop->out_interface,
                             cand.hop->next_hop, cand.metric});
    }

    for (std::size_t d = 0; d < n; ++d) {
      if (d == r) continue;
      double metric = kInf;
      const RouterConfig& dc = routers[d];
      if (dc.loopback) {
        auto it = best.find(dc.loopback->prefix);
        if (it != best.end()) metric = it->second.metric;
      }
      if (metric == kInf) {
        for (const auto& iface : dc.interfaces) {
          auto it = best.find(iface.address.prefix);
          if (it != best.end()) metric = std::min(metric, it->second.metric);
        }
      }
      if (metric != kInf) out.igp_dist[r][d] = metric;
    }
  }

  // --- BGP: sessions, propagation rounds, decision process, install.
  auto igp_metric_to = [&](std::size_t r, Ipv4Addr addr) -> double {
    auto owner = model.by_address().find(addr.value());
    if (owner == model.by_address().end()) return kInf;
    if (owner->second == r) return 0.0;
    const auto& dist = out.igp_dist[r];
    auto it = dist.find(owner->second);
    return it == dist.end() ? kInf : it->second;
  };

  struct Session {
    std::size_t local;
    std::size_t peer;
    Ipv4Addr local_addr;
    Ipv4Addr peer_addr;
    bool ebgp = false;
    bool peer_is_client = false;
    bool next_hop_self = false;
    bool only_local_out = false;
    std::int64_t med_out = -1;
  };
  std::vector<Session> sessions;
  for (std::size_t r = 0; r < n; ++r) {
    const RouterConfig& cfg = routers[r];
    if (!cfg.bgp_enabled) continue;
    for (const auto& neighbor : cfg.bgp_neighbors) {
      auto owner = model.by_address().find(neighbor.neighbor.value());
      if (owner == model.by_address().end()) continue;
      std::size_t peer = owner->second;
      if (peer == r) continue;
      const RouterConfig& pc = routers[peer];
      if (!pc.bgp_enabled) continue;
      bool matched = false;
      for (const auto& pn : pc.bgp_neighbors) {
        if (owns_address(cfg, pn.neighbor) && pn.remote_as == cfg.asn &&
            neighbor.remote_as == pc.asn) {
          matched = true;
          break;
        }
      }
      if (!matched) continue;
      Session s;
      s.local = r;
      s.peer = peer;
      s.peer_addr = neighbor.neighbor;
      s.local_addr =
          session_source(cfg, neighbor.neighbor, neighbor.update_source_loopback);
      s.ebgp = cfg.asn != pc.asn;
      s.peer_is_client = neighbor.rr_client;
      s.next_hop_self = neighbor.next_hop_self;
      s.only_local_out = neighbor.only_local_out;
      s.med_out = neighbor.med_out;
      bool reachable = false;
      for (const auto& iface : cfg.interfaces) {
        if (iface.address.prefix.contains(neighbor.neighbor) &&
            !failed_subnets.contains(iface.address.prefix)) {
          reachable = true;
          break;
        }
      }
      if (!reachable) reachable = igp_metric_to(r, neighbor.neighbor) != kInf;
      if (!reachable) continue;
      sessions.push_back(s);
    }
  }
  out.bgp_sessions = sessions.size();

  std::vector<std::vector<std::size_t>> sessions_of(n);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    sessions_of[sessions[i].local].push_back(i);
  }

  std::map<std::pair<std::size_t, std::uint32_t>, std::int64_t> pref_in;
  for (std::size_t r = 0; r < n; ++r) {
    for (const auto& neighbor : routers[r].bgp_neighbors) {
      if (neighbor.local_pref_in > 0) {
        pref_in[{r, neighbor.neighbor.value()}] = neighbor.local_pref_in;
      }
    }
  }

  using RibInKey = std::pair<std::string, std::uint32_t>;
  std::vector<std::map<RibInKey, BgpRoute>> rib_in(n);
  std::vector<std::map<std::string, BgpRoute>> bgp_best(n);
  for (std::size_t r = 0; r < n; ++r) {
    const RouterConfig& cfg = routers[r];
    for (const auto& prefix : cfg.bgp_networks) {
      BgpRoute route;
      route.prefix = prefix;
      route.next_hop = router_id(cfg);
      route.weight = 32768;
      route.local_originated = true;
      route.originator_id = router_id(cfg);
      rib_in[r][{prefix.to_string(), 0}] = route;
    }
  }

  auto better = [&](std::size_t r, const BgpRoute& a, const BgpRoute& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
    if (a.as_path.size() != b.as_path.size()) {
      return a.as_path.size() < b.as_path.size();
    }
    if (!a.as_path.empty() && !b.as_path.empty() &&
        a.as_path.front() == b.as_path.front() && a.med != b.med) {
      return a.med < b.med;
    }
    if (a.ebgp_learned != b.ebgp_learned) return a.ebgp_learned;
    if (routers[r].igp_tiebreak) {
      double ma = igp_metric_to(r, a.next_hop);
      double mb = igp_metric_to(r, b.next_hop);
      if (ma != mb) return ma < mb;
    }
    if (a.originator_id != b.originator_id) return a.originator_id < b.originator_id;
    return a.from_peer < b.from_peer;
  };

  auto select_best = [&](std::size_t r) {
    std::map<std::string, BgpRoute> best;
    for (const auto& [key, route] : rib_in[r]) {
      if (!route.local_originated) {
        bool resolvable = owns_address(routers[r], route.next_hop);
        if (!resolvable) {
          for (const auto& iface : routers[r].interfaces) {
            if (iface.address.prefix.contains(route.next_hop)) resolvable = true;
          }
        }
        if (!resolvable) resolvable = igp_metric_to(r, route.next_hop) != kInf;
        if (!resolvable) continue;
      }
      auto it = best.find(key.first);
      if (it == best.end() || better(r, route, it->second)) {
        best[key.first] = route;
      }
    }
    return best;
  };

  std::map<std::size_t, std::size_t> seen_states;
  for (std::size_t round = 1; round <= max_bgp_rounds; ++round) {
    bool changed = false;
    for (std::size_t r = 0; r < n; ++r) {
      if (!routers[r].bgp_enabled) continue;
      auto best = select_best(r);
      if (best == bgp_best[r] && round > 1) continue;

      for (const auto& [prefix, old_route] : bgp_best[r]) {
        (void)old_route;
        if (best.contains(prefix)) continue;
        for (std::size_t si : sessions_of[r]) {
          const Session& s = sessions[si];
          rib_in[s.peer].erase({prefix, s.local_addr.value()});
        }
        changed = true;
      }

      for (const auto& [prefix, route] : best) {
        const BgpRoute* previous = nullptr;
        auto prev_it = bgp_best[r].find(prefix);
        if (prev_it != bgp_best[r].end()) previous = &prev_it->second;
        const bool is_new = previous == nullptr || !(*previous == route);
        if (!is_new) continue;
        changed = true;
        for (std::size_t si : sessions_of[r]) {
          const Session& s = sessions[si];
          const auto rib_key = std::make_pair(prefix, s.local_addr.value());
          if (!route.local_originated && route.from_peer == s.peer_addr) {
            rib_in[s.peer].erase(rib_key);
            continue;
          }
          if (s.only_local_out && !route.local_originated) {
            rib_in[s.peer].erase(rib_key);
            continue;
          }
          bool advertise = false;
          BgpRoute adv = route;
          adv.from_peer = s.local_addr;
          adv.weight = 0;
          adv.local_originated = false;
          if (s.ebgp) {
            advertise = true;
            adv.as_path.insert(adv.as_path.begin(), routers[r].asn);
            adv.next_hop = s.local_addr;
            auto pref = pref_in.find({s.peer, s.local_addr.value()});
            adv.local_pref = pref == pref_in.end() ? 100 : pref->second;
            adv.med = s.med_out >= 0 ? s.med_out : 0;
            adv.originator_id = Ipv4Addr{};
            adv.cluster_list.clear();
            adv.ebgp_learned = true;
          } else {
            adv.ebgp_learned = false;
            if (route.local_originated || route.ebgp_learned) {
              advertise = true;
              if (s.next_hop_self || route.local_originated) {
                adv.next_hop = session_source(routers[r], s.peer_addr, true);
              }
              adv.originator_id = router_id(routers[r]);
            } else {
              const bool learned_from_client = [&]() {
                for (std::size_t lj : sessions_of[r]) {
                  const Session& ls = sessions[lj];
                  if (ls.peer_addr == route.from_peer) return ls.peer_is_client;
                }
                return false;
              }();
              advertise = learned_from_client || s.peer_is_client;
              if (advertise) {
                adv.cluster_list.push_back(router_id(routers[r]));
              }
            }
          }
          if (!advertise) {
            rib_in[s.peer].erase(rib_key);
            continue;
          }
          bool drop = false;
          if (s.ebgp) {
            for (auto as : adv.as_path) {
              if (as == routers[s.peer].asn) drop = true;
            }
          } else {
            const Ipv4Addr peer_id = router_id(routers[s.peer]);
            if (adv.originator_id == peer_id) drop = true;
            for (const auto& cluster : adv.cluster_list) {
              if (cluster == peer_id) drop = true;
            }
          }
          if (drop) {
            rib_in[s.peer].erase(rib_key);
          } else {
            rib_in[s.peer][rib_key] = adv;
          }
        }
      }
      bgp_best[r] = std::move(best);
    }

    out.bgp_rounds = round;
    if (!changed) {
      out.bgp_converged = true;
      break;
    }
    std::string state;
    for (std::size_t r = 0; r < n; ++r) {
      state += routers[r].hostname + "{";
      for (const auto& [prefix, route] : bgp_best[r]) {
        (void)prefix;
        state += route.fingerprint() + ";";
      }
      state += "}";
    }
    std::size_t h = std::hash<std::string>{}(state);
    auto [it, inserted] = seen_states.emplace(h, round);
    if (!inserted) {
      out.bgp_oscillating = true;
      break;
    }
  }

  // Install: resolve each selected route's next hop (directly connected
  // or recursively via a non-BGP route) and add the FIB entry.
  for (std::size_t r = 0; r < n; ++r) {
    auto& fib = out.fibs[r];
    for (const auto& [prefix_str, route] : bgp_best[r]) {
      (void)prefix_str;
      if (route.local_originated) continue;
      std::string out_interface;
      std::optional<Ipv4Addr> immediate;
      bool resolved = false;
      for (const auto& iface : routers[r].interfaces) {
        if (iface.address.prefix.contains(route.next_hop)) {
          out_interface = iface.id;
          immediate = route.next_hop;
          resolved = true;
          break;
        }
      }
      if (!resolved) {
        const FibEntry* via = lookup(fib, route.next_hop);
        if (via != nullptr && via->source != RouteSource::kEbgp &&
            via->source != RouteSource::kIbgp) {
          out_interface = via->out_interface;
          immediate = via->next_hop ? via->next_hop : route.next_hop;
          resolved = true;
        }
      }
      if (!resolved) continue;
      fib.push_back(FibEntry{
          route.prefix,
          route.ebgp_learned ? RouteSource::kEbgp : RouteSource::kIbgp,
          out_interface, immediate, static_cast<double>(route.as_path.size())});
    }
  }
  return out;
}

const FibEntry* lookup(const std::vector<FibEntry>& fib, Ipv4Addr dst) {
  const FibEntry* best = nullptr;
  for (const auto& entry : fib) {
    if (!entry.prefix.contains(dst)) continue;
    if (best == nullptr) {
      best = &entry;
      continue;
    }
    if (entry.prefix.length() != best->prefix.length()) {
      if (entry.prefix.length() > best->prefix.length()) best = &entry;
      continue;
    }
    const int ad_new = emulation::admin_distance(entry.source);
    const int ad_best = emulation::admin_distance(best->source);
    if (ad_new != ad_best) {
      if (ad_new < ad_best) best = &entry;
      continue;
    }
    if (entry.metric < best->metric) best = &entry;
  }
  return best;
}

Path trace(const Model& model, const Prediction& prediction,
           std::string_view src_router, Ipv4Addr dst, int max_ttl) {
  Path path;
  auto current = model.index_of(src_router);
  if (!current) {
    path.dropped_at = std::string(src_router);
    return path;
  }
  const auto& routers = model.routers();
  if (owns_address(routers[*current], dst)) {
    path.hops.push_back({dst, routers[*current].hostname});
    path.reached = true;
    return path;
  }
  for (int ttl = 0; ttl < max_ttl; ++ttl) {
    const FibEntry* route = lookup(prediction.fibs[*current], dst);
    if (route == nullptr) {
      path.dropped_at = routers[*current].hostname;
      return path;
    }
    std::optional<std::size_t> next;
    const Ipv4Addr hop_target = route->next_hop ? *route->next_hop : dst;
    auto owner = model.by_address().find(hop_target.value());
    if (owner != model.by_address().end()) next = owner->second;
    if (!next) {
      path.dropped_at = routers[*current].hostname;
      return path;
    }
    if (owns_address(routers[*next], dst)) {
      path.hops.push_back({dst, routers[*next].hostname});
      path.reached = true;
      return path;
    }
    path.hops.push_back({hop_target, routers[*next].hostname});
    current = next;
  }
  path.looped = true;  // TTL exceeded: forwarding cycle
  return path;
}

Path trace_to_router(const Model& model, const Prediction& prediction,
                     std::string_view src_router, std::string_view dst_router,
                     int max_ttl) {
  const RouterConfig* dst = model.router(dst_router);
  Path path;
  if (dst == nullptr) {
    path.dropped_at = std::string(src_router);
    return path;
  }
  Ipv4Addr target;
  if (dst->loopback) {
    target = dst->loopback->address;
  } else if (!dst->interfaces.empty()) {
    target = dst->interfaces[0].address.address;
  } else {
    path.dropped_at = std::string(src_router);
    return path;
  }
  return trace(model, prediction, src_router, target, max_ttl);
}

std::vector<std::string> router_sequence(std::string_view src, const Path& path) {
  std::vector<std::string> sequence;
  sequence.emplace_back(src);
  for (const PathHop& hop : path.hops) sequence.push_back(hop.router);
  return sequence;
}

}  // namespace autonet::verify::analysis

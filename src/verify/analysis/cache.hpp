// Predicted-FIB cache keyed by NIDB content hash (FNV-1a, the same
// scheme the checkpoint store uses), so repeated lint/analyze
// invocations and campaign runs over an unchanged design are
// incremental: the first caller computes, everyone else waits on the
// same future and reuses the result.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "verify/analysis/model.hpp"

namespace autonet::verify::analysis {

/// FNV-1a over the canonical NIDB JSON dump — identical content,
/// identical key, across processes.
[[nodiscard]] std::uint64_t nidb_content_hash(const nidb::Nidb& nidb);

/// Derives a what-if scenario key from the base NIDB hash and the set
/// of failed subnets.
[[nodiscard]] std::uint64_t whatif_key(
    std::uint64_t base, const std::set<addressing::Ipv4Prefix>& failed_subnets);

/// Process-wide prediction cache with compute-once semantics: for any
/// key, the compute callback runs exactly once no matter how many
/// threads race on it; the losers block on the winner's future. That
/// makes hit/miss counts deterministic for the obs counters.
class FibCache {
 public:
  static FibCache& global();

  /// Returns the prediction for `key`, invoking `compute` only if no
  /// other caller has. Sets `*hit` (when given) to whether the value
  /// was already present or in flight.
  std::shared_ptr<const Prediction> get(
      std::uint64_t key, const std::function<Prediction()>& compute,
      bool* hit = nullptr);

  void clear();
  [[nodiscard]] std::size_t size() const;

 private:
  static constexpr std::size_t kMaxEntries = 512;

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_future<std::shared_ptr<const Prediction>>>
      entries_;
};

}  // namespace autonet::verify::analysis

// Predicted-FIB cache keyed by NIDB content hash (FNV-1a, the same
// scheme the checkpoint store uses), so repeated lint/analyze
// invocations and campaign runs over an unchanged design are
// incremental: the first caller computes, everyone else waits on the
// same future and reuses the result.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "verify/analysis/model.hpp"

namespace autonet::verify::analysis {

/// FNV-1a over the canonical NIDB JSON dump — identical content,
/// identical key, across processes.
[[nodiscard]] std::uint64_t nidb_content_hash(const nidb::Nidb& nidb);

/// Derives a what-if scenario key from the base NIDB hash and the set
/// of failed subnets.
[[nodiscard]] std::uint64_t whatif_key(
    std::uint64_t base, const std::set<addressing::Ipv4Prefix>& failed_subnets);

/// Process-wide prediction cache with compute-once semantics: for any
/// key, the compute callback runs exactly once no matter how many
/// threads race on it; the losers block on the winner's future. That
/// makes hit/miss counts deterministic for the obs counters.
///
/// The cache is bounded: least-recently-used entries are evicted when
/// the entry budget (default 512, configurable via set_capacity) is
/// exceeded, so long campaign sweeps hold memory proportional to the
/// budget rather than to the number of distinct designs visited.
/// Evicting an in-flight entry is safe — waiters hold their own copy of
/// the shared future.
class FibCache {
 public:
  static FibCache& global();

  /// Returns the prediction for `key`, invoking `compute` only if no
  /// other caller has. Sets `*hit` (when given) to whether the value
  /// was already present or in flight.
  std::shared_ptr<const Prediction> get(
      std::uint64_t key, const std::function<Prediction()>& compute,
      bool* hit = nullptr);

  /// Cumulative hit/miss/eviction totals since process start (or the
  /// last clear()). Consumers publish deltas to the obs registry.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Sets the entry budget; trims immediately if over. A capacity of 0
  /// means "cache nothing" (every get computes and evicts itself).
  void set_capacity(std::size_t entries);
  [[nodiscard]] std::size_t capacity() const;

  void clear();
  [[nodiscard]] std::size_t size() const;

 private:
  static constexpr std::size_t kDefaultCapacity = 512;

  struct Slot {
    std::shared_future<std::shared_ptr<const Prediction>> future;
    std::list<std::uint64_t>::iterator lru;  // position in lru_
  };

  /// Drops LRU entries until size <= capacity. Caller holds mu_.
  void trim_locked();

  mutable std::mutex mu_;
  std::size_t capacity_ = kDefaultCapacity;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::map<std::uint64_t, Slot> entries_;
  Stats stats_;
};

}  // namespace autonet::verify::analysis

#include "verify/analysis/workspace.hpp"

namespace autonet::verify::analysis {

const Model& Workspace::model() const {
  std::call_once(model_once_, [this] {
    hash_ = nidb_content_hash(*nidb_);
    model_ = Model::from_nidb(*nidb_);
  });
  return model_;
}

std::uint64_t Workspace::content_hash() const {
  model();  // ensures hash_ is set
  return hash_;
}

std::shared_ptr<const Prediction> Workspace::predict_cached(
    const std::set<addressing::Ipv4Prefix>& failed_subnets) const {
  const Model& m = model();
  const std::uint64_t key = failed_subnets.empty()
                                ? content_hash()
                                : whatif_key(content_hash(), failed_subnets);
  bool hit = false;
  auto prediction = FibCache::global().get(
      key, [&] { return predict(m, failed_subnets); }, &hit);
  if (hit) {
    fib_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    fib_builds_.fetch_add(1, std::memory_order_relaxed);
    spf_runs_.fetch_add(prediction->spf_runs, std::memory_order_relaxed);
    bgp_rounds_.fetch_add(prediction->bgp_rounds, std::memory_order_relaxed);
  }
  return prediction;
}

std::shared_ptr<const Prediction> Workspace::baseline() const {
  std::call_once(baseline_once_, [this] { baseline_ = predict_cached({}); });
  return baseline_;
}

std::shared_ptr<const Prediction> Workspace::whatif(
    const std::set<addressing::Ipv4Prefix>& failed_subnets) const {
  whatif_scenarios_.fetch_add(1, std::memory_order_relaxed);
  return predict_cached(failed_subnets);
}

const std::vector<std::vector<Path>>& Workspace::baseline_paths() const {
  std::call_once(paths_once_, [this] {
    const Model& m = model();
    auto prediction = baseline();
    const std::size_t n = m.size();
    paths_.assign(n, std::vector<Path>(n));
    const auto& routers = m.routers();
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t d = 0; d < n; ++d) {
        if (s == d) continue;
        paths_[s][d] =
            trace_to_router(m, *prediction, routers[s].hostname,
                            routers[d].hostname);
      }
    }
  });
  return paths_;
}

Stats Workspace::stats() const {
  Stats out;
  out.fib_builds = fib_builds_.load(std::memory_order_relaxed);
  out.fib_cache_hits = fib_cache_hits_.load(std::memory_order_relaxed);
  out.spf_runs = spf_runs_.load(std::memory_order_relaxed);
  out.bgp_rounds = bgp_rounds_.load(std::memory_order_relaxed);
  out.whatif_scenarios = whatif_scenarios_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace autonet::verify::analysis

#include "verify/analysis/cache.hpp"

#include <string>

namespace autonet::verify::analysis {

namespace {

// FNV-1a 64-bit — byte-for-byte the same scheme as
// core::checkpoint_hash (not linked from here: autonet_core depends on
// autonet_verify, so the hash is restated rather than imported).
std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::uint64_t nidb_content_hash(const nidb::Nidb& nidb) {
  return fnv1a(nidb.to_json(false));
}

std::uint64_t whatif_key(std::uint64_t base,
                         const std::set<addressing::Ipv4Prefix>& failed_subnets) {
  std::string tail;
  for (const auto& subnet : failed_subnets) {
    tail += subnet.to_string();
    tail += '|';
  }
  // Mix the base hash in so the same failure set over different designs
  // never collides by construction of the tail alone.
  return base ^ (fnv1a(tail) + 0x9e3779b97f4a7c15ULL + (base << 6) + (base >> 2));
}

FibCache& FibCache::global() {
  static FibCache cache;
  return cache;
}

std::shared_ptr<const Prediction> FibCache::get(
    std::uint64_t key, const std::function<Prediction()>& compute, bool* hit) {
  std::promise<std::shared_ptr<const Prediction>> promise;
  std::shared_future<std::shared_ptr<const Prediction>> future;
  bool mine = false;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      future = it->second.future;
      lru_.splice(lru_.begin(), lru_, it->second.lru);  // bump to MRU
    } else {
      ++stats_.misses;
      future = promise.get_future().share();
      lru_.push_front(key);
      entries_.emplace(key, Slot{future, lru_.begin()});
      mine = true;
      trim_locked();
    }
  }
  if (hit != nullptr) *hit = !mine;
  if (mine) {
    try {
      promise.set_value(std::make_shared<const Prediction>(compute()));
    } catch (...) {
      // Propagate to every waiter, then drop the entry so a later call
      // can retry instead of re-observing a stale failure. The entry may
      // already be gone if trimming evicted it mid-compute.
      promise.set_exception(std::current_exception());
      std::lock_guard lock(mu_);
      if (auto it = entries_.find(key); it != entries_.end()) {
        lru_.erase(it->second.lru);
        entries_.erase(it);
      }
    }
  }
  return future.get();
}

void FibCache::trim_locked() {
  while (entries_.size() > capacity_ && !lru_.empty()) {
    auto victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

FibCache::Stats FibCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void FibCache::set_capacity(std::size_t entries) {
  std::lock_guard lock(mu_);
  capacity_ = entries;
  trim_locked();
}

std::size_t FibCache::capacity() const {
  std::lock_guard lock(mu_);
  return capacity_;
}

void FibCache::clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
  lru_.clear();
  stats_ = {};
}

std::size_t FibCache::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

}  // namespace autonet::verify::analysis

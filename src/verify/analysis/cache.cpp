#include "verify/analysis/cache.hpp"

#include <string>

namespace autonet::verify::analysis {

namespace {

// FNV-1a 64-bit — byte-for-byte the same scheme as
// core::checkpoint_hash (not linked from here: autonet_core depends on
// autonet_verify, so the hash is restated rather than imported).
std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::uint64_t nidb_content_hash(const nidb::Nidb& nidb) {
  return fnv1a(nidb.to_json(false));
}

std::uint64_t whatif_key(std::uint64_t base,
                         const std::set<addressing::Ipv4Prefix>& failed_subnets) {
  std::string tail;
  for (const auto& subnet : failed_subnets) {
    tail += subnet.to_string();
    tail += '|';
  }
  // Mix the base hash in so the same failure set over different designs
  // never collides by construction of the tail alone.
  return base ^ (fnv1a(tail) + 0x9e3779b97f4a7c15ULL + (base << 6) + (base >> 2));
}

FibCache& FibCache::global() {
  static FibCache cache;
  return cache;
}

std::shared_ptr<const Prediction> FibCache::get(
    std::uint64_t key, const std::function<Prediction()>& compute, bool* hit) {
  std::promise<std::shared_ptr<const Prediction>> promise;
  std::shared_future<std::shared_ptr<const Prediction>> future;
  bool mine = false;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      future = it->second;
    } else {
      if (entries_.size() >= kMaxEntries) entries_.clear();
      future = promise.get_future().share();
      entries_.emplace(key, future);
      mine = true;
    }
  }
  if (hit != nullptr) *hit = !mine;
  if (mine) {
    try {
      promise.set_value(std::make_shared<const Prediction>(compute()));
    } catch (...) {
      // Propagate to every waiter, then drop the entry so a later call
      // can retry instead of re-observing a stale failure.
      promise.set_exception(std::current_exception());
      std::lock_guard lock(mu_);
      entries_.erase(key);
    }
  }
  return future.get();
}

void FibCache::clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
}

std::size_t FibCache::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

}  // namespace autonet::verify::analysis

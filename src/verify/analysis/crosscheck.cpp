#include "verify/analysis/crosscheck.hpp"

#include "emulation/network.hpp"

namespace autonet::verify::analysis {

namespace {

std::string hop_text(addressing::Ipv4Addr addr, const std::string& router) {
  return addr.to_string() + " (" + router + ")";
}

}  // namespace

CrossCheckResult cross_check(const nidb::Nidb& nidb,
                             const render::ConfigTree& configs,
                             std::size_t max_bgp_rounds) {
  CrossCheckResult out;
  const Model model = Model::from_nidb(nidb);
  const Prediction prediction = predict(model, {}, max_bgp_rounds);

  emulation::EmulatedNetwork network =
      emulation::EmulatedNetwork::from_nidb(nidb, configs);
  network.start(max_bgp_rounds);

  const auto& routers = model.routers();
  for (std::size_t s = 0; s < model.size(); ++s) {
    for (std::size_t d = 0; d < model.size(); ++d) {
      if (s == d) continue;
      ++out.pairs;
      const std::string& src = routers[s].hostname;
      const std::string& dst = routers[d].hostname;
      const Path predicted = trace_to_router(model, prediction, src, dst);
      emulation::TracerouteResult emulated;
      try {
        emulated = network.traceroute(src, dst);
      } catch (const std::exception& e) {
        out.divergences.push_back(
            {src, dst, std::string("emulated traceroute failed: ") + e.what()});
        continue;
      }
      if (predicted.reached != emulated.reached) {
        out.divergences.push_back(
            {src, dst,
             "reached: predicted " + std::string(predicted.reached ? "yes" : "no") +
                 ", emulated " + (emulated.reached ? "yes" : "no")});
        continue;
      }
      if (predicted.hops.size() != emulated.hops.size()) {
        out.divergences.push_back(
            {src, dst,
             "hop count: predicted " + std::to_string(predicted.hops.size()) +
                 ", emulated " + std::to_string(emulated.hops.size())});
        continue;
      }
      for (std::size_t i = 0; i < predicted.hops.size(); ++i) {
        const PathHop& p = predicted.hops[i];
        const emulation::TracerouteHop& e = emulated.hops[i];
        if (p.address != e.address || p.router != e.router) {
          out.divergences.push_back(
              {src, dst,
               "hop " + std::to_string(i + 1) + ": predicted " +
                   hop_text(p.address, p.router) + ", emulated " +
                   hop_text(e.address, e.router)});
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace autonet::verify::analysis

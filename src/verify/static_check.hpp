// Pre-deployment static verification (paper §8: "Offline verification
// systems could be applied prior to deployment, applying static checking
// [NCGuard] ... Integrating pre- and post-deployment verification systems
// allows test-driven network development").
//
// The checker runs over the compiled Resource Database — after the design
// rules and compilers, before deployment — and reports consistency
// violations a misbehaving design rule, template edit, or manual NIDB
// tweak could introduce.
#pragma once

#include <string>
#include <vector>

#include "nidb/nidb.hpp"

namespace autonet::verify {

enum class Severity { kError, kWarning };

struct Finding {
  Severity severity = Severity::kError;
  /// Stable machine-readable code, e.g. "dup-address".
  std::string code;
  std::string device;  // primary offender ("" for network-wide findings)
  std::string message;
};

struct Report {
  std::vector<Finding> findings;

  [[nodiscard]] bool ok() const { return error_count() == 0; }
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;
  [[nodiscard]] std::string to_string() const;
};

/// All checks:
///  - dup-address:       an interface/loopback address used twice
///  - subnet-overlap:    two distinct collision-domain subnets overlap
///  - bgp-asym-session:  a neighbor statement without its reverse
///  - bgp-unknown-peer:  a neighbor address owned by no device
///  - bgp-wrong-as:      remote-as disagrees with the peer's AS
///  - ospf-area-mismatch:the two ends of a link configure different areas
///  - ospf-half-link:    only one end of an intra-AS link runs OSPF on it
///  - dup-hostname:      two devices share a sanitised hostname
///  - render-missing:    a device record lacks render attributes
[[nodiscard]] Report static_check(const nidb::Nidb& nidb);

}  // namespace autonet::verify

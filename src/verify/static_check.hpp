// Pre-deployment static verification (paper §8: "Offline verification
// systems could be applied prior to deployment, applying static checking
// [NCGuard] ... Integrating pre- and post-deployment verification systems
// allows test-driven network development").
//
// static_check() is the NIDB entry point kept for existing callers: it
// runs every registered rule that analyses the compiled Resource Database
// (the ported consistency checks plus the control-plane signaling
// analysis) through the pluggable engine in verify/rules.hpp.
#pragma once

#include "nidb/nidb.hpp"
#include "verify/report.hpp"
#include "verify/rules.hpp"

namespace autonet::verify {

/// Runs all NIDB-applicable built-in rules over the compiled database.
/// Equivalent to run_lint({.nidb = &nidb}, options).
[[nodiscard]] Report static_check(const nidb::Nidb& nidb,
                                  const LintOptions& options = {});

}  // namespace autonet::verify

// Internal to the verify engine: the shared gather pass over the NIDB.
// Built once per run_lint() invocation, then handed read-only to every
// rule, so adding a rule does not add another database walk.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "nidb/nidb.hpp"

namespace autonet::verify::detail {

struct InterfaceRef {
  std::string device;
  std::string ip;      // bare address
  std::string subnet;  // CIDR string
  std::size_t index = 0;  // position in the device's interfaces array
};

struct NeighborRef {
  std::string device;
  std::string neighbor_ip;  // bare address ("" when the statement is empty)
  std::int64_t remote_as = 0;
  bool ibgp = false;
  bool rr_client = false;  // this device treats the peer as an RR client
  bool multihop = false;   // session deliberately targets a non-adjacent
                           // address (e.g. C-BGP node-id peering)
  std::size_t index = 0;   // position in the neighbor array
  /// NIDB attribute path of the statement, e.g. "bgp.ibgp_neighbors[2]".
  [[nodiscard]] std::string path() const;
};

struct SubnetAttachment {
  std::string device;
  /// OSPF area this device's process covers the subnet in; -1 = the
  /// device does not run OSPF on it.
  std::int64_t area = -1;
};

struct DuplicateAddress {
  std::string ip;
  std::string device;  // second claimer
  std::string owner;   // first claimer
  std::string path;    // where the second claim came from
};

/// The per-AS iBGP session view shared by the signaling rules: built in
/// the same gather pass as the rest of the index so the rules that read
/// it (partition, cluster loops) do not each rebuild it.
struct IbgpView {
  /// AS -> member routers (device_type "router") that appear in it.
  std::map<std::int64_t, std::set<std::string>> members;
  /// Established sessions: both ends carry a statement for the other.
  std::map<std::string, std::set<std::string>> sessions;
  /// device -> peers it treats as route-reflector clients.
  std::map<std::string, std::set<std::string>> clients_of;
};

struct NidbIndex {
  std::map<std::string, std::string> address_owner;  // bare ip -> device
  std::map<std::string, std::set<std::string>> owned;  // device -> bare ips
  std::vector<InterfaceRef> interfaces;
  std::vector<NeighborRef> neighbors;
  std::map<std::string, std::vector<std::string>> hostname_users;
  std::map<std::string, std::int64_t> device_asn;
  std::map<std::string, std::string> device_type;
  std::map<std::string, std::string> device_loopback;  // bare address
  std::map<std::string, std::vector<SubnetAttachment>> subnet_attachments;
  /// device -> CIDR networks its OSPF process covers (ospf_links).
  std::map<std::string, std::set<std::string>> ospf_covered;
  std::vector<DuplicateAddress> duplicate_addresses;
  /// From nidb.data()["design"]["ibgp_mode"], "" when absent.
  std::string ibgp_mode;
  /// iBGP session graph, derived from `neighbors` after the walk.
  IbgpView ibgp;

  [[nodiscard]] static NidbIndex build(const nidb::Nidb& nidb);
};

}  // namespace autonet::verify::detail

// The pluggable static-analysis engine (paper §8). Checks are Rules with
// stable ids, categories, default severities and provenance metadata,
// registered in a RuleRegistry; run_lint() drives every enabled rule over
// a LintInput (compiled NIDB and/or template sets), records one obs span
// per rule ("lint.<id>"), and returns a finalized deterministic Report.
// Per-rule enable/disable and severity overrides come from LintOptions,
// loadable from an `.autonetlint` config or built from CLI flags.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/cancel.hpp"
#include "verify/report.hpp"

namespace autonet::nidb {
class Nidb;
}
namespace autonet::render {
class TemplateStore;
}

namespace autonet::verify {

struct RuleInfo {
  /// Stable id, doubles as the finding code ("dup-address").
  std::string id;
  /// Rule family: addressing, naming, render, bgp, ospf, signaling,
  /// template.
  std::string category;
  Severity default_severity = Severity::kError;
  /// One-line description (rule catalogue, SARIF rule metadata).
  std::string description;
  /// The design rule whose output this rule checks, when known
  /// ("design.ip", "design.ibgp", ...); copied into findings.
  std::string origin;
};

namespace detail {
struct NidbIndex;
}
namespace analysis {
class Workspace;
}

/// What a lint run analyses. Any subset may be present; rules that need
/// an absent input are skipped.
struct LintInput {
  /// Compiled Resource Database (NIDB + signaling rules).
  const nidb::Nidb* nidb = nullptr;
  /// Compiled template sets (undefined/unused variable analysis).
  const render::TemplateStore* templates = nullptr;
  /// Raw template texts (name, text) linted from source — additionally
  /// catches parse errors such as unterminated blocks.
  std::vector<std::pair<std::string, std::string>> template_files;
};

/// Everything a rule sees. `index` is the shared gather pass over the
/// NIDB, built once per run; non-null iff input->nidb is non-null.
struct RuleContext {
  const LintInput* input = nullptr;
  const detail::NidbIndex* index = nullptr;
  /// Shared analysis state (symbolic model, predicted FIBs, what-if
  /// cache); non-null iff input->nidb is non-null. Lazy: rules that
  /// never touch it cost nothing.
  const analysis::Workspace* analysis = nullptr;
};

/// Sink a rule emits findings through: the engine binds the rule id, its
/// effective severity, and provenance defaults.
class Emitter {
 public:
  Emitter(const RuleInfo& info, Severity severity, Report& report)
      : info_(&info), severity_(severity), report_(&report) {}

  void emit(std::string device, std::string message, std::string path = "");
  [[nodiscard]] std::size_t emitted() const { return emitted_; }
  [[nodiscard]] Severity severity() const { return severity_; }

 private:
  const RuleInfo* info_;
  Severity severity_;
  Report* report_;
  std::size_t emitted_ = 0;
};

struct Rule {
  RuleInfo info;
  std::function<void(const RuleContext&, Emitter&)> run;
  bool needs_nidb = false;
  bool needs_templates = false;
};

class RuleRegistry {
 public:
  /// Registers a rule; throws std::invalid_argument on duplicate ids.
  void add(Rule rule);

  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }
  [[nodiscard]] const Rule* find(std::string_view id) const;

  /// The built-in analyses: the ported NIDB consistency checks, the
  /// control-plane signaling analysis, and the template analysis.
  [[nodiscard]] static const RuleRegistry& builtin();

  /// builtin() plus the semantic "analysis" family (predicted-FIB
  /// reachability/loop/blackhole/what-if). Used by `autonet analyze`
  /// and the workflow gate's opt-in analysis mode — kept out of
  /// builtin() because these rules judge forwarding outcomes, not
  /// configuration shape.
  [[nodiscard]] static const RuleRegistry& with_analysis();

 private:
  std::vector<Rule> rules_;
  std::map<std::string, std::size_t, std::less<>> by_id_;
};

/// Per-run configuration: rule enable/disable and severity overrides.
struct LintOptions {
  /// id -> explicitly enabled/disabled (absent = enabled).
  std::map<std::string, bool, std::less<>> enabled;
  /// id -> severity override.
  std::map<std::string, Severity, std::less<>> severity;
  /// Gate threshold used by callers: fail on warnings too.
  bool fail_on_warning = false;
  /// Worker threads for rule execution; 0 = one per hardware thread
  /// (capped). Not part of the workflow options signature: it changes
  /// scheduling only, never findings.
  std::size_t jobs = 0;

  [[nodiscard]] bool rule_enabled(std::string_view id) const;
  [[nodiscard]] Severity severity_for(const RuleInfo& info) const;
  /// True when the report crosses this configuration's failure
  /// threshold (any error; warnings too with fail_on_warning).
  [[nodiscard]] bool should_fail(const Report& report) const;
  /// Later-loaded options win key by key.
  void merge(const LintOptions& other);

  /// Parses `.autonetlint` text. Line-oriented:
  ///   # comment
  ///   disable <rule-id>
  ///   enable <rule-id>
  ///   severity <rule-id> error|warning
  ///   fail-on error|warning
  /// Throws std::runtime_error naming the offending line and token on
  /// malformed input; `source` (a file name), when given, prefixes the
  /// message as "<source>:<line>".
  [[nodiscard]] static LintOptions parse_config(std::string_view text,
                                                const std::string& source = "");
  /// Reads and parses a config file; throws std::runtime_error when
  /// unreadable.
  [[nodiscard]] static LintOptions load_config_file(const std::string& path);
};

/// Incremental-lint directive: template-family rules (those that read
/// only the template sets, never the NIDB) replay their findings from
/// `baseline` instead of re-running. The caller asserts the template
/// sets are unchanged from the baseline run — run_lint does not check.
/// Replayed rules emit the same span/record/counter telemetry a fresh
/// run would, so reports stay byte-deterministic.
struct LintReuse {
  const Report* baseline = nullptr;
  /// Incremented once per rule actually replayed (optional).
  std::size_t* reused_out = nullptr;
};

/// Runs every enabled applicable rule and returns a finalized Report.
/// Rule bodies execute on a worker pool (LintOptions::jobs); findings,
/// spans, counters and flight-recorder events are merged on the calling
/// thread in registry order, so the report and all telemetry stay
/// byte-deterministic regardless of scheduling. Telemetry: one
/// "lint.<rule-id>" span per rule plus lint.* counters in
/// obs::Registry::current(). An optional RunControl is polled before
/// each rule, so cancellation interrupts a lint within one rule's work.
/// `reuse`, when given, replays template-family rule findings from a
/// baseline report (incremental pipeline).
[[nodiscard]] Report run_lint(const LintInput& input, const LintOptions& options = {},
                              const RuleRegistry& registry = RuleRegistry::builtin(),
                              core::RunControl* control = nullptr,
                              const LintReuse* reuse = nullptr);

/// SARIF 2.1.0 export of a finalized report, with rule metadata from the
/// registry (consumed by CI annotation tooling).
[[nodiscard]] std::string to_sarif(const Report& report,
                                   const RuleRegistry& registry =
                                       RuleRegistry::builtin());

// Registration hooks for the built-in analysis families (internal; used
// by RuleRegistry::builtin() and tests that build custom registries).
void register_nidb_rules(RuleRegistry& registry);
void register_signaling_rules(RuleRegistry& registry);
void register_template_rules(RuleRegistry& registry);
void register_analysis_rules(RuleRegistry& registry);

}  // namespace autonet::verify

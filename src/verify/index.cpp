#include "verify/index.hpp"

namespace autonet::verify::detail {

using nidb::Array;
using nidb::DeviceRecord;
using nidb::Value;

namespace {

std::string strip_len(std::string addr) {
  if (auto slash = addr.find('/'); slash != std::string::npos) addr.resize(slash);
  return addr;
}

const std::string* find_string(const Value& v, std::string_view path) {
  const Value* f = v.find_path(path);
  return f != nullptr ? f->as_string() : nullptr;
}

std::int64_t find_int(const Value& v, std::string_view path, std::int64_t fallback) {
  const Value* f = v.find_path(path);
  if (f == nullptr) return fallback;
  return f->as_int().value_or(fallback);
}

}  // namespace

std::string NeighborRef::path() const {
  return std::string("bgp.") + (ibgp ? "ibgp_neighbors" : "ebgp_neighbors") + "[" +
         std::to_string(index) + "]";
}

NidbIndex NidbIndex::build(const nidb::Nidb& nidb) {
  NidbIndex index;

  if (const std::string* mode = find_string(nidb.data(), "design.ibgp_mode")) {
    index.ibgp_mode = *mode;
  }

  for (const DeviceRecord* rec : nidb.devices()) {
    const Value& d = rec->data;
    index.device_asn[rec->name] = find_int(d, "asn", 0);
    if (const std::string* type = find_string(d, "device_type")) {
      index.device_type[rec->name] = *type;
    }
    if (const std::string* hostname = find_string(d, "hostname")) {
      index.hostname_users[*hostname].push_back(rec->name);
    }

    auto claim_address = [&](const std::string& with_len, std::string path) {
      std::string ip = strip_len(with_len);
      auto [it, inserted] = index.address_owner.emplace(ip, rec->name);
      if (!inserted && it->second != rec->name) {
        index.duplicate_addresses.push_back(
            {ip, rec->name, it->second, std::move(path)});
      }
      index.owned[rec->name].insert(ip);
    };
    if (const std::string* lo = find_string(d, "loopback")) {
      index.device_loopback[rec->name] = strip_len(*lo);
      claim_address(*lo, "loopback");
    }

    // OSPF coverage: which networks this device's process covers, and in
    // which area (for per-subnet consistency and next-hop resolution).
    std::map<std::string, std::int64_t> covered;
    if (const Value* links = d.find_path("ospf.ospf_links")) {
      if (const Array* arr = links->as_array()) {
        for (const Value& link : *arr) {
          const std::string* network =
              link.find("network") != nullptr ? link.find("network")->as_string()
                                              : nullptr;
          if (network != nullptr) {
            const Value* area = link.find("area");
            covered[*network] = area != nullptr ? area->as_int().value_or(0) : 0;
            index.ospf_covered[rec->name].insert(*network);
          }
        }
      }
    }

    if (const Value* ifaces = d.find("interfaces")) {
      if (const Array* arr = ifaces->as_array()) {
        for (std::size_t i = 0; i < arr->size(); ++i) {
          const Value& iface = (*arr)[i];
          const std::string* ip = iface.find("ip_address") != nullptr
                                      ? iface.find("ip_address")->as_string()
                                      : nullptr;
          const std::string* subnet = iface.find("subnet") != nullptr
                                          ? iface.find("subnet")->as_string()
                                          : nullptr;
          if (ip == nullptr || subnet == nullptr) continue;
          // Attached stub networks (`advertise_prefix` origins) are
          // anycast by design: the same prefix may be originated at
          // several points, so stub addresses claim no ownership.
          const Value* stub = iface.find("stub");
          if (stub == nullptr || !stub->truthy()) {
            claim_address(*ip, "interfaces[" + std::to_string(i) + "].ip_address");
          }
          index.interfaces.push_back({rec->name, strip_len(*ip), *subnet, i});
          auto it = covered.find(*subnet);
          index.subnet_attachments[*subnet].push_back(
              {rec->name, it == covered.end() ? -1 : it->second});
        }
      }
    }

    for (const bool ibgp : {true, false}) {
      const Value* list =
          d.find_path(ibgp ? "bgp.ibgp_neighbors" : "bgp.ebgp_neighbors");
      const Array* arr = list != nullptr ? list->as_array() : nullptr;
      if (arr == nullptr) continue;
      for (std::size_t i = 0; i < arr->size(); ++i) {
        const Value& n = (*arr)[i];
        NeighborRef ref;
        ref.device = rec->name;
        ref.ibgp = ibgp;
        ref.index = i;
        if (const std::string* ip = n.find("neighbor") != nullptr
                                        ? n.find("neighbor")->as_string()
                                        : nullptr) {
          ref.neighbor_ip = *ip;
        }
        if (const Value* remote = n.find("remote_as")) {
          ref.remote_as = remote->as_int().value_or(0);
        }
        if (const Value* rr = n.find("rr_client")) ref.rr_client = rr->truthy();
        if (const Value* mh = n.find("multihop")) ref.multihop = mh->truthy();
        index.neighbors.push_back(std::move(ref));
      }
    }
  }

  // Derive the iBGP session view from the gathered neighbor statements:
  // directed statement edges device -> peer (neighbor loopback resolved
  // to its owner, same-AS only), then keep the bidirectional ones.
  std::map<std::string, std::set<std::string>> stated;
  std::map<std::pair<std::string, std::string>, bool> client_edge;
  std::set<std::int64_t> active_as;  // ASes with any iBGP configured
  for (const auto& n : index.neighbors) {
    if (!n.ibgp || n.neighbor_ip.empty()) continue;
    auto owner = index.address_owner.find(n.neighbor_ip);
    if (owner == index.address_owner.end()) continue;  // bgp-unknown-peer
    const std::string& peer = owner->second;
    auto as_a = index.device_asn.find(n.device);
    auto as_b = index.device_asn.find(peer);
    if (as_a == index.device_asn.end() || as_b == index.device_asn.end() ||
        as_a->second != as_b->second) {
      continue;  // bgp-wrong-as territory
    }
    stated[n.device].insert(peer);
    if (n.rr_client) client_edge[{n.device, peer}] = true;
    active_as.insert(as_a->second);
  }
  // Every router of an AS that runs iBGP is a member — including one
  // with no sessions at all, which is exactly a partition.
  for (const auto& [device, asn] : index.device_asn) {
    if (!active_as.contains(asn)) continue;
    auto type = index.device_type.find(device);
    if (type != index.device_type.end() && type->second == "router") {
      index.ibgp.members[asn].insert(device);
    }
  }
  for (const auto& [device, peers] : stated) {
    for (const auto& peer : peers) {
      auto back = stated.find(peer);
      if (back != stated.end() && back->second.contains(device)) {
        index.ibgp.sessions[device].insert(peer);
      }
      if (client_edge.contains({device, peer})) {
        index.ibgp.clients_of[device].insert(peer);
      }
    }
  }
  return index;
}

}  // namespace autonet::verify::detail

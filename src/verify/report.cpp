#include "verify/report.hpp"

#include <algorithm>
#include <tuple>

#include "nidb/value.hpp"

namespace autonet::verify {

std::string_view severity_name(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

bool operator==(const Finding& a, const Finding& b) {
  return a.severity == b.severity && a.code == b.code && a.device == b.device &&
         a.message == b.message && a.path == b.path && a.origin == b.origin;
}

bool operator<(const Finding& a, const Finding& b) {
  return std::tie(a.code, a.device, a.path, a.message, a.severity) <
         std::tie(b.code, b.device, b.path, b.message, b.severity);
}

void Report::finalize() {
  std::stable_sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end()), findings.end());
}

void Report::merge(Report other) {
  findings.insert(findings.end(),
                  std::make_move_iterator(other.findings.begin()),
                  std::make_move_iterator(other.findings.end()));
}

std::size_t Report::error_count() const {
  std::size_t n = 0;
  for (const auto& f : findings) n += f.severity == Severity::kError;
  return n;
}

std::size_t Report::warning_count() const {
  return findings.size() - error_count();
}

std::string Report::to_string() const {
  if (findings.empty()) return "static check: OK, no findings";
  std::string out = "static check: " + std::to_string(error_count()) + " error(s), " +
                    std::to_string(warning_count()) + " warning(s)";
  for (const auto& f : findings) {
    out += "\n  [" + std::string(f.severity == Severity::kError ? "ERROR" : "warn") +
           "] " + f.code + (f.device.empty() ? "" : " (" + f.device + ")") + ": " +
           f.message;
    if (!f.path.empty()) out += " [at " + f.path + "]";
  }
  return out;
}

std::string Report::to_json(bool pretty) const {
  nidb::Object doc;
  doc["errors"] = static_cast<std::int64_t>(error_count());
  doc["warnings"] = static_cast<std::int64_t>(warning_count());
  nidb::Array items;
  for (const auto& f : findings) {
    nidb::Object o;
    o["severity"] = std::string(severity_name(f.severity));
    o["code"] = f.code;
    if (!f.device.empty()) o["device"] = f.device;
    o["message"] = f.message;
    if (!f.path.empty()) o["path"] = f.path;
    if (!f.origin.empty()) o["origin"] = f.origin;
    items.emplace_back(std::move(o));
  }
  doc["findings"] = nidb::Value(std::move(items));
  return nidb::Value(std::move(doc)).to_json(pretty);
}

}  // namespace autonet::verify

// Template static analysis: walks compiled template ASTs before render
// time to flag references to variables that are never passed in,
// passed-in variables a template never uses, and (for raw template
// sources) syntax errors such as unterminated % blocks.
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "render/renderer.hpp"
#include "templates/detail.hpp"
#include "templates/template.hpp"
#include "verify/rules.hpp"

namespace autonet::verify {

namespace tdetail = templates::detail;

namespace {

std::string root_of(const std::string& dotted) {
  auto dot = dotted.find('.');
  return dot == std::string::npos ? dotted : dotted.substr(0, dot);
}

/// Walks one template AST recording, per reference, the root variable
/// and whether it resolves against the scope chain.
struct TemplateWalker {
  std::set<std::string> roots;       // passed-in context variables
  std::set<std::string> used_roots;  // passed-in variables referenced
  /// Unresolved references: (dotted path, root) pairs, first occurrence.
  std::vector<std::pair<std::string, std::string>> undefined;
  std::set<std::string> seen_undefined;

  void expr(const tdetail::Expr& e, const std::set<std::string>& locals) {
    struct Visitor {
      TemplateWalker& walker;
      const std::set<std::string>& locals;
      void operator()(const tdetail::Expr::Literal&) const {}
      void operator()(const tdetail::Expr::Path& p) const {
        const std::string root = root_of(p.dotted);
        if (walker.roots.contains(root)) {
          walker.used_roots.insert(root);
        } else if (!locals.contains(root) &&
                   walker.seen_undefined.insert(p.dotted).second) {
          walker.undefined.emplace_back(p.dotted, root);
        }
      }
      void operator()(const tdetail::Expr::Unary& u) const {
        walker.expr(*u.operand, locals);
      }
      void operator()(const tdetail::Expr::Binary& b) const {
        walker.expr(*b.lhs, locals);
        walker.expr(*b.rhs, locals);
      }
      void operator()(const tdetail::Expr::FilterCall& f) const {
        walker.expr(*f.input, locals);
        for (const auto& arg : f.args) walker.expr(arg, locals);
      }
    };
    std::visit(Visitor{*this, locals}, e.node);
  }

  void body(const std::vector<tdetail::TemplateNode>& nodes,
            std::set<std::string> locals) {
    for (const auto& n : nodes) {
      if (const auto* output = std::get_if<tdetail::OutputNode>(&n.node)) {
        expr(output->expr, locals);
      } else if (const auto* loop = std::get_if<tdetail::ForNode>(&n.node)) {
        expr(loop->collection, locals);
        std::set<std::string> inner = locals;
        inner.insert(loop->var);  // the loop variable shadows outer names
        body(loop->body, std::move(inner));
      } else if (const auto* branch = std::get_if<tdetail::IfNode>(&n.node)) {
        for (const auto& b : branch->branches) {
          if (b.condition) expr(*b.condition, locals);
          body(b.body, locals);
        }
      }
    }
  }
};

/// Context roots a template set receives from the renderer: device sets
/// get `node` + `data`, platform sets get `data` + `devices`.
std::set<std::string> roots_for_base(std::string_view base) {
  if (base.starts_with("platform/")) return {"data", "devices"};
  return {"node", "data"};
}

/// `data` and `devices` are ambient context every template receives
/// whether or not it needs them; only device-specific roots are worth an
/// unused warning.
bool exempt_from_unused(const std::string& root) {
  return root == "data" || root == "devices";
}

struct AnalyzedTemplate {
  std::string name;  // "<base>/<path>" or the raw file name
  std::set<std::string> roots;
  const std::vector<tdetail::TemplateNode>* nodes;
};

template <typename Fn>
void each_template(const RuleContext& ctx, Fn&& fn) {
  if (ctx.input->templates != nullptr) {
    const render::TemplateStore& store = *ctx.input->templates;
    for (const std::string& base : store.bases()) {
      for (const auto& entry : store.entries(base)) {
        if (!entry.is_template) continue;
        fn(AnalyzedTemplate{base + "/" + entry.path, roots_for_base(base),
                            &entry.tmpl.nodes()});
      }
    }
  }
}

void check_undefined_var(const RuleContext& ctx, Emitter& out) {
  auto analyze = [&](const AnalyzedTemplate& t) {
    TemplateWalker walker;
    walker.roots = t.roots;
    walker.body(*t.nodes, {});
    std::string scope;
    for (const auto& r : t.roots) scope += (scope.empty() ? "" : ", ") + r;
    for (const auto& [dotted, root] : walker.undefined) {
      out.emit(t.name,
               "reference to undefined variable '" + root +
                   "' (in scope: " + scope + ")",
               dotted);
    }
  };
  each_template(ctx, analyze);
  // Raw sources: parse then analyse with every renderer root in scope.
  for (const auto& [name, text] : ctx.input->template_files) {
    try {
      templates::Template tmpl = templates::Template::parse(text, name);
      analyze({name, {"node", "data", "devices"}, &tmpl.nodes()});
    } catch (const templates::TemplateError&) {
      // tpl-parse-error reports it
    }
  }
}

void check_unused_var(const RuleContext& ctx, Emitter& out) {
  each_template(ctx, [&](const AnalyzedTemplate& t) {
    TemplateWalker walker;
    walker.roots = t.roots;
    walker.body(*t.nodes, {});
    for (const auto& root : t.roots) {
      if (exempt_from_unused(root)) continue;
      if (!walker.used_roots.contains(root)) {
        out.emit(t.name, "passed-in variable '" + root + "' is never referenced",
                 root);
      }
    }
  });
}

void check_parse_error(const RuleContext& ctx, Emitter& out) {
  for (const auto& [name, text] : ctx.input->template_files) {
    try {
      (void)templates::Template::parse(text, name);
    } catch (const templates::TemplateError& err) {
      out.emit(name, err.what());
    }
  }
}

Rule template_rule(std::string id, Severity severity, std::string description,
                   void (*fn)(const RuleContext&, Emitter&)) {
  Rule rule;
  rule.info = {std::move(id), "template", severity, std::move(description),
               /*origin=*/""};
  rule.run = fn;
  rule.needs_templates = true;
  return rule;
}

}  // namespace

void register_template_rules(RuleRegistry& registry) {
  registry.add(template_rule(
      "tpl-undefined-var", Severity::kError,
      "a template references a variable the renderer never passes in",
      check_undefined_var));
  registry.add(template_rule(
      "tpl-unused-var", Severity::kWarning,
      "a template never references a passed-in variable",
      check_unused_var));
  registry.add(template_rule(
      "tpl-parse-error", Severity::kError,
      "a template source fails to parse (e.g. an unterminated % block)",
      check_parse_error));
}

}  // namespace autonet::verify

// Findings and reports for the static-analysis engine (paper §8:
// pre-deployment checking as one half of test-driven network
// development). A Finding carries provenance — the offending device, the
// NIDB attribute path that triggered it, and the originating design rule
// when known — and a finalized Report is byte-deterministic: findings are
// stably sorted and exact duplicates removed, so two runs over the same
// input serialize identically (golden tests, CI diffing).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace autonet::verify {

enum class Severity { kError, kWarning };

/// "error" / "warning" (SARIF level names).
[[nodiscard]] std::string_view severity_name(Severity severity);

struct Finding {
  Severity severity = Severity::kError;
  /// Stable machine-readable rule id, e.g. "dup-address".
  std::string code;
  std::string device;  // primary offender ("" for network-wide findings)
  std::string message;
  /// Provenance: NIDB attribute path ("bgp.ebgp_neighbors[0].neighbor")
  /// or template file ("templates/quagga/etc/quagga/bgpd.conf").
  std::string path;
  /// Provenance: the design rule that produced the checked attributes,
  /// when known ("design.ibgp", "design.ip", ...).
  std::string origin;
};

[[nodiscard]] bool operator==(const Finding& a, const Finding& b);
/// Deterministic order: code, device, path, message, severity.
[[nodiscard]] bool operator<(const Finding& a, const Finding& b);

struct Report {
  std::vector<Finding> findings;

  /// Stable-sorts by (code, device, path, message) and removes exact
  /// duplicates. run_lint() returns finalized reports; call it again
  /// after merging.
  void finalize();
  void merge(Report other);

  [[nodiscard]] bool ok() const { return error_count() == 0; }
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;
  /// Human-readable multi-line rendering (byte-deterministic once
  /// finalized).
  [[nodiscard]] std::string to_string() const;
  /// Machine-readable JSON: {"errors":N,"warnings":N,"findings":[...]}.
  [[nodiscard]] std::string to_json(bool pretty = true) const;
};

}  // namespace autonet::verify

#include "verify/static_check.hpp"

#include <map>
#include <optional>
#include <set>

#include "addressing/ipv4.hpp"

namespace autonet::verify {

using addressing::Ipv4Prefix;
using nidb::Array;
using nidb::DeviceRecord;
using nidb::Value;

namespace {

std::string strip_len(std::string addr) {
  if (auto slash = addr.find('/'); slash != std::string::npos) addr.resize(slash);
  return addr;
}

const std::string* find_string(const Value& v, std::string_view path) {
  const Value* f = v.find_path(path);
  return f ? f->as_string() : nullptr;
}

std::int64_t find_int(const Value& v, std::string_view path, std::int64_t fallback) {
  const Value* f = v.find_path(path);
  if (f == nullptr) return fallback;
  return f->as_int().value_or(fallback);
}

struct Interface {
  std::string device;
  std::string ip;      // bare address
  std::string subnet;  // CIDR string
};

struct NeighborStatement {
  std::string device;
  std::string neighbor_ip;
  std::int64_t remote_as = 0;
};

}  // namespace

std::size_t Report::error_count() const {
  std::size_t n = 0;
  for (const auto& f : findings) n += f.severity == Severity::kError;
  return n;
}

std::size_t Report::warning_count() const {
  return findings.size() - error_count();
}

std::string Report::to_string() const {
  if (findings.empty()) return "static check: OK, no findings";
  std::string out = "static check: " + std::to_string(error_count()) + " error(s), " +
                    std::to_string(warning_count()) + " warning(s)";
  for (const auto& f : findings) {
    out += "\n  [" + std::string(f.severity == Severity::kError ? "ERROR" : "warn") +
           "] " + f.code + (f.device.empty() ? "" : " (" + f.device + ")") + ": " +
           f.message;
  }
  return out;
}

Report static_check(const nidb::Nidb& nidb) {
  Report report;
  auto add = [&report](Severity severity, std::string code, std::string device,
                       std::string message) {
    report.findings.push_back(
        {severity, std::move(code), std::move(device), std::move(message)});
  };

  // --- Gather ----------------------------------------------------------
  std::map<std::string, std::string> address_owner;  // bare ip -> device
  std::vector<Interface> interfaces;
  std::vector<NeighborStatement> neighbors;
  std::map<std::string, std::vector<std::string>> hostname_users;
  std::map<std::string, std::int64_t> device_asn;
  std::map<std::string, std::string> device_type;
  // subnet -> devices attached with their configured OSPF area (-1: none)
  struct Attachment {
    std::string device;
    std::int64_t area = -1;
  };
  std::map<std::string, std::vector<Attachment>> subnet_attachments;

  for (const DeviceRecord* rec : nidb.devices()) {
    const Value& d = rec->data;
    device_asn[rec->name] = find_int(d, "asn", 0);
    if (const std::string* type = find_string(d, "device_type")) {
      device_type[rec->name] = *type;
    }

    if (const std::string* hostname = find_string(d, "hostname")) {
      hostname_users[*hostname].push_back(rec->name);
    }
    if (d.find("render") == nullptr || find_string(d, "render.base") == nullptr) {
      add(Severity::kWarning, "render-missing", rec->name,
          "no render attributes; device will not produce configuration");
    }

    auto claim_address = [&](const std::string& with_len) {
      std::string ip = strip_len(with_len);
      auto [it, inserted] = address_owner.emplace(ip, rec->name);
      if (!inserted && it->second != rec->name) {
        add(Severity::kError, "dup-address", rec->name,
            "address " + ip + " already assigned to " + it->second);
      }
    };
    if (const std::string* lo = find_string(d, "loopback")) claim_address(*lo);

    // OSPF coverage per subnet: which networks this device's process
    // covers, and in which area.
    std::map<std::string, std::int64_t> covered;  // subnet CIDR -> area
    if (const Value* links = d.find_path("ospf.ospf_links")) {
      if (const Array* arr = links->as_array()) {
        for (const Value& link : *arr) {
          const Value* network = link.find("network");
          const std::string* s = network ? network->as_string() : nullptr;
          if (s != nullptr) {
            covered[*s] = link.find("area") ? link.find("area")->as_int().value_or(0)
                                            : 0;
          }
        }
      }
    }

    if (const Value* ifaces = d.find("interfaces")) {
      if (const Array* arr = ifaces->as_array()) {
        for (const Value& iface : *arr) {
          const std::string* ip = iface.find("ip_address")
                                      ? iface.find("ip_address")->as_string()
                                      : nullptr;
          const std::string* subnet =
              iface.find("subnet") ? iface.find("subnet")->as_string() : nullptr;
          if (ip == nullptr || subnet == nullptr) continue;
          claim_address(*ip);
          interfaces.push_back({rec->name, strip_len(*ip), *subnet});
          auto it = covered.find(*subnet);
          subnet_attachments[*subnet].push_back(
              {rec->name, it == covered.end() ? -1 : it->second});
        }
      }
    }

    for (const char* kind : {"bgp.ibgp_neighbors", "bgp.ebgp_neighbors"}) {
      const Value* list = d.find_path(kind);
      const Array* arr = list ? list->as_array() : nullptr;
      if (arr == nullptr) continue;
      for (const Value& n : *arr) {
        const std::string* ip =
            n.find("neighbor") ? n.find("neighbor")->as_string() : nullptr;
        if (ip == nullptr || ip->empty()) {
          add(Severity::kError, "bgp-unknown-peer", rec->name,
              std::string("empty neighbor address in ") + kind);
          continue;
        }
        neighbors.push_back(
            {rec->name, *ip,
             n.find("remote_as") ? n.find("remote_as")->as_int().value_or(0) : 0});
      }
    }
  }

  // --- dup-hostname -----------------------------------------------------
  for (const auto& [hostname, users] : hostname_users) {
    if (users.size() > 1) {
      std::string list;
      for (const auto& u : users) list += (list.empty() ? "" : ", ") + u;
      add(Severity::kError, "dup-hostname", users.front(),
          "hostname '" + hostname + "' used by: " + list);
    }
  }

  // --- subnet-overlap ---------------------------------------------------
  {
    std::vector<std::pair<std::string, Ipv4Prefix>> distinct;
    std::set<std::string> seen;
    for (const auto& [subnet, attachments] : subnet_attachments) {
      if (!seen.insert(subnet).second) continue;
      if (auto p = Ipv4Prefix::parse(subnet)) distinct.emplace_back(subnet, *p);
    }
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      for (std::size_t j = i + 1; j < distinct.size(); ++j) {
        if (distinct[i].second.overlaps(distinct[j].second)) {
          add(Severity::kError, "subnet-overlap", "",
              "collision domains " + distinct[i].first + " and " +
                  distinct[j].first + " overlap");
        }
      }
    }
  }

  // --- BGP session symmetry / peer identity ------------------------------
  // Index: device -> owned bare addresses.
  std::map<std::string, std::set<std::string>> owned;
  for (const auto& [ip, device] : address_owner) owned[device].insert(ip);

  for (const auto& n : neighbors) {
    auto owner = address_owner.find(n.neighbor_ip);
    if (owner == address_owner.end()) {
      add(Severity::kError, "bgp-unknown-peer", n.device,
          "neighbor " + n.neighbor_ip + " is owned by no device");
      continue;
    }
    const std::string& peer = owner->second;
    if (n.remote_as != device_asn[peer]) {
      add(Severity::kError, "bgp-wrong-as", n.device,
          "neighbor " + n.neighbor_ip + " (" + peer + ") is AS" +
              std::to_string(device_asn[peer]) + " but remote-as says " +
              std::to_string(n.remote_as));
    }
    bool reverse = false;
    for (const auto& back : neighbors) {
      if (back.device == peer && owned[n.device].contains(back.neighbor_ip)) {
        reverse = true;
        break;
      }
    }
    if (!reverse) {
      add(Severity::kError, "bgp-asym-session", n.device,
          "session to " + n.neighbor_ip + " (" + peer +
              ") has no matching reverse neighbor statement");
    }
  }

  // --- OSPF link consistency ---------------------------------------------
  for (const auto& [subnet, attachments] : subnet_attachments) {
    for (std::size_t i = 0; i < attachments.size(); ++i) {
      for (std::size_t j = i + 1; j < attachments.size(); ++j) {
        const auto& a = attachments[i];
        const auto& b = attachments[j];
        if (device_asn[a.device] != device_asn[b.device]) continue;  // eBGP link
        // Only router-router links are expected to run OSPF.
        if (device_type[a.device] != "router" || device_type[b.device] != "router") {
          continue;
        }
        const bool a_runs = a.area >= 0;
        const bool b_runs = b.area >= 0;
        if (a_runs != b_runs) {
          add(Severity::kError, "ospf-half-link", a_runs ? b.device : a.device,
              "intra-AS link " + subnet + " between " + a.device + " and " +
                  b.device + " runs OSPF on one side only");
        } else if (a_runs && a.area != b.area) {
          add(Severity::kError, "ospf-area-mismatch", a.device,
              "link " + subnet + ": " + a.device + " uses area " +
                  std::to_string(a.area) + ", " + b.device + " area " +
                  std::to_string(b.area));
        }
      }
    }
  }

  return report;
}

}  // namespace autonet::verify

#include "verify/static_check.hpp"

namespace autonet::verify {

Report static_check(const nidb::Nidb& nidb, const LintOptions& options) {
  LintInput input;
  input.nidb = &nidb;
  return run_lint(input, options);
}

}  // namespace autonet::verify

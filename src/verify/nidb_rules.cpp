// The ported NIDB consistency checks (the former static_check monolith),
// each a registered rule over the shared NidbIndex gather pass.
#include <set>
#include <utility>
#include <vector>

#include "addressing/ipv4.hpp"
#include "nidb/nidb.hpp"
#include "verify/index.hpp"
#include "verify/rules.hpp"

namespace autonet::verify {

using addressing::Ipv4Prefix;
using detail::NidbIndex;

namespace {

void check_dup_address(const RuleContext& ctx, Emitter& out) {
  for (const auto& dup : ctx.index->duplicate_addresses) {
    out.emit(dup.device, "address " + dup.ip + " already assigned to " + dup.owner,
             dup.path);
  }
}

void check_dup_hostname(const RuleContext& ctx, Emitter& out) {
  for (const auto& [hostname, users] : ctx.index->hostname_users) {
    if (users.size() <= 1) continue;
    std::string list;
    for (const auto& u : users) list += (list.empty() ? "" : ", ") + u;
    out.emit(users.front(), "hostname '" + hostname + "' used by: " + list,
             "hostname");
  }
}

void check_render_missing(const RuleContext& ctx, Emitter& out) {
  for (const nidb::DeviceRecord* rec : ctx.input->nidb->devices()) {
    const nidb::Value* base = rec->data.find_path("render.base");
    if (base == nullptr || base->as_string() == nullptr) {
      out.emit(rec->name,
               "no render attributes; device will not produce configuration",
               "render.base");
    }
  }
}

void check_subnet_overlap(const RuleContext& ctx, Emitter& out) {
  std::vector<std::pair<std::string, Ipv4Prefix>> distinct;
  for (const auto& [subnet, attachments] : ctx.index->subnet_attachments) {
    if (auto p = Ipv4Prefix::parse(subnet)) distinct.emplace_back(subnet, *p);
  }
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    for (std::size_t j = i + 1; j < distinct.size(); ++j) {
      if (distinct[i].second.overlaps(distinct[j].second)) {
        out.emit("", "collision domains " + distinct[i].first + " and " +
                         distinct[j].first + " overlap");
      }
    }
  }
}

void check_bgp_unknown_peer(const RuleContext& ctx, Emitter& out) {
  const NidbIndex& index = *ctx.index;
  for (const auto& n : index.neighbors) {
    if (n.neighbor_ip.empty()) {
      out.emit(n.device,
               std::string("empty neighbor address in bgp.") +
                   (n.ibgp ? "ibgp_neighbors" : "ebgp_neighbors"),
               n.path());
      continue;
    }
    if (!index.address_owner.contains(n.neighbor_ip)) {
      out.emit(n.device, "neighbor " + n.neighbor_ip + " is owned by no device",
               n.path());
    }
  }
}

void check_bgp_wrong_as(const RuleContext& ctx, Emitter& out) {
  const NidbIndex& index = *ctx.index;
  for (const auto& n : index.neighbors) {
    auto owner = index.address_owner.find(n.neighbor_ip);
    if (owner == index.address_owner.end()) continue;  // bgp-unknown-peer
    const std::string& peer = owner->second;
    auto asn = index.device_asn.find(peer);
    const std::int64_t peer_as = asn == index.device_asn.end() ? 0 : asn->second;
    if (n.remote_as != peer_as) {
      out.emit(n.device, "neighbor " + n.neighbor_ip + " (" + peer + ") is AS" +
                             std::to_string(peer_as) + " but remote-as says " +
                             std::to_string(n.remote_as),
               n.path());
    }
  }
}

void check_bgp_asym_session(const RuleContext& ctx, Emitter& out) {
  const NidbIndex& index = *ctx.index;
  for (const auto& n : index.neighbors) {
    auto owner = index.address_owner.find(n.neighbor_ip);
    if (owner == index.address_owner.end()) continue;  // bgp-unknown-peer
    const std::string& peer = owner->second;
    auto mine = index.owned.find(n.device);
    bool reverse = false;
    for (const auto& back : index.neighbors) {
      if (back.device == peer && mine != index.owned.end() &&
          mine->second.contains(back.neighbor_ip)) {
        reverse = true;
        break;
      }
    }
    if (!reverse) {
      out.emit(n.device, "session to " + n.neighbor_ip + " (" + peer +
                             ") has no matching reverse neighbor statement",
               n.path());
    }
  }
}

bool routers_same_as(const NidbIndex& index, const std::string& a,
                     const std::string& b) {
  auto type = [&](const std::string& d) {
    auto it = index.device_type.find(d);
    return it == index.device_type.end() ? std::string() : it->second;
  };
  auto asn = [&](const std::string& d) {
    auto it = index.device_asn.find(d);
    return it == index.device_asn.end() ? std::int64_t{0} : it->second;
  };
  return asn(a) == asn(b) && type(a) == "router" && type(b) == "router";
}

void check_ospf_half_link(const RuleContext& ctx, Emitter& out) {
  for (const auto& [subnet, attachments] : ctx.index->subnet_attachments) {
    for (std::size_t i = 0; i < attachments.size(); ++i) {
      for (std::size_t j = i + 1; j < attachments.size(); ++j) {
        const auto& a = attachments[i];
        const auto& b = attachments[j];
        // Only intra-AS router-router links are expected to run OSPF.
        if (!routers_same_as(*ctx.index, a.device, b.device)) continue;
        const bool a_runs = a.area >= 0;
        const bool b_runs = b.area >= 0;
        if (a_runs != b_runs) {
          out.emit(a_runs ? b.device : a.device,
                   "intra-AS link " + subnet + " between " + a.device + " and " +
                       b.device + " runs OSPF on one side only",
                   "ospf.ospf_links");
        }
      }
    }
  }
}

void check_ospf_area_mismatch(const RuleContext& ctx, Emitter& out) {
  for (const auto& [subnet, attachments] : ctx.index->subnet_attachments) {
    for (std::size_t i = 0; i < attachments.size(); ++i) {
      for (std::size_t j = i + 1; j < attachments.size(); ++j) {
        const auto& a = attachments[i];
        const auto& b = attachments[j];
        if (!routers_same_as(*ctx.index, a.device, b.device)) continue;
        if (a.area >= 0 && b.area >= 0 && a.area != b.area) {
          out.emit(a.device, "link " + subnet + ": " + a.device + " uses area " +
                                 std::to_string(a.area) + ", " + b.device +
                                 " area " + std::to_string(b.area),
                   "ospf.ospf_links");
        }
      }
    }
  }
}

Rule nidb_rule(std::string id, std::string category, Severity severity,
               std::string description, std::string origin,
               void (*fn)(const RuleContext&, Emitter&)) {
  Rule rule;
  rule.info = {std::move(id), std::move(category), severity,
               std::move(description), std::move(origin)};
  rule.run = fn;
  rule.needs_nidb = true;
  return rule;
}

}  // namespace

void register_nidb_rules(RuleRegistry& registry) {
  registry.add(nidb_rule(
      "dup-address", "addressing", Severity::kError,
      "an interface or loopback address is assigned to two devices", "design.ip",
      check_dup_address));
  registry.add(nidb_rule(
      "subnet-overlap", "addressing", Severity::kError,
      "two distinct collision-domain subnets overlap", "design.ip",
      check_subnet_overlap));
  registry.add(nidb_rule(
      "dup-hostname", "naming", Severity::kError,
      "two devices share a sanitised hostname", "compile",
      check_dup_hostname));
  registry.add(nidb_rule(
      "render-missing", "render", Severity::kWarning,
      "a device record lacks render attributes and produces no configuration",
      "compile", check_render_missing));
  registry.add(nidb_rule(
      "bgp-unknown-peer", "bgp", Severity::kError,
      "a BGP neighbor address is empty or owned by no device", "design.ebgp",
      check_bgp_unknown_peer));
  registry.add(nidb_rule(
      "bgp-wrong-as", "bgp", Severity::kError,
      "a neighbor's remote-as disagrees with the peer's AS", "design.ebgp",
      check_bgp_wrong_as));
  registry.add(nidb_rule(
      "bgp-asym-session", "bgp", Severity::kError,
      "a neighbor statement has no matching reverse statement", "design.ebgp",
      check_bgp_asym_session));
  registry.add(nidb_rule(
      "ospf-area-mismatch", "ospf", Severity::kError,
      "the two ends of a link configure different OSPF areas", "design.ospf",
      check_ospf_area_mismatch));
  registry.add(nidb_rule(
      "ospf-half-link", "ospf", Severity::kError,
      "only one end of an intra-AS link runs OSPF on it", "design.ospf",
      check_ospf_half_link));
}

}  // namespace autonet::verify

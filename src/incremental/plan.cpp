#include "incremental/plan.hpp"

#include <algorithm>

namespace autonet::incremental {

bool RecomputePlan::rule_reused(std::string_view name) const {
  return std::find(reused_rules.begin(), reused_rules.end(), name) !=
         reused_rules.end();
}

void plan_design(const Snapshot& baseline,
                 const std::map<std::string, std::uint64_t>& current,
                 const std::vector<std::string>& order, RecomputePlan& plan) {
  plan.reused_rules.clear();
  plan.dirty_rules.clear();
  // Static dependencies between design rules: dns consumes the ip
  // overlay, so a dirty ip rule dirties dns even when its own projection
  // is unchanged (the projection covers dns's post-load reads only).
  auto depends_dirty = [&plan](const std::string& rule) -> const char* {
    if (rule == "dns" &&
        std::find(plan.dirty_rules.begin(), plan.dirty_rules.end(), "ip") !=
            plan.dirty_rules.end()) {
      return "ip";
    }
    return nullptr;
  };
  for (const std::string& rule : order) {
    auto base = baseline.rule_hashes.find(rule);
    auto cur = current.find(rule);
    if (base == baseline.rule_hashes.end() || cur == current.end()) {
      plan.dirty_rules.push_back(rule);
      plan.explain.push_back("design." + rule + ": re-run (no baseline hash)");
      continue;
    }
    if (const char* dep = depends_dirty(rule)) {
      plan.dirty_rules.push_back(rule);
      plan.explain.push_back("design." + rule + ": re-run (depends on dirty " +
                             dep + ")");
      continue;
    }
    if (base->second != cur->second) {
      plan.dirty_rules.push_back(rule);
      plan.explain.push_back("design." + rule + ": re-run (projection changed)");
    } else {
      plan.reused_rules.push_back(rule);
      plan.explain.push_back("design." + rule + ": reused (projection unchanged)");
    }
  }
}

void plan_devices(const Snapshot& baseline, const DeviceSignatures& current,
                  RecomputePlan& plan) {
  plan.reused_devices.clear();
  plan.dirty_devices.clear();
  if (baseline.global_digest != current.global_digest) {
    for (const auto& [device, sig] : current.sigs) {
      plan.dirty_devices.insert(device);
    }
    plan.explain.push_back(
        "compile: all devices re-compiled (global digest changed: overlay "
        "data, service overlays, or platform)");
    return;
  }
  for (const auto& [device, sig] : current.sigs) {
    auto base = baseline.device_sigs.find(device);
    if (base != baseline.device_sigs.end() && base->second == sig) {
      plan.reused_devices.insert(device);
    } else {
      plan.dirty_devices.insert(device);
      plan.explain.push_back("compile." + device + ": re-compiled (" +
                             (base == baseline.device_sigs.end()
                                  ? "new device"
                                  : "neighborhood changed") +
                             ")");
    }
  }
  plan.explain.push_back("compile: " + std::to_string(plan.reused_devices.size()) +
                         " device(s) reused, " +
                         std::to_string(plan.dirty_devices.size()) +
                         " re-compiled");
}

void plan_lint(const Snapshot& baseline, const std::string& lint_sig,
               const std::map<std::string, std::uint64_t>& template_hashes,
               RecomputePlan& plan) {
  if (baseline.lint_sig != lint_sig) {
    plan.lint_reusable = false;
    plan.explain.emplace_back("lint: template rules re-run (lint options changed)");
    return;
  }
  if (baseline.template_hashes != template_hashes) {
    plan.lint_reusable = false;
    plan.explain.emplace_back("lint: template rules re-run (template sets changed)");
    return;
  }
  plan.lint_reusable = true;
  plan.explain.emplace_back("lint: template-family findings rehydrated from baseline");
}

}  // namespace autonet::incremental

#include "incremental/snapshot.hpp"

#include <algorithm>
#include <functional>

#include "nidb/value.hpp"

namespace autonet::incremental {

std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<std::string> DesignSpec::rule_order() const {
  std::vector<std::string> order{"ospf"};
  if (enable_isis) order.emplace_back("isis");
  order.emplace_back("ebgp");
  order.emplace_back("ibgp");
  order.emplace_back("ip");
  if (enable_dns) order.emplace_back("dns");
  if (enable_rpki) order.emplace_back("rpki");
  return order;
}

namespace {

using graph::AttrMap;
using graph::AttrValue;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Canonical attribute serialization: the variant index disambiguates
/// 1 (int) from "1" (string) so type flips change the hash.
void append_value(std::string& out, const AttrValue& v) {
  out += std::to_string(v.storage().index());
  out += ':';
  out += v.to_string();
}

void append_attrs(std::string& out, const AttrMap& attrs) {
  for (const auto& [key, value] : attrs) {
    out += key;
    out += '=';
    append_value(out, value);
    out += ';';
  }
}

void append_attr(std::string& out, const AttrMap& attrs, std::string_view key) {
  auto it = attrs.find(key);
  out += key;
  out += '=';
  if (it != attrs.end()) append_value(out, it->second);
  out += ';';
}

bool is_router(const Graph& g, NodeId n) {
  auto it = g.node_attrs(n).find("device_type");
  const std::string* s = it == g.node_attrs(n).end() ? nullptr : it->second.as_string();
  return s != nullptr && *s == "router";
}

std::int64_t asn_of(const Graph& g, NodeId n) {
  auto it = g.node_attrs(n).find("asn");
  return it == g.node_attrs(n).end() ? 0 : it->second.as_int().value_or(0);
}

/// Node names sorted, each with the selected attribute slice. An empty
/// key list means "all attributes".
std::string serialize_nodes(const Graph& g,
                            const std::function<bool(NodeId)>& keep,
                            const std::vector<std::string>& keys) {
  std::vector<std::string> lines;
  for (NodeId n : g.nodes()) {
    if (keep && !keep(n)) continue;
    std::string line = g.node_name(n);
    line += '{';
    if (keys.empty()) {
      append_attrs(line, g.node_attrs(n));
    } else {
      for (const auto& key : keys) append_attr(line, g.node_attrs(n), key);
    }
    line += '}';
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// Edges sorted by serialized form. `with_attrs` false keeps endpoints
/// only (for rules that read adjacency but no edge attribute).
std::string serialize_edges(const Graph& g,
                            const std::function<bool(EdgeId)>& keep,
                            bool with_attrs) {
  std::vector<std::string> lines;
  for (EdgeId e : g.edges()) {
    if (keep && !keep(e)) continue;
    std::string a = g.node_name(g.edge_src(e));
    std::string b = g.node_name(g.edge_dst(e));
    if (!g.directed() && b < a) std::swap(a, b);
    std::string line = a + ">" + b + "{";
    if (with_attrs) append_attrs(line, g.edge_attrs(e));
    line += '}';
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string serialize_graph(const Graph& g) {
  std::string out = serialize_nodes(g, nullptr, {});
  out += "--\n";
  out += serialize_edges(g, nullptr, true);
  out += "==\n";
  append_attrs(out, g.data());
  return out;
}

}  // namespace

// Each projection serializes a conservative superset of what the rule
// reads from the post-load phy overlay (see src/design/*.cpp):
//   ospf/isis  router nodes + intra-AS router edges with every attribute
//              (explicit costs/areas live on input edge attributes)
//   ebgp       router nodes + inter-AS router edges with every attribute
//              (policy attributes like local_pref/med ride along)
//   ibgp       router nodes (rr/rr_cluster included); rr-auto adds the
//              full adjacency (centrality) and the selection options
//   ip         all nodes + adjacency only — allocation is topology- and
//              asn-driven, link attributes are never read, so a weight
//              edit keeps the address plan clean
//   dns        the ip projection (build_dns reads the derived ip
//              overlay) — node attributes are already all included
//   rpki       all nodes + edges with every attribute (relation)
std::map<std::string, std::uint64_t> rule_projections(
    const anm::AbstractNetworkModel& anm, const DesignSpec& spec) {
  const Graph& phy = anm.overlay("phy").unwrap();
  auto routers = [&phy](NodeId n) { return is_router(phy, n); };
  auto intra_as = [&phy](EdgeId e) {
    NodeId u = phy.edge_src(e);
    NodeId v = phy.edge_dst(e);
    return is_router(phy, u) && is_router(phy, v) && asn_of(phy, u) == asn_of(phy, v);
  };
  auto inter_as = [&phy](EdgeId e) {
    NodeId u = phy.edge_src(e);
    NodeId v = phy.edge_dst(e);
    return is_router(phy, u) && is_router(phy, v) && asn_of(phy, u) != asn_of(phy, v);
  };

  const std::string router_nodes = serialize_nodes(phy, routers, {});
  const std::string all_nodes = serialize_nodes(phy, nullptr, {});
  const std::string adjacency = serialize_edges(phy, nullptr, false);

  std::map<std::string, std::uint64_t> out;
  for (const std::string& rule : spec.rule_order()) {
    std::string proj = rule + "\n";
    if (rule == "ospf") {
      proj += router_nodes + serialize_edges(phy, intra_as, true);
      proj += "opts:" + std::to_string(spec.ospf.default_area) + "," +
              std::to_string(spec.ospf.default_cost) + "," + spec.ospf.cost_attr +
              "," + spec.ospf.area_attr;
    } else if (rule == "isis") {
      proj += router_nodes + serialize_edges(phy, intra_as, true);
    } else if (rule == "ebgp") {
      proj += router_nodes + serialize_edges(phy, inter_as, true);
    } else if (rule == "ibgp") {
      proj += "mode:" + spec.ibgp + "\n" + router_nodes;
      if (spec.ibgp == "rr-auto") {
        proj += adjacency;
        proj += "opts:" + std::to_string(spec.rr_select.per_as) + "," +
                spec.rr_select.metric + "," +
                std::to_string(spec.rr_select.min_as_size);
      }
    } else if (rule == "ip" || rule == "dns") {
      proj += all_nodes + adjacency;
      proj += "opts:" + spec.ip.infra_block + "," + spec.ip.loopback_block + "," +
              std::to_string(spec.ip.ipv6) + "," + spec.ip.ipv6_infra_block + "," +
              spec.ip.ipv6_loopback_block;
    } else if (rule == "rpki") {
      proj += all_nodes + serialize_edges(phy, nullptr, true);
    }
    out[rule] = fnv1a(proj);
  }
  return out;
}

DeviceSignatures device_signatures(const anm::AbstractNetworkModel& anm,
                                   const std::string& platform) {
  DeviceSignatures out;
  const std::vector<std::string> overlays = anm.overlay_names();
  const Graph& phy = anm.overlay("phy").unwrap();

  // Whole-network digest: every overlay's graph-level data() (allocated
  // IP blocks, ibgp mode, service zones), the service overlays in full
  // (a dns/rpki change repoints resolvers on every device), and the
  // platform (it selects the device compilers).
  std::string global = "platform:" + platform + "\n";
  for (const std::string& name : overlays) {
    const Graph& g = anm.overlay(name).unwrap();
    global += name + ":{";
    append_attrs(global, g.data());
    global += "}\n";
    if (name == "dns" || name == "rpki") {
      global += serialize_graph(g);
    }
  }
  out.global_digest = fnv1a(global);

  const bool has_ip = anm.has_overlay("ip");
  for (NodeId d : phy.nodes()) {
    const std::string& device = phy.node_name(d);
    std::string sig = device + "\n";
    for (const std::string& name : overlays) {
      const Graph& g = anm.overlay(name).unwrap();
      NodeId n = g.find_node(device);
      if (n == graph::kInvalidNode) continue;
      sig += "[" + name + "]{";
      append_attrs(sig, g.node_attrs(n));
      sig += "}\n";
      std::vector<std::string> lines;
      for (EdgeId e : g.incident_edges(n)) {
        NodeId peer = g.edge_other(e, n);
        std::string line;
        line += g.edge_src(e) == n ? ">" : "<";
        line += g.node_name(peer);
        line += '{';
        append_attrs(line, g.edge_attrs(e));
        line += "}peer{";
        append_attrs(line, g.node_attrs(peer));
        line += '}';
        // Two hops through a collision domain: the subnet and every
        // member's interface address feed this device's interface and
        // its neighbors' addresses into the compiled record.
        bool peer_is_cd = false;
        if (auto it = g.node_attrs(peer).find("collision_domain");
            it != g.node_attrs(peer).end()) {
          peer_is_cd = it->second.truthy();
        }
        if (name == "ip" && peer_is_cd) {
          std::vector<std::string> members;
          for (EdgeId me : g.incident_edges(peer)) {
            NodeId member = g.edge_other(me, peer);
            std::string m = g.node_name(member) + "{";
            append_attrs(m, g.edge_attrs(me));
            m += "}{";
            append_attrs(m, g.node_attrs(member));
            m += '}';
            members.push_back(std::move(m));
          }
          std::sort(members.begin(), members.end());
          line += "cd[";
          for (const auto& m : members) line += m;
          line += ']';
        }
        // BGP sessions address the peer's loopback: pull the peer's ip
        // overlay attributes into the signature.
        if ((name == "ebgp" || name == "ibgp") && has_ip) {
          const Graph& ip = anm.overlay("ip").unwrap();
          NodeId pn = ip.find_node(g.node_name(peer));
          if (pn != graph::kInvalidNode) {
            line += "ip{";
            append_attrs(line, ip.node_attrs(pn));
            line += '}';
          }
        }
        lines.push_back(std::move(line));
      }
      std::sort(lines.begin(), lines.end());
      for (const auto& line : lines) {
        sig += line;
        sig += '\n';
      }
    }
    out.sigs[device] = fnv1a(sig);
  }
  return out;
}

std::map<std::string, std::uint64_t> template_base_hashes(
    const render::TemplateStore& store) {
  std::map<std::string, std::uint64_t> out;
  for (const std::string& base : store.bases()) {
    std::string acc = base + "\n";
    for (const auto& entry : store.entries(base)) {
      acc += entry.path;
      acc += entry.is_template ? "|T|" : "|S|";
      acc += entry.static_content;
      acc += '\n';
    }
    out[base] = fnv1a(acc);
  }
  return out;
}

// --- snapshot.json ---------------------------------------------------------
// Hashes are persisted as decimal strings: nidb::Value integers are
// signed 64-bit and FNV values use the full unsigned range.

namespace {

nidb::Value hash_map_to_value(const std::map<std::string, std::uint64_t>& m) {
  nidb::Object out;
  for (const auto& [key, value] : m) out[key] = std::to_string(value);
  return nidb::Value(std::move(out));
}

std::map<std::string, std::uint64_t> hash_map_from_value(const nidb::Value* v) {
  std::map<std::string, std::uint64_t> out;
  if (v == nullptr || !v->is_object()) return out;
  for (const auto& [key, value] : *v->as_object()) {
    if (const auto* s = value.as_string()) out[key] = std::stoull(*s);
  }
  return out;
}

}  // namespace

std::string Snapshot::to_json() const {
  nidb::Object out;
  out["version"] = std::int64_t{1};
  out["input_hash"] = input_hash;
  out["platform"] = platform;
  out["lint_sig"] = lint_sig;
  out["nidb_hash"] = std::to_string(nidb_hash);
  out["data_hash"] = std::to_string(data_hash);
  out["global_digest"] = std::to_string(global_digest);
  out["rule_hashes"] = hash_map_to_value(rule_hashes);
  out["device_sigs"] = hash_map_to_value(device_sigs);
  out["template_hashes"] = hash_map_to_value(template_hashes);
  return nidb::Value(std::move(out)).to_json(true);
}

std::optional<Snapshot> Snapshot::from_json(const std::string& text) {
  nidb::Value doc;
  try {
    doc = nidb::parse_json(text);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!doc.is_object()) return std::nullopt;
  Snapshot snap;
  try {
    if (const auto* s = doc.find("input_hash"); s != nullptr && s->as_string()) {
      snap.input_hash = *s->as_string();
    }
    if (const auto* s = doc.find("platform"); s != nullptr && s->as_string()) {
      snap.platform = *s->as_string();
    }
    if (const auto* s = doc.find("lint_sig"); s != nullptr && s->as_string()) {
      snap.lint_sig = *s->as_string();
    }
    if (const auto* s = doc.find("nidb_hash"); s != nullptr && s->as_string()) {
      snap.nidb_hash = std::stoull(*s->as_string());
    }
    if (const auto* s = doc.find("data_hash"); s != nullptr && s->as_string()) {
      snap.data_hash = std::stoull(*s->as_string());
    }
    if (const auto* s = doc.find("global_digest"); s != nullptr && s->as_string()) {
      snap.global_digest = std::stoull(*s->as_string());
    }
    snap.rule_hashes = hash_map_from_value(doc.find("rule_hashes"));
    snap.device_sigs = hash_map_from_value(doc.find("device_sigs"));
    snap.template_hashes = hash_map_from_value(doc.find("template_hashes"));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return snap;
}

}  // namespace autonet::incremental

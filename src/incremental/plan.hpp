// The recompute plan: which design rules, devices, and lint rules an
// incremental run may satisfy from its baseline, derived from snapshot
// hash comparison plus the static dirty-propagation edges documented in
// docs/incremental.md (dns depends on ip; a global-digest change
// dirties every device).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "incremental/snapshot.hpp"

namespace autonet::incremental {

struct RecomputePlan {
  /// "warm" (full restore), "partial" (per-phase reuse), or "cold".
  std::string mode = "cold";

  std::vector<std::string> reused_rules;  // design rules, pipeline order
  std::vector<std::string> dirty_rules;
  std::set<std::string> reused_devices;   // compile + render reuse set
  std::set<std::string> dirty_devices;
  /// Template-family lint rules may rehydrate from the baseline report.
  bool lint_reusable = false;

  /// One line per decision, for `autonet run --incremental --explain`.
  std::vector<std::string> explain;

  [[nodiscard]] bool rule_reused(std::string_view name) const;
};

/// Compares baseline vs current rule projections. `order` is the rule
/// execution order for this run; a rule missing from either snapshot is
/// dirty, and a rule whose dependency is dirty is dirty.
void plan_design(const Snapshot& baseline,
                 const std::map<std::string, std::uint64_t>& current,
                 const std::vector<std::string>& order, RecomputePlan& plan);

/// Compares baseline vs current device signatures. A global-digest
/// mismatch (overlay data, service overlays, platform) empties the reuse
/// set: the compiler's network-wide sections read all of it.
void plan_devices(const Snapshot& baseline, const DeviceSignatures& current,
                  RecomputePlan& plan);

/// Whether the baseline lint report can rehydrate template-family
/// findings: lint options and the template sets must be unchanged.
void plan_lint(const Snapshot& baseline, const std::string& lint_sig,
               const std::map<std::string, std::uint64_t>& template_hashes,
               RecomputePlan& plan);

}  // namespace autonet::incremental

// Typed diffs between two attribute graphs: the unit of work the
// incremental pipeline plans around. `autonet diff <a> <b>` prints one,
// and hot-apply (hot_apply.hpp) maps one onto a running emulation.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace autonet::incremental {

enum class DeltaKind {
  kNodeAdded,
  kNodeRemoved,
  kNodeAttrChanged,
  kLinkAdded,
  kLinkRemoved,
  kLinkAttrChanged,
};

[[nodiscard]] const char* to_string(DeltaKind kind);

struct Delta {
  DeltaKind kind;
  /// Node deltas: the node name. Link deltas: empty.
  std::string node;
  /// Link deltas: endpoint names (canonical order for undirected graphs).
  std::string src;
  std::string dst;
  /// Attr-changed deltas: the key and both rendered values ("" = unset).
  std::string attr;
  std::string old_value;
  std::string new_value;
};

struct DeltaSet {
  std::vector<Delta> deltas;

  [[nodiscard]] bool empty() const { return deltas.empty(); }
  [[nodiscard]] std::size_t size() const { return deltas.size(); }
  /// Human-readable, one line per delta ("~ link a -- b: ospf_cost 1 -> 5").
  [[nodiscard]] std::string to_text() const;
  /// Deterministic JSON array of typed delta objects.
  [[nodiscard]] std::string to_json(bool pretty = false) const;
};

/// Structural + attribute diff from `a` (baseline) to `b` (edited).
/// Nodes match by name; parallel edges between the same endpoints match
/// positionally. Deltas come out in a deterministic order: node changes
/// sorted by name, then link changes sorted by endpoints.
[[nodiscard]] DeltaSet diff_graphs(const graph::Graph& a, const graph::Graph& b);

}  // namespace autonet::incremental

#include "incremental/hot_apply.hpp"

#include <stdexcept>

#include "obs/recorder.hpp"
#include "obs/registry.hpp"

namespace autonet::incremental {

std::string HotAction::to_string() const {
  switch (kind) {
    case Kind::kLinkCost:
      return "set-link-cost " + a + " -- " + b + " = " + std::to_string(cost);
    case Kind::kFailLink:
      return "fail-link " + a + " -- " + b;
  }
  return "unknown";
}

HotApplyPlan plan_hot_apply(const DeltaSet& delta, const std::string& cost_attr) {
  HotApplyPlan plan;
  for (const Delta& d : delta.deltas) {
    switch (d.kind) {
      case DeltaKind::kLinkAttrChanged:
        if (d.attr == cost_attr && !d.new_value.empty()) {
          std::int64_t cost = 0;
          try {
            cost = std::stoll(d.new_value);
          } catch (const std::exception&) {
            plan.unsupported.push_back("~ link " + d.src + " -- " + d.dst + ": " +
                                       d.attr + " is not an integer cost");
            break;
          }
          plan.actions.push_back(
              {HotAction::Kind::kLinkCost, d.src, d.dst, cost});
        } else {
          plan.unsupported.push_back("~ link " + d.src + " -- " + d.dst + ": " +
                                     d.attr + " has no scoped action");
        }
        break;
      case DeltaKind::kLinkRemoved:
        plan.actions.push_back({HotAction::Kind::kFailLink, d.src, d.dst, 0});
        break;
      case DeltaKind::kLinkAdded:
        plan.unsupported.push_back("+ link " + d.src + " -- " + d.dst +
                                   ": new links need configured interfaces");
        break;
      case DeltaKind::kNodeAdded:
      case DeltaKind::kNodeRemoved:
      case DeltaKind::kNodeAttrChanged:
        plan.unsupported.push_back("node change on " + d.node +
                                   ": device-level changes need a redeploy");
        break;
    }
  }
  return plan;
}

HotApplyResult hot_apply(emulation::EmulatedNetwork& net, const HotApplyPlan& plan,
                         std::size_t max_bgp_rounds, core::RunControl* control) {
  HotApplyResult result;
  obs::Registry& obs = obs::Registry::current();
  for (const HotAction& action : plan.actions) {
    bool ok = false;
    switch (action.kind) {
      case HotAction::Kind::kLinkCost:
        ok = net.set_link_cost(action.a, action.b, action.cost);
        break;
      case HotAction::Kind::kFailLink:
        ok = net.fail_link(action.a, action.b);
        break;
    }
    if (ok) {
      ++result.applied;
      obs.counter("incr.hot_apply").inc();
      obs::record("incr", "hot_apply", {{"action", action.to_string()}});
    } else {
      ++result.failed;
      obs::record("incr", obs::Severity::kWarning, "hot_apply",
                  {{"action", action.to_string()}, {"outcome", "rejected"}});
    }
  }
  // One reconvergence settles all applied actions: partial SPF + BGP
  // re-decision happen inside start(), scoped to the running topology —
  // no reboot, no config re-parse.
  result.convergence = net.start(max_bgp_rounds, control);
  return result;
}

}  // namespace autonet::incremental

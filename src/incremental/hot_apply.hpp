// Hot-apply: maps an input-graph DeltaSet onto a running emulation as
// scoped actions instead of a full reboot, reusing the fail/restore
// machinery the incident runner drives. The action table (see
// docs/incremental.md):
//   link cost change   -> set_link_cost on both endpoints + reconverge
//   link removed       -> fail_link + reconverge
//   anything else      -> not hot-appliable (full redeploy)
// Routers keep their identity, FIB history, and BGP sessions; one
// reconvergence pass at the end settles every applied action.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "emulation/network.hpp"
#include "incremental/delta.hpp"

namespace autonet::incremental {

struct HotAction {
  enum class Kind { kLinkCost, kFailLink };
  Kind kind;
  std::string a;
  std::string b;
  std::int64_t cost = 0;  // kLinkCost only

  [[nodiscard]] std::string to_string() const;
};

struct HotApplyPlan {
  std::vector<HotAction> actions;
  /// Deltas with no scoped action, each rendered with the reason; any
  /// entry here means the set is not hot-appliable.
  std::vector<std::string> unsupported;

  [[nodiscard]] bool applicable() const {
    return unsupported.empty() && !actions.empty();
  }
};

/// Plans scoped actions for `delta`. `cost_attr` is the input edge
/// attribute the OSPF design rule reads as the link cost (
/// design::OspfOptions::cost_attr); only changes to that attribute map
/// to kLinkCost.
[[nodiscard]] HotApplyPlan plan_hot_apply(const DeltaSet& delta,
                                          const std::string& cost_attr);

struct HotApplyResult {
  std::size_t applied = 0;
  std::size_t failed = 0;  // actions the network rejected (unknown link)
  emulation::ConvergenceReport convergence;
};

/// Applies every action, then reconverges once. Publishes one
/// "incr.hot_apply" obs counter increment per applied action.
HotApplyResult hot_apply(emulation::EmulatedNetwork& net, const HotApplyPlan& plan,
                         std::size_t max_bgp_rounds = 128,
                         core::RunControl* control = nullptr);

}  // namespace autonet::incremental

#include "incremental/delta.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "nidb/value.hpp"

namespace autonet::incremental {

using graph::AttrMap;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

const char* to_string(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kNodeAdded: return "node_added";
    case DeltaKind::kNodeRemoved: return "node_removed";
    case DeltaKind::kNodeAttrChanged: return "node_attr_changed";
    case DeltaKind::kLinkAdded: return "link_added";
    case DeltaKind::kLinkRemoved: return "link_removed";
    case DeltaKind::kLinkAttrChanged: return "link_attr_changed";
  }
  return "unknown";
}

namespace {

void diff_attrs(const AttrMap& a, const AttrMap& b, DeltaKind kind,
                const std::string& node, const std::string& src,
                const std::string& dst, std::vector<Delta>& out) {
  std::set<std::string> keys;
  for (const auto& [key, value] : a) keys.insert(key);
  for (const auto& [key, value] : b) keys.insert(key);
  for (const auto& key : keys) {
    auto ia = a.find(key);
    auto ib = b.find(key);
    const bool in_a = ia != a.end();
    const bool in_b = ib != b.end();
    if (in_a && in_b && ia->second == ib->second) continue;
    Delta d;
    d.kind = kind;
    d.node = node;
    d.src = src;
    d.dst = dst;
    d.attr = key;
    if (in_a) d.old_value = ia->second.to_string();
    if (in_b) d.new_value = ib->second.to_string();
    out.push_back(std::move(d));
  }
}

/// Edges keyed by canonical endpoint pair, in insertion order per pair so
/// parallel edges pair up positionally.
std::map<std::pair<std::string, std::string>, std::vector<EdgeId>> edges_by_pair(
    const Graph& g) {
  std::map<std::pair<std::string, std::string>, std::vector<EdgeId>> out;
  for (EdgeId e : g.edges()) {
    std::string u = g.node_name(g.edge_src(e));
    std::string v = g.node_name(g.edge_dst(e));
    if (!g.directed() && v < u) std::swap(u, v);
    out[{std::move(u), std::move(v)}].push_back(e);
  }
  return out;
}

}  // namespace

DeltaSet diff_graphs(const Graph& a, const Graph& b) {
  DeltaSet out;

  std::set<std::string> names_a;
  std::set<std::string> names_b;
  for (NodeId n : a.nodes()) names_a.insert(a.node_name(n));
  for (NodeId n : b.nodes()) names_b.insert(b.node_name(n));

  for (const auto& name : names_a) {
    if (names_b.contains(name)) {
      diff_attrs(a.node_attrs(a.find_node(name)), b.node_attrs(b.find_node(name)),
                 DeltaKind::kNodeAttrChanged, name, "", "", out.deltas);
    } else {
      out.deltas.push_back({DeltaKind::kNodeRemoved, name, "", "", "", "", ""});
    }
  }
  for (const auto& name : names_b) {
    if (!names_a.contains(name)) {
      out.deltas.push_back({DeltaKind::kNodeAdded, name, "", "", "", "", ""});
    }
  }

  const auto pairs_a = edges_by_pair(a);
  const auto pairs_b = edges_by_pair(b);
  std::set<std::pair<std::string, std::string>> pairs;
  for (const auto& [pair, edges] : pairs_a) pairs.insert(pair);
  for (const auto& [pair, edges] : pairs_b) pairs.insert(pair);
  for (const auto& pair : pairs) {
    auto ia = pairs_a.find(pair);
    auto ib = pairs_b.find(pair);
    const std::size_t na = ia == pairs_a.end() ? 0 : ia->second.size();
    const std::size_t nb = ib == pairs_b.end() ? 0 : ib->second.size();
    for (std::size_t i = 0; i < std::max(na, nb); ++i) {
      if (i < na && i < nb) {
        diff_attrs(a.edge_attrs(ia->second[i]), b.edge_attrs(ib->second[i]),
                   DeltaKind::kLinkAttrChanged, "", pair.first, pair.second,
                   out.deltas);
      } else if (i < na) {
        out.deltas.push_back(
            {DeltaKind::kLinkRemoved, "", pair.first, pair.second, "", "", ""});
      } else {
        out.deltas.push_back(
            {DeltaKind::kLinkAdded, "", pair.first, pair.second, "", "", ""});
      }
    }
  }
  return out;
}

std::string DeltaSet::to_text() const {
  std::string out;
  for (const Delta& d : deltas) {
    switch (d.kind) {
      case DeltaKind::kNodeAdded: out += "+ node " + d.node; break;
      case DeltaKind::kNodeRemoved: out += "- node " + d.node; break;
      case DeltaKind::kNodeAttrChanged:
        out += "~ node " + d.node + ": " + d.attr + " " +
               (d.old_value.empty() ? "(unset)" : d.old_value) + " -> " +
               (d.new_value.empty() ? "(unset)" : d.new_value);
        break;
      case DeltaKind::kLinkAdded: out += "+ link " + d.src + " -- " + d.dst; break;
      case DeltaKind::kLinkRemoved: out += "- link " + d.src + " -- " + d.dst; break;
      case DeltaKind::kLinkAttrChanged:
        out += "~ link " + d.src + " -- " + d.dst + ": " + d.attr + " " +
               (d.old_value.empty() ? "(unset)" : d.old_value) + " -> " +
               (d.new_value.empty() ? "(unset)" : d.new_value);
        break;
    }
    out += '\n';
  }
  if (deltas.empty()) out = "no differences\n";
  return out;
}

std::string DeltaSet::to_json(bool pretty) const {
  nidb::Array arr;
  for (const Delta& d : deltas) {
    nidb::Object obj;
    obj["kind"] = std::string(to_string(d.kind));
    if (!d.node.empty()) obj["node"] = d.node;
    if (!d.src.empty()) {
      obj["src"] = d.src;
      obj["dst"] = d.dst;
    }
    if (!d.attr.empty()) {
      obj["attr"] = d.attr;
      obj["old"] = d.old_value;
      obj["new"] = d.new_value;
    }
    arr.emplace_back(std::move(obj));
  }
  return nidb::Value(std::move(arr)).to_json(pretty);
}

}  // namespace autonet::incremental

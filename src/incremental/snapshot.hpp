// Content-addressed snapshots of the pipeline's inputs: per-design-rule
// projection hashes over the post-load ANM, per-device neighborhood
// signatures over the designed ANM, and per-template-base version
// hashes — all FNV-1a 64, byte-compatible with core::checkpoint_hash and
// the analysis FibCache keys. Two snapshots diff into a minimal
// recompute plan (see plan.hpp): a design rule whose projection hash is
// unchanged re-reads nothing it has not already read, so its baseline
// overlay can be copied; a device whose signature is unchanged compiles
// and renders to the same bytes, so its baseline records can be reused.
//
// Every projection is a conservative over-approximation of the rule's or
// compiler's true read set: a hash match guarantees identical output, a
// mismatch merely forces recomputation. The equivalence suite
// (tests/incremental_test.cpp) holds the byte-identity contract.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "anm/anm.hpp"
#include "design/bgp.hpp"
#include "design/igp.hpp"
#include "design/ip_allocation.hpp"
#include "render/renderer.hpp"

namespace autonet::incremental {

/// FNV-1a 64-bit, restated (autonet_core depends on this library, not
/// the other way round) — the same scheme as core::checkpoint_hash.
[[nodiscard]] std::uint64_t fnv1a(std::string_view data);

/// What the design phase is about to run, as snapshot input. Mirrors the
/// design-relevant subset of core::WorkflowOptions without depending on
/// core (which links this library).
struct DesignSpec {
  std::string ibgp = "mesh";  // "mesh", "rr", or "rr-auto"
  bool enable_isis = false;
  bool enable_dns = false;
  bool enable_rpki = false;
  design::OspfOptions ospf;
  design::IpOptions ip;
  design::RrSelectOptions rr_select;

  /// Rule names in pipeline execution order for this spec.
  [[nodiscard]] std::vector<std::string> rule_order() const;
};

/// Per-device signatures plus the whole-network digest they are only
/// valid under: any global change (overlay data() such as allocated IP
/// blocks, the dns/rpki service overlays, the target platform) dirties
/// every device, because the platform compiler's network-wide sections
/// (links table, cross-connects, service pointers) read all of it.
struct DeviceSignatures {
  std::map<std::string, std::uint64_t> sigs;
  std::uint64_t global_digest = 0;
};

/// One pipeline snapshot, persisted as snapshot.json next to the phase
/// checkpoints it describes.
struct Snapshot {
  std::string input_hash;   // decimal FNV of the serialized input graph
  std::string platform;
  std::string lint_sig;     // lint-option slice of the options signature
  std::uint64_t nidb_hash = 0;   // content hash of the compiled NIDB
  std::uint64_t data_hash = 0;   // NIDB data() section alone
  std::uint64_t global_digest = 0;
  std::map<std::string, std::uint64_t> rule_hashes;
  std::map<std::string, std::uint64_t> device_sigs;
  std::map<std::string, std::uint64_t> template_hashes;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static std::optional<Snapshot> from_json(const std::string& text);
};

/// Per-design-rule projection hashes over the post-load ANM ('input' +
/// 'phy' only; must run before any design rule mutates phy).
[[nodiscard]] std::map<std::string, std::uint64_t> rule_projections(
    const anm::AbstractNetworkModel& anm, const DesignSpec& spec);

/// Per-device neighborhood signatures over the fully designed ANM: the
/// device's node attributes and incident edges in every overlay, its
/// neighbors' overlay attributes, two hops through collision domains in
/// the ip overlay (subnets and every member's interface address), and
/// BGP peers' loopbacks.
[[nodiscard]] DeviceSignatures device_signatures(
    const anm::AbstractNetworkModel& anm, const std::string& platform);

/// Version hash per template base (entry paths, kind, and static
/// content). Builtin templates carry no retained source, so a compiled
/// template hashes by identity of its entry path — a version marker
/// that distinguishes template-set shape changes, not edits to an
/// individual builtin (those ship in a new binary; see
/// docs/incremental.md, "Limits").
[[nodiscard]] std::map<std::string, std::uint64_t> template_base_hashes(
    const render::TemplateStore& store);

}  // namespace autonet::incremental

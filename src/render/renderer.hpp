// The renderer (paper Fig. 3): pushes each device's Resource-Database
// record through its template set ("render.base") into the configuration
// tree, then renders the platform-level artefacts (Netkit lab.conf,
// Dynagen .net file, the network-wide C-BGP script).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/cancel.hpp"
#include "nidb/nidb.hpp"
#include "render/config_tree.hpp"
#include "templates/template.hpp"

namespace autonet::render {

/// A named set of template files plus verbatim static files (paper §5.5:
/// "the input folder is a user-specified directory containing both static
/// files and template files, which is copied to the output folder").
class TemplateStore {
 public:
  /// Registers a template at `base` (e.g. "templates/quagga") rendering
  /// to the relative output path `path`. Throws TemplateError on parse
  /// errors.
  void add(std::string_view base, std::string_view path, std::string_view text);
  /// Registers a static file copied verbatim.
  void add_static(std::string_view base, std::string_view path, std::string text);
  /// Loads a directory: "*.tmpl" files become templates (suffix
  /// stripped), everything else is static.
  void add_directory(std::string_view base, const std::string& dir);

  [[nodiscard]] bool has_base(std::string_view base) const;

  /// The reference template sets for quagga / ios / junos / cbgp / linux
  /// plus the platform artefacts ("platform/netkit", ...).
  static const TemplateStore& builtins();

  struct Entry {
    std::string path;
    bool is_template = false;
    templates::Template tmpl;    // valid when is_template
    std::string static_content;  // valid otherwise
  };
  [[nodiscard]] const std::vector<Entry>& entries(std::string_view base) const;
  /// All registered base names, in order (verify's template lint walks
  /// every set).
  [[nodiscard]] std::vector<std::string> bases() const;

 private:
  std::map<std::string, std::vector<Entry>, std::less<>> sets_;
};

struct RenderStats {
  std::size_t devices = 0;
  std::size_t files = 0;
  std::size_t items = 0;  // files + directories, the §3.2 metric
  std::size_t bytes = 0;
};

/// Incremental-render directive: devices listed in `devices` copy their
/// rendered files from `baseline` instead of re-running their templates.
/// A device whose template set references the network-wide `data` tree
/// renders fresh anyway when `data_changed` is set — per-record reuse
/// is only sound for templates that read nothing but `node`. Platform
/// artefacts always render fresh.
struct RenderReuse {
  const ConfigTree* baseline = nullptr;
  const std::set<std::string>* devices = nullptr;
  bool data_changed = false;
  /// Incremented once per device actually reused (optional).
  std::size_t* reused_out = nullptr;
};

/// Renders the whole NIDB. Device records render under their
/// `render.base_dst_folder`; platform templates render at the root.
/// The context exposes `node` (device record), `data` (network data),
/// and for platform templates `devices` (array of all records). An
/// optional RunControl is polled per device, so cancellation interrupts
/// a long render within one device's worth of work. `reuse`, when
/// given, copies unchanged devices' files from a baseline tree
/// (incremental pipeline).
[[nodiscard]] ConfigTree render_configs(const nidb::Nidb& nidb,
                                        const TemplateStore& store =
                                            TemplateStore::builtins(),
                                        core::RunControl* control = nullptr,
                                        const RenderReuse* reuse = nullptr);

[[nodiscard]] RenderStats stats_of(const nidb::Nidb& nidb, const ConfigTree& tree);

namespace detail {
/// Registers the built-in template texts (defined in
/// builtin_templates.cpp) into a store.
void register_builtin_templates(TemplateStore& store);
}  // namespace detail

}  // namespace autonet::render

// An in-memory tree of rendered configuration files. The paper's §3.2
// experiment counts the rendered corpus ("20MB uncompressed, with 16,144
// items"), and deployment archives it — both work on this structure
// before (optionally) touching the filesystem.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace autonet::render {

class ConfigTree {
 public:
  /// Stores (or replaces) a file at a '/'-separated relative path.
  void put(std::string path, std::string content);
  [[nodiscard]] const std::string* get(std::string_view path) const;
  [[nodiscard]] bool contains(std::string_view path) const {
    return get(path) != nullptr;
  }

  /// All paths in lexical order.
  [[nodiscard]] std::vector<std::string> paths() const;
  /// Paths under a directory prefix ("localhost/netkit/as100r1").
  [[nodiscard]] std::vector<std::string> paths_under(std::string_view prefix) const;

  /// Items = files plus the distinct directories containing them (the
  /// unit §3.2 counts).
  [[nodiscard]] std::size_t item_count() const;
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }
  [[nodiscard]] std::size_t total_bytes() const;

  /// Writes every file below `root`, creating directories as needed.
  void write_to_disk(const std::string& root) const;
  /// Reads every regular file below `root` into a tree.
  static ConfigTree read_from_disk(const std::string& root);

  [[nodiscard]] auto begin() const { return files_.begin(); }
  [[nodiscard]] auto end() const { return files_.end(); }

  friend bool operator==(const ConfigTree&, const ConfigTree&) = default;

 private:
  std::map<std::string, std::string> files_;
};

}  // namespace autonet::render

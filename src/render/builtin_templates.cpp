// Reference template sets (paper §4.1: templates "closely mirror the
// target configuration language"). One set per device syntax plus the
// platform-level artefacts. Users can override any of these by
// registering their own TemplateStore entries or directories.
#include "render/renderer.hpp"

namespace autonet::render::detail {

namespace {

// --- Quagga (Netkit's default syntax) ---------------------------------------

constexpr const char* kQuaggaDaemons = R"(zebra=yes
% if node.ospf:
ospfd=yes
% else:
ospfd=no
% endif
% if node.isis:
isisd=yes
% else:
isisd=no
% endif
% if node.bgp:
bgpd=yes
% else:
bgpd=no
% endif
)";

constexpr const char* kQuaggaZebra = R"(hostname ${node.zebra.hostname}
password ${node.zebra.password}
enable password ${node.zebra.password}
!
% for interface in node.interfaces:
interface ${interface.id}
 description ${interface.description}
!
% endfor
log file /var/log/zebra/zebra.log
)";

constexpr const char* kQuaggaOspfd = R"(% if node.ospf:
hostname ${node.zebra.hostname}
password ${node.zebra.password}
!
% for interface in node.interfaces:
interface ${interface.id}
 ip ospf cost ${interface.ospf_cost}
!
% endfor
router ospf
% if node.ospf.router_id:
 ospf router-id ${node.ospf.router_id}
% endif
% for link in node.ospf.ospf_links:
 network ${link.network | cidr} area ${link.area}
% endfor
!
log file /var/log/zebra/ospfd.log
% endif
)";

constexpr const char* kQuaggaIsisd = R"(% if node.isis:
hostname ${node.zebra.hostname}
password ${node.zebra.password}
!
% for interface in node.isis.interfaces:
interface ${interface.id}
 ip router isis autonet
 isis metric ${interface.metric}
!
% endfor
router isis autonet
 net ${node.isis.net}
 is-type ${node.isis.level}
!
% endif
)";

constexpr const char* kQuaggaBgpd = R"(% if node.bgp:
hostname ${node.zebra.hostname}
password ${node.zebra.password}
!
router bgp ${node.bgp.asn}
% if node.bgp.router_id:
 bgp router-id ${node.bgp.router_id}
% endif
% for net in node.bgp.networks:
 network ${net | cidr}
% endfor
% for n in node.bgp.ibgp_neighbors:
 neighbor ${n.neighbor} remote-as ${n.remote_as}
 neighbor ${n.neighbor} description ${n.description}
 neighbor ${n.neighbor} update-source ${n.update_source}
% if n.next_hop_self:
 neighbor ${n.neighbor} next-hop-self
% endif
% if n.rr_client:
 neighbor ${n.neighbor} route-reflector-client
% endif
% endfor
% for n in node.bgp.ebgp_neighbors:
 neighbor ${n.neighbor} remote-as ${n.remote_as}
 neighbor ${n.neighbor} description ${n.description}
% if n.only_local_out:
 neighbor ${n.neighbor} route-map only-local out
% endif
% if n.local_pref_in:
 neighbor ${n.neighbor} route-map lp-${n.neighbor} in
% endif
% if n.med_out:
 neighbor ${n.neighbor} route-map med-${n.neighbor} out
% endif
% endfor
!
% if node.bgp.no_transit:
ip as-path access-list 1 permit ^$
route-map only-local permit 10
 match as-path 1
!
% endif
% for n in node.bgp.ebgp_neighbors:
% if n.local_pref_in:
route-map lp-${n.neighbor} permit 10
 set local-preference ${n.local_pref_in}
!
% endif
% if n.med_out:
route-map med-${n.neighbor} permit 10
 set metric ${n.med_out}
!
% endif
% endfor
log file /var/log/zebra/bgpd.log
% endif
)";

constexpr const char* kNetkitStartup = R"(% for interface in node.interfaces:
/sbin/ifconfig ${interface.id} ${interface.ip_address} netmask ${interface.subnet | netmask} up
% if interface.ip6_address:
/sbin/ifconfig ${interface.id} add ${interface.ip6_address}
% endif
% endfor
% if node.loopback:
/sbin/ifconfig lo:1 ${node.loopback | ip} netmask 255.255.255.255 up
% endif
% if node.dns:
% if node.dns.server:
/etc/init.d/dnsmasq start
% endif
% endif
/etc/init.d/zebra start
)";

constexpr const char* kResolvConf = R"(% if node.dns:
% if node.dns.resolver:
nameserver ${node.dns.resolver}
% endif
% endif
)";

constexpr const char* kDnsmasqConf = R"(% if node.dns:
% if node.dns.server:
domain=${node.dns.zone}
expand-hosts
no-resolv
% for r in node.dns.records:
address=/${r.name}.${node.dns.zone}/${r.address}
% endfor
% endif
% endif
)";

constexpr const char* kRpkiConf = R"(% if node.rpki:
role ${node.rpki.role}
% if node.rpki.trust_anchor:
trust-anchor yes
% endif
% for c in node.rpki.children:
${c.relation} ${c.name}
% endfor
% endif
)";

// --- Cisco IOS ---------------------------------------------------------------

constexpr const char* kIosConfig = R"(!
version ${node.ios.version}
service timestamps debug datetime msec
hostname ${node.hostname}
!
% if node.loopback:
interface ${node.loopback_id}
 ip address ${node.loopback | ip} 255.255.255.255
!
% endif
% for interface in node.interfaces:
interface ${interface.id}
 description ${interface.description}
 ip address ${interface.ip_address} ${interface.subnet | netmask}
% if node.ospf:
 ip ospf cost ${interface.ospf_cost}
% endif
 no shutdown
!
% endfor
% if node.ospf:
router ospf ${node.ospf.process_id}
% if node.ospf.router_id:
 router-id ${node.ospf.router_id}
% endif
% for link in node.ospf.ospf_links:
 network ${link.network | network} ${link.network | wildcard} area ${link.area}
% endfor
!
% endif
% if node.isis:
router isis
 net ${node.isis.net}
 is-type ${node.isis.level}
!
% endif
% if node.bgp:
router bgp ${node.bgp.asn}
% if node.bgp.router_id:
 bgp router-id ${node.bgp.router_id}
% endif
% for net in node.bgp.networks:
 network ${net | network} mask ${net | netmask}
% endfor
% for n in node.bgp.ibgp_neighbors:
 neighbor ${n.neighbor} remote-as ${n.remote_as}
 neighbor ${n.neighbor} description ${n.description}
 neighbor ${n.neighbor} update-source ${n.update_source}
% if n.next_hop_self:
 neighbor ${n.neighbor} next-hop-self
% endif
% if n.rr_client:
 neighbor ${n.neighbor} route-reflector-client
% endif
% endfor
% for n in node.bgp.ebgp_neighbors:
 neighbor ${n.neighbor} remote-as ${n.remote_as}
 neighbor ${n.neighbor} description ${n.description}
% if n.only_local_out:
 neighbor ${n.neighbor} route-map only-local out
% endif
% if n.local_pref_in:
 neighbor ${n.neighbor} route-map lp-${n.neighbor} in
% endif
% if n.med_out:
 neighbor ${n.neighbor} route-map med-${n.neighbor} out
% endif
% endfor
!
% if node.bgp.no_transit:
ip as-path access-list 1 permit ^$
route-map only-local permit 10
 match as-path 1
!
% endif
% for n in node.bgp.ebgp_neighbors:
% if n.local_pref_in:
route-map lp-${n.neighbor} permit 10
 set local-preference ${n.local_pref_in}
!
% endif
% if n.med_out:
route-map med-${n.neighbor} permit 10
 set metric ${n.med_out}
!
% endif
% endfor
% endif
end
)";

// --- Juniper Junos -----------------------------------------------------------

constexpr const char* kJunosConfig = R"(system {
    host-name ${node.hostname};
}
interfaces {
% for interface in node.interfaces:
    ${interface.id} {
        description "${interface.description}";
        unit 0 {
            family inet {
                address ${interface.ip_address}/${interface.prefixlen};
            }
% if interface.ip6_address:
            family inet6 {
                address ${interface.ip6_address};
            }
% endif
        }
    }
% endfor
% if node.loopback:
    ${node.loopback_id} {
        unit 0 {
            family inet {
                address ${node.loopback};
            }
        }
    }
% endif
}
routing-options {
% if node.bgp:
    autonomous-system ${node.bgp.asn};
% if node.bgp.networks | length:
    static {
% for net in node.bgp.networks:
        route ${net | cidr} discard;
% endfor
    }
% endif
% endif
% if node.ospf:
% if node.ospf.router_id:
    router-id ${node.ospf.router_id};
% endif
% endif
}
protocols {
% if node.ospf:
    ospf {
        area 0.0.0.0 {
% for link in node.ospf.ospf_links:
% if link.interface:
            interface ${link.interface}.0 {
                metric ${link.cost};
            }
% endif
% endfor
        }
    }
% endif
% if node.bgp:
    bgp {
        group ibgp {
            type internal;
% if node.loopback:
            local-address ${node.loopback | ip};
% endif
% for n in node.bgp.ibgp_neighbors:
            neighbor ${n.neighbor} {
                description "${n.description}";
% if n.rr_client:
                cluster ${node.bgp.router_id};
% endif
            }
% endfor
        }
        group ebgp {
            type external;
% if node.bgp.no_transit:
            export only-local;
% endif
% for n in node.bgp.ebgp_neighbors:
            neighbor ${n.neighbor} {
                description "${n.description}";
% if n.local_pref_in:
                import lp-${n.neighbor};
% endif
% if n.med_out:
                metric-out ${n.med_out};
% endif
                peer-as ${n.remote_as};
            }
% endfor
        }
    }
% endif
}
% if node.bgp:
% if node.bgp.no_transit:
policy-options {
    policy-statement only-local {
        term locals {
            from as-path empty;
            then accept;
        }
        then reject;
    }
}
% endif
% for n in node.bgp.ebgp_neighbors:
% if n.local_pref_in:
policy-options {
    policy-statement lp-${n.neighbor} {
        then {
            local-preference ${n.local_pref_in};
            accept;
        }
    }
}
% endif
% endfor
% endif
)";

// --- C-BGP ---------------------------------------------------------------

// Per-device fragment (kept for inspection; the solver consumes the
// network-wide script below).
constexpr const char* kCbgpNode = R"(% if node.cbgp_id:
# node ${node.hostname}
net add node ${node.cbgp_id}
% if node.bgp:
bgp add router ${node.bgp.asn} ${node.cbgp_id}
% endif
% endif
)";

constexpr const char* kCbgpNetwork = R"(# C-BGP network script (generated)
% for node in devices:
% if node.cbgp_id:
net add node ${node.cbgp_id}
% endif
% endfor
% for asn in data.asns:
net add domain ${asn} igp
% endfor
% for node in devices:
% if node.cbgp_id:
net node ${node.cbgp_id} domain ${node.asn}
% endif
% endfor
% for link in data.links:
% if link.src_loopback:
% if link.dst_loopback:
net add link ${link.src_loopback} ${link.dst_loopback}
net link ${link.src_loopback} ${link.dst_loopback} igp-weight --bidir ${link.cost}
% endif
% endif
% endfor
% for node in devices:
% if node.cbgp_id:
% if node.bgp:
bgp add router ${node.bgp.asn} ${node.cbgp_id}
bgp router ${node.cbgp_id}
% for net in node.bgp.networks:
  add network ${net | cidr}
% endfor
% for n in node.bgp.ibgp_neighbors:
  add peer ${n.remote_as} ${n.neighbor}
% if n.rr_client:
  peer ${n.neighbor} rr-client
% endif
  peer ${n.neighbor} up
% endfor
% for n in node.bgp.ebgp_neighbors:
  add peer ${n.remote_as} ${n.neighbor}
% if n.only_local_out:
  peer ${n.neighbor} filter out path-empty
% endif
% if n.local_pref_in:
  peer ${n.neighbor} local-pref ${n.local_pref_in}
% endif
% if n.med_out:
  peer ${n.neighbor} med ${n.med_out}
% endif
  peer ${n.neighbor} up
% endfor
  exit
% endif
% endif
% endfor
% for asn in data.asns:
net domain ${asn} compute
% endfor
sim run
)";

// --- Platform artefacts --------------------------------------------------

constexpr const char* kNetkitLabConf = R"(LAB_DESCRIPTION="generated by autonet"
LAB_VERSION=1.0
LAB_AUTHOR=autonet
% for entry in data.lab_conf:
${entry.machine}[${entry.interface_index}]=${entry.collision_domain}
% endfor
)";

constexpr const char* kDynagenNet = R"([localhost]
% for r in data.dynagen_routers:
    [[router ${r.name}]]
        model = ${r.model}
% endfor
)";

// --- Linux servers ---------------------------------------------------------

constexpr const char* kLinuxStartup = R"(% for interface in node.interfaces:
/sbin/ifconfig ${interface.id} ${interface.ip_address} netmask ${interface.subnet | netmask} up
% endfor
% if node.dns:
% if node.dns.server:
/etc/init.d/dnsmasq start
% endif
% endif
)";

}  // namespace

void register_builtin_templates(TemplateStore& store) {
  store.add("templates/quagga", "etc/quagga/daemons", kQuaggaDaemons);
  store.add("templates/quagga", "etc/quagga/zebra.conf", kQuaggaZebra);
  store.add("templates/quagga", "etc/quagga/ospfd.conf", kQuaggaOspfd);
  store.add("templates/quagga", "etc/quagga/isisd.conf", kQuaggaIsisd);
  store.add("templates/quagga", "etc/quagga/bgpd.conf", kQuaggaBgpd);
  store.add("templates/quagga", ".startup", kNetkitStartup);
  store.add("templates/quagga", "etc/resolv.conf", kResolvConf);
  store.add("templates/quagga", "etc/dnsmasq.conf", kDnsmasqConf);
  store.add("templates/quagga", "etc/rpki.conf", kRpkiConf);

  store.add("templates/ios", "startup-config.cfg", kIosConfig);
  store.add("templates/junos", "juniper.conf", kJunosConfig);
  store.add("templates/cbgp", "node.cli", kCbgpNode);

  store.add("templates/linux", ".startup", kLinuxStartup);
  store.add("templates/linux", "etc/resolv.conf", kResolvConf);
  store.add("templates/linux", "etc/dnsmasq.conf", kDnsmasqConf);
  store.add("templates/linux", "etc/rpki.conf", kRpkiConf);

  store.add("platform/netkit", "lab.conf", kNetkitLabConf);
  store.add("platform/dynagen", "topology.net", kDynagenNet);
  store.add("platform/cbgp", "network.cli", kCbgpNetwork);
}

}  // namespace autonet::render::detail

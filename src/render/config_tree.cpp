#include "render/config_tree.hpp"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace autonet::render {

namespace fs = std::filesystem;

void ConfigTree::put(std::string path, std::string content) {
  files_.insert_or_assign(std::move(path), std::move(content));
}

const std::string* ConfigTree::get(std::string_view path) const {
  auto it = files_.find(std::string(path));
  return it == files_.end() ? nullptr : &it->second;
}

std::vector<std::string> ConfigTree::paths() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, content] : files_) out.push_back(path);
  return out;
}

std::vector<std::string> ConfigTree::paths_under(std::string_view prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, content] : files_) {
    if (path.starts_with(prefix)) out.push_back(path);
  }
  return out;
}

std::size_t ConfigTree::item_count() const {
  std::set<std::string> dirs;
  for (const auto& [path, content] : files_) {
    std::string_view p = path;
    while (true) {
      auto slash = p.rfind('/');
      if (slash == std::string_view::npos) break;
      p = p.substr(0, slash);
      dirs.insert(std::string(p));
    }
  }
  return files_.size() + dirs.size();
}

std::size_t ConfigTree::total_bytes() const {
  std::size_t total = 0;
  for (const auto& [path, content] : files_) total += content.size();
  return total;
}

void ConfigTree::write_to_disk(const std::string& root) const {
  for (const auto& [path, content] : files_) {
    fs::path full = fs::path(root) / path;
    fs::create_directories(full.parent_path());
    std::ofstream out(full, std::ios::binary);
    if (!out) throw std::runtime_error("cannot write " + full.string());
    out << content;
  }
}

ConfigTree ConfigTree::read_from_disk(const std::string& root) {
  ConfigTree tree;
  if (!fs::exists(root)) {
    throw std::runtime_error("no such directory: " + root);
  }
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    tree.put(fs::relative(entry.path(), root).generic_string(), ss.str());
  }
  return tree;
}

}  // namespace autonet::render

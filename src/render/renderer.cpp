#include "render/renderer.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "templates/detail.hpp"

namespace autonet::render {

namespace fs = std::filesystem;

namespace {

// Does any expression in the template reference the network-wide `data`
// tree? A `% for data in ...` loop shadows the name inside its body.
bool expr_uses_data(const templates::detail::Expr& e, bool shadowed);
bool nodes_use_data(const std::vector<templates::detail::TemplateNode>& nodes,
                    bool shadowed);

bool expr_uses_data(const templates::detail::Expr& e, bool shadowed) {
  using namespace templates::detail;
  return std::visit(
      [shadowed](const auto& n) -> bool {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Expr::Literal>) {
          return false;
        } else if constexpr (std::is_same_v<T, Expr::Path>) {
          if (shadowed) return false;
          return n.dotted == "data" || n.dotted.starts_with("data.");
        } else if constexpr (std::is_same_v<T, Expr::Unary>) {
          return expr_uses_data(*n.operand, shadowed);
        } else if constexpr (std::is_same_v<T, Expr::Binary>) {
          return expr_uses_data(*n.lhs, shadowed) ||
                 expr_uses_data(*n.rhs, shadowed);
        } else {  // FilterCall
          if (expr_uses_data(*n.input, shadowed)) return true;
          for (const Expr& arg : n.args) {
            if (expr_uses_data(arg, shadowed)) return true;
          }
          return false;
        }
      },
      e.node);
}

bool nodes_use_data(const std::vector<templates::detail::TemplateNode>& nodes,
                    bool shadowed) {
  using namespace templates::detail;
  for (const TemplateNode& node : nodes) {
    bool hit = std::visit(
        [shadowed](const auto& n) -> bool {
          using T = std::decay_t<decltype(n)>;
          if constexpr (std::is_same_v<T, TextNode>) {
            return false;
          } else if constexpr (std::is_same_v<T, OutputNode>) {
            return expr_uses_data(n.expr, shadowed);
          } else if constexpr (std::is_same_v<T, ForNode>) {
            if (expr_uses_data(n.collection, shadowed)) return true;
            return nodes_use_data(n.body, shadowed || n.var == "data");
          } else {  // IfNode
            for (const IfBranch& b : n.branches) {
              if (b.condition != nullptr &&
                  expr_uses_data(*b.condition, shadowed)) {
                return true;
              }
              if (nodes_use_data(b.body, shadowed)) return true;
            }
            return false;
          }
        },
        node.node);
    if (hit) return true;
  }
  return false;
}

bool base_uses_data(const TemplateStore& store, const std::string& base) {
  for (const TemplateStore::Entry& entry : store.entries(base)) {
    if (entry.is_template && nodes_use_data(entry.tmpl.nodes(), false)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void TemplateStore::add(std::string_view base, std::string_view path,
                        std::string_view text) {
  Entry e;
  e.path = std::string(path);
  e.is_template = true;
  e.tmpl = templates::Template::parse(text, std::string(base) + "/" + e.path);
  sets_[std::string(base)].push_back(std::move(e));
}

void TemplateStore::add_static(std::string_view base, std::string_view path,
                               std::string text) {
  Entry e;
  e.path = std::string(path);
  e.is_template = false;
  e.static_content = std::move(text);
  sets_[std::string(base)].push_back(std::move(e));
}

void TemplateStore::add_directory(std::string_view base, const std::string& dir) {
  if (!fs::exists(dir)) throw std::runtime_error("template directory missing: " + dir);
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string rel = fs::relative(entry.path(), dir).generic_string();
    if (rel.ends_with(".tmpl")) {
      add(base, rel.substr(0, rel.size() - 5), ss.str());
    } else {
      add_static(base, rel, ss.str());
    }
  }
}

bool TemplateStore::has_base(std::string_view base) const {
  return sets_.find(base) != sets_.end();
}

const std::vector<TemplateStore::Entry>& TemplateStore::entries(
    std::string_view base) const {
  static const std::vector<Entry> kEmpty;
  auto it = sets_.find(base);
  return it == sets_.end() ? kEmpty : it->second;
}

std::vector<std::string> TemplateStore::bases() const {
  std::vector<std::string> names;
  names.reserve(sets_.size());
  for (const auto& [base, entries] : sets_) names.push_back(base);
  return names;
}

const TemplateStore& TemplateStore::builtins() {
  static const TemplateStore store = [] {
    TemplateStore s;
    detail::register_builtin_templates(s);
    return s;
  }();
  return store;
}

ConfigTree render_configs(const nidb::Nidb& nidb, const TemplateStore& store,
                          core::RunControl* control, const RenderReuse* reuse) {
  ConfigTree tree;
  obs::Registry& obs = obs::Registry::current();
  obs::Counter& templates_rendered = obs.counter("render.templates_rendered");
  obs::Counter& static_copied = obs.counter("render.static_files_copied");
  obs::Counter& devices_rendered = obs.counter("render.devices");
  // Reuse soundness is decided per template set; memoise the AST walk.
  std::map<std::string, bool> data_refs;

  // Per-device rendering.
  for (const auto* rec : nidb.devices()) {
    core::checkpoint(control, "render.device." + rec->name);
    const std::string base = rec->template_base();
    const std::string dst = rec->dst_folder();
    if (base.empty()) continue;
    if (!store.has_base(base)) {
      throw std::runtime_error("no template set registered for '" + base +
                               "' (device " + rec->name + ")");
    }

    bool reuse_ok = reuse != nullptr && reuse->baseline != nullptr &&
                    reuse->devices != nullptr &&
                    reuse->devices->contains(rec->name);
    if (reuse_ok && reuse->data_changed) {
      auto [it, inserted] = data_refs.try_emplace(base, false);
      if (inserted) it->second = base_uses_data(store, base);
      if (it->second) reuse_ok = false;
    }
    if (reuse_ok) {
      for (const auto& entry : store.entries(base)) {
        const std::string path = dst.empty() ? entry.path : dst + "/" + entry.path;
        if (reuse->baseline->get(path) == nullptr) {
          reuse_ok = false;  // baseline tree drifted; render fresh
          break;
        }
      }
    }

    // Reused and fresh devices emit the same span/record sequence, so an
    // incremental run's report stays byte-identical to a cold one.
    obs::Span span(obs, "render.device");
    span.arg("device", rec->name);
    devices_rendered.inc();
    templates::Context ctx;
    if (!reuse_ok) {
      ctx.set("node", rec->data);
      ctx.set("data", nidb.data());
    }
    std::size_t files = 0;
    for (const auto& entry : store.entries(base)) {
      const std::string path = dst.empty() ? entry.path : dst + "/" + entry.path;
      std::string out =
          reuse_ok ? *reuse->baseline->get(path)
                   : (entry.is_template ? entry.tmpl.render(ctx)
                                        : entry.static_content);
      (entry.is_template ? templates_rendered : static_copied).inc();
      tree.put(path, std::move(out));
      ++files;
    }
    if (reuse_ok && reuse->reused_out != nullptr) ++*reuse->reused_out;
    obs::record("render", "device",
                {{"device", rec->name},
                 {"base", base},
                 {"files", std::to_string(files)}});
  }

  // Platform-level rendering (lab.conf, .net, network-wide scripts).
  const nidb::Value* platform = nidb.data().find("platform");
  const std::string* platform_name = platform ? platform->as_string() : nullptr;
  if (platform_name != nullptr) {
    const std::string base = "platform/" + *platform_name;
    if (store.has_base(base)) {
      obs::Span span(obs, "render.platform");
      span.arg("platform", *platform_name);
      templates::Context ctx;
      ctx.set("data", nidb.data());
      nidb::Array devices;
      for (const auto* rec : nidb.devices()) devices.push_back(rec->data);
      ctx.set("devices", nidb::Value(std::move(devices)));
      for (const auto& entry : store.entries(base)) {
        std::string out =
            entry.is_template ? entry.tmpl.render(ctx) : entry.static_content;
        (entry.is_template ? templates_rendered : static_copied).inc();
        tree.put(entry.path, std::move(out));
      }
    }
  }
  obs.counter("render.files").inc(tree.file_count());
  obs.counter("render.bytes").inc(tree.total_bytes());
  return tree;
}

RenderStats stats_of(const nidb::Nidb& nidb, const ConfigTree& tree) {
  RenderStats s;
  s.devices = nidb.device_count();
  s.files = tree.file_count();
  s.items = tree.item_count();
  s.bytes = tree.total_bytes();
  return s;
}

}  // namespace autonet::render

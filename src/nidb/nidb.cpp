#include "nidb/nidb.hpp"

namespace autonet::nidb {

namespace {

std::string strip_prefix_len(std::string ip) {
  if (auto slash = ip.find('/'); slash != std::string::npos) ip.resize(slash);
  return ip;
}

}  // namespace

std::string DeviceRecord::template_base() const {
  const Value* v = data.find_path("render.base");
  const std::string* s = v ? v->as_string() : nullptr;
  return s ? *s : "";
}

std::string DeviceRecord::dst_folder() const {
  const Value* v = data.find_path("render.base_dst_folder");
  const std::string* s = v ? v->as_string() : nullptr;
  return s ? *s : "";
}

DeviceRecord& Nidb::add_device(std::string_view name) {
  ip_index_built_ = false;
  auto [it, inserted] = devices_.try_emplace(std::string(name));
  if (inserted) it->second.name = name;
  return it->second;
}

const DeviceRecord* Nidb::device(std::string_view name) const {
  auto it = devices_.find(name);
  return it == devices_.end() ? nullptr : &it->second;
}

DeviceRecord* Nidb::device(std::string_view name) {
  auto it = devices_.find(name);
  return it == devices_.end() ? nullptr : &it->second;
}

std::vector<const DeviceRecord*> Nidb::devices() const {
  std::vector<const DeviceRecord*> out;
  out.reserve(devices_.size());
  for (const auto& [name, rec] : devices_) out.push_back(&rec);
  return out;
}

std::vector<const DeviceRecord*> Nidb::devices_of_type(std::string_view type) const {
  std::vector<const DeviceRecord*> out;
  for (const auto& [name, rec] : devices_) {
    const Value* v = rec.data.find("device_type");
    const std::string* s = v ? v->as_string() : nullptr;
    if (s != nullptr && *s == type) out.push_back(&rec);
  }
  return out;
}

std::optional<std::string> Nidb::device_for_ip(std::string_view ip) const {
  if (!ip_index_built_) {
    ip_index_.clear();
    for (const auto& [name, rec] : devices_) {
      if (const Value* lo = rec.data.find("loopback")) {
        if (const auto* s = lo->as_string()) {
          ip_index_.emplace(strip_prefix_len(*s), name);
        }
      }
      const Value* interfaces = rec.data.find("interfaces");
      const Array* arr = interfaces ? interfaces->as_array() : nullptr;
      if (arr == nullptr) continue;
      for (const Value& iface : *arr) {
        const Value* addr = iface.find("ip_address");
        const std::string* s = addr ? addr->as_string() : nullptr;
        if (s != nullptr) ip_index_.emplace(strip_prefix_len(*s), name);
      }
    }
    ip_index_built_ = true;
  }
  auto it = ip_index_.find(strip_prefix_len(std::string(ip)));
  if (it == ip_index_.end()) return std::nullopt;
  return it->second;
}

Nidb Nidb::from_json(std::string_view text) {
  Value doc = parse_json(text);
  const Object* root = doc.as_object();
  if (root == nullptr) throw std::runtime_error("NIDB JSON: not an object");
  Nidb out;
  if (const Value* devices = doc.find("devices")) {
    const Object* map = devices->as_object();
    if (map == nullptr) throw std::runtime_error("NIDB JSON: 'devices' not an object");
    for (const auto& [name, data] : *map) {
      out.add_device(name).data = data;
    }
  }
  if (const Value* links = doc.find("links")) {
    const Array* arr = links->as_array();
    if (arr == nullptr) throw std::runtime_error("NIDB JSON: 'links' not an array");
    for (const Value& l : *arr) {
      auto field = [&l](const char* key) {
        const Value* v = l.find(key);
        const std::string* s = v ? v->as_string() : nullptr;
        return s ? *s : std::string{};
      };
      out.add_link({field("src"), field("src_int"), field("dst"),
                    field("dst_int"), field("subnet")});
    }
  }
  if (const Value* data = doc.find("data")) out.data_ = *data;
  return out;
}

std::string Nidb::to_json(bool pretty) const {
  Object root;
  Object devices;
  for (const auto& [name, rec] : devices_) devices[name] = rec.data;
  root["devices"] = Value(std::move(devices));
  Array links;
  for (const auto& link : links_) {
    Object l;
    l["src"] = link.src_device;
    l["src_int"] = link.src_interface;
    l["dst"] = link.dst_device;
    l["dst_int"] = link.dst_interface;
    l["subnet"] = link.subnet;
    links.emplace_back(std::move(l));
  }
  root["links"] = Value(std::move(links));
  root["data"] = data_;
  return Value(std::move(root)).to_json(pretty);
}

}  // namespace autonet::nidb

// The Resource Database / Network Information DB (paper §5.4): the
// device-level view the compiler produces and the renderer consumes. It
// is "a device-level graph, based on the nodes and edges in the physical
// graph": one record per device holding the attribute vector (a Value
// tree, see Listing 5.4) plus the inter-device links with their resolved
// interface names.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nidb/value.hpp"

namespace autonet::nidb {

/// One device's record: the attribute vector pushed into templates.
struct DeviceRecord {
  std::string name;
  /// Root of the value tree; templates see it as `node`.
  Value data;

  // Render attributes (paper §5.5).
  [[nodiscard]] std::string template_base() const;
  [[nodiscard]] std::string dst_folder() const;
};

/// A resolved device-to-device link at the device level.
struct NidbLink {
  std::string src_device;
  std::string src_interface;  // platform-formatted, e.g. "eth1"
  std::string dst_device;
  std::string dst_interface;
  std::string subnet;  // collision-domain subnet, "" if unallocated
};

class Nidb {
 public:
  /// Adds (or returns) a device record.
  DeviceRecord& add_device(std::string_view name);
  [[nodiscard]] const DeviceRecord* device(std::string_view name) const;
  [[nodiscard]] DeviceRecord* device(std::string_view name);
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  /// Devices in name order (deterministic rendering).
  [[nodiscard]] std::vector<const DeviceRecord*> devices() const;

  /// Devices whose `device_type` field matches.
  [[nodiscard]] std::vector<const DeviceRecord*> devices_of_type(
      std::string_view type) const;
  [[nodiscard]] std::vector<const DeviceRecord*> routers() const {
    return devices_of_type("router");
  }

  void add_link(NidbLink link) { links_.push_back(std::move(link)); }
  [[nodiscard]] const std::vector<NidbLink>& links() const { return links_; }

  /// Network-wide data (deployment host, management network, ...).
  [[nodiscard]] Value& data() { return data_; }
  [[nodiscard]] const Value& data() const { return data_; }

  /// Reverse mapping from allocated IP address to device name (paper
  /// §5.7: "as we know the IP allocations, we map the IP addresses back
  /// into the hosts they represent"). Indexed lazily from the device
  /// records' interfaces and loopbacks.
  [[nodiscard]] std::optional<std::string> device_for_ip(std::string_view ip) const;

  /// Whole-database JSON dump (diagnostics and the visualization module).
  [[nodiscard]] std::string to_json(bool pretty = true) const;

  /// Restores a database from a to_json() dump — decouples compilation
  /// from deployment (compile once, archive the NIDB, deploy later).
  /// Throws std::runtime_error on malformed documents.
  static Nidb from_json(std::string_view text);

 private:
  std::map<std::string, DeviceRecord, std::less<>> devices_;
  std::vector<NidbLink> links_;
  Value data_;
  mutable std::map<std::string, std::string, std::less<>> ip_index_;
  mutable bool ip_index_built_ = false;
};

}  // namespace autonet::nidb

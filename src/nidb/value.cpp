#include "nidb/value.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace autonet::nidb {

Value Value::from_attr(const graph::AttrValue& attr) {
  struct Visitor {
    Value operator()(std::monostate) const { return Value(); }
    Value operator()(bool v) const { return Value(v); }
    Value operator()(std::int64_t v) const { return Value(v); }
    Value operator()(double v) const { return Value(v); }
    Value operator()(const std::string& v) const { return Value(v); }
    Value operator()(const std::vector<std::int64_t>& v) const {
      Array arr;
      arr.reserve(v.size());
      for (auto x : v) arr.emplace_back(x);
      return Value(std::move(arr));
    }
    Value operator()(const std::vector<std::string>& v) const {
      Array arr;
      arr.reserve(v.size());
      for (const auto& x : v) arr.emplace_back(x);
      return Value(std::move(arr));
    }
  };
  return std::visit(Visitor{}, attr.storage());
}

std::optional<bool> Value::as_bool() const {
  if (const auto* v = std::get_if<bool>(&value_)) return *v;
  return std::nullopt;
}

std::optional<std::int64_t> Value::as_int() const {
  if (const auto* v = std::get_if<std::int64_t>(&value_)) return *v;
  if (const auto* v = std::get_if<bool>(&value_)) return *v ? 1 : 0;
  return std::nullopt;
}

std::optional<double> Value::as_double() const {
  if (const auto* v = std::get_if<double>(&value_)) return *v;
  if (auto i = as_int()) return static_cast<double>(*i);
  return std::nullopt;
}

const std::string* Value::as_string() const {
  return std::get_if<std::string>(&value_);
}

const Array* Value::as_array() const {
  const auto* p = std::get_if<std::shared_ptr<Array>>(&value_);
  return p ? p->get() : nullptr;
}

const Object* Value::as_object() const {
  const auto* p = std::get_if<std::shared_ptr<Object>>(&value_);
  return p ? p->get() : nullptr;
}

bool Value::truthy() const {
  struct Visitor {
    bool operator()(std::nullptr_t) const { return false; }
    bool operator()(bool v) const { return v; }
    bool operator()(std::int64_t v) const { return v != 0; }
    bool operator()(double v) const { return v != 0.0; }
    bool operator()(const std::string& v) const { return !v.empty(); }
    bool operator()(const std::shared_ptr<Array>& v) const { return !v->empty(); }
    bool operator()(const std::shared_ptr<Object>& v) const { return !v->empty(); }
  };
  return std::visit(Visitor{}, value_);
}

Array& Value::array() {
  if (is_null()) value_ = std::make_shared<Array>();
  auto* p = std::get_if<std::shared_ptr<Array>>(&value_);
  if (p == nullptr) throw std::logic_error("Value: not an array");
  return **p;
}

Object& Value::object() {
  if (is_null()) value_ = std::make_shared<Object>();
  auto* p = std::get_if<std::shared_ptr<Object>>(&value_);
  if (p == nullptr) throw std::logic_error("Value: not an object");
  return **p;
}

Value& Value::operator[](std::string_view key) {
  return object()[std::string(key)];
}

const Value* Value::find(std::string_view key) const {
  const Object* obj = as_object();
  if (obj == nullptr) return nullptr;
  auto it = obj->find(key);
  return it == obj->end() ? nullptr : &it->second;
}

namespace {

/// Follows "[N][M]..." array-index suffixes; nullptr past the end or on
/// malformed brackets.
const Value* follow_indices(const Value* cur, std::string_view rest) {
  while (!rest.empty()) {
    if (rest.front() != '[') return nullptr;
    auto close = rest.find(']');
    if (close == std::string_view::npos || close == 1) return nullptr;
    std::size_t index = 0;
    for (char c : rest.substr(1, close - 1)) {
      if (c < '0' || c > '9') return nullptr;
      index = index * 10 + static_cast<std::size_t>(c - '0');
    }
    const Array* arr = cur->as_array();
    if (arr == nullptr || index >= arr->size()) return nullptr;
    cur = &(*arr)[index];
    rest.remove_prefix(close + 1);
  }
  return cur;
}

}  // namespace

const Value* Value::find_path(std::string_view dotted) const {
  const Value* cur = this;
  while (!dotted.empty()) {
    auto dot = dotted.find('.');
    std::string_view key = dotted.substr(0, dot);
    // A segment may carry array-index suffixes: "interfaces[2]".
    auto bracket = key.find('[');
    if (bracket == std::string_view::npos) {
      cur = cur->find(key);
    } else {
      cur = cur->find(key.substr(0, bracket));
      if (cur != nullptr) cur = follow_indices(cur, key.substr(bracket));
    }
    if (cur == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted.remove_prefix(dot + 1);
  }
  return cur;
}

void Value::set_path(std::string_view dotted, Value v) {
  Value* cur = this;
  while (true) {
    auto dot = dotted.find('.');
    if (dot == std::string_view::npos) {
      (*cur)[dotted] = std::move(v);
      return;
    }
    cur = &(*cur)[dotted.substr(0, dot)];
    dotted.remove_prefix(dot + 1);
  }
}

namespace {

std::string format_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

void escape_json_to(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string Value::to_display() const {
  struct Visitor {
    const Value& self;
    std::string operator()(std::nullptr_t) const { return ""; }
    std::string operator()(bool v) const { return v ? "true" : "false"; }
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", v);
      return buf;
    }
    std::string operator()(const std::string& v) const { return v; }
    std::string operator()(const std::shared_ptr<Array>&) const {
      return self.to_json();
    }
    std::string operator()(const std::shared_ptr<Object>&) const {
      return self.to_json();
    }
  };
  return std::visit(Visitor{*this}, value_);
}

void Value::json_to(std::string& out, bool pretty, int depth) const {
  auto indent = [&out, pretty](int d) {
    if (pretty) {
      out += '\n';
      out.append(static_cast<std::size_t>(d) * 2, ' ');
    }
  };
  struct Visitor {
    std::string& out;
    bool pretty;
    int depth;
    const Value& self;
    decltype(indent)& ind;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool v) const { out += v ? "true" : "false"; }
    void operator()(std::int64_t v) const { out += std::to_string(v); }
    void operator()(double v) const { out += format_double(v); }
    void operator()(const std::string& v) const { escape_json_to(out, v); }
    void operator()(const std::shared_ptr<Array>& v) const {
      out += '[';
      bool follower = false;
      for (const auto& item : *v) {
        if (follower) out += pretty ? "," : ", ";
        follower = true;
        ind(depth + 1);
        item.json_to(out, pretty, depth + 1);
      }
      if (follower) ind(depth);
      out += ']';
    }
    void operator()(const std::shared_ptr<Object>& v) const {
      out += '{';
      bool follower = false;
      for (const auto& [key, item] : *v) {
        if (follower) out += pretty ? "," : ", ";
        follower = true;
        ind(depth + 1);
        escape_json_to(out, key);
        out += ": ";
        item.json_to(out, pretty, depth + 1);
      }
      if (follower) ind(depth);
      out += '}';
    }
  };
  std::visit(Visitor{out, pretty, depth, *this, indent}, value_);
}

std::string Value::to_json(bool pretty) const {
  std::string out;
  json_to(out, pretty, 0);
  return out;
}

bool operator==(const Value& a, const Value& b) {
  if (a.value_.index() != b.value_.index()) {
    auto da = a.as_double();
    auto db = b.as_double();
    return da && db && *da == *db;
  }
  if (const auto* arr = std::get_if<std::shared_ptr<Array>>(&a.value_)) {
    return **arr == **std::get_if<std::shared_ptr<Array>>(&b.value_);
  }
  if (const auto* obj = std::get_if<std::shared_ptr<Object>>(&a.value_)) {
    return **obj == **std::get_if<std::shared_ptr<Object>>(&b.value_);
  }
  return a.value_ == b.value_;
}

// --- JSON parsing ---------------------------------------------------------

namespace {

class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  Value parse_value() {
    skip_ws();
    if (eof()) fail("unexpected end of input");
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      expect_word("null");
      return Value(nullptr);
    }
    return parse_number();
  }

  void finish() {
    skip_ws();
    if (!eof()) fail("trailing characters");
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at offset " + std::to_string(pos_) +
                             ": " + why);
  }
  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  char next() { return text_[pos_++]; }
  void skip_ws() {
    while (!eof()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\n' && c != '\t' && c != '\r') break;
      ++pos_;
    }
  }
  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("expected " + std::string(word));
    pos_ += word.size();
  }

  Value parse_bool() {
    if (peek() == 't') {
      expect_word("true");
      return Value(true);
    }
    expect_word("false");
    return Value(false);
  }

  std::string parse_string() {
    if (next() != '"') fail("expected string");
    std::string out;
    while (true) {
      // Bulk-copy the run up to the next quote or escape; most strings in
      // our artifacts contain neither, so this is a single substr assign.
      std::size_t stop = text_.find_first_of("\"\\", pos_);
      if (stop == std::string_view::npos) fail("unterminated string");
      out.append(text_, pos_, stop - pos_);
      pos_ = stop;
      char c = next();
      if (c == '"') return out;
      if (eof()) fail("unterminated escape");
      char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          auto hex = text_.substr(pos_, 4);
          auto [p, ec] = std::from_chars(hex.data(), hex.data() + 4, code, 16);
          if (ec != std::errc{} || p != hex.data() + 4) fail("bad \\u escape");
          pos_ += 4;
          // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    bool is_double = false;
    while (!eof()) {
      char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c))) ++pos_;
      else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        // exponent signs only directly after e/E
        if ((c == '-' || c == '+') &&
            !(text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')) {
          break;
        }
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view raw = text_.substr(start, pos_ - start);
    if (raw.empty() || raw == "-" || raw == "+") fail("bad number");
    const char* first = raw.data();
    const char* last = raw.data() + raw.size();
    if (raw.front() == '+') ++first;  // from_chars rejects a leading '+'
    if (is_double) {
      double d = 0;
      auto [p, ec] = std::from_chars(first, last, d);
      if (ec != std::errc{} || p != last) fail("bad number '" + std::string(raw) + "'");
      return Value(d);
    }
    std::int64_t i = 0;
    auto [p, ec] = std::from_chars(first, last, i);
    if (ec != std::errc{} || p != last) fail("bad number '" + std::string(raw) + "'");
    return Value(i);
  }

  Value parse_array() {
    ++pos_;  // '['
    Array arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (eof()) fail("unterminated array");
      char c = next();
      if (c == ']') return Value(std::move(arr));
      if (c != ',') fail("expected ',' in array");
    }
  }

  Value parse_object() {
    ++pos_;  // '{'
    Object obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      if (eof() || next() != ':') fail("expected ':'");
      Value val = parse_value();
      obj.insert_or_assign(std::move(key), std::move(val));
      skip_ws();
      if (eof()) fail("unterminated object");
      char c = next();
      if (c == '}') return Value(std::move(obj));
      if (c != ',') fail("expected ',' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse_json(std::string_view text) {
  JsonCursor cursor(text);
  Value v = cursor.parse_value();
  cursor.finish();
  return v;
}

}  // namespace autonet::nidb

// The value tree stored per device in the Resource Database (paper §4.1,
// Listing 5.4): a JSON-like recursive structure that the template engine
// traverses with dotted paths such as `node.zebra.hostname` or iterates
// (`% for interface in node.interfaces`).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "graph/attr.hpp"

namespace autonet::nidb {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value, std::less<>>;

class Value {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
                   std::shared_ptr<Array>, std::shared_ptr<Object>>;

  Value() : value_(nullptr) {}
  Value(std::nullptr_t) : value_(nullptr) {}              // NOLINT(google-explicit-constructor)
  Value(bool v) : value_(v) {}                            // NOLINT
  Value(std::int64_t v) : value_(v) {}                    // NOLINT
  Value(int v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(std::size_t v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(double v) : value_(v) {}                          // NOLINT
  Value(std::string v) : value_(std::move(v)) {}          // NOLINT
  Value(const char* v) : value_(std::string(v)) {}        // NOLINT
  Value(Array v) : value_(std::make_shared<Array>(std::move(v))) {}    // NOLINT
  Value(Object v) : value_(std::make_shared<Object>(std::move(v))) {}  // NOLINT

  /// Converts a graph attribute (lists become arrays).
  static Value from_attr(const graph::AttrValue& attr);

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<Array>>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<Object>>(value_);
  }

  [[nodiscard]] std::optional<bool> as_bool() const;
  [[nodiscard]] std::optional<std::int64_t> as_int() const;
  [[nodiscard]] std::optional<double> as_double() const;
  [[nodiscard]] const std::string* as_string() const;
  [[nodiscard]] const Array* as_array() const;
  [[nodiscard]] const Object* as_object() const;

  /// Python-style truthiness: null/false/0/""/[]/{} are falsy.
  [[nodiscard]] bool truthy() const;

  /// Mutable accessors create the container if this value is null, and
  /// throw std::logic_error on type mismatch otherwise.
  Array& array();
  Object& object();
  /// object()[key] shorthand; creates intermediate objects.
  Value& operator[](std::string_view key);

  /// Dotted-path lookup ("ospf.ospf_links"); nullptr when any component
  /// is missing or not an object.
  [[nodiscard]] const Value* find_path(std::string_view dotted) const;
  /// Single-key lookup; nullptr when missing or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// Dotted-path insertion, creating intermediate objects.
  void set_path(std::string_view dotted, Value v);

  /// Rendering for ${...} substitution: bare value, no quotes.
  [[nodiscard]] std::string to_display() const;
  /// Canonical JSON (sorted keys, 2-space indent when pretty).
  [[nodiscard]] std::string to_json(bool pretty = false) const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  void json_to(std::string& out, bool pretty, int depth) const;
  Storage value_;
};

/// Parses JSON text (strict subset: no comments, no trailing commas).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Value parse_json(std::string_view text);

}  // namespace autonet::nidb

// Built-in template filters. The addressing filters implement the
// "basic formatting, such as IP addresses, as found in the PRESTO
// system" the paper allows inside templates (§4.1) — e.g. IOS network
// statements need netmask or wildcard forms of the same prefix.
#include <algorithm>
#include <cctype>

#include "addressing/ipv4.hpp"
#include "templates/template.hpp"

namespace autonet::templates {

namespace {

using nidb::Value;

addressing::Ipv4Prefix require_prefix(const Value& v, const char* filter) {
  const std::string* s = v.as_string();
  if (s != nullptr) {
    if (auto p = addressing::Ipv4Prefix::parse(*s)) return *p;
    // A bare address is treated as a /32.
    if (auto a = addressing::Ipv4Addr::parse(*s)) {
      return addressing::Ipv4Prefix(*a, 32);
    }
  }
  throw TemplateError(std::string(filter) + ": '" + v.to_display() +
                      "' is not an IPv4 prefix");
}

std::string host_part(const Value& v, const char* filter) {
  const std::string* s = v.as_string();
  if (s == nullptr) {
    throw TemplateError(std::string(filter) + ": expected an address string");
  }
  auto slash = s->find('/');
  return slash == std::string::npos ? *s : s->substr(0, slash);
}

Value filter_upper(const Value& v, const std::vector<Value>&) {
  std::string s = v.to_display();
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return Value(std::move(s));
}

Value filter_lower(const Value& v, const std::vector<Value>&) {
  std::string s = v.to_display();
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return Value(std::move(s));
}

Value filter_join(const Value& v, const std::vector<Value>& args) {
  const nidb::Array* arr = v.as_array();
  if (arr == nullptr) throw TemplateError("join: expected an array");
  std::string sep = args.empty() ? "," : args[0].to_display();
  std::string out;
  for (std::size_t i = 0; i < arr->size(); ++i) {
    if (i != 0) out += sep;
    out += (*arr)[i].to_display();
  }
  return Value(std::move(out));
}

Value filter_length(const Value& v, const std::vector<Value>&) {
  if (const auto* arr = v.as_array()) return Value(arr->size());
  if (const auto* obj = v.as_object()) return Value(obj->size());
  if (const auto* s = v.as_string()) return Value(s->size());
  throw TemplateError("length: expected array, object, or string");
}

Value filter_first(const Value& v, const std::vector<Value>&) {
  const nidb::Array* arr = v.as_array();
  if (arr == nullptr || arr->empty()) return Value(nullptr);
  return arr->front();
}

Value filter_last(const Value& v, const std::vector<Value>&) {
  const nidb::Array* arr = v.as_array();
  if (arr == nullptr || arr->empty()) return Value(nullptr);
  return arr->back();
}

Value filter_default(const Value& v, const std::vector<Value>& args) {
  if (args.empty()) throw TemplateError("default: requires an argument");
  return v.is_null() ? args[0] : v;
}

}  // namespace

const std::map<std::string, Filter, std::less<>>& builtin_filters() {
  static const std::map<std::string, Filter, std::less<>> kFilters = {
      // "192.168.1.4/30" -> "192.168.1.4/30" (canonical network/len)
      {"cidr",
       [](const Value& v, const std::vector<Value>&) {
         return Value(require_prefix(v, "cidr").to_string());
       }},
      // -> "192.168.1.4"
      {"network",
       [](const Value& v, const std::vector<Value>&) {
         return Value(require_prefix(v, "network").network().to_string());
       }},
      // -> "255.255.255.252"
      {"netmask",
       [](const Value& v, const std::vector<Value>&) {
         return Value(require_prefix(v, "netmask").netmask_string());
       }},
      // -> "0.0.0.3" (IOS wildcard form)
      {"wildcard",
       [](const Value& v, const std::vector<Value>&) {
         return Value(require_prefix(v, "wildcard").wildcard_string());
       }},
      // -> 30
      {"prefixlen",
       [](const Value& v, const std::vector<Value>&) {
         return Value(static_cast<std::int64_t>(require_prefix(v, "prefixlen").length()));
       }},
      // "10.0.0.1/32" -> "10.0.0.1" (host address without the length)
      {"ip", [](const Value& v, const std::vector<Value>&) {
         return Value(host_part(v, "ip"));
       }},
      {"upper", filter_upper},
      {"lower", filter_lower},
      {"join", filter_join},
      {"length", filter_length},
      {"first", filter_first},
      {"last", filter_last},
      {"default", filter_default},
  };
  return kFilters;
}

}  // namespace autonet::templates

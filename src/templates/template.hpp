// The template engine (paper §4.1): plain-text templates that "closely
// mirror the target configuration language", with deliberately limited
// logic — `${...}` substitution with filters, `% for`, `% if/elif/else` —
// so network-wide transformations stay in the compiler, not in templates.
//
//   hostname ${node.zebra.hostname}
//   % for interface in node.interfaces:
//   interface ${interface.id}
//     ip ospf cost ${interface.ospf_cost}
//   % endfor
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "nidb/value.hpp"

namespace autonet::templates {

class TemplateError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A filter transforms a value during ${expr | filter(args)} rendering.
using Filter =
    std::function<nidb::Value(const nidb::Value&, const std::vector<nidb::Value>&)>;

/// Built-in filters: cidr, network, netmask, wildcard, prefixlen, ip,
/// upper, lower, join(sep), length, first, last, default(v).
[[nodiscard]] const std::map<std::string, Filter, std::less<>>& builtin_filters();

/// Variable scope used during rendering: name -> value tree root.
class Context {
 public:
  Context() = default;
  void set(std::string name, nidb::Value value) {
    vars_.insert_or_assign(std::move(name), std::move(value));
  }
  /// Resolves a dotted path against the scope chain; null Value if absent.
  [[nodiscard]] nidb::Value lookup(std::string_view dotted) const;

 private:
  friend class Evaluator;
  std::map<std::string, nidb::Value, std::less<>> vars_;
};

namespace detail {
struct TemplateNode;
struct Expr;
}  // namespace detail

/// A compiled template. Parse once, render many times.
class Template {
 public:
  /// Compiles template text; throws TemplateError with a line number on
  /// syntax errors.
  static Template parse(std::string_view text, std::string name = "<inline>");

  /// An empty template rendering "".
  Template();
  Template(Template&&) noexcept;
  Template& operator=(Template&&) noexcept;
  ~Template();

  [[nodiscard]] std::string render(const Context& context) const;
  [[nodiscard]] const std::string& name() const { return name_; }
  /// The parsed AST, for static analysis (verify's template lint).
  [[nodiscard]] const std::vector<detail::TemplateNode>& nodes() const {
    return nodes_;
  }

 private:
  std::string name_;
  std::vector<detail::TemplateNode> nodes_;
};

/// One-shot convenience.
[[nodiscard]] std::string render(std::string_view template_text, const Context& context);

}  // namespace autonet::templates

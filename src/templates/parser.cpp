#include <cctype>

#include "templates/detail.hpp"
#include "templates/template.hpp"

namespace autonet::templates::detail {

namespace {

// --- Expression tokenizer ---------------------------------------------------

struct ExprToken {
  enum class Kind {
    kIdent, kNumber, kString, kOp, kPipe, kLParen, kRParen, kComma, kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
};

class ExprLexer {
 public:
  explicit ExprLexer(std::string_view text) : text_(text) { advance(); }

  [[nodiscard]] const ExprToken& peek() const { return current_; }
  ExprToken take() {
    ExprToken t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      current_ = {ExprToken::Kind::kEnd, ""};
      return;
    }
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size()) {
        char d = text_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' || d == '.') ++pos_;
        else break;
      }
      current_ = {ExprToken::Kind::kIdent, std::string(text_.substr(start, pos_ - start))};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      std::size_t start = pos_;
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        ++pos_;
      }
      current_ = {ExprToken::Kind::kNumber, std::string(text_.substr(start, pos_ - start))};
      return;
    }
    if (c == '\'' || c == '"') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != c) out += text_[pos_++];
      if (pos_ >= text_.size()) throw TemplateError("unterminated string literal");
      ++pos_;
      current_ = {ExprToken::Kind::kString, std::move(out)};
      return;
    }
    switch (c) {
      case '|': ++pos_; current_ = {ExprToken::Kind::kPipe, "|"}; return;
      case '(': ++pos_; current_ = {ExprToken::Kind::kLParen, "("}; return;
      case ')': ++pos_; current_ = {ExprToken::Kind::kRParen, ")"}; return;
      case ',': ++pos_; current_ = {ExprToken::Kind::kComma, ","}; return;
      default: break;
    }
    // multi-char operators
    static constexpr std::string_view kOps[] = {"==", "!=", "<=", ">=", "<", ">",
                                                "+", "-"};
    for (std::string_view op : kOps) {
      if (text_.substr(pos_, op.size()) == op) {
        pos_ += op.size();
        current_ = {ExprToken::Kind::kOp, std::string(op)};
        return;
      }
    }
    throw TemplateError("unexpected character '" + std::string(1, c) +
                        "' in expression");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  ExprToken current_;
};

// Recursive-descent parser:
//   or      := and ('or' and)*
//   and     := not ('not'|comparison ... )
//   not     := 'not' not | cmp
//   cmp     := additive (op additive)?
//   additive:= postfix (('+'|'-') postfix)*
//   postfix := primary ('|' ident [ '(' args ')' ])*
//   primary := literal | path | '(' or ')'
class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : lex_(text) {}

  Expr parse() {
    Expr e = parse_or();
    if (lex_.peek().kind != ExprToken::Kind::kEnd) {
      throw TemplateError("unexpected trailing token '" + lex_.peek().text +
                          "' in expression");
    }
    return e;
  }

  Expr parse_or() {
    Expr lhs = parse_and();
    while (is_keyword("or")) {
      lex_.take();
      Expr rhs = parse_and();
      lhs = make_binary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

 private:
  [[nodiscard]] bool is_keyword(std::string_view kw) const {
    return lex_.peek().kind == ExprToken::Kind::kIdent && lex_.peek().text == kw;
  }

  static Expr make_binary(BinOp op, Expr lhs, Expr rhs) {
    Expr e;
    e.node = Expr::Binary{op, std::make_unique<Expr>(std::move(lhs)),
                          std::make_unique<Expr>(std::move(rhs))};
    return e;
  }

  Expr parse_and() {
    Expr lhs = parse_not();
    while (is_keyword("and")) {
      lex_.take();
      Expr rhs = parse_not();
      lhs = make_binary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Expr parse_not() {
    if (is_keyword("not")) {
      lex_.take();
      Expr e;
      e.node = Expr::Unary{std::make_unique<Expr>(parse_not())};
      return e;
    }
    return parse_cmp();
  }

  Expr parse_cmp() {
    Expr lhs = parse_additive();
    if (lex_.peek().kind == ExprToken::Kind::kOp) {
      const std::string op = lex_.peek().text;
      BinOp bin;
      if (op == "==") bin = BinOp::kEq;
      else if (op == "!=") bin = BinOp::kNe;
      else if (op == "<") bin = BinOp::kLt;
      else if (op == "<=") bin = BinOp::kLe;
      else if (op == ">") bin = BinOp::kGt;
      else if (op == ">=") bin = BinOp::kGe;
      else return lhs;
      lex_.take();
      return make_binary(bin, std::move(lhs), parse_additive());
    }
    return lhs;
  }

  Expr parse_additive() {
    Expr lhs = parse_postfix();
    while (lex_.peek().kind == ExprToken::Kind::kOp &&
           (lex_.peek().text == "+" || lex_.peek().text == "-")) {
      BinOp op = lex_.take().text == "+" ? BinOp::kAdd : BinOp::kSub;
      lhs = make_binary(op, std::move(lhs), parse_postfix());
    }
    return lhs;
  }

  Expr parse_postfix() {
    Expr e = parse_primary();
    while (lex_.peek().kind == ExprToken::Kind::kPipe) {
      lex_.take();
      if (lex_.peek().kind != ExprToken::Kind::kIdent) {
        throw TemplateError("expected filter name after '|'");
      }
      Expr::FilterCall call;
      call.name = lex_.take().text;
      call.input = std::make_unique<Expr>(std::move(e));
      if (lex_.peek().kind == ExprToken::Kind::kLParen) {
        lex_.take();
        if (lex_.peek().kind != ExprToken::Kind::kRParen) {
          while (true) {
            call.args.push_back(parse_or());
            if (lex_.peek().kind == ExprToken::Kind::kComma) {
              lex_.take();
              continue;
            }
            break;
          }
        }
        if (lex_.take().kind != ExprToken::Kind::kRParen) {
          throw TemplateError("expected ')' after filter arguments");
        }
      }
      Expr wrapped;
      wrapped.node = std::move(call);
      e = std::move(wrapped);
    }
    return e;
  }

  Expr parse_primary() {
    const ExprToken& t = lex_.peek();
    Expr e;
    switch (t.kind) {
      case ExprToken::Kind::kNumber: {
        std::string text = lex_.take().text;
        if (text.find('.') != std::string::npos) {
          e.node = Expr::Literal{nidb::Value(std::stod(text))};
        } else {
          e.node = Expr::Literal{nidb::Value(static_cast<std::int64_t>(std::stoll(text)))};
        }
        return e;
      }
      case ExprToken::Kind::kString:
        e.node = Expr::Literal{nidb::Value(lex_.take().text)};
        return e;
      case ExprToken::Kind::kIdent: {
        std::string ident = lex_.take().text;
        if (ident == "true" || ident == "True") {
          e.node = Expr::Literal{nidb::Value(true)};
        } else if (ident == "false" || ident == "False") {
          e.node = Expr::Literal{nidb::Value(false)};
        } else if (ident == "none" || ident == "None" || ident == "null") {
          e.node = Expr::Literal{nidb::Value(nullptr)};
        } else {
          e.node = Expr::Path{std::move(ident)};
        }
        return e;
      }
      case ExprToken::Kind::kLParen: {
        lex_.take();
        Expr inner = parse_or();
        if (lex_.take().kind != ExprToken::Kind::kRParen) {
          throw TemplateError("expected ')'");
        }
        return inner;
      }
      default:
        throw TemplateError("unexpected token '" + t.text + "' in expression");
    }
  }

  ExprLexer lex_;
};

// --- Template (segment) parser ----------------------------------------------

struct ControlLine {
  std::string keyword;  // for, endfor, if, elif, else, endif
  std::string rest;
};

ControlLine split_control(const std::string& body) {
  auto space = body.find_first_of(" \t");
  ControlLine c;
  c.keyword = body.substr(0, space);
  if (space != std::string::npos) {
    auto start = body.find_first_not_of(" \t", space);
    if (start != std::string::npos) c.rest = body.substr(start);
  }
  // Python-style trailing colon is optional.
  auto strip_colon = [](std::string& s) {
    if (!s.empty() && s.back() == ':') s.pop_back();
  };
  strip_colon(c.keyword);
  strip_colon(c.rest);
  return c;
}

class SegmentParser {
 public:
  SegmentParser(const std::vector<Segment>& segments, const std::string& name)
      : segments_(segments), name_(name) {}

  std::vector<TemplateNode> parse_block(const std::vector<std::string>& until,
                                        std::string* terminator) {
    std::vector<TemplateNode> nodes;
    while (pos_ < segments_.size()) {
      const Segment& seg = segments_[pos_];
      switch (seg.kind) {
        case Segment::Kind::kText: {
          ++pos_;
          TemplateNode n;
          n.node = TextNode{seg.text};
          nodes.push_back(std::move(n));
          break;
        }
        case Segment::Kind::kExpr: {
          ++pos_;
          TemplateNode n;
          n.node = OutputNode{parse_expr(seg)};
          nodes.push_back(std::move(n));
          break;
        }
        case Segment::Kind::kControl: {
          ControlLine ctl = split_control(seg.text);
          for (const auto& t : until) {
            if (ctl.keyword == t) {
              if (terminator != nullptr) *terminator = ctl.keyword;
              return nodes;  // caller consumes the terminator
            }
          }
          if (ctl.keyword == "for") {
            nodes.push_back(parse_for(seg, ctl));
          } else if (ctl.keyword == "if") {
            nodes.push_back(parse_if(seg, ctl));
          } else {
            fail(seg, "unexpected control '%" + ctl.keyword + "'");
          }
          break;
        }
      }
    }
    if (!until.empty()) {
      throw TemplateError(name_ + ": missing closing '%" + until.back() + "'");
    }
    return nodes;
  }

 private:
  [[noreturn]] void fail(const Segment& seg, const std::string& why) const {
    throw TemplateError(name_ + ":" + std::to_string(seg.line) + ": " + why);
  }

  Expr parse_expr(const Segment& seg) {
    return parse_expr_text(seg, seg.text);
  }

  Expr parse_expr_text(const Segment& seg, const std::string& text) {
    try {
      return ExprParser(text).parse();
    } catch (const TemplateError& e) {
      fail(seg, e.what());
    }
  }

  TemplateNode parse_for(const Segment& seg, const ControlLine& ctl) {
    // "for <var> in <expr>"
    auto in_pos = ctl.rest.find(" in ");
    if (in_pos == std::string::npos) fail(seg, "malformed 'for': missing 'in'");
    ForNode f;
    f.var = ctl.rest.substr(0, in_pos);
    while (!f.var.empty() && f.var.back() == ' ') f.var.pop_back();
    if (f.var.empty()) fail(seg, "malformed 'for': missing variable");
    f.collection = parse_expr_text(seg, ctl.rest.substr(in_pos + 4));
    ++pos_;  // consume the 'for' line
    std::string term;
    f.body = parse_block({"endfor"}, &term);
    ++pos_;  // consume 'endfor'
    TemplateNode n;
    n.node = std::move(f);
    return n;
  }

  TemplateNode parse_if(const Segment& /*seg*/, const ControlLine& first) {
    IfNode out;
    ControlLine ctl = first;
    bool saw_else = false;
    while (true) {
      const Segment& branch_seg = segments_[pos_];
      IfBranch branch;
      if (ctl.keyword == "if" || ctl.keyword == "elif") {
        if (saw_else) fail(branch_seg, "'" + ctl.keyword + "' after 'else'");
        branch.condition =
            std::make_unique<Expr>(parse_expr_text(branch_seg, ctl.rest));
      } else {
        saw_else = true;
      }
      ++pos_;  // consume the branch header
      std::string term;
      branch.body = parse_block({"elif", "else", "endif"}, &term);
      out.branches.push_back(std::move(branch));
      if (term == "endif") {
        ++pos_;
        break;
      }
      ctl = split_control(segments_[pos_].text);
      // loop consumes this header at the top
    }
    TemplateNode n;
    n.node = std::move(out);
    return n;
  }

  const std::vector<Segment>& segments_;
  std::string name_;
  std::size_t pos_ = 0;
};

}  // namespace

Expr parse_expression(std::string_view text) {
  return ExprParser(text).parse();
}

std::vector<TemplateNode> parse_segments(const std::vector<Segment>& segments,
                                         const std::string& template_name) {
  SegmentParser parser(segments, template_name);
  return parser.parse_block({}, nullptr);
}

}  // namespace autonet::templates::detail

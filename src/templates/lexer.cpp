#include <cctype>

#include "templates/detail.hpp"
#include "templates/template.hpp"

namespace autonet::templates::detail {

namespace {

/// True when `line` is a control line: optional whitespace then '%' (but
/// not '%%', the escape for a literal percent).
bool is_control_line(std::string_view line) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  return i < line.size() && line[i] == '%' &&
         (i + 1 >= line.size() || line[i + 1] != '%');
}

std::string strip_control(std::string_view line) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  ++i;  // '%'
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  std::size_t end = line.size();
  while (end > i && std::isspace(static_cast<unsigned char>(line[end - 1]))) --end;
  return std::string(line.substr(i, end - i));
}

/// Splits a text run on ${...} expressions (handles nested braces inside
/// the expression, e.g. dict literals are not supported but parenthesised
/// filters with string args containing '}' inside quotes are).
void lex_inline(std::string_view text, int line, std::vector<Segment>& out) {
  std::size_t pos = 0;
  int cur_line = line;
  while (pos < text.size()) {
    auto open = text.find("${", pos);
    if (open == std::string_view::npos) {
      out.push_back({Segment::Kind::kText, std::string(text.substr(pos)), cur_line});
      return;
    }
    if (open > pos) {
      std::string_view chunk = text.substr(pos, open - pos);
      out.push_back({Segment::Kind::kText, std::string(chunk), cur_line});
      for (char c : chunk) {
        if (c == '\n') ++cur_line;
      }
    }
    // Find the matching '}' respecting quotes.
    std::size_t i = open + 2;
    char quote = 0;
    for (; i < text.size(); ++i) {
      char c = text[i];
      if (quote != 0) {
        if (c == quote) quote = 0;
      } else if (c == '\'' || c == '"') {
        quote = c;
      } else if (c == '}') {
        break;
      }
    }
    if (i >= text.size()) {
      throw TemplateError("line " + std::to_string(cur_line) +
                          ": unterminated ${...} expression");
    }
    out.push_back({Segment::Kind::kExpr,
                   std::string(text.substr(open + 2, i - open - 2)), cur_line});
    pos = i + 1;
  }
}

}  // namespace

std::vector<Segment> lex(std::string_view text) {
  std::vector<Segment> out;
  int line_no = 1;
  std::size_t pos = 0;
  std::string pending_text;
  int pending_line = 1;

  auto flush_pending = [&out, &pending_text, &pending_line]() {
    if (!pending_text.empty()) {
      lex_inline(pending_text, pending_line, out);
      pending_text.clear();
    }
  };

  while (pos <= text.size()) {
    auto nl = text.find('\n', pos);
    bool last = nl == std::string_view::npos;
    std::string_view line = text.substr(pos, last ? text.size() - pos : nl - pos);
    if (is_control_line(line)) {
      flush_pending();
      out.push_back({Segment::Kind::kControl, strip_control(line), line_no});
      // Control lines swallow their own trailing newline.
    } else {
      if (pending_text.empty()) pending_line = line_no;
      // Un-escape '%%' at line start to a literal '%'.
      std::string content(line);
      std::size_t indent = 0;
      while (indent < content.size() && (content[indent] == ' ' || content[indent] == '\t')) {
        ++indent;
      }
      if (indent + 1 < content.size() && content[indent] == '%' &&
          content[indent + 1] == '%') {
        content.erase(indent, 1);
      }
      pending_text += content;
      if (!last) pending_text += '\n';
      if (last && line.empty() && pos == text.size()) {
        // trailing position after final newline: nothing to add
      }
    }
    if (last) break;
    pos = nl + 1;
    ++line_no;
  }
  flush_pending();
  return out;
}

}  // namespace autonet::templates::detail

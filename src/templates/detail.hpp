// Internal AST shared by the template lexer, parser and evaluator.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "nidb/value.hpp"

namespace autonet::templates::detail {

// --- Expression AST --------------------------------------------------------

enum class BinOp {
  kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr, kAdd, kSub,
};

struct Expr {
  struct Literal {
    nidb::Value value;
  };
  struct Path {
    std::string dotted;  // "node.zebra.hostname"
  };
  struct Unary {  // not
    std::unique_ptr<Expr> operand;
  };
  struct Binary {
    BinOp op;
    std::unique_ptr<Expr> lhs;
    std::unique_ptr<Expr> rhs;
  };
  struct FilterCall {
    std::string name;
    std::unique_ptr<Expr> input;
    std::vector<Expr> args;
  };

  std::variant<Literal, Path, Unary, Binary, FilterCall> node;
};

/// Parses an expression (used by ${...}, % if, and % for collections).
/// Throws TemplateError on syntax errors.
[[nodiscard]] Expr parse_expression(std::string_view text);

// --- Template AST -----------------------------------------------------------

struct TemplateNode;

struct TextNode {
  std::string text;
};
struct OutputNode {
  Expr expr;
};
struct ForNode {
  std::string var;
  Expr collection;
  std::vector<TemplateNode> body;
};
struct IfBranch {
  // Null expr == else branch.
  std::unique_ptr<Expr> condition;
  std::vector<TemplateNode> body;
};
struct IfNode {
  std::vector<IfBranch> branches;
};

struct TemplateNode {
  std::variant<TextNode, OutputNode, ForNode, IfNode> node;
};

// --- Lexer ------------------------------------------------------------------

/// A template is segmented into raw-text runs, ${...} expressions, and
/// %-control lines.
struct Segment {
  enum class Kind { kText, kExpr, kControl };
  Kind kind = Kind::kText;
  std::string text;  // raw text / expression body / control line body
  int line = 0;
};

[[nodiscard]] std::vector<Segment> lex(std::string_view text);

/// Parses lexed segments into a template AST.
[[nodiscard]] std::vector<TemplateNode> parse_segments(
    const std::vector<Segment>& segments, const std::string& template_name);

}  // namespace autonet::templates::detail

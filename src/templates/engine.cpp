#include "templates/detail.hpp"
#include "templates/template.hpp"

namespace autonet::templates {

using detail::BinOp;
using detail::Expr;
using detail::TemplateNode;
using nidb::Value;

nidb::Value Context::lookup(std::string_view dotted) const {
  auto dot = dotted.find('.');
  std::string_view head = dotted.substr(0, dot);
  auto it = vars_.find(head);
  if (it == vars_.end()) return Value(nullptr);
  if (dot == std::string_view::npos) return it->second;
  const Value* v = it->second.find_path(dotted.substr(dot + 1));
  return v == nullptr ? Value(nullptr) : *v;
}

namespace {

class Scope {
 public:
  explicit Scope(const Context& root) : root_(root) {}

  void push(const std::string& name, Value v) {
    locals_.emplace_back(name, std::move(v));
  }
  void pop() { locals_.pop_back(); }

  [[nodiscard]] Value lookup(std::string_view dotted) const {
    auto dot = dotted.find('.');
    std::string_view head = dotted.substr(0, dot);
    // innermost loop variable wins
    for (auto it = locals_.rbegin(); it != locals_.rend(); ++it) {
      if (it->first == head) {
        if (dot == std::string_view::npos) return it->second;
        const Value* v = it->second.find_path(dotted.substr(dot + 1));
        return v == nullptr ? Value(nullptr) : *v;
      }
    }
    return root_.lookup(dotted);
  }

 private:
  const Context& root_;
  std::vector<std::pair<std::string, Value>> locals_;
};

bool values_equal(const Value& a, const Value& b) { return a == b; }

int compare_values(const Value& a, const Value& b) {
  auto da = a.as_double();
  auto db = b.as_double();
  if (da && db) return *da < *db ? -1 : (*da > *db ? 1 : 0);
  const auto* sa = a.as_string();
  const auto* sb = b.as_string();
  if (sa && sb) return sa->compare(*sb) < 0 ? -1 : (*sa == *sb ? 0 : 1);
  throw TemplateError("cannot order values '" + a.to_display() + "' and '" +
                      b.to_display() + "'");
}

Value eval(const Expr& expr, const Scope& scope) {
  struct Visitor {
    const Scope& scope;

    Value operator()(const Expr::Literal& lit) const { return lit.value; }
    Value operator()(const Expr::Path& path) const { return scope.lookup(path.dotted); }
    Value operator()(const Expr::Unary& u) const {
      return Value(!eval(*u.operand, scope).truthy());
    }
    Value operator()(const Expr::Binary& b) const {
      switch (b.op) {
        case BinOp::kAnd: {
          Value lhs = eval(*b.lhs, scope);
          return lhs.truthy() ? eval(*b.rhs, scope) : lhs;
        }
        case BinOp::kOr: {
          Value lhs = eval(*b.lhs, scope);
          return lhs.truthy() ? lhs : eval(*b.rhs, scope);
        }
        default: break;
      }
      Value lhs = eval(*b.lhs, scope);
      Value rhs = eval(*b.rhs, scope);
      switch (b.op) {
        case BinOp::kEq: return Value(values_equal(lhs, rhs));
        case BinOp::kNe: return Value(!values_equal(lhs, rhs));
        case BinOp::kLt: return Value(compare_values(lhs, rhs) < 0);
        case BinOp::kLe: return Value(compare_values(lhs, rhs) <= 0);
        case BinOp::kGt: return Value(compare_values(lhs, rhs) > 0);
        case BinOp::kGe: return Value(compare_values(lhs, rhs) >= 0);
        case BinOp::kAdd: {
          // '+' concatenates strings, else adds numerically.
          if (lhs.is_string() || rhs.is_string()) {
            return Value(lhs.to_display() + rhs.to_display());
          }
          if (lhs.is_int() && rhs.is_int()) return Value(*lhs.as_int() + *rhs.as_int());
          auto da = lhs.as_double();
          auto db = rhs.as_double();
          if (da && db) return Value(*da + *db);
          throw TemplateError("cannot add values");
        }
        case BinOp::kSub: {
          if (lhs.is_int() && rhs.is_int()) return Value(*lhs.as_int() - *rhs.as_int());
          auto da = lhs.as_double();
          auto db = rhs.as_double();
          if (da && db) return Value(*da - *db);
          throw TemplateError("cannot subtract values");
        }
        default: throw TemplateError("internal: bad binary op");
      }
    }
    Value operator()(const Expr::FilterCall& call) const {
      const auto& filters = builtin_filters();
      auto it = filters.find(call.name);
      if (it == filters.end()) {
        throw TemplateError("unknown filter '" + call.name + "'");
      }
      Value input = eval(*call.input, scope);
      std::vector<Value> args;
      args.reserve(call.args.size());
      for (const auto& a : call.args) args.push_back(eval(a, scope));
      return it->second(input, args);
    }
  };
  return std::visit(Visitor{scope}, expr.node);
}

void render_nodes(const std::vector<TemplateNode>& nodes, Scope& scope,
                  std::string& out) {
  struct Visitor {
    Scope& scope;
    std::string& out;

    void operator()(const detail::TextNode& n) const { out += n.text; }
    void operator()(const detail::OutputNode& n) const {
      out += eval(n.expr, scope).to_display();
    }
    void operator()(const detail::ForNode& n) const {
      Value coll = eval(n.collection, scope);
      auto iterate = [&](const Value& item) {
        scope.push(n.var, item);
        render_nodes(n.body, scope, out);
        scope.pop();
      };
      if (const nidb::Array* arr = coll.as_array()) {
        for (const Value& item : *arr) iterate(item);
      } else if (const nidb::Object* obj = coll.as_object()) {
        for (const auto& [key, item] : *obj) {
          (void)item;
          iterate(Value(key));  // iterating an object yields its keys
        }
      } else if (!coll.is_null()) {
        iterate(coll);  // scalars iterate once, easing optional lists
      }
    }
    void operator()(const detail::IfNode& n) const {
      for (const auto& branch : n.branches) {
        if (branch.condition == nullptr || eval(*branch.condition, scope).truthy()) {
          render_nodes(branch.body, scope, out);
          return;
        }
      }
    }
  };
  for (const TemplateNode& n : nodes) std::visit(Visitor{scope, out}, n.node);
}

}  // namespace

Template::Template() = default;
Template::Template(Template&&) noexcept = default;
Template& Template::operator=(Template&&) noexcept = default;
Template::~Template() = default;

Template Template::parse(std::string_view text, std::string name) {
  Template t;
  t.name_ = std::move(name);
  t.nodes_ = detail::parse_segments(detail::lex(text), t.name_);
  return t;
}

std::string Template::render(const Context& context) const {
  std::string out;
  Scope scope(context);
  render_nodes(nodes_, scope, out);
  return out;
}

std::string render(std::string_view template_text, const Context& context) {
  return Template::parse(template_text).render(context);
}

}  // namespace autonet::templates

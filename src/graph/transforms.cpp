#include "graph/transforms.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace autonet::graph {

namespace {

std::string unique_name(const Graph& g, std::string base) {
  if (!g.has_node(base)) return base;
  for (int i = 1;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (!g.has_node(candidate)) return candidate;
  }
}

}  // namespace

NodeId split_edge(Graph& g, EdgeId e, const std::string& name_prefix) {
  const NodeId u = g.edge_src(e);
  const NodeId v = g.edge_dst(e);
  const AttrMap attrs = g.edge_attrs(e);
  const std::string name =
      unique_name(g, name_prefix + g.node_name(u) + "_" + g.node_name(v));
  g.remove_edge(e);
  const NodeId mid = g.add_node(name);
  const EdgeId e1 = g.add_edge(u, mid);
  const EdgeId e2 = g.add_edge(mid, v);
  g.edge_attrs(e1) = attrs;
  g.edge_attrs(e2) = attrs;
  return mid;
}

std::vector<NodeId> split_edges(Graph& g, std::span<const EdgeId> edges,
                                const std::string& name_prefix) {
  std::vector<NodeId> out;
  out.reserve(edges.size());
  for (EdgeId e : edges) out.push_back(split_edge(g, e, name_prefix));
  return out;
}

NodeId aggregate_nodes(Graph& g, std::span<const NodeId> members,
                       const std::string& into) {
  if (members.empty()) throw std::invalid_argument("aggregate_nodes: empty member set");
  const std::set<NodeId> member_set(members.begin(), members.end());

  // Collect outside attachments before mutating.
  std::vector<std::pair<NodeId, AttrMap>> attachments;
  std::set<NodeId> attached;
  for (NodeId m : members) {
    for (EdgeId e : g.incident_edges(m)) {
      NodeId other = g.edge_other(e, m);
      if (member_set.contains(other) || attached.contains(other)) continue;
      attached.insert(other);
      attachments.emplace_back(other, g.edge_attrs(e));
    }
  }
  for (NodeId m : members) g.remove_node(m);

  const NodeId agg = g.add_node(unique_name(g, into));
  for (auto& [other, attrs] : attachments) {
    EdgeId e = g.add_edge(agg, other);
    g.edge_attrs(e) = std::move(attrs);
  }
  return agg;
}

std::vector<EdgeId> explode_node(Graph& g, NodeId n) {
  const std::vector<NodeId> nbrs = g.neighbors(n);
  g.remove_node(n);
  std::vector<EdgeId> added;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      if (g.find_edge(nbrs[i], nbrs[j]) == kInvalidEdge) {
        added.push_back(g.add_edge(nbrs[i], nbrs[j]));
      }
    }
  }
  return added;
}

std::map<AttrValue, std::vector<NodeId>> group_by(const Graph& g,
                                                  std::string_view attr) {
  std::map<AttrValue, std::vector<NodeId>> groups;
  for (NodeId n : g.nodes()) groups[g.node_attr(n, attr)].push_back(n);
  return groups;
}

}  // namespace autonet::graph

#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace autonet::graph {

Graph::Graph(bool directed, std::string name)
    : directed_(directed), name_(std::move(name)) {}

void Graph::check_node(NodeId id) const {
  if (id >= nodes_.size() || !nodes_[id].alive) {
    throw std::out_of_range("graph '" + name_ + "': invalid node id " +
                            std::to_string(id));
  }
}

void Graph::check_edge(EdgeId id) const {
  if (id >= edges_.size() || !edges_[id].alive) {
    throw std::out_of_range("graph '" + name_ + "': invalid edge id " +
                            std::to_string(id));
  }
}

NodeId Graph::add_node(std::string_view name) {
  if (auto it = by_name_.find(std::string(name)); it != by_name_.end()) {
    return it->second;
  }
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{.name = std::string(name), .attrs = {}, .out = {}, .in = {}, .alive = true});
  by_name_.emplace(std::string(name), id);
  ++live_nodes_;
  return id;
}

NodeId Graph::find_node(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidNode : it->second;
}

bool Graph::has_node(NodeId id) const {
  return id < nodes_.size() && nodes_[id].alive;
}

void Graph::remove_node(NodeId id) {
  check_node(id);
  // Copy: remove_edge mutates the adjacency vectors we iterate.
  auto incident = incident_edges(id);
  for (EdgeId e : incident) remove_edge(e);
  by_name_.erase(nodes_[id].name);
  nodes_[id].alive = false;
  --live_nodes_;
}

const std::string& Graph::node_name(NodeId id) const {
  check_node(id);
  return nodes_[id].name;
}

AttrMap& Graph::node_attrs(NodeId id) {
  check_node(id);
  return nodes_[id].attrs;
}

const AttrMap& Graph::node_attrs(NodeId id) const {
  check_node(id);
  return nodes_[id].attrs;
}

const AttrValue& Graph::node_attr(NodeId id, std::string_view key) const {
  return attr_or_unset(node_attrs(id), key);
}

void Graph::set_node_attr(NodeId id, std::string_view key, AttrValue value) {
  node_attrs(id).insert_or_assign(std::string(key), std::move(value));
}

std::vector<NodeId> Graph::nodes() const {
  std::vector<NodeId> out;
  out.reserve(live_nodes_);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].alive) out.push_back(id);
  }
  return out;
}

EdgeId Graph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{.src = u, .dst = v, .attrs = {}, .alive = true});
  nodes_[u].out.push_back(id);
  if (directed_) {
    nodes_[v].in.push_back(id);
  } else if (u != v) {
    nodes_[v].out.push_back(id);
  }
  ++live_edges_;
  return id;
}

EdgeId Graph::add_edge(std::string_view u, std::string_view v) {
  return add_edge(add_node(u), add_node(v));
}

void Graph::remove_edge(EdgeId id) {
  check_edge(id);
  Edge& e = edges_[id];
  auto erase_from = [id](std::vector<EdgeId>& v) {
    v.erase(std::remove(v.begin(), v.end(), id), v.end());
  };
  erase_from(nodes_[e.src].out);
  if (directed_) {
    erase_from(nodes_[e.dst].in);
  } else if (e.src != e.dst) {
    erase_from(nodes_[e.dst].out);
  }
  e.alive = false;
  --live_edges_;
}

bool Graph::has_edge(EdgeId id) const {
  return id < edges_.size() && edges_[id].alive;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  for (EdgeId e : nodes_[u].out) {
    const Edge& edge = edges_[e];
    if (edge.src == u ? edge.dst == v : edge.src == v) return e;
  }
  return kInvalidEdge;
}

NodeId Graph::edge_src(EdgeId id) const {
  check_edge(id);
  return edges_[id].src;
}

NodeId Graph::edge_dst(EdgeId id) const {
  check_edge(id);
  return edges_[id].dst;
}

NodeId Graph::edge_other(EdgeId id, NodeId n) const {
  check_edge(id);
  const Edge& e = edges_[id];
  if (e.src == n) return e.dst;
  if (e.dst == n) return e.src;
  throw std::invalid_argument("edge " + std::to_string(id) +
                              " is not incident to node " + std::to_string(n));
}

AttrMap& Graph::edge_attrs(EdgeId id) {
  check_edge(id);
  return edges_[id].attrs;
}

const AttrMap& Graph::edge_attrs(EdgeId id) const {
  check_edge(id);
  return edges_[id].attrs;
}

const AttrValue& Graph::edge_attr(EdgeId id, std::string_view key) const {
  return attr_or_unset(edge_attrs(id), key);
}

void Graph::set_edge_attr(EdgeId id, std::string_view key, AttrValue value) {
  edge_attrs(id).insert_or_assign(std::string(key), std::move(value));
}

std::vector<EdgeId> Graph::edges() const {
  std::vector<EdgeId> out;
  out.reserve(live_edges_);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    if (edges_[id].alive) out.push_back(id);
  }
  return out;
}

std::vector<EdgeId> Graph::out_edges(NodeId n) const {
  check_node(n);
  return nodes_[n].out;
}

std::vector<EdgeId> Graph::in_edges(NodeId n) const {
  check_node(n);
  return directed_ ? nodes_[n].in : nodes_[n].out;
}

std::vector<EdgeId> Graph::incident_edges(NodeId n) const {
  check_node(n);
  if (!directed_) return nodes_[n].out;
  std::vector<EdgeId> out = nodes_[n].out;
  out.insert(out.end(), nodes_[n].in.begin(), nodes_[n].in.end());
  return out;
}

std::vector<NodeId> Graph::neighbors(NodeId n) const {
  check_node(n);
  std::vector<NodeId> out;
  out.reserve(nodes_[n].out.size());
  for (EdgeId e : nodes_[n].out) {
    NodeId other = edge_other(e, n);
    // An undirected self-loop lists the edge once; report n once too.
    if (std::find(out.begin(), out.end(), other) == out.end()) out.push_back(other);
  }
  return out;
}

std::size_t Graph::degree(NodeId n) const {
  check_node(n);
  return directed_ ? nodes_[n].out.size() + nodes_[n].in.size()
                   : nodes_[n].out.size();
}

}  // namespace autonet::graph

#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <stack>
#include <stdexcept>

namespace autonet::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<NodeId> bfs_order(const Graph& g, NodeId start) {
  std::vector<NodeId> order;
  std::vector<char> seen(start + 1, 0);
  auto mark = [&seen](NodeId n) {
    if (n >= seen.size()) seen.resize(n + 1, 0);
    seen[n] = 1;
  };
  auto is_seen = [&seen](NodeId n) { return n < seen.size() && seen[n]; };

  std::deque<NodeId> queue{start};
  mark(start);
  while (!queue.empty()) {
    NodeId n = queue.front();
    queue.pop_front();
    order.push_back(n);
    for (NodeId m : g.neighbors(n)) {
      if (!is_seen(m)) {
        mark(m);
        queue.push_back(m);
      }
    }
  }
  return order;
}

std::vector<std::vector<NodeId>> connected_components(const Graph& g) {
  std::vector<std::vector<NodeId>> components;
  std::vector<char> seen;
  auto is_seen = [&seen](NodeId n) { return n < seen.size() && seen[n]; };
  auto mark = [&seen](NodeId n) {
    if (n >= seen.size()) seen.resize(n + 1, 0);
    seen[n] = 1;
  };

  for (NodeId start : g.nodes()) {
    if (is_seen(start)) continue;
    std::vector<NodeId> comp;
    std::deque<NodeId> queue{start};
    mark(start);
    while (!queue.empty()) {
      NodeId n = queue.front();
      queue.pop_front();
      comp.push_back(n);
      // Weak connectivity: walk both edge directions.
      for (EdgeId e : g.incident_edges(n)) {
        NodeId m = g.edge_other(e, n);
        if (!is_seen(m)) {
          mark(m);
          queue.push_back(m);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    components.push_back(std::move(comp));
  }
  return components;
}

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  return connected_components(g).size() == 1;
}

bool ShortestPaths::reached(NodeId n) const {
  return n < dist.size() && dist[n] < kInf;
}

std::vector<NodeId> ShortestPaths::path_to(const Graph& g, NodeId target) const {
  if (!reached(target)) return {};
  std::vector<NodeId> path{target};
  NodeId cur = target;
  while (pred_edge[cur] != kInvalidEdge) {
    cur = g.edge_other(pred_edge[cur], cur);
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPaths dijkstra(const Graph& g, NodeId source, const WeightFn& weight) {
  if (!g.has_node(source)) throw std::out_of_range("dijkstra: invalid source");
  std::size_t cap = 0;
  for (NodeId n : g.nodes()) cap = std::max<std::size_t>(cap, n + 1);

  ShortestPaths sp;
  sp.dist.assign(cap, kInf);
  sp.pred_edge.assign(cap, kInvalidEdge);
  sp.dist[source] = 0.0;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    auto [d, n] = heap.top();
    heap.pop();
    if (d > sp.dist[n]) continue;
    for (EdgeId e : g.out_edges(n)) {
      // Undirected adjacency lists contain every incident edge; only relax
      // outgoing direction for directed graphs (out_edges guarantees that).
      NodeId m = g.edge_other(e, n);
      double w = 1.0;
      if (weight) {
        auto maybe = weight(e);
        if (!maybe) continue;
        w = *maybe;
      }
      if (w < 0) throw std::invalid_argument("dijkstra: negative edge weight");
      double nd = d + w;
      if (nd < sp.dist[m]) {
        sp.dist[m] = nd;
        sp.pred_edge[m] = e;
        heap.emplace(nd, m);
      }
    }
  }
  return sp;
}

std::map<NodeId, double> degree_centrality(const Graph& g) {
  std::map<NodeId, double> out;
  const auto nodes = g.nodes();
  const double denom = nodes.size() > 1 ? static_cast<double>(nodes.size() - 1) : 1.0;
  for (NodeId n : nodes) out[n] = static_cast<double>(g.degree(n)) / denom;
  return out;
}

std::map<NodeId, double> closeness_centrality(const Graph& g) {
  std::map<NodeId, double> out;
  const auto nodes = g.nodes();
  for (NodeId n : nodes) {
    auto sp = dijkstra(g, n);
    double total = 0.0;
    std::size_t reached = 0;
    for (NodeId m : nodes) {
      if (m != n && sp.reached(m)) {
        total += sp.dist[m];
        ++reached;
      }
    }
    if (reached == 0 || total == 0.0) {
      out[n] = 0.0;
    } else {
      // NetworkX convention: scale by the fraction of reachable nodes so
      // disconnected graphs stay comparable.
      double frac = static_cast<double>(reached) / static_cast<double>(nodes.size() - 1);
      out[n] = frac * static_cast<double>(reached) / total;
    }
  }
  return out;
}

std::map<NodeId, double> betweenness_centrality(const Graph& g) {
  // Brandes' algorithm, unweighted.
  const auto nodes = g.nodes();
  std::map<NodeId, double> bc;
  for (NodeId n : nodes) bc[n] = 0.0;
  std::size_t cap = 0;
  for (NodeId n : nodes) cap = std::max<std::size_t>(cap, n + 1);

  for (NodeId s : nodes) {
    std::stack<NodeId> order;
    std::vector<std::vector<NodeId>> preds(cap);
    std::vector<double> sigma(cap, 0.0);
    std::vector<double> dist(cap, -1.0);
    sigma[s] = 1.0;
    dist[s] = 0.0;
    std::deque<NodeId> queue{s};
    while (!queue.empty()) {
      NodeId v = queue.front();
      queue.pop_front();
      order.push(v);
      for (NodeId w : g.neighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          preds[w].push_back(v);
        }
      }
    }
    std::vector<double> delta(cap, 0.0);
    while (!order.empty()) {
      NodeId w = order.top();
      order.pop();
      for (NodeId v : preds[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) bc[w] += delta[w];
    }
  }

  const auto n = static_cast<double>(nodes.size());
  if (n > 2) {
    // Normalise to [0,1]. Undirected accumulation counts each pair twice,
    // which exactly cancels the factor-2 in the undirected normalisation,
    // so the scale is the same either way.
    const double scale = 1.0 / ((n - 1) * (n - 2));
    for (auto& [id, v] : bc) v *= scale;
  }
  return bc;
}

std::vector<EdgeId> bridges(const Graph& g) {
  // Iterative Tarjan low-link over the undirected view. Parallel edges
  // between the same pair are never bridges (the twin survives).
  std::size_t cap = 0;
  for (NodeId n : g.nodes()) cap = std::max<std::size_t>(cap, n + 1);
  std::vector<int> disc(cap, -1);
  std::vector<int> low(cap, 0);
  std::vector<EdgeId> out;
  int timer = 0;

  struct Frame {
    NodeId node;
    EdgeId via;  // edge taken to reach node (kInvalidEdge at roots)
    std::vector<EdgeId> edges;
    std::size_t next = 0;
  };

  for (NodeId root : g.nodes()) {
    if (disc[root] >= 0) continue;
    std::vector<Frame> stack;
    stack.push_back({root, kInvalidEdge, g.incident_edges(root), 0});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next < frame.edges.size()) {
        EdgeId e = frame.edges[frame.next++];
        if (e == frame.via) continue;  // don't retraverse the tree edge
        NodeId m = g.edge_other(e, frame.node);
        if (disc[m] < 0) {
          disc[m] = low[m] = timer++;
          stack.push_back({m, e, g.incident_edges(m), 0});
        } else {
          low[frame.node] = std::min(low[frame.node], disc[m]);
        }
      } else {
        NodeId n = frame.node;
        EdgeId via = frame.via;
        stack.pop_back();
        if (!stack.empty()) {
          NodeId parent = stack.back().node;
          low[parent] = std::min(low[parent], low[n]);
          if (low[n] > disc[parent]) out.push_back(via);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> top_k_central(const Graph& g,
                                  const std::map<NodeId, double>& centrality,
                                  std::size_t k) {
  std::vector<NodeId> ids;
  ids.reserve(centrality.size());
  for (const auto& [id, score] : centrality) ids.push_back(id);
  std::sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
    double sa = centrality.at(a);
    double sb = centrality.at(b);
    if (sa != sb) return sa > sb;
    return g.node_name(a) < g.node_name(b);
  });
  if (ids.size() > k) ids.resize(k);
  return ids;
}

}  // namespace autonet::graph

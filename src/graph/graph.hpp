// Attribute graph: the foundational substrate the paper builds on
// (NetworkX in the reference implementation; built from scratch here).
//
// A Graph is a directed or undirected multigraph. Nodes have stable ids
// and unique string names; nodes, edges, and the graph itself carry
// AttrMaps. Removal tombstones entries so ids handed out to callers stay
// valid for the life of the graph.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/attr.hpp"

namespace autonet::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

class Graph {
 public:
  explicit Graph(bool directed = false, std::string name = "");

  [[nodiscard]] bool directed() const { return directed_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Graph-level attributes (paper §5.2.1: e.g. per-AS IP blocks are
  /// stored on the overlay graph, not duplicated per node).
  [[nodiscard]] AttrMap& data() { return data_; }
  [[nodiscard]] const AttrMap& data() const { return data_; }

  // --- Nodes -------------------------------------------------------------

  /// Adds a node with a unique name. Returns the existing id if a live
  /// node with this name is already present (idempotent adds make the
  /// overlay copy operations simple).
  NodeId add_node(std::string_view name);

  /// kInvalidNode if absent.
  [[nodiscard]] NodeId find_node(std::string_view name) const;

  [[nodiscard]] bool has_node(NodeId id) const;
  [[nodiscard]] bool has_node(std::string_view name) const {
    return find_node(name) != kInvalidNode;
  }

  /// Removes the node and all incident edges.
  void remove_node(NodeId id);

  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] AttrMap& node_attrs(NodeId id);
  [[nodiscard]] const AttrMap& node_attrs(NodeId id) const;
  [[nodiscard]] const AttrValue& node_attr(NodeId id, std::string_view key) const;
  void set_node_attr(NodeId id, std::string_view key, AttrValue value);

  [[nodiscard]] std::size_t node_count() const { return live_nodes_; }
  /// Live node ids in insertion order.
  [[nodiscard]] std::vector<NodeId> nodes() const;

  // --- Edges -------------------------------------------------------------

  EdgeId add_edge(NodeId u, NodeId v);
  EdgeId add_edge(std::string_view u, std::string_view v);
  void remove_edge(EdgeId id);
  [[nodiscard]] bool has_edge(EdgeId id) const;

  /// First live edge u->v (or either direction when undirected);
  /// kInvalidEdge if none.
  [[nodiscard]] EdgeId find_edge(NodeId u, NodeId v) const;

  [[nodiscard]] NodeId edge_src(EdgeId id) const;
  [[nodiscard]] NodeId edge_dst(EdgeId id) const;
  /// The endpoint of `id` that is not `n`.
  [[nodiscard]] NodeId edge_other(EdgeId id, NodeId n) const;
  [[nodiscard]] AttrMap& edge_attrs(EdgeId id);
  [[nodiscard]] const AttrMap& edge_attrs(EdgeId id) const;
  [[nodiscard]] const AttrValue& edge_attr(EdgeId id, std::string_view key) const;
  void set_edge_attr(EdgeId id, std::string_view key, AttrValue value);

  [[nodiscard]] std::size_t edge_count() const { return live_edges_; }
  [[nodiscard]] std::vector<EdgeId> edges() const;

  /// Edges incident to n. For directed graphs: outgoing only for
  /// out_edges, incoming only for in_edges; edges(n) returns both.
  [[nodiscard]] std::vector<EdgeId> out_edges(NodeId n) const;
  [[nodiscard]] std::vector<EdgeId> in_edges(NodeId n) const;
  [[nodiscard]] std::vector<EdgeId> incident_edges(NodeId n) const;

  /// Unique neighbor node ids (successors for directed graphs).
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId n) const;
  [[nodiscard]] std::size_t degree(NodeId n) const;

 private:
  struct Node {
    std::string name;
    AttrMap attrs;
    std::vector<EdgeId> out;  // undirected: all incident edges live here
    std::vector<EdgeId> in;   // directed only
    bool alive = true;
  };
  struct Edge {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    AttrMap attrs;
    bool alive = true;
  };

  void check_node(NodeId id) const;
  void check_edge(EdgeId id) const;

  bool directed_;
  std::string name_;
  AttrMap data_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::size_t live_nodes_ = 0;
  std::size_t live_edges_ = 0;
};

}  // namespace autonet::graph

// Graph algorithms used by the design rules and compilers:
// traversal, components, shortest paths (IGP cost model), and the
// centralities used for algorithmic route-reflector selection (§7.1).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace autonet::graph {

/// Edge weight callback; return std::nullopt to skip the edge.
using WeightFn = std::function<std::optional<double>(EdgeId)>;

/// Nodes reachable from `start` in BFS order (respects direction).
[[nodiscard]] std::vector<NodeId> bfs_order(const Graph& g, NodeId start);

/// Connected components (weakly connected for directed graphs), each a
/// list of node ids; components ordered by smallest contained id.
[[nodiscard]] std::vector<std::vector<NodeId>> connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

struct ShortestPaths {
  /// dist[n] is infinity when unreachable.
  std::vector<double> dist;
  /// Predecessor edge on a shortest path; kInvalidEdge at the source and
  /// for unreachable nodes.
  std::vector<EdgeId> pred_edge;

  [[nodiscard]] bool reached(NodeId n) const;
  /// Node sequence source..target, empty when unreachable.
  [[nodiscard]] std::vector<NodeId> path_to(const Graph& g, NodeId target) const;
};

/// Dijkstra from `source`. Default weight is 1.0 per edge.
[[nodiscard]] ShortestPaths dijkstra(const Graph& g, NodeId source,
                                     const WeightFn& weight = {});

/// Degree centrality: degree / (n - 1), keyed by node id.
[[nodiscard]] std::map<NodeId, double> degree_centrality(const Graph& g);

/// Closeness centrality (unweighted distances), 0 for isolated nodes.
[[nodiscard]] std::map<NodeId, double> closeness_centrality(const Graph& g);

/// Brandes betweenness centrality (unweighted, normalised).
[[nodiscard]] std::map<NodeId, double> betweenness_centrality(const Graph& g);

/// The k node ids with the highest centrality score, ties broken by
/// node name for determinism.
[[nodiscard]] std::vector<NodeId> top_k_central(
    const Graph& g, const std::map<NodeId, double>& centrality, std::size_t k);

/// Bridge edges (whose removal disconnects their component), by Tarjan's
/// low-link algorithm — used for resilience auditing: a bridge in the
/// physical topology is a single point of failure.
[[nodiscard]] std::vector<EdgeId> bridges(const Graph& g);

}  // namespace autonet::graph

#include "graph/attr.hpp"

#include <cstdio>

namespace autonet::graph {

bool AttrValue::truthy() const {
  struct Visitor {
    bool operator()(std::monostate) const { return false; }
    bool operator()(bool v) const { return v; }
    bool operator()(std::int64_t v) const { return v != 0; }
    bool operator()(double v) const { return v != 0.0; }
    bool operator()(const std::string& v) const { return !v.empty(); }
    bool operator()(const std::vector<std::int64_t>& v) const { return !v.empty(); }
    bool operator()(const std::vector<std::string>& v) const { return !v.empty(); }
  };
  return std::visit(Visitor{}, value_);
}

std::optional<std::int64_t> AttrValue::as_int() const {
  if (const auto* v = std::get_if<std::int64_t>(&value_)) return *v;
  if (const auto* v = std::get_if<bool>(&value_)) return *v ? 1 : 0;
  return std::nullopt;
}

std::optional<double> AttrValue::as_double() const {
  if (const auto* v = std::get_if<double>(&value_)) return *v;
  if (auto i = as_int()) return static_cast<double>(*i);
  return std::nullopt;
}

std::optional<bool> AttrValue::as_bool() const {
  if (const auto* v = std::get_if<bool>(&value_)) return *v;
  return std::nullopt;
}

const std::string* AttrValue::as_string() const {
  return std::get_if<std::string>(&value_);
}

const std::vector<std::int64_t>* AttrValue::as_int_list() const {
  return std::get_if<std::vector<std::int64_t>>(&value_);
}

const std::vector<std::string>* AttrValue::as_string_list() const {
  return std::get_if<std::vector<std::string>>(&value_);
}

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

template <typename T, typename Fmt>
std::string join_list(const std::vector<T>& items, Fmt fmt) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ",";
    out += fmt(items[i]);
  }
  return out;
}

}  // namespace

std::string AttrValue::to_string() const {
  struct Visitor {
    std::string operator()(std::monostate) const { return ""; }
    std::string operator()(bool v) const { return v ? "true" : "false"; }
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const { return format_double(v); }
    std::string operator()(const std::string& v) const { return v; }
    std::string operator()(const std::vector<std::int64_t>& v) const {
      return join_list(v, [](std::int64_t x) { return std::to_string(x); });
    }
    std::string operator()(const std::vector<std::string>& v) const {
      return join_list(v, [](const std::string& x) { return x; });
    }
  };
  return std::visit(Visitor{}, value_);
}

bool operator<(const AttrValue& a, const AttrValue& b) {
  // Numeric values order numerically even across int/double/bool; other
  // mixed types order by variant index so AttrValue can key std::map.
  auto da = a.as_double();
  auto db = b.as_double();
  if (da && db) return *da < *db;
  if (a.value_.index() != b.value_.index()) return a.value_.index() < b.value_.index();
  return a.value_ < b.value_;
}

const AttrValue& attr_or_unset(const AttrMap& attrs, std::string_view key) {
  static const AttrValue kUnset{};
  auto it = attrs.find(key);
  return it == attrs.end() ? kUnset : it->second;
}

}  // namespace autonet::graph

// Typed attribute values for attribute graphs (paper §4.2.1).
//
// Every node, edge, and graph in the system carries a string-keyed map of
// AttrValue. The variant covers the primitive types the paper's design
// rules manipulate (booleans such as `rr`, integers such as `asn` and
// `ospf_cost`, strings such as `device_type`) plus homogeneous lists used
// by service overlays.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace autonet::graph {

/// A single attribute value. `std::monostate` encodes "unset".
class AttrValue {
 public:
  using Storage = std::variant<std::monostate, bool, std::int64_t, double,
                               std::string, std::vector<std::int64_t>,
                               std::vector<std::string>>;

  AttrValue() = default;
  AttrValue(bool v) : value_(v) {}                          // NOLINT(google-explicit-constructor)
  AttrValue(std::int64_t v) : value_(v) {}                  // NOLINT
  AttrValue(int v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  AttrValue(unsigned v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  AttrValue(double v) : value_(v) {}                        // NOLINT
  AttrValue(std::string v) : value_(std::move(v)) {}        // NOLINT
  AttrValue(const char* v) : value_(std::string(v)) {}      // NOLINT
  AttrValue(std::vector<std::int64_t> v) : value_(std::move(v)) {}  // NOLINT
  AttrValue(std::vector<std::string> v) : value_(std::move(v)) {}   // NOLINT

  [[nodiscard]] bool is_set() const {
    return !std::holds_alternative<std::monostate>(value_);
  }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_int_list() const {
    return std::holds_alternative<std::vector<std::int64_t>>(value_);
  }
  [[nodiscard]] bool is_string_list() const {
    return std::holds_alternative<std::vector<std::string>>(value_);
  }

  /// Truthiness in the Python sense: unset, false, 0, 0.0, "" and empty
  /// lists are falsy. Used by selector predicates and templates.
  [[nodiscard]] bool truthy() const;

  /// Numeric coercions return nullopt on type mismatch (bool coerces to
  /// int, int coerces to double).
  [[nodiscard]] std::optional<std::int64_t> as_int() const;
  [[nodiscard]] std::optional<double> as_double() const;
  [[nodiscard]] std::optional<bool> as_bool() const;
  [[nodiscard]] const std::string* as_string() const;
  [[nodiscard]] const std::vector<std::int64_t>* as_int_list() const;
  [[nodiscard]] const std::vector<std::string>* as_string_list() const;

  /// Human/template rendering: "true"/"false" for bool, %g-style for
  /// double, comma-joined for lists, "" for unset.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] const Storage& storage() const { return value_; }

  friend bool operator==(const AttrValue& a, const AttrValue& b) {
    // Cross-type numeric equality (1 == 1.0) mirrors the Python reference
    // implementation, where attribute values are duck-typed.
    if (a.value_.index() != b.value_.index()) {
      auto da = a.as_double();
      auto db = b.as_double();
      return da && db && *da == *db;
    }
    return a.value_ == b.value_;
  }
  friend bool operator!=(const AttrValue& a, const AttrValue& b) { return !(a == b); }
  friend bool operator<(const AttrValue& a, const AttrValue& b);

 private:
  Storage value_;
};

/// String-keyed attribute map attached to every node, edge, and graph.
using AttrMap = std::map<std::string, AttrValue, std::less<>>;

/// Lookup helper: unset AttrValue if the key is absent.
[[nodiscard]] const AttrValue& attr_or_unset(const AttrMap& attrs, std::string_view key);

}  // namespace autonet::graph

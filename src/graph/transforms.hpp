// Attribute-based graph transforms (paper §5.2.4): split() inserts
// collision-domain nodes on point-to-point links, aggregate() collapses
// switches into one collision domain, explode() forms a clique of a
// node's neighbors, and groupby() buckets nodes by attribute value.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace autonet::graph {

/// Splits edge `e` by inserting a new node between its endpoints.
/// The new node is named `<name_prefix><src>_<dst>` (made unique if
/// taken) and the two replacement edges inherit the old edge attributes.
/// Returns the new node id.
NodeId split_edge(Graph& g, EdgeId e, const std::string& name_prefix = "cd_");

/// Splits every edge in `edges`; returns the new nodes, in order.
std::vector<NodeId> split_edges(Graph& g, std::span<const EdgeId> edges,
                                const std::string& name_prefix = "cd_");

/// Collapses `members` into a single new node named `into`. Edges from a
/// member to an outside node are re-attached to the new node (duplicate
/// edges to the same outside node are merged); edges among members
/// disappear. Returns the new node id.
NodeId aggregate_nodes(Graph& g, std::span<const NodeId> members,
                       const std::string& into);

/// Removes node `n` and connects every pair of its former neighbors with
/// a new edge (skipping pairs already adjacent). Returns the new edges.
std::vector<EdgeId> explode_node(Graph& g, NodeId n);

/// Buckets all live nodes by the value of `attr` (paper: groupby()).
/// Nodes where the attribute is unset land under the unset AttrValue key.
[[nodiscard]] std::map<AttrValue, std::vector<NodeId>> group_by(
    const Graph& g, std::string_view attr);

}  // namespace autonet::graph

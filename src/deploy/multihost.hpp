// Distributed deployment (paper §3.3/§5.4: "we deploy the many VMs
// together with their networking to a suitable set of hosts, currently
// StarBed"; cross-host links are realised as "GRE tunnels between
// distributed Open vSwitches").
//
// Each emulation host receives only its slice of the configuration tree
// (the devices whose `host` attribute names it) plus the shared lab
// artefacts; the coordinator boots the combined control plane once every
// host reports its machines up, stitching cross-host links.
//
// Unlike the original all-or-nothing pipeline, a failing slice no longer
// aborts the deployment mid-flight: every host is driven to completion
// so the result attributes failures per slice (transfer attempts, failed
// machines, dead hosts), and with `DeployOptions::allow_partial` the
// coordinator boots the surviving subnetwork when the host quorum holds.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/error.hpp"
#include "deploy/deployer.hpp"
#include "deploy/host.hpp"

namespace autonet::deploy {

struct HostSlice {
  std::string host;
  std::size_t files = 0;
  /// False once the host is declared dead (transfer never succeeded).
  bool online = true;
  std::vector<std::string> booted;
  std::vector<std::string> failed;
  /// Machines assigned to this host that never got the chance to boot
  /// because the host itself died.
  std::vector<std::string> lost;
  int transfer_attempts = 0;
};

/// Combined outcome. `success` is true iff a network is running and the
/// contract was met: every host extracted and every machine booted in
/// strict mode, or the surviving hosts meet `min_host_quorum` (and
/// `min_booted`) in partial mode — then `degraded` is set and every
/// casualty appears both in its slice and as a typed entry in `errors`.
struct MultiHostResult {
  bool success = false;
  bool degraded = false;
  std::vector<HostSlice> slices;
  std::vector<std::string> dead_hosts;
  std::size_t cross_connects = 0;
  emulation::ConvergenceReport convergence;
  core::ErrorList errors;

  /// Aggregations over all slices.
  [[nodiscard]] int total_transfer_attempts() const;
  [[nodiscard]] std::vector<std::string> all_failed_machines() const;
};

class MultiHostDeployer {
 public:
  /// Hosts must be named to match the device `host` attributes; the
  /// first host acts as the coordinator running the combined network.
  explicit MultiHostDeployer(std::vector<EmulationHost*> hosts,
                             Deployer::Logger logger = {});

  MultiHostResult deploy(const render::ConfigTree& configs,
                         const nidb::Nidb& nidb, const DeployOptions& opts = {});

  /// The combined running network (on the coordinator); nullptr before a
  /// successful deploy.
  [[nodiscard]] emulation::EmulatedNetwork* network() { return network_.get(); }

  /// The structured event stream (also mirrored as obs "deploy" log
  /// events in the current telemetry registry).
  [[nodiscard]] const std::vector<DeployEvent>& events() const { return events_; }

  /// Backward-compatible rendered view of events().
  [[nodiscard]] std::vector<std::string> log() const;

 private:
  void emit(DeployPhase phase, std::string detail);

  std::vector<EmulationHost*> hosts_;
  Deployer::Logger logger_;
  std::vector<DeployEvent> events_;
  std::unique_ptr<emulation::EmulatedNetwork> network_;
  emulation::ConvergenceReport convergence_;
};

}  // namespace autonet::deploy

// Distributed deployment (paper §3.3/§5.4: "we deploy the many VMs
// together with their networking to a suitable set of hosts, currently
// StarBed"; cross-host links are realised as "GRE tunnels between
// distributed Open vSwitches").
//
// Each emulation host receives only its slice of the configuration tree
// (the devices whose `host` attribute names it) plus the shared lab
// artefacts; the coordinator boots the combined control plane once every
// host reports its machines up, stitching cross-host links.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "deploy/deployer.hpp"
#include "deploy/host.hpp"

namespace autonet::deploy {

struct HostSlice {
  std::string host;
  std::size_t files = 0;
  std::vector<std::string> booted;
  std::vector<std::string> failed;
  int transfer_attempts = 0;
};

struct MultiHostResult {
  bool success = false;
  std::vector<HostSlice> slices;
  std::size_t cross_connects = 0;
  emulation::ConvergenceReport convergence;
};

class MultiHostDeployer {
 public:
  /// Hosts must be named to match the device `host` attributes; the
  /// first host acts as the coordinator running the combined network.
  explicit MultiHostDeployer(std::vector<EmulationHost*> hosts,
                             Deployer::Logger logger = {});

  MultiHostResult deploy(const render::ConfigTree& configs,
                         const nidb::Nidb& nidb, const DeployOptions& opts = {});

  /// The combined running network (on the coordinator); nullptr before a
  /// successful deploy.
  [[nodiscard]] emulation::EmulatedNetwork* network() { return network_.get(); }

  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  void emit(DeployPhase phase, std::string detail);

  std::vector<EmulationHost*> hosts_;
  Deployer::Logger logger_;
  std::vector<std::string> log_;
  std::unique_ptr<emulation::EmulatedNetwork> network_;
  emulation::ConvergenceReport convergence_;
};

}  // namespace autonet::deploy

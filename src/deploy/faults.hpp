// Deterministic fault injection for the deployment pipeline (paper §8:
// "creating tools to emulate workflow, or incidents"; §5.7's flaky
// multi-host substrate). A FaultPlan is attached to one or more
// EmulationHosts and decides, per operation, whether the simulated
// substrate misbehaves: transient transfer corruption, per-machine boot
// failures, or a permanently dead host.
//
// Faults come from an explicit schedule, a seeded RNG, or both. Every
// decision is drawn deterministically and recorded, so two runs with the
// same seed and the same operation sequence produce byte-identical
// deploy logs — the property the resilience tests assert.
#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

namespace autonet::deploy {

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0) : seed_(seed), rng_(seed) {}

  // --- Explicit schedule -------------------------------------------------
  /// The next `count` transfers to `host` are corrupted in flight.
  void fail_transfers(const std::string& host, int count);
  /// The next `times` boot attempts of `machine` on `host` fail (a
  /// transient fault the deployer's per-machine retries can ride out).
  void fail_boot(const std::string& host, const std::string& machine, int times);
  /// `host` is permanently dead: transfers and boots to it always fail.
  void kill_host(const std::string& host) { dead_hosts_.insert(host); }
  void revive_host(const std::string& host) { dead_hosts_.erase(host); }

  // --- Random faults (deterministic under the seed) -----------------------
  /// Each transfer is independently corrupted with this probability.
  void set_transfer_loss(double probability) { transfer_loss_ = probability; }
  /// Each boot attempt independently fails with this probability.
  void set_boot_loss(double probability) { boot_loss_ = probability; }

  // --- Queries (consumed by EmulationHost, one decision per operation) ----
  [[nodiscard]] bool host_dead(const std::string& host) const {
    return dead_hosts_.contains(host);
  }
  /// Decides (and consumes) whether this transfer is corrupted.
  bool corrupt_transfer(const std::string& host);
  /// Decides (and consumes) whether this boot attempt fails.
  bool fail_machine_boot(const std::string& host, const std::string& machine);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  /// Every fault decision actually injected, in order — the audit trail
  /// the determinism tests compare.
  [[nodiscard]] const std::vector<std::string>& injected() const {
    return injected_;
  }

 private:
  bool draw(double probability);

  std::uint64_t seed_;
  std::mt19937_64 rng_;
  double transfer_loss_ = 0.0;
  double boot_loss_ = 0.0;
  std::map<std::string, int> transfer_failures_;
  std::map<std::pair<std::string, std::string>, int> boot_failures_;
  std::set<std::string> dead_hosts_;
  std::vector<std::string> injected_;
};

}  // namespace autonet::deploy

// A simulated emulation host (StarBed node / lab server): receives
// archives over a simulated transfer, extracts them into its filesystem,
// and boots the lab (`lstart`). Failure injection covers the paths a
// real deployment can break on — truncated transfers and machines that
// fail to boot — so the deployer's retry/monitoring logic is testable.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "emulation/network.hpp"
#include "nidb/nidb.hpp"
#include "render/config_tree.hpp"

namespace autonet::deploy {

class EmulationHost {
 public:
  explicit EmulationHost(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // --- Failure injection -------------------------------------------------
  /// The next transfer is truncated (checksum failure at extract).
  void corrupt_next_transfer() { corrupt_next_ = true; }
  /// The named machine fails to boot until cleared.
  void fail_boot_of(std::string machine) { boot_failures_.insert(std::move(machine)); }
  void clear_boot_failures() { boot_failures_.clear(); }

  // --- Deployment steps ------------------------------------------------
  /// Simulated scp: stores the blob (possibly corrupted by injection).
  void receive(std::string blob);
  /// Unpacks the stored blob into the host filesystem; false on checksum
  /// failure (the deployer then retries the transfer).
  bool extract();
  [[nodiscard]] const render::ConfigTree& filesystem() const { return fs_; }

  /// Boots machines one at a time (Netkit lstart semantics), invoking
  /// `progress` per machine. Machines in the boot-failure set report
  /// false. Returns the booted machine names.
  std::vector<std::string> lstart(
      const nidb::Nidb& nidb,
      const std::function<void(const std::string& machine, bool ok)>& progress = {});

  /// Boots only the machines assigned to this host (device records whose
  /// `host` field equals name()), without starting a control plane —
  /// used by distributed deployments where one coordinator runs the
  /// combined network (§5.4 cross-host stitching).
  std::vector<std::string> boot_assigned(
      const nidb::Nidb& nidb,
      const std::function<void(const std::string& machine, bool ok)>& progress = {});

  /// The running emulated network; nullptr before a successful lstart.
  [[nodiscard]] emulation::EmulatedNetwork* network() { return network_.get(); }
  [[nodiscard]] const emulation::EmulatedNetwork* network() const {
    return network_.get();
  }
  [[nodiscard]] const emulation::ConvergenceReport& convergence() const {
    return convergence_;
  }

 private:
  std::string name_;
  std::string inbox_;
  render::ConfigTree fs_;
  std::unique_ptr<emulation::EmulatedNetwork> network_;
  emulation::ConvergenceReport convergence_;
  bool corrupt_next_ = false;
  std::set<std::string> boot_failures_;
};

}  // namespace autonet::deploy

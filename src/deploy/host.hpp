// A simulated emulation host (StarBed node / lab server): receives
// archives over a simulated transfer, extracts them into its filesystem,
// and boots the lab (`lstart`). Failure injection covers the paths a
// real deployment can break on — truncated transfers, machines that
// fail to boot, and hosts that are entirely dead — either through the
// legacy one-shot hooks or through an attached deterministic FaultPlan,
// so the deployer's retry/degradation logic is testable.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "deploy/faults.hpp"
#include "emulation/network.hpp"
#include "nidb/nidb.hpp"
#include "render/config_tree.hpp"

namespace autonet::deploy {

class EmulationHost {
 public:
  explicit EmulationHost(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // --- Failure injection -------------------------------------------------
  /// The next transfer is truncated (checksum failure at extract).
  void corrupt_next_transfer() { corrupt_next_ = true; }
  /// The named machine fails to boot until cleared.
  void fail_boot_of(std::string machine) { boot_failures_.insert(std::move(machine)); }
  void clear_boot_failures() { boot_failures_.clear(); }
  /// Attaches a shared fault plan; pass nullptr to detach. The plan is
  /// consulted on every transfer and boot attempt, and decides whether
  /// the host is dead outright.
  void attach_faults(FaultPlan* plan) { faults_ = plan; }
  /// False when an attached fault plan declares this host dead.
  [[nodiscard]] bool online() const {
    return faults_ == nullptr || !faults_->host_dead(name_);
  }

  // --- Deployment steps ------------------------------------------------
  /// Simulated scp: stores the blob (possibly corrupted by injection).
  /// Returns false when the host is dead (connection refused).
  bool receive(std::string blob);
  /// Unpacks the stored blob into the host filesystem; false on checksum
  /// failure (the deployer then retries the transfer) or dead host.
  bool extract();
  [[nodiscard]] const render::ConfigTree& filesystem() const { return fs_; }

  /// One boot attempt for one machine; false when the machine is in the
  /// boot-failure set, the fault plan injects a failure, or the host is
  /// dead. The deployer drives per-machine retries through this.
  bool try_boot(const std::string& machine);

  /// Boots machines one at a time (Netkit lstart semantics), invoking
  /// `progress` per machine. Machines in the boot-failure set report
  /// false. Returns the booted machine names.
  std::vector<std::string> lstart(
      const nidb::Nidb& nidb,
      const std::function<void(const std::string& machine, bool ok)>& progress = {});

  /// Boots only the machines assigned to this host (device records whose
  /// `host` field equals name()), without starting a control plane —
  /// used by distributed deployments where one coordinator runs the
  /// combined network (§5.4 cross-host stitching).
  std::vector<std::string> boot_assigned(
      const nidb::Nidb& nidb,
      const std::function<void(const std::string& machine, bool ok)>& progress = {});

  /// Machine names assigned to this host (device records whose `host`
  /// field equals name()).
  [[nodiscard]] std::vector<std::string> assigned_machines(
      const nidb::Nidb& nidb) const;

  /// Starts the emulated control plane over `machines` (all devices when
  /// empty) from the given configs — the deployer calls this once boot
  /// retries settle, possibly with only a surviving subset (graceful
  /// degradation). An optional RunControl interrupts convergence per BGP
  /// round. Returns the convergence report.
  const emulation::ConvergenceReport& start_network(
      const nidb::Nidb& nidb, const render::ConfigTree& configs,
      const std::set<std::string>& machines = {},
      core::RunControl* control = nullptr);

  /// The running emulated network; nullptr before a successful lstart.
  [[nodiscard]] emulation::EmulatedNetwork* network() { return network_.get(); }
  [[nodiscard]] const emulation::EmulatedNetwork* network() const {
    return network_.get();
  }
  [[nodiscard]] const emulation::ConvergenceReport& convergence() const {
    return convergence_;
  }

 private:
  std::string name_;
  std::string inbox_;
  render::ConfigTree fs_;
  std::unique_ptr<emulation::EmulatedNetwork> network_;
  emulation::ConvergenceReport convergence_;
  bool corrupt_next_ = false;
  std::set<std::string> boot_failures_;
  FaultPlan* faults_ = nullptr;
};

}  // namespace autonet::deploy

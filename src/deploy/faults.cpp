#include "deploy/faults.hpp"

namespace autonet::deploy {

void FaultPlan::fail_transfers(const std::string& host, int count) {
  transfer_failures_[host] += count;
}

void FaultPlan::fail_boot(const std::string& host, const std::string& machine,
                          int times) {
  boot_failures_[{host, machine}] += times;
}

bool FaultPlan::draw(double probability) {
  if (probability <= 0.0) return false;
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < probability;
}

bool FaultPlan::corrupt_transfer(const std::string& host) {
  auto it = transfer_failures_.find(host);
  if (it != transfer_failures_.end() && it->second > 0) {
    --it->second;
    injected_.push_back("transfer-fault " + host);
    return true;
  }
  if (draw(transfer_loss_)) {
    injected_.push_back("transfer-fault " + host);
    return true;
  }
  return false;
}

bool FaultPlan::fail_machine_boot(const std::string& host,
                                  const std::string& machine) {
  auto it = boot_failures_.find({host, machine});
  if (it != boot_failures_.end() && it->second > 0) {
    --it->second;
    injected_.push_back("boot-fault " + host + "/" + machine);
    return true;
  }
  if (draw(boot_loss_)) {
    injected_.push_back("boot-fault " + host + "/" + machine);
    return true;
  }
  return false;
}

}  // namespace autonet::deploy

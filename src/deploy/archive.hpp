// Config-bundle archiver. The paper's deployment "archives the generated
// configuration files, transfers them to the emulation host, extracts
// them, and runs the Netkit lstart command" — this is the archive step,
// a simple length-prefixed container with a checksum so transfer
// corruption is detectable.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "render/config_tree.hpp"

namespace autonet::deploy {

class ArchiveError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialises a configuration tree into a single blob.
[[nodiscard]] std::string pack(const render::ConfigTree& tree);

/// Restores a tree from a blob; throws ArchiveError on corruption.
[[nodiscard]] render::ConfigTree unpack(const std::string& blob);

/// The checksum pack() embeds (FNV-1a over the payload).
[[nodiscard]] std::uint64_t checksum(std::string_view payload);

}  // namespace autonet::deploy

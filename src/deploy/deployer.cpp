#include "deploy/deployer.hpp"

#include <algorithm>

#include "deploy/archive.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"

namespace autonet::deploy {

const char* to_string(DeployPhase phase) {
  switch (phase) {
    case DeployPhase::kArchive: return "archive";
    case DeployPhase::kTransfer: return "transfer";
    case DeployPhase::kExtract: return "extract";
    case DeployPhase::kBoot: return "boot";
    case DeployPhase::kStarted: return "started";
    case DeployPhase::kDegraded: return "degraded";
    case DeployPhase::kFailed: return "failed";
    case DeployPhase::kRetriesExhausted: return "retries-exhausted";
    case DeployPhase::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

obs::Severity deploy_event_severity(DeployPhase phase) {
  switch (phase) {
    case DeployPhase::kFailed:
    case DeployPhase::kRetriesExhausted:
    case DeployPhase::kDeadlineExceeded:
      return obs::Severity::kError;
    case DeployPhase::kDegraded:
      return obs::Severity::kWarning;
    default:
      return obs::Severity::kInfo;
  }
}

int BackoffClock::next_delay_ms(int attempt, int clamp_ms) {
  // Exponential growth with jitter in [window/2, window], clamped to the
  // ceiling. The jitter mapping is spelled out by hand rather than via
  // std::uniform_int_distribution, whose algorithm is implementation-
  // defined: campaign runs must replay byte-identically across standard
  // libraries, not just across runs of one binary.
  std::int64_t window = base_ms_;
  for (int i = 1; i < attempt && window < max_ms_; ++i) window *= 2;
  window = std::min<std::int64_t>(window, max_ms_);
  const std::uint64_t span = static_cast<std::uint64_t>(window - window / 2) + 1;
  int delay =
      static_cast<int>(window / 2 + static_cast<std::int64_t>(rng_() % span));
  // Deadline-aware clamp, applied after the RNG draw so the jitter
  // stream stays seed-deterministic whether or not a deadline is armed.
  if (clamp_ms >= 0) delay = std::min(delay, clamp_ms);
  elapsed_ms_ += delay;
  phase_ms_ += delay;
  // Under a virtual obs clock the wait is jumped over, not slept: the
  // recorded retry timestamps advance by exactly this delay.
  obs::Registry::current().advance_clock_us(static_cast<std::uint64_t>(delay) *
                                            1000);
  return delay;
}

int backoff_clamp_ms(const BackoffClock& clock, int phase_deadline_ms,
                     const DeployOptions& opts) {
  std::int64_t clamp = -1;
  if (phase_deadline_ms > 0) {
    clamp = std::max<std::int64_t>(0, phase_deadline_ms - clock.phase_ms());
  }
  if (opts.control != nullptr && opts.control->deadline.armed()) {
    const std::int64_t run_left =
        static_cast<std::int64_t>(opts.control->deadline.remaining_us() / 1000);
    clamp = clamp < 0 ? run_left : std::min(clamp, run_left);
  }
  return static_cast<int>(clamp);
}

void Deployer::emit(DeployPhase phase, std::string detail) {
  DeployEvent event{phase, std::move(detail)};
  // Structured telemetry is the primary record; log() renders it.
  obs::Registry& obs = obs::Registry::current();
  obs.counter(std::string("deploy.events.") + to_string(phase)).inc();
  obs.log_event("deploy", {{"phase", to_string(phase)},
                           {"host", host_->name()},
                           {"detail", event.detail}});
  obs::record("deploy", deploy_event_severity(phase), to_string(phase),
              {{"host", host_->name()}, {"detail", event.detail}});
  if (logger_) logger_(event);
  events_.push_back(std::move(event));
}

std::vector<std::string> Deployer::log() const {
  std::vector<std::string> lines;
  lines.reserve(events_.size());
  for (const DeployEvent& event : events_) lines.push_back(event.to_line());
  return lines;
}

DeployResult Deployer::deploy(const render::ConfigTree& configs,
                              const nidb::Nidb& nidb, const DeployOptions& opts) {
  DeployResult result;
  BackoffClock clock(opts);

  emit(DeployPhase::kArchive,
       std::to_string(configs.file_count()) + " files, " +
           std::to_string(configs.total_bytes()) + " bytes");
  const std::string blob = pack(configs);

  // --- Transfer + extract, retried with backoff under a deadline --------
  if (!host_->online()) {
    emit(DeployPhase::kFailed, host_->name() + " is unreachable");
    result.errors.push_back({core::ErrorCategory::kHostDown, host_->name(),
                             "host unreachable", false});
    return result;
  }
  bool extracted = false;
  clock.reset_phase();
  for (int attempt = 1; attempt <= opts.max_transfer_attempts; ++attempt) {
    observe_cancel(opts, "deploy.transfer.attempt");
    if (attempt > 1) {
      const int delay = clock.next_delay_ms(
          attempt - 1, backoff_clamp_ms(clock, opts.transfer_deadline_ms, opts));
      if (clock.past_deadline(opts.transfer_deadline_ms) ||
          run_deadline_expired(opts)) {
        emit(DeployPhase::kDeadlineExceeded,
             "transfer deadline exceeded (" + std::to_string(clock.phase_ms()) +
                 "ms budget " + std::to_string(opts.transfer_deadline_ms) + "ms)");
        result.errors.push_back({core::ErrorCategory::kDeadline, host_->name(),
                                 "transfer phase deadline exceeded", false});
        result.backoff_ms = clock.elapsed_ms();
        return result;
      }
      emit(DeployPhase::kTransfer, "backoff " + std::to_string(delay) + "ms");
    }
    result.transfer_attempts = attempt;
    emit(DeployPhase::kTransfer, opts.username + "@" + host_->name() +
                                     " attempt " + std::to_string(attempt));
    if (!host_->receive(blob)) {
      emit(DeployPhase::kTransfer, host_->name() + ": connection refused");
      continue;
    }
    if (host_->extract()) {
      extracted = true;
      emit(DeployPhase::kExtract, "archive verified and extracted");
      break;
    }
    emit(DeployPhase::kExtract, "checksum mismatch, retrying");
    result.errors.push_back({core::ErrorCategory::kTransfer, host_->name(),
                             "checksum mismatch on attempt " +
                                 std::to_string(attempt),
                             true});
  }
  result.backoff_ms = clock.elapsed_ms();
  if (!extracted) {
    emit(DeployPhase::kRetriesExhausted,
         "transfer failed after " + std::to_string(result.transfer_attempts) +
             " attempts");
    result.errors.push_back(
        {core::ErrorCategory::kHostDown, host_->name(),
         "transfer failed after " + std::to_string(result.transfer_attempts) +
             " attempts",
         false});
    return result;
  }

  // --- Boot, retried per machine under a deadline -----------------------
  clock.reset_phase();
  bool boot_deadline_hit = false;
  for (const auto* rec : nidb.devices()) {
    const std::string& machine = rec->name;
    observe_cancel(opts, "deploy.boot." + machine);
    bool up = false;
    for (int attempt = 1; attempt <= opts.max_boot_attempts; ++attempt) {
      if (attempt > 1) {
        const int delay = clock.next_delay_ms(
            attempt - 1, backoff_clamp_ms(clock, opts.boot_deadline_ms, opts));
        if (clock.past_deadline(opts.boot_deadline_ms) ||
            run_deadline_expired(opts)) {
          boot_deadline_hit = true;
          break;
        }
        emit(DeployPhase::kBoot, machine + " retry after " +
                                     std::to_string(delay) + "ms backoff");
      }
      ++result.boot_attempts;
      up = host_->try_boot(machine);
      emit(DeployPhase::kBoot,
           machine + (up ? " up" : " FAILED (attempt " +
                                       std::to_string(attempt) + ")"));
      if (up) break;
    }
    if (up) {
      result.booted.push_back(machine);
    } else {
      result.failed_machines.push_back(machine);
      result.errors.push_back({core::ErrorCategory::kBoot, machine,
                               "failed to boot after " +
                                   std::to_string(opts.max_boot_attempts) +
                                   " attempts",
                               false});
    }
    if (boot_deadline_hit) {
      emit(DeployPhase::kDeadlineExceeded,
           "boot deadline exceeded (" + std::to_string(clock.phase_ms()) +
               "ms budget " + std::to_string(opts.boot_deadline_ms) + "ms)");
      result.errors.push_back({core::ErrorCategory::kDeadline, host_->name(),
                               "boot phase deadline exceeded", false});
      result.backoff_ms = clock.elapsed_ms();
      return result;
    }
  }
  result.backoff_ms = clock.elapsed_ms();

  // --- Start the control plane (full, or the surviving subnetwork) ------
  if (!result.failed_machines.empty() ||
      result.booted.size() != nidb.device_count()) {
    if (!opts.allow_partial || result.booted.size() < opts.min_booted) {
      emit(DeployPhase::kFailed,
           std::to_string(result.failed_machines.size()) +
               " machines failed to boot");
      return result;
    }
    std::set<std::string> survivors(result.booted.begin(), result.booted.end());
    observe_cancel(opts, "deploy.start_network");
    result.convergence =
        host_->start_network(nidb, host_->filesystem(), survivors, opts.control);
    result.degraded = true;
    result.success = true;
    emit(DeployPhase::kDegraded,
         std::to_string(result.booted.size()) + "/" +
             std::to_string(nidb.device_count()) + " machines up, " +
             std::to_string(result.failed_machines.size()) + " lost");
    return result;
  }

  observe_cancel(opts, "deploy.start_network");
  result.convergence =
      host_->start_network(nidb, host_->filesystem(), {}, opts.control);
  result.success = true;
  emit(DeployPhase::kStarted,
       std::to_string(result.booted.size()) + " machines, BGP " +
           (result.convergence.converged
                ? "converged in " + std::to_string(result.convergence.rounds) +
                      " rounds"
                : (result.convergence.oscillating ? "OSCILLATING" : "not converged")));
  if (!result.convergence.converged) {
    // The structured timeout (who was still unsettled at the budget)
    // beats the bare "not converged" when it is available.
    if (result.convergence.timeout) {
      result.errors.push_back(result.convergence.timeout->to_error(host_->name()));
    } else {
      result.errors.push_back(
          {core::ErrorCategory::kConvergence, host_->name(),
           result.convergence.oscillating ? "BGP oscillating" : "BGP not converged",
           !result.convergence.oscillating});
    }
  }
  return result;
}

}  // namespace autonet::deploy

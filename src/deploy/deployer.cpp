#include "deploy/deployer.hpp"

#include "deploy/archive.hpp"

namespace autonet::deploy {

const char* to_string(DeployPhase phase) {
  switch (phase) {
    case DeployPhase::kArchive: return "archive";
    case DeployPhase::kTransfer: return "transfer";
    case DeployPhase::kExtract: return "extract";
    case DeployPhase::kBoot: return "boot";
    case DeployPhase::kStarted: return "started";
    case DeployPhase::kFailed: return "failed";
  }
  return "?";
}

void Deployer::emit(DeployPhase phase, std::string detail) {
  DeployEvent event{phase, std::move(detail)};
  log_.push_back(std::string(to_string(phase)) + ": " + event.detail);
  if (logger_) logger_(event);
}

DeployResult Deployer::deploy(const render::ConfigTree& configs,
                              const nidb::Nidb& nidb, const DeployOptions& opts) {
  DeployResult result;

  emit(DeployPhase::kArchive,
       std::to_string(configs.file_count()) + " files, " +
           std::to_string(configs.total_bytes()) + " bytes");
  const std::string blob = pack(configs);

  // Transfer + extract with retry on corruption.
  bool extracted = false;
  for (int attempt = 1; attempt <= opts.max_transfer_attempts; ++attempt) {
    result.transfer_attempts = attempt;
    emit(DeployPhase::kTransfer, opts.username + "@" + host_->name() +
                                     " attempt " + std::to_string(attempt));
    host_->receive(blob);
    if (host_->extract()) {
      extracted = true;
      emit(DeployPhase::kExtract, "archive verified and extracted");
      break;
    }
    emit(DeployPhase::kExtract, "checksum mismatch, retrying");
  }
  if (!extracted) {
    emit(DeployPhase::kFailed, "transfer failed after " +
                                   std::to_string(opts.max_transfer_attempts) +
                                   " attempts");
    return result;
  }

  auto booted = host_->lstart(nidb, [this, &result](const std::string& m, bool ok) {
    emit(DeployPhase::kBoot, m + (ok ? " up" : " FAILED"));
    if (!ok) result.failed_machines.push_back(m);
  });
  result.booted = std::move(booted);

  if (!result.failed_machines.empty() ||
      result.booted.size() != nidb.device_count()) {
    emit(DeployPhase::kFailed,
         std::to_string(result.failed_machines.size()) + " machines failed to boot");
    return result;
  }

  result.convergence = host_->convergence();
  result.success = true;
  emit(DeployPhase::kStarted,
       std::to_string(result.booted.size()) + " machines, BGP " +
           (result.convergence.converged
                ? "converged in " + std::to_string(result.convergence.rounds) +
                      " rounds"
                : (result.convergence.oscillating ? "OSCILLATING" : "not converged")));
  return result;
}

}  // namespace autonet::deploy

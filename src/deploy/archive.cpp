#include "deploy/archive.hpp"

#include <cstring>

namespace autonet::deploy {

namespace {

constexpr char kMagic[8] = {'A', 'N', 'K', 'A', 'R', '1', '\0', '\0'};

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

std::uint64_t get_u64(std::string_view in, std::size_t& pos) {
  if (pos + 8 > in.size()) throw ArchiveError("archive truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[pos + i])) << (8 * i);
  }
  pos += 8;
  return v;
}

}  // namespace

std::uint64_t checksum(std::string_view payload) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : payload) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string pack(const render::ConfigTree& tree) {
  std::string payload;
  put_u64(payload, tree.file_count());
  for (const auto& [path, content] : tree) {
    put_u64(payload, path.size());
    payload += path;
    put_u64(payload, content.size());
    payload += content;
  }
  std::string out(kMagic, sizeof kMagic);
  put_u64(out, checksum(payload));
  out += payload;
  return out;
}

render::ConfigTree unpack(const std::string& blob) {
  if (blob.size() < sizeof(kMagic) + 8 ||
      std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) {
    throw ArchiveError("not an autonet archive");
  }
  std::size_t pos = sizeof kMagic;
  std::uint64_t want = get_u64(blob, pos);
  std::string_view payload(blob.data() + pos, blob.size() - pos);
  if (checksum(payload) != want) throw ArchiveError("archive checksum mismatch");

  render::ConfigTree tree;
  std::uint64_t count = get_u64(blob, pos);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t path_len = get_u64(blob, pos);
    if (pos + path_len > blob.size()) throw ArchiveError("archive truncated");
    std::string path = blob.substr(pos, path_len);
    pos += path_len;
    std::uint64_t content_len = get_u64(blob, pos);
    if (pos + content_len > blob.size()) throw ArchiveError("archive truncated");
    tree.put(std::move(path), blob.substr(pos, content_len));
    pos += content_len;
  }
  return tree;
}

}  // namespace autonet::deploy

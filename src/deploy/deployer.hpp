// The deployment automation (paper §5.7): "archives the generated
// configuration files, transfers them to the emulation host, extracts
// them, and runs the Netkit lstart command. The progress is monitored
// with updates provided to the user through logs."
//
// Beyond the paper's happy path, the deployer is written for the flaky
// substrate §5.7 describes (StarBed nodes, checksum-failing transfers):
// every phase has a retry budget with exponential backoff + deterministic
// jitter and a virtual-time deadline, boot failures are retried per
// machine, and with `allow_partial` a subset of dead machines degrades
// the deployment to a running subnetwork instead of failing it outright.
// All failures are reported as typed core::Error records.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/error.hpp"
#include "deploy/host.hpp"
#include "obs/event.hpp"
#include "nidb/nidb.hpp"
#include "render/config_tree.hpp"

namespace autonet::deploy {

enum class DeployPhase {
  kArchive,
  kTransfer,
  kExtract,
  kBoot,
  kStarted,
  kDegraded,
  kFailed,
  /// A retry budget (max_transfer_attempts / max_boot_attempts) ran out.
  kRetriesExhausted,
  /// A time budget ran out — the phase deadline or the run deadline of an
  /// attached RunControl. Distinct from kRetriesExhausted so operators
  /// can tell "kept failing" from "ran out of time".
  kDeadlineExceeded,
};

[[nodiscard]] const char* to_string(DeployPhase phase);

/// Flight-recorder severity of a deploy event: faults and exhausted
/// budgets are errors, degraded service is a warning, the rest is
/// routine progress.
[[nodiscard]] obs::Severity deploy_event_severity(DeployPhase phase);

struct DeployEvent {
  DeployPhase phase;
  std::string detail;
  /// The legacy log-line rendering ("<phase>: <detail>").
  [[nodiscard]] std::string to_line() const {
    return std::string(to_string(phase)) + ": " + detail;
  }
};

struct DeployOptions {
  std::string username = "autonet";
  /// Transfer retries on checksum failure.
  int max_transfer_attempts = 3;
  /// Boot attempts per machine (transient boot faults are retried).
  int max_boot_attempts = 3;

  // --- Backoff (virtual time; deterministic under backoff_seed) ---------
  int backoff_base_ms = 100;
  int backoff_max_ms = 5000;
  std::uint64_t backoff_seed = 0;
  /// Virtual-time budget per phase (transfer / boot); 0 = unlimited.
  int transfer_deadline_ms = 60000;
  int boot_deadline_ms = 60000;

  // --- Graceful degradation --------------------------------------------
  /// When machines (or, for multi-host deployments, whole hosts) stay
  /// dead after retries, boot the surviving subnetwork instead of
  /// failing the deployment.
  bool allow_partial = false;
  /// Partial deployments need at least this many machines up.
  std::size_t min_booted = 1;
  /// Multi-host: at least this many hosts must survive transfer+boot.
  std::size_t min_host_quorum = 1;

  // --- Supervision ------------------------------------------------------
  /// Optional run supervision (non-owning; must outlive the deploy call).
  /// Cancellation is observed between attempts and per machine boot; an
  /// armed run deadline clamps backoff waits (a virtual sleep never
  /// overshoots it) and aborts the deployment with a kDeadlineExceeded
  /// event + kDeadline error when it expires.
  core::RunControl* control = nullptr;
};

/// Outcome of a deployment.
///
/// Semantics are explicit: `success` is true iff a network is running
/// AND the deployment contract was met — all machines booted in strict
/// mode, or the quorum (`min_booted` / `min_host_quorum`) in partial
/// mode. `failed_machines` non-empty therefore implies either
/// `success == false` (strict) or `degraded == true` (partial, with the
/// casualties itemised in `errors`). A network may be running even when
/// degraded; check `degraded` before trusting full coverage.
struct DeployResult {
  bool success = false;
  /// Partial deployment: the network runs without some machines.
  bool degraded = false;
  std::vector<std::string> booted;
  std::vector<std::string> failed_machines;
  int transfer_attempts = 0;
  /// Total boot attempts across all machines (retries included).
  int boot_attempts = 0;
  /// Virtual milliseconds spent in backoff waits.
  int backoff_ms = 0;
  emulation::ConvergenceReport convergence;
  /// Typed failure report: one entry per fault that affected the run.
  core::ErrorList errors;
};

class Deployer {
 public:
  using Logger = std::function<void(const DeployEvent&)>;

  explicit Deployer(EmulationHost& host, Logger logger = {})
      : host_(&host), logger_(std::move(logger)) {}

  /// Runs the full pipeline. On success the host's network() is running.
  DeployResult deploy(const render::ConfigTree& configs, const nidb::Nidb& nidb,
                      const DeployOptions& opts = {});

  /// The structured event stream (also mirrored as obs "deploy" log
  /// events in the current telemetry registry and passed to the logger
  /// as events happen).
  [[nodiscard]] const std::vector<DeployEvent>& events() const { return events_; }

  /// Backward-compatible rendered view of events().
  [[nodiscard]] std::vector<std::string> log() const;

 private:
  void emit(DeployPhase phase, std::string detail);

  EmulationHost* host_;
  Logger logger_;
  std::vector<DeployEvent> events_;
};

/// Exponential backoff with deterministic jitter, shared by the single-
/// and multi-host deployers. Time is virtual: delays are computed and
/// logged, not slept, so runs are fast and reproducible.
class BackoffClock {
 public:
  explicit BackoffClock(const DeployOptions& opts)
      : base_ms_(opts.backoff_base_ms), max_ms_(opts.backoff_max_ms),
        rng_(opts.backoff_seed) {}

  /// Delay before retry number `attempt` (1-based: first retry = 1).
  /// `clamp_ms >= 0` caps the delay (deadline-aware backoff: the wait is
  /// cut to exactly what the remaining budget allows, never past it).
  /// The jitter RNG is consumed before clamping, so clamped and
  /// unclamped runs with the same seed draw the same stream.
  int next_delay_ms(int attempt, int clamp_ms = -1);
  [[nodiscard]] int elapsed_ms() const { return elapsed_ms_; }
  void reset_phase() { phase_ms_ = 0; }
  [[nodiscard]] int phase_ms() const { return phase_ms_; }
  /// True when the phase budget (0 = unlimited) is exhausted.
  [[nodiscard]] bool past_deadline(int deadline_ms) const {
    return deadline_ms > 0 && phase_ms_ >= deadline_ms;
  }

 private:
  int base_ms_;
  int max_ms_;
  std::mt19937_64 rng_;
  int elapsed_ms_ = 0;
  int phase_ms_ = 0;
};

/// The largest backoff the budgets allow right now: the remaining phase
/// budget and the remaining run deadline of the attached RunControl,
/// whichever is tighter (-1 = unbounded). Feeding this into
/// next_delay_ms guarantees a sleep never overshoots either budget.
[[nodiscard]] int backoff_clamp_ms(const BackoffClock& clock,
                                   int phase_deadline_ms,
                                   const DeployOptions& opts);

/// Observes a pending cancellation request (throws core::Cancelled via
/// the control's checkpoint). Deadline expiry is NOT raised here — the
/// deployers report it structurally (kDeadlineExceeded event + kDeadline
/// error + partial result) rather than by unwinding.
inline void observe_cancel(const DeployOptions& opts, std::string_view where) {
  if (opts.control != nullptr && opts.control->token.cancelled()) {
    opts.control->checkpoint(where);
  }
}

[[nodiscard]] inline bool run_deadline_expired(const DeployOptions& opts) {
  return opts.control != nullptr && opts.control->deadline.expired();
}

}  // namespace autonet::deploy

// The deployment automation (paper §5.7): "archives the generated
// configuration files, transfers them to the emulation host, extracts
// them, and runs the Netkit lstart command. The progress is monitored
// with updates provided to the user through logs."
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "deploy/host.hpp"
#include "nidb/nidb.hpp"
#include "render/config_tree.hpp"

namespace autonet::deploy {

enum class DeployPhase {
  kArchive,
  kTransfer,
  kExtract,
  kBoot,
  kStarted,
  kFailed,
};

[[nodiscard]] const char* to_string(DeployPhase phase);

struct DeployEvent {
  DeployPhase phase;
  std::string detail;
};

struct DeployOptions {
  std::string username = "autonet";
  /// Transfer retries on checksum failure.
  int max_transfer_attempts = 3;
};

struct DeployResult {
  bool success = false;
  std::vector<std::string> booted;
  std::vector<std::string> failed_machines;
  int transfer_attempts = 0;
  emulation::ConvergenceReport convergence;
};

class Deployer {
 public:
  using Logger = std::function<void(const DeployEvent&)>;

  explicit Deployer(EmulationHost& host, Logger logger = {})
      : host_(&host), logger_(std::move(logger)) {}

  /// Runs the full pipeline. On success the host's network() is running.
  DeployResult deploy(const render::ConfigTree& configs, const nidb::Nidb& nidb,
                      const DeployOptions& opts = {});

  /// Collected log lines (also passed to the logger as events happen).
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  void emit(DeployPhase phase, std::string detail);

  EmulationHost* host_;
  Logger logger_;
  std::vector<std::string> log_;
};

}  // namespace autonet::deploy

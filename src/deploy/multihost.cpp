#include "deploy/multihost.hpp"

#include <stdexcept>

#include "deploy/archive.hpp"

namespace autonet::deploy {

MultiHostDeployer::MultiHostDeployer(std::vector<EmulationHost*> hosts,
                                     Deployer::Logger logger)
    : hosts_(std::move(hosts)), logger_(std::move(logger)) {
  if (hosts_.empty()) {
    throw std::invalid_argument("MultiHostDeployer: no hosts");
  }
}

void MultiHostDeployer::emit(DeployPhase phase, std::string detail) {
  DeployEvent event{phase, std::move(detail)};
  log_.push_back(std::string(to_string(phase)) + ": " + event.detail);
  if (logger_) logger_(event);
}

MultiHostResult MultiHostDeployer::deploy(const render::ConfigTree& configs,
                                          const nidb::Nidb& nidb,
                                          const DeployOptions& opts) {
  MultiHostResult result;

  // Shared artefacts (lab.conf, topology.net, network.cli, ...): any file
  // not under a host directory goes to every host.
  render::ConfigTree shared;
  for (const auto& [path, content] : configs) {
    bool host_scoped = false;
    for (const auto* host : hosts_) {
      if (path.starts_with(host->name() + "/")) host_scoped = true;
    }
    if (!host_scoped) shared.put(path, content);
  }

  // Per-host: slice, archive, transfer (with retry), extract.
  for (auto* host : hosts_) {
    HostSlice slice;
    slice.host = host->name();
    render::ConfigTree tree = shared;
    for (const auto& path : configs.paths_under(host->name() + "/")) {
      tree.put(path, *configs.get(path));
    }
    slice.files = tree.file_count();
    emit(DeployPhase::kArchive,
         host->name() + ": " + std::to_string(slice.files) + " files");
    const std::string blob = pack(tree);
    bool extracted = false;
    for (int attempt = 1; attempt <= opts.max_transfer_attempts; ++attempt) {
      slice.transfer_attempts = attempt;
      emit(DeployPhase::kTransfer, opts.username + "@" + host->name() +
                                       " attempt " + std::to_string(attempt));
      host->receive(blob);
      if (host->extract()) {
        extracted = true;
        break;
      }
      emit(DeployPhase::kExtract, host->name() + ": checksum mismatch, retrying");
    }
    if (!extracted) {
      emit(DeployPhase::kFailed, host->name() + ": transfer failed");
      result.slices.push_back(std::move(slice));
      return result;
    }
    emit(DeployPhase::kExtract, host->name() + ": extracted");
    result.slices.push_back(std::move(slice));
  }

  // Boot each host's assigned machines.
  std::size_t total_booted = 0;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    auto* host = hosts_[i];
    auto& slice = result.slices[i];
    slice.booted = host->boot_assigned(
        nidb, [this, host, &slice](const std::string& machine, bool ok) {
          emit(DeployPhase::kBoot,
               host->name() + ": " + machine + (ok ? " up" : " FAILED"));
          if (!ok) slice.failed.push_back(machine);
        });
    total_booted += slice.booted.size();
    if (!slice.failed.empty()) {
      emit(DeployPhase::kFailed, host->name() + ": " +
                                     std::to_string(slice.failed.size()) +
                                     " machines failed");
      return result;
    }
  }
  if (total_booted != nidb.device_count()) {
    emit(DeployPhase::kFailed,
         "only " + std::to_string(total_booted) + "/" +
             std::to_string(nidb.device_count()) +
             " machines assigned to the given hosts");
    return result;
  }

  // Cross-host stitching is part of the compiled lab (GRE tunnel list in
  // the network data); report it and boot the combined control plane.
  if (const nidb::Value* cross = nidb.data().find("cross_connects")) {
    if (const nidb::Array* arr = cross->as_array()) {
      result.cross_connects = arr->size();
      for (const nidb::Value& t : *arr) {
        const nidb::Value* tunnel = t.find("tunnel");
        emit(DeployPhase::kBoot,
             "stitch " + (tunnel ? tunnel->to_display() : "gre") + " " +
                 t.find("src_host")->to_display() + " <-> " +
                 t.find("dst_host")->to_display());
      }
    }
  }

  network_ = std::make_unique<emulation::EmulatedNetwork>(
      emulation::EmulatedNetwork::from_nidb(nidb, configs));
  result.convergence = network_->start();
  result.success = true;
  emit(DeployPhase::kStarted,
       std::to_string(total_booted) + " machines on " +
           std::to_string(hosts_.size()) + " hosts, " +
           std::to_string(result.cross_connects) + " cross-host links");
  return result;
}

}  // namespace autonet::deploy

#include "deploy/multihost.hpp"

#include <set>
#include <stdexcept>

#include "deploy/archive.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"

namespace autonet::deploy {

int MultiHostResult::total_transfer_attempts() const {
  int total = 0;
  for (const auto& slice : slices) total += slice.transfer_attempts;
  return total;
}

std::vector<std::string> MultiHostResult::all_failed_machines() const {
  std::vector<std::string> out;
  for (const auto& slice : slices) {
    out.insert(out.end(), slice.failed.begin(), slice.failed.end());
    out.insert(out.end(), slice.lost.begin(), slice.lost.end());
  }
  return out;
}

MultiHostDeployer::MultiHostDeployer(std::vector<EmulationHost*> hosts,
                                     Deployer::Logger logger)
    : hosts_(std::move(hosts)), logger_(std::move(logger)) {
  if (hosts_.empty()) {
    throw std::invalid_argument("MultiHostDeployer: no hosts");
  }
}

void MultiHostDeployer::emit(DeployPhase phase, std::string detail) {
  DeployEvent event{phase, std::move(detail)};
  obs::Registry& obs = obs::Registry::current();
  obs.counter(std::string("deploy.events.") + to_string(phase)).inc();
  obs.log_event("deploy", {{"phase", to_string(phase)},
                           {"detail", event.detail}});
  obs::record("deploy", deploy_event_severity(phase), to_string(phase),
              {{"detail", event.detail}});
  if (logger_) logger_(event);
  events_.push_back(std::move(event));
}

std::vector<std::string> MultiHostDeployer::log() const {
  std::vector<std::string> lines;
  lines.reserve(events_.size());
  for (const DeployEvent& event : events_) lines.push_back(event.to_line());
  return lines;
}

MultiHostResult MultiHostDeployer::deploy(const render::ConfigTree& configs,
                                          const nidb::Nidb& nidb,
                                          const DeployOptions& opts) {
  MultiHostResult result;
  BackoffClock clock(opts);

  // Shared artefacts (lab.conf, topology.net, network.cli, ...): any file
  // not under a host directory goes to every host.
  render::ConfigTree shared;
  for (const auto& [path, content] : configs) {
    bool host_scoped = false;
    for (const auto* host : hosts_) {
      if (path.starts_with(host->name() + "/")) host_scoped = true;
    }
    if (!host_scoped) shared.put(path, content);
  }

  // Per-host: slice, archive, transfer (with retry + backoff), extract.
  // A failing host no longer aborts the loop — every slice is driven to
  // completion so the result attributes failures per host.
  for (auto* host : hosts_) {
    HostSlice slice;
    slice.host = host->name();
    render::ConfigTree tree = shared;
    for (const auto& path : configs.paths_under(host->name() + "/")) {
      tree.put(path, *configs.get(path));
    }
    slice.files = tree.file_count();
    emit(DeployPhase::kArchive,
         host->name() + ": " + std::to_string(slice.files) + " files");
    const std::string blob = pack(tree);
    bool extracted = false;
    clock.reset_phase();
    for (int attempt = 1; attempt <= opts.max_transfer_attempts; ++attempt) {
      observe_cancel(opts, "deploy.transfer." + host->name());
      if (attempt > 1) {
        const int delay = clock.next_delay_ms(
            attempt - 1,
            backoff_clamp_ms(clock, opts.transfer_deadline_ms, opts));
        if (clock.past_deadline(opts.transfer_deadline_ms) ||
            run_deadline_expired(opts)) {
          emit(DeployPhase::kDeadlineExceeded,
               host->name() + ": transfer deadline exceeded");
          result.errors.push_back({core::ErrorCategory::kDeadline, host->name(),
                                   "transfer phase deadline exceeded", false});
          break;
        }
        emit(DeployPhase::kTransfer,
             host->name() + ": backoff " + std::to_string(delay) + "ms");
      }
      slice.transfer_attempts = attempt;
      emit(DeployPhase::kTransfer, opts.username + "@" + host->name() +
                                       " attempt " + std::to_string(attempt));
      if (!host->receive(blob)) {
        emit(DeployPhase::kTransfer, host->name() + ": connection refused");
        continue;
      }
      if (host->extract()) {
        extracted = true;
        break;
      }
      emit(DeployPhase::kExtract, host->name() + ": checksum mismatch, retrying");
      result.errors.push_back({core::ErrorCategory::kTransfer, host->name(),
                               "checksum mismatch on attempt " +
                                   std::to_string(attempt),
                               true});
    }
    if (!extracted) {
      slice.online = false;
      slice.lost = host->assigned_machines(nidb);
      result.dead_hosts.push_back(host->name());
      emit(DeployPhase::kRetriesExhausted,
           host->name() + ": transfer failed, host dead");
      result.errors.push_back(
          {core::ErrorCategory::kHostDown, host->name(),
           "transfer failed after " + std::to_string(slice.transfer_attempts) +
               " attempts; " + std::to_string(slice.lost.size()) +
               " machines lost",
           false});
    } else {
      emit(DeployPhase::kExtract, host->name() + ": extracted");
    }
    result.slices.push_back(std::move(slice));
  }

  // Boot each surviving host's assigned machines, with per-machine
  // retries.
  std::set<std::string> booted_machines;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    auto* host = hosts_[i];
    auto& slice = result.slices[i];
    if (!slice.online) continue;
    clock.reset_phase();
    for (const auto& machine : host->assigned_machines(nidb)) {
      observe_cancel(opts, "deploy.boot." + machine);
      bool up = false;
      for (int attempt = 1; attempt <= opts.max_boot_attempts; ++attempt) {
        if (attempt > 1) {
          const int delay = clock.next_delay_ms(
              attempt - 1, backoff_clamp_ms(clock, opts.boot_deadline_ms, opts));
          if (clock.past_deadline(opts.boot_deadline_ms) ||
              run_deadline_expired(opts)) {
            break;
          }
          emit(DeployPhase::kBoot, host->name() + ": " + machine +
                                       " retry after " + std::to_string(delay) +
                                       "ms backoff");
        }
        up = host->try_boot(machine);
        emit(DeployPhase::kBoot,
             host->name() + ": " + machine +
                 (up ? " up" : " FAILED (attempt " + std::to_string(attempt) + ")"));
        if (up) break;
      }
      if (up) {
        slice.booted.push_back(machine);
        booted_machines.insert(machine);
      } else {
        slice.failed.push_back(machine);
        result.errors.push_back({core::ErrorCategory::kBoot, machine,
                                 "failed to boot on " + host->name(), false});
      }
    }
    if (!slice.failed.empty()) {
      emit(DeployPhase::kFailed, host->name() + ": " +
                                     std::to_string(slice.failed.size()) +
                                     " machines failed");
    }
  }

  // Devices assigned to none of the given hosts are a configuration
  // error, not a runtime fault — always fatal.
  std::size_t assigned = 0;
  for (const auto& slice : result.slices) {
    assigned += slice.booted.size() + slice.failed.size() + slice.lost.size();
  }
  if (assigned != nidb.device_count()) {
    emit(DeployPhase::kFailed,
         "only " + std::to_string(assigned) + "/" +
             std::to_string(nidb.device_count()) +
             " machines assigned to the given hosts");
    result.errors.push_back(
        {core::ErrorCategory::kConfig, "",
         std::to_string(nidb.device_count() - assigned) +
             " devices assigned to no given host",
         false});
    return result;
  }

  // --- Evaluate the contract -------------------------------------------
  const std::size_t surviving_hosts = hosts_.size() - result.dead_hosts.size();
  const bool fully_booted = booted_machines.size() == nidb.device_count();
  if (!fully_booted) {
    if (!opts.allow_partial) {
      emit(DeployPhase::kFailed,
           std::to_string(nidb.device_count() - booted_machines.size()) +
               " machines down, partial deployment not allowed");
      return result;
    }
    if (surviving_hosts < opts.min_host_quorum ||
        booted_machines.size() < opts.min_booted) {
      emit(DeployPhase::kFailed,
           "quorum not met: " + std::to_string(surviving_hosts) + " hosts, " +
               std::to_string(booted_machines.size()) + " machines up");
      result.errors.push_back({core::ErrorCategory::kHostDown, "",
                               "host quorum not met", false});
      return result;
    }
    result.degraded = true;
  }

  // Cross-host stitching is part of the compiled lab (GRE tunnel list in
  // the network data); report it and boot the combined control plane.
  if (const nidb::Value* cross = nidb.data().find("cross_connects")) {
    if (const nidb::Array* arr = cross->as_array()) {
      result.cross_connects = arr->size();
      for (const nidb::Value& t : *arr) {
        const nidb::Value* tunnel = t.find("tunnel");
        emit(DeployPhase::kBoot,
             "stitch " + (tunnel ? tunnel->to_display() : "gre") + " " +
                 t.find("src_host")->to_display() + " <-> " +
                 t.find("dst_host")->to_display());
      }
    }
  }

  observe_cancel(opts, "deploy.start_network");
  network_ = std::make_unique<emulation::EmulatedNetwork>(
      emulation::EmulatedNetwork::from_nidb(
          nidb, configs, fully_booted ? nullptr : &booted_machines));
  result.convergence = network_->start(128, opts.control);
  result.success = true;
  if (!result.convergence.converged) {
    if (result.convergence.timeout) {
      result.errors.push_back(
          result.convergence.timeout->to_error(hosts_.front()->name()));
    } else {
      result.errors.push_back(
          {core::ErrorCategory::kConvergence, hosts_.front()->name(),
           result.convergence.oscillating ? "BGP oscillating" : "BGP not converged",
           !result.convergence.oscillating});
    }
  }
  emit(result.degraded ? DeployPhase::kDegraded : DeployPhase::kStarted,
       std::to_string(booted_machines.size()) + "/" +
           std::to_string(nidb.device_count()) + " machines on " +
           std::to_string(surviving_hosts) + "/" +
           std::to_string(hosts_.size()) + " hosts, " +
           std::to_string(result.cross_connects) + " cross-host links");
  return result;
}

}  // namespace autonet::deploy

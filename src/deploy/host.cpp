#include "deploy/host.hpp"

#include "deploy/archive.hpp"

namespace autonet::deploy {

bool EmulationHost::receive(std::string blob) {
  if (!online()) return false;
  if (corrupt_next_ && blob.size() > 16) {
    blob.resize(blob.size() / 2);  // truncated transfer
    corrupt_next_ = false;
  } else if (faults_ != nullptr && blob.size() > 16 &&
             faults_->corrupt_transfer(name_)) {
    blob.resize(blob.size() / 2);
  }
  inbox_ = std::move(blob);
  return true;
}

bool EmulationHost::extract() {
  if (!online()) return false;
  try {
    fs_ = unpack(inbox_);
    return true;
  } catch (const ArchiveError&) {
    return false;
  }
}

bool EmulationHost::try_boot(const std::string& machine) {
  if (!online()) return false;
  if (boot_failures_.contains(machine)) return false;
  if (faults_ != nullptr && faults_->fail_machine_boot(name_, machine)) {
    return false;
  }
  return true;
}

std::vector<std::string> EmulationHost::assigned_machines(
    const nidb::Nidb& nidb) const {
  std::vector<std::string> out;
  for (const auto* rec : nidb.devices()) {
    const nidb::Value* host = rec->data.find("host");
    const std::string* host_name = host ? host->as_string() : nullptr;
    if (host_name != nullptr && *host_name == name_) out.push_back(rec->name);
  }
  return out;
}

std::vector<std::string> EmulationHost::boot_assigned(
    const nidb::Nidb& nidb,
    const std::function<void(const std::string& machine, bool ok)>& progress) {
  std::vector<std::string> booted;
  for (const auto& machine : assigned_machines(nidb)) {
    const bool ok = try_boot(machine);
    if (progress) progress(machine, ok);
    if (ok) booted.push_back(machine);
  }
  return booted;
}

std::vector<std::string> EmulationHost::lstart(
    const nidb::Nidb& nidb,
    const std::function<void(const std::string& machine, bool ok)>& progress) {
  std::vector<std::string> booted;
  for (const auto* rec : nidb.devices()) {
    const bool ok = try_boot(rec->name);
    if (progress) progress(rec->name, ok);
    if (ok) booted.push_back(rec->name);
  }
  if (booted.size() == nidb.device_count()) {
    start_network(nidb, fs_);
  }
  return booted;
}

const emulation::ConvergenceReport& EmulationHost::start_network(
    const nidb::Nidb& nidb, const render::ConfigTree& configs,
    const std::set<std::string>& machines, core::RunControl* control) {
  network_ = std::make_unique<emulation::EmulatedNetwork>(
      emulation::EmulatedNetwork::from_nidb(
          nidb, configs, machines.empty() ? nullptr : &machines));
  convergence_ = network_->start(128, control);
  return convergence_;
}

}  // namespace autonet::deploy

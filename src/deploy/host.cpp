#include "deploy/host.hpp"

#include "deploy/archive.hpp"

namespace autonet::deploy {

void EmulationHost::receive(std::string blob) {
  if (corrupt_next_ && blob.size() > 16) {
    blob.resize(blob.size() / 2);  // truncated transfer
    corrupt_next_ = false;
  }
  inbox_ = std::move(blob);
}

bool EmulationHost::extract() {
  try {
    fs_ = unpack(inbox_);
    return true;
  } catch (const ArchiveError&) {
    return false;
  }
}

std::vector<std::string> EmulationHost::boot_assigned(
    const nidb::Nidb& nidb,
    const std::function<void(const std::string& machine, bool ok)>& progress) {
  std::vector<std::string> booted;
  for (const auto* rec : nidb.devices()) {
    const nidb::Value* host = rec->data.find("host");
    const std::string* host_name = host ? host->as_string() : nullptr;
    if (host_name == nullptr || *host_name != name_) continue;
    const bool ok = !boot_failures_.contains(rec->name);
    if (progress) progress(rec->name, ok);
    if (ok) booted.push_back(rec->name);
  }
  return booted;
}

std::vector<std::string> EmulationHost::lstart(
    const nidb::Nidb& nidb,
    const std::function<void(const std::string& machine, bool ok)>& progress) {
  std::vector<std::string> booted;
  for (const auto* rec : nidb.devices()) {
    const bool ok = !boot_failures_.contains(rec->name);
    if (progress) progress(rec->name, ok);
    if (ok) booted.push_back(rec->name);
  }
  if (booted.size() == nidb.device_count()) {
    network_ = std::make_unique<emulation::EmulatedNetwork>(
        emulation::EmulatedNetwork::from_nidb(nidb, fs_));
    convergence_ = network_->start();
  }
  return booted;
}

}  // namespace autonet::deploy

// Visualization export (paper §5.6): the D3.js front-end consumes JSON;
// this module produces that interchange — per-overlay node/link documents
// with user-selected attributes, attribute-based grouping, and the
// highlight messages used to paint measured paths onto the topology
// (Fig. 7: `msg.highlight(nodes, [], [path])`).
#pragma once

#include <string>
#include <vector>

#include "anm/anm.hpp"
#include "nidb/nidb.hpp"

namespace autonet::viz {

struct ExportOptions {
  /// Node attributes copied into the JSON (besides id/group).
  std::vector<std::string> node_attrs{"asn", "device_type"};
  /// Attribute used for the D3 group field.
  std::string group_attr = "asn";
};

/// One overlay as a D3 force-layout document:
/// {"name": ..., "nodes": [{id, group, ...}], "links": [{source, target}]}.
[[nodiscard]] std::string overlay_to_d3_json(const anm::OverlayGraph& overlay,
                                             const ExportOptions& opts = {});

/// Every overlay of the model, as {"overlays": [...]}.
[[nodiscard]] std::string anm_to_d3_json(const anm::AbstractNetworkModel& anm,
                                         const ExportOptions& opts = {});

/// A highlight message: nodes/edges/paths to emphasise in the viewer.
[[nodiscard]] std::string highlight_json(
    const std::vector<std::string>& nodes,
    const std::vector<std::pair<std::string, std::string>>& edges,
    const std::vector<std::vector<std::string>>& paths);

/// The NIDB as a JSON document for the visualization's device pane.
[[nodiscard]] std::string nidb_to_json(const nidb::Nidb& nidb);

}  // namespace autonet::viz

#include "viz/export.hpp"

#include "nidb/value.hpp"

namespace autonet::viz {

using nidb::Array;
using nidb::Object;
using nidb::Value;

namespace {

Object node_to_json(const anm::OverlayNode& n, const ExportOptions& opts) {
  Object node;
  node["id"] = n.name();
  const auto& group = n.attr(opts.group_attr);
  if (group.is_set()) node["group"] = Value::from_attr(group);
  for (const auto& attr : opts.node_attrs) {
    const auto& v = n.attr(attr);
    if (v.is_set()) node[attr] = Value::from_attr(v);
  }
  return node;
}

Value overlay_to_value(const anm::OverlayGraph& overlay, const ExportOptions& opts) {
  Object doc;
  doc["name"] = overlay.name();
  doc["directed"] = overlay.directed();
  Array nodes;
  for (const auto& n : overlay.nodes()) nodes.emplace_back(node_to_json(n, opts));
  doc["nodes"] = Value(std::move(nodes));
  Array links;
  for (const auto& e : overlay.edges()) {
    Object link;
    link["source"] = e.src().name();
    link["target"] = e.dst().name();
    links.emplace_back(std::move(link));
  }
  doc["links"] = Value(std::move(links));
  return Value(std::move(doc));
}

}  // namespace

std::string overlay_to_d3_json(const anm::OverlayGraph& overlay,
                               const ExportOptions& opts) {
  return overlay_to_value(overlay, opts).to_json(true);
}

std::string anm_to_d3_json(const anm::AbstractNetworkModel& anm,
                           const ExportOptions& opts) {
  Object doc;
  Array overlays;
  for (const auto& name : anm.overlay_names()) {
    overlays.push_back(overlay_to_value(anm[name], opts));
  }
  doc["overlays"] = Value(std::move(overlays));
  return Value(std::move(doc)).to_json(true);
}

std::string highlight_json(
    const std::vector<std::string>& nodes,
    const std::vector<std::pair<std::string, std::string>>& edges,
    const std::vector<std::vector<std::string>>& paths) {
  Object doc;
  Array node_arr;
  for (const auto& n : nodes) node_arr.emplace_back(n);
  doc["nodes"] = Value(std::move(node_arr));
  Array edge_arr;
  for (const auto& [src, dst] : edges) {
    Object e;
    e["source"] = src;
    e["target"] = dst;
    edge_arr.emplace_back(std::move(e));
  }
  doc["edges"] = Value(std::move(edge_arr));
  Array path_arr;
  for (const auto& path : paths) {
    Array p;
    for (const auto& hop : path) p.emplace_back(hop);
    path_arr.emplace_back(std::move(p));
  }
  doc["paths"] = Value(std::move(path_arr));
  return Value(std::move(doc)).to_json(true);
}

std::string nidb_to_json(const nidb::Nidb& nidb) { return nidb.to_json(true); }

}  // namespace autonet::viz

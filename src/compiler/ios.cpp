// Cisco IOS device compiler: one monolithic configuration file; OSPF
// network statements use wildcard masks (handled by the template's
// `wildcard` filter over the same canonical subnet data).
#include "compiler/device_compiler.hpp"

namespace autonet::compiler {

void IosCompiler::compile(const CompileContext& ctx,
                          nidb::DeviceRecord& rec) const {
  DeviceCompiler::compile(ctx, rec);
  nidb::Object ios;
  ios["version"] = "15.2";
  rec.data["ios"] = nidb::Value(std::move(ios));
}

}  // namespace autonet::compiler

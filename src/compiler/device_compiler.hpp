// Device compilers (paper §5.4): condense the overlay graphs into each
// device's attribute vector in the Resource Database. "The generic router
// compiler consists of base functions: compile(), ospf(), interfaces().
// These can be overwritten in the inherited device compilers, extended by
// calling the super() module, or added to for new overlays."
//
// The base class computes the device-independent structure (interface
// list, OSPF links, BGP sessions, IS-IS, service blocks) from the
// overlays; per-syntax subclasses adjust naming/semantics and the render
// attributes pointing at their template set.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "anm/anm.hpp"
#include "nidb/nidb.hpp"

namespace autonet::compiler {

/// One resolved interface of a device, produced by the platform compiler
/// (interface naming is platform-specific) and consumed by the device
/// compilers.
struct ResolvedInterface {
  std::string id;             // e.g. "eth1" / "FastEthernet0/0"
  std::string collision_domain;
  std::string ip;             // host address, no prefix length
  std::string ip6;            // optional
  unsigned prefixlen = 0;
  std::string subnet;         // CIDR of the collision domain
  std::string description;    // "as100r1 to as100r3"
  std::int64_t ospf_cost = 1;
  std::int64_t isis_metric = 10;
  std::int64_t area = 0;
  std::string peer;           // other device for p2p links, "" for LANs
  /// Attached stub network (an `advertise_prefix` origin LAN): carries
  /// addresses and a connected route, but joins no IGP.
  bool stub = false;
};

/// Everything a device compiler needs to see.
struct CompileContext {
  const anm::AbstractNetworkModel* anm = nullptr;
  std::string platform;
  std::string device;        // ANM node name (lookup key)
  std::string hostname;      // platform-sanitised hostname
  std::vector<ResolvedInterface> interfaces;
  std::string loopback;      // "10.0.0.1/32" or ""
  std::string loopback_id;   // platform loopback name ("lo", "Loopback0")
};

class DeviceCompiler {
 public:
  virtual ~DeviceCompiler() = default;

  /// The configuration syntax this compiler targets ("quagga", ...).
  [[nodiscard]] virtual std::string syntax() const = 0;
  /// Template directory for the renderer ("templates/quagga").
  [[nodiscard]] virtual std::string template_base() const {
    return "templates/" + syntax();
  }

  /// Fills the record; calls the hooks below in order.
  virtual void compile(const CompileContext& ctx, nidb::DeviceRecord& rec) const;

 protected:
  virtual void base(const CompileContext& ctx, nidb::DeviceRecord& rec) const;
  virtual void interfaces(const CompileContext& ctx, nidb::DeviceRecord& rec) const;
  virtual void ospf(const CompileContext& ctx, nidb::DeviceRecord& rec) const;
  virtual void isis(const CompileContext& ctx, nidb::DeviceRecord& rec) const;
  virtual void bgp(const CompileContext& ctx, nidb::DeviceRecord& rec) const;
  virtual void services(const CompileContext& ctx, nidb::DeviceRecord& rec) const;
};

class QuaggaCompiler : public DeviceCompiler {
 public:
  [[nodiscard]] std::string syntax() const override { return "quagga"; }
  void compile(const CompileContext& ctx, nidb::DeviceRecord& rec) const override;
};

class IosCompiler : public DeviceCompiler {
 public:
  [[nodiscard]] std::string syntax() const override { return "ios"; }
  void compile(const CompileContext& ctx, nidb::DeviceRecord& rec) const override;
};

class JunosCompiler : public DeviceCompiler {
 public:
  [[nodiscard]] std::string syntax() const override { return "junos"; }
  void compile(const CompileContext& ctx, nidb::DeviceRecord& rec) const override;
};

/// C-BGP is a routing *solver*; its "configuration" is a script driving
/// the simulator, so the compiler emits net/bgp add statements data.
class CbgpCompiler : public DeviceCompiler {
 public:
  [[nodiscard]] std::string syntax() const override { return "cbgp"; }
  void compile(const CompileContext& ctx, nidb::DeviceRecord& rec) const override;
};

/// Plain Linux hosts (servers in Netkit labs): interface bring-up plus
/// service blocks, no routing protocols.
class LinuxCompiler : public DeviceCompiler {
 public:
  [[nodiscard]] std::string syntax() const override { return "linux"; }
  void compile(const CompileContext& ctx, nidb::DeviceRecord& rec) const override;
};

/// Syntax registry used by platform compilers; throws on unknown syntax.
[[nodiscard]] const DeviceCompiler& device_compiler_for(std::string_view syntax);

}  // namespace autonet::compiler

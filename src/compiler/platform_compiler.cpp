#include "compiler/platform_compiler.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <stdexcept>

#include "addressing/allocator.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace autonet::compiler {

using nidb::Array;
using nidb::Object;
using nidb::Value;

namespace {

std::string strip_len(std::string addr) {
  if (auto slash = addr.find('/'); slash != std::string::npos) addr.resize(slash);
  return addr;
}

unsigned prefixlen_of(const std::string& cidr) {
  auto slash = cidr.find('/');
  if (slash == std::string::npos) return 32;
  return static_cast<unsigned>(std::stoul(cidr.substr(slash + 1)));
}

}  // namespace

std::string PlatformCompiler::sanitize_hostname(std::string name) const {
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') {
      c = '_';
    }
  }
  if (name.empty()) name = "device";
  return name;
}

void PlatformCompiler::platform_data(const anm::AbstractNetworkModel&,
                                     nidb::Nidb&) const {}

nidb::Nidb PlatformCompiler::compile(const anm::AbstractNetworkModel& anm,
                                     const PlatformOptions& opts,
                                     const CompileReuse* reuse) const {
  if (!anm.has_overlay("phy") || !anm.has_overlay("ip")) {
    throw std::invalid_argument(
        "platform compile: requires 'phy' and 'ip' overlays (run the design "
        "rules first)");
  }
  auto g_phy = anm["phy"];
  auto g_ip = anm["ip"];

  nidb::Nidb nidb;
  nidb.data()["platform"] = platform();
  nidb.data()["host"] = opts.default_host;

  // Design provenance for the static analyser: which design overlays
  // produced this database, and the chosen iBGP signaling mode.
  {
    Object design;
    Array rules;
    for (const auto& name : anm.overlay_names()) rules.emplace_back(name);
    design["rules"] = Value(std::move(rules));
    if (anm.has_overlay("ibgp")) {
      const graph::AttrMap& ibgp_data = anm["ibgp"].data();
      if (auto it = ibgp_data.find("ibgp_mode"); it != ibgp_data.end()) {
        if (const auto* mode = it->second.as_string()) {
          design["ibgp_mode"] = *mode;
        }
      }
    }
    nidb.data()["design"] = Value(std::move(design));
  }

  auto mgmt_block = addressing::Ipv4Prefix::parse(opts.mgmt_block);
  if (!mgmt_block) throw std::invalid_argument("bad mgmt block " + opts.mgmt_block);
  addressing::HostAllocator mgmt(*mgmt_block);

  // Devices in deterministic (name) order.
  std::vector<anm::OverlayNode> devices;
  for (const auto& n : g_phy.nodes()) {
    if (n.is_router() || n.is_server()) devices.push_back(n);
  }
  std::sort(devices.begin(), devices.end(),
            [](const anm::OverlayNode& a, const anm::OverlayNode& b) {
              return a.name() < b.name();
            });

  obs::Registry& obs = obs::Registry::current();
  obs::Counter& devices_compiled = obs.counter("compile.devices");

  for (const auto& dev : devices) {
    obs::Span span(obs, "compile.device");
    span.arg("device", dev.name());
    devices_compiled.inc();

    // Unchanged device with a baseline record: copy it instead of
    // resolving interfaces and re-running the syntax compiler. The
    // management/host fields below are recomputed either way, so the
    // copy stays equivalent to a fresh compile.
    const nidb::DeviceRecord* base_rec = nullptr;
    if (reuse != nullptr && reuse->baseline != nullptr &&
        reuse->devices != nullptr && reuse->devices->contains(dev.name())) {
      base_rec = reuse->baseline->device(dev.name());
    }
    if (base_rec != nullptr) {
      nidb::DeviceRecord& rec = nidb.add_device(dev.name());
      rec.data = base_rec->data;
      if (reuse->reused_out != nullptr) ++*reuse->reused_out;

      auto tap = mgmt.allocate();
      Object tap_obj;
      tap_obj["ip"] = tap.address.to_string();
      tap_obj["interface"] = mgmt_interface_name();
      rec.data["tap"] = Value(std::move(tap_obj));

      std::string host = opts.default_host;
      if (const auto* h = dev.attr("host").as_string(); h != nullptr && !h->empty()) {
        host = *h;
      }
      rec.data["host"] = host;
      rec.data.set_path("render.base_dst_folder",
                        host + "/" + platform() + "/" + sanitize_hostname(dev.name()));
      continue;
    }

    CompileContext ctx;
    ctx.anm = &anm;
    ctx.platform = platform();
    ctx.device = dev.name();
    ctx.hostname = sanitize_hostname(dev.name());
    ctx.loopback_id = loopback_name();

    auto ip_node = g_ip.node(dev.name());
    if (ip_node) {
      if (const auto* lo = ip_node->attr("loopback").as_string()) {
        ctx.loopback = *lo;
      }

      // Interfaces: one per attached collision domain, sorted by domain
      // name so numbering is deterministic across runs.
      auto edges = ip_node->edges();
      std::sort(edges.begin(), edges.end(),
                [&](const anm::OverlayEdge& a, const anm::OverlayEdge& b) {
                  return a.other(*ip_node).name() < b.other(*ip_node).name();
                });
      std::size_t index = 0;
      for (const auto& e : edges) {
        auto cd = e.other(*ip_node);
        if (!cd.attr("collision_domain").truthy()) continue;
        ResolvedInterface iface;
        iface.id = data_interface_name(index++);
        iface.collision_domain = cd.name();
        if (const auto* ip = e.attr("ip").as_string()) iface.ip = strip_len(*ip);
        if (const auto* ip6 = e.attr("ip6").as_string()) iface.ip6 = *ip6;
        if (const auto* subnet = cd.attr("subnet").as_string()) {
          iface.subnet = *subnet;
          iface.prefixlen = prefixlen_of(*subnet);
        }

        // Peers on this domain (one for p2p, several for LANs).
        std::vector<std::string> peers;
        for (const auto& ce : cd.edges()) {
          auto other = ce.other(cd);
          if (other.name() != dev.name()) peers.push_back(other.name());
        }
        std::sort(peers.begin(), peers.end());
        if (peers.size() == 1) {
          iface.peer = peers[0];
          iface.description = dev.name() + " to " + peers[0];
        } else {
          iface.description = dev.name() + " to " + cd.name();
        }

        // Costs/areas from the IGP overlays (p2p links only; LANs keep
        // the defaults).
        if (!iface.peer.empty() && anm.has_overlay("ospf")) {
          auto g_ospf = anm["ospf"];
          auto self = g_ospf.node(dev.name());
          if (self) {
            for (const auto& oe : self->edges()) {
              if (oe.other(*self).name() == iface.peer) {
                if (auto cost = oe.attr("ospf_cost").as_int()) iface.ospf_cost = *cost;
                if (auto area = oe.attr("area").as_int()) iface.area = *area;
                break;
              }
            }
          }
        }
        if (!iface.peer.empty() && anm.has_overlay("isis")) {
          auto g_isis = anm["isis"];
          auto self = g_isis.node(dev.name());
          if (self) {
            for (const auto& ie : self->edges()) {
              if (ie.other(*self).name() == iface.peer) {
                if (auto m = ie.attr("isis_metric").as_int()) iface.isis_metric = *m;
                break;
              }
            }
          }
        }
        ctx.interfaces.push_back(std::move(iface));
      }

      // An `advertise_prefix` origin gets an attached stub network
      // bearing the prefix (the customer LAN the real lab would have):
      // it holds the first host address, produces a connected route, and
      // joins no IGP.
      if (const auto* adv = dev.attr("advertise_prefix").as_string()) {
        if (auto prefix = addressing::Ipv4Prefix::parse(*adv)) {
          ResolvedInterface stub;
          stub.id = data_interface_name(index++);
          stub.collision_domain = "stub_" + ctx.hostname;
          stub.ip = prefix->nth(prefix->length() >= 31 ? 0 : 1).to_string();
          stub.subnet = prefix->to_string();
          stub.prefixlen = prefix->length();
          stub.description = dev.name() + " attached network";
          stub.stub = true;
          ctx.interfaces.push_back(std::move(stub));
        }
      }
    }

    // Syntax: per-node override, servers default to plain Linux.
    std::string syntax = default_syntax();
    if (dev.is_server()) syntax = "linux";
    if (const auto* s = dev.attr("syntax").as_string(); s != nullptr && !s->empty()) {
      syntax = *s;
    }

    nidb::DeviceRecord& rec = nidb.add_device(dev.name());
    device_compiler_for(syntax).compile(ctx, rec);

    // Management (TAP) interface and render destination.
    auto tap = mgmt.allocate();
    Object tap_obj;
    tap_obj["ip"] = tap.address.to_string();
    tap_obj["interface"] = mgmt_interface_name();
    rec.data["tap"] = Value(std::move(tap_obj));

    std::string host = opts.default_host;
    if (const auto* h = dev.attr("host").as_string(); h != nullptr && !h->empty()) {
      host = *h;
    }
    rec.data["host"] = host;
    rec.data.set_path("render.base_dst_folder",
                      host + "/" + platform() + "/" + ctx.hostname);
  }

  // Device-level links: one per point-to-point collision domain, plus a
  // star entry per LAN domain member (paper: the NIDB is a device-level
  // graph based on the phy nodes and edges).
  for (const auto& cd : g_ip.nodes()) {
    if (!cd.attr("collision_domain").truthy()) continue;
    std::vector<std::string> members;
    for (const auto& e : cd.edges()) members.push_back(e.other(cd).name());
    std::sort(members.begin(), members.end());
    const std::string subnet = [&cd]() {
      const auto* s = cd.attr("subnet").as_string();
      return s ? *s : std::string{};
    }();
    auto iface_of = [&nidb, &cd](const std::string& device) -> std::string {
      const nidb::DeviceRecord* rec = nidb.device(device);
      if (rec == nullptr) return "";
      const Value* interfaces = rec->data.find("interfaces");
      const Array* arr = interfaces ? interfaces->as_array() : nullptr;
      if (arr == nullptr) return "";
      for (const Value& i : *arr) {
        const Value* domain = i.find("collision_domain");
        const std::string* s = domain ? domain->as_string() : nullptr;
        if (s != nullptr && *s == cd.name()) {
          const Value* id = i.find("id");
          const std::string* ids = id ? id->as_string() : nullptr;
          return ids ? *ids : "";
        }
      }
      return "";
    };
    if (members.size() == 2) {
      nidb.add_link({members[0], iface_of(members[0]), members[1],
                     iface_of(members[1]), subnet});
    } else {
      for (const auto& m : members) {
        nidb.add_link({m, iface_of(m), cd.name(), "", subnet});
      }
    }
  }

  // Expose device-level links in the network data for network-wide
  // templates (the C-BGP script needs node ids and IGP weights).
  {
    Array links_data;
    for (const auto& link : nidb.links()) {
      Object l;
      l["src"] = link.src_device;
      l["src_int"] = link.src_interface;
      l["dst"] = link.dst_device;
      l["dst_int"] = link.dst_interface;
      l["subnet"] = link.subnet;
      std::int64_t cost = 1;
      auto loopback_and_cost = [&nidb](const std::string& device,
                                       const std::string& iface_id,
                                       std::int64_t& cost_out) -> std::string {
        const nidb::DeviceRecord* rec = nidb.device(device);
        if (rec == nullptr) return "";
        const Value* interfaces = rec->data.find("interfaces");
        const Array* arr = interfaces ? interfaces->as_array() : nullptr;
        if (arr != nullptr) {
          for (const Value& i : *arr) {
            const Value* id = i.find("id");
            const std::string* ids = id ? id->as_string() : nullptr;
            if (ids != nullptr && *ids == iface_id) {
              if (const Value* c = i.find("ospf_cost")) {
                if (auto ci = c->as_int()) cost_out = *ci;
              }
              break;
            }
          }
        }
        const Value* lo = rec->data.find("loopback");
        const std::string* los = lo ? lo->as_string() : nullptr;
        return los ? strip_len(*los) : "";
      };
      l["src_loopback"] = loopback_and_cost(link.src_device, link.src_interface, cost);
      std::int64_t ignored = 1;
      l["dst_loopback"] = loopback_and_cost(link.dst_device, link.dst_interface, ignored);
      l["cost"] = cost;
      links_data.emplace_back(std::move(l));
    }
    nidb.data()["links"] = Value(std::move(links_data));
  }

  // Cross-host links need stitching (paper §5.4: "GRE tunnels between
  // distributed Open vSwitches").
  Array cross;
  int tunnel_id = 0;
  for (const auto& link : nidb.links()) {
    const auto* a = nidb.device(link.src_device);
    const auto* b = nidb.device(link.dst_device);
    if (a == nullptr || b == nullptr) continue;
    const Value* ha = a->data.find("host");
    const Value* hb = b->data.find("host");
    const std::string* sa = ha ? ha->as_string() : nullptr;
    const std::string* sb = hb ? hb->as_string() : nullptr;
    if (sa != nullptr && sb != nullptr && *sa != *sb) {
      Object t;
      t["src_host"] = *sa;
      t["dst_host"] = *sb;
      t["src_device"] = link.src_device;
      t["dst_device"] = link.dst_device;
      t["tunnel"] = "gre" + std::to_string(tunnel_id++);
      t["subnet"] = link.subnet;
      cross.emplace_back(std::move(t));
    }
  }
  nidb.data()["cross_connects"] = Value(std::move(cross));

  platform_data(anm, nidb);
  return nidb;
}

void NetkitCompiler::platform_data(const anm::AbstractNetworkModel& anm,
                                   nidb::Nidb& nidb) const {
  (void)anm;
  // lab.conf: machine[interface]=collision_domain entries, plus TAP.
  Array lab;
  for (const auto* rec : nidb.devices()) {
    const Value* interfaces = rec->data.find("interfaces");
    const Array* arr = interfaces ? interfaces->as_array() : nullptr;
    if (arr == nullptr) continue;
    std::int64_t index = 1;  // eth0 is TAP; data interfaces start at 1
    for (const Value& iface : *arr) {
      Object entry;
      entry["machine"] = rec->name;
      const Value* id = iface.find("id");
      const Value* cd = iface.find("collision_domain");
      entry["interface"] = id ? *id : Value("");
      entry["interface_index"] = index++;
      entry["collision_domain"] = cd ? *cd : Value("");
      lab.emplace_back(std::move(entry));
    }
  }
  nidb.data()["lab_conf"] = Value(std::move(lab));
}

void DynagenCompiler::platform_data(const anm::AbstractNetworkModel& anm,
                                    nidb::Nidb& nidb) const {
  (void)anm;
  // The .net file lists the emulated chassis per router.
  Array routers;
  for (const auto* rec : nidb.routers()) {
    Object r;
    r["name"] = rec->name;
    r["model"] = "7200";
    routers.emplace_back(std::move(r));
  }
  nidb.data()["dynagen_routers"] = Value(std::move(routers));
}

void CbgpPlatformCompiler::platform_data(const anm::AbstractNetworkModel& anm,
                                         nidb::Nidb& nidb) const {
  (void)anm;
  // Distinct ASNs, for the IGP domain declarations in the script.
  std::set<std::int64_t> asns;
  for (const auto* rec : nidb.devices()) {
    const Value* asn = rec->data.find("asn");
    if (asn != nullptr) {
      if (auto v = asn->as_int()) asns.insert(*v);
    }
  }
  Array list;
  for (auto asn : asns) list.emplace_back(asn);
  nidb.data()["asns"] = Value(std::move(list));
}

const PlatformCompiler& platform_compiler_for(std::string_view platform) {
  static const NetkitCompiler netkit;
  static const DynagenCompiler dynagen;
  static const JunosphereCompiler junosphere;
  static const CbgpPlatformCompiler cbgp;
  if (platform == "netkit") return netkit;
  if (platform == "dynagen") return dynagen;
  if (platform == "junosphere") return junosphere;
  if (platform == "cbgp") return cbgp;
  throw std::invalid_argument("no platform compiler for '" + std::string(platform) + "'");
}

}  // namespace autonet::compiler

#include "compiler/device_compiler.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/attr.hpp"

namespace autonet::compiler {

using nidb::Array;
using nidb::Object;
using nidb::Value;

namespace {

std::string strip_len(std::string addr) {
  if (auto slash = addr.find('/'); slash != std::string::npos) addr.resize(slash);
  return addr;
}

/// The address the peer uses on the collision domain shared with
/// `device` (for eBGP session endpoints).
std::string peer_address_on_shared_link(const anm::AbstractNetworkModel& anm,
                                        std::string_view device,
                                        std::string_view peer) {
  if (!anm.has_overlay("ip")) return "";
  auto g_ip = anm["ip"];
  auto dev = g_ip.node(device);
  auto peer_node = g_ip.node(peer);
  if (!dev || !peer_node) return "";
  for (const auto& e : dev->edges()) {
    auto cd = e.other(*dev);
    if (!cd.attr("collision_domain").truthy()) continue;
    for (const auto& pe : cd.edges()) {
      if (pe.other(cd).name() == peer) {
        if (const auto* ip = pe.attr("ip").as_string()) return strip_len(*ip);
      }
    }
  }
  return "";
}

}  // namespace

void DeviceCompiler::compile(const CompileContext& ctx,
                             nidb::DeviceRecord& rec) const {
  base(ctx, rec);
  interfaces(ctx, rec);
  ospf(ctx, rec);
  isis(ctx, rec);
  bgp(ctx, rec);
  services(ctx, rec);
}

void DeviceCompiler::base(const CompileContext& ctx, nidb::DeviceRecord& rec) const {
  const auto& anm = *ctx.anm;
  auto phy = anm["phy"].node(ctx.device);
  if (!phy) throw std::invalid_argument("compile: unknown device " + ctx.device);

  rec.data["hostname"] = ctx.hostname.empty() ? ctx.device : ctx.hostname;
  rec.data["asn"] = phy->asn();
  rec.data["device_type"] = phy->device_type();
  rec.data["syntax"] = syntax();
  if (!ctx.loopback.empty()) {
    rec.data["loopback"] = ctx.loopback;
    rec.data["loopback_id"] = ctx.loopback_id;
  }
  rec.data.set_path("render.base", template_base());
}

void DeviceCompiler::interfaces(const CompileContext& ctx,
                                nidb::DeviceRecord& rec) const {
  Array out;
  for (const auto& iface : ctx.interfaces) {
    Object i;
    i["id"] = iface.id;
    i["description"] = iface.description;
    i["ip_address"] = iface.ip;
    i["prefixlen"] = static_cast<std::int64_t>(iface.prefixlen);
    i["subnet"] = iface.subnet;
    i["collision_domain"] = iface.collision_domain;
    i["ospf_cost"] = iface.ospf_cost;
    if (iface.stub) i["stub"] = true;
    if (!iface.ip6.empty()) i["ip6_address"] = iface.ip6;
    out.emplace_back(std::move(i));
  }
  rec.data["interfaces"] = Value(std::move(out));
}

void DeviceCompiler::ospf(const CompileContext& ctx, nidb::DeviceRecord& rec) const {
  const auto& anm = *ctx.anm;
  if (!anm.has_overlay("ospf")) return;
  auto node = anm["ospf"].node(ctx.device);
  if (!node) return;

  Object o;
  o["process_id"] = 1;
  if (!ctx.loopback.empty()) o["router_id"] = strip_len(ctx.loopback);
  Array links;
  for (const auto& iface : ctx.interfaces) {
    // Only intra-AS adjacencies participate; inter-AS links are covered
    // by eBGP (Eq. 1 vs Eq. 3 separation), and attached stub networks
    // stay out of the IGP.
    if (iface.stub) continue;
    if (!iface.peer.empty()) {
      auto peer = anm["phy"].node(iface.peer);
      auto self = anm["phy"].node(ctx.device);
      if (peer && self && peer->asn() != self->asn()) continue;
    }
    Object link;
    link["network"] = iface.subnet;
    link["area"] = iface.area;
    link["interface"] = iface.id;
    link["cost"] = iface.ospf_cost;
    links.emplace_back(std::move(link));
  }
  if (!ctx.loopback.empty()) {
    Object link;
    link["network"] = ctx.loopback;
    // The loopback joins the router's own area (a router wholly inside a
    // non-zero area has no area-0 presence to advertise into).
    link["area"] = node->attr("area").as_int().value_or(0);
    link["interface"] = ctx.loopback_id;
    link["cost"] = 0;
    links.emplace_back(std::move(link));
  }
  o["ospf_links"] = Value(std::move(links));
  rec.data["ospf"] = Value(std::move(o));
}

void DeviceCompiler::isis(const CompileContext& ctx, nidb::DeviceRecord& rec) const {
  const auto& anm = *ctx.anm;
  if (!anm.has_overlay("isis")) return;
  auto node = anm["isis"].node(ctx.device);
  if (!node) return;

  Object o;
  if (const auto* area = node->attr("isis_area").as_string()) {
    // NET: <area>.<system-id>.00 with the system id from the loopback.
    std::string system_id = "0000.0000.0000";
    if (!ctx.loopback.empty()) {
      // 10.0.1.2 -> 0100.0000.1002-style padding (common convention).
      auto addr = strip_len(ctx.loopback);
      std::string digits;
      for (char c : addr) {
        if (c == '.') continue;
        digits += c;
      }
      while (digits.size() < 12) digits.insert(digits.begin(), '0');
      system_id = digits.substr(0, 4) + "." + digits.substr(4, 4) + "." +
                  digits.substr(8, 4);
    }
    o["net"] = *area + "." + system_id + ".00";
  }
  if (const auto* level = node->attr("level").as_string()) o["level"] = *level;
  Array ifaces;
  for (const auto& iface : ctx.interfaces) {
    if (iface.stub) continue;
    if (!iface.peer.empty()) {
      auto peer = anm["phy"].node(iface.peer);
      auto self = anm["phy"].node(ctx.device);
      if (peer && self && peer->asn() != self->asn()) continue;
    }
    Object entry;
    entry["id"] = iface.id;
    entry["metric"] = iface.isis_metric;
    ifaces.emplace_back(std::move(entry));
  }
  o["interfaces"] = Value(std::move(ifaces));
  rec.data["isis"] = Value(std::move(o));
}

void DeviceCompiler::bgp(const CompileContext& ctx, nidb::DeviceRecord& rec) const {
  const auto& anm = *ctx.anm;
  const bool in_ebgp = anm.has_overlay("ebgp") && anm["ebgp"].has_node(ctx.device);
  const bool in_ibgp = anm.has_overlay("ibgp") && anm["ibgp"].has_node(ctx.device);
  if (!in_ebgp && !in_ibgp) return;

  auto phy = anm["phy"].node(ctx.device);
  Object o;
  o["asn"] = phy->asn();
  if (!ctx.loopback.empty()) o["router_id"] = strip_len(ctx.loopback);
  // Vendor default: the IGP-cost step participates in best-path selection
  // (§7.2); Quagga overrides this to false.
  o["igp_tiebreak"] = true;

  // Originated networks: the AS's infrastructure and loopback blocks
  // (so inter-AS traceroutes to loopbacks resolve) plus any explicitly
  // advertised prefix.
  Array networks;
  if (anm.has_overlay("ip")) {
    const auto& data = anm["ip"].data();
    for (const char* kind : {"infra_block_", "loopback_block_"}) {
      const auto& block =
          graph::attr_or_unset(data, kind + std::to_string(phy->asn()));
      if (block.is_set()) networks.emplace_back(block.to_string());
    }
  }
  if (const auto* adv = phy->attr("advertise_prefix").as_string()) {
    networks.emplace_back(*adv);
  }
  o["networks"] = Value(std::move(networks));

  Array ibgp_neighbors;
  if (in_ibgp) {
    auto node = *anm["ibgp"].node(ctx.device);
    for (const auto& e : node.edges()) {
      auto peer = e.dst();
      auto peer_ip = anm["ip"].node(peer.name());
      std::string peer_loopback;
      if (peer_ip) {
        if (const auto* lo = peer_ip->attr("loopback").as_string()) {
          peer_loopback = strip_len(*lo);
        }
      }
      Object n;
      n["neighbor"] = peer_loopback;
      n["remote_as"] = phy->asn();
      n["description"] = peer.name();
      n["update_source"] = ctx.loopback_id;
      n["next_hop_self"] = true;
      if (e.attr("rr_client").truthy()) n["rr_client"] = true;
      ibgp_neighbors.emplace_back(std::move(n));
    }
  }
  o["ibgp_neighbors"] = Value(std::move(ibgp_neighbors));

  // Stub (no-transit) routers export only locally originated prefixes to
  // their eBGP peers — the classic "^$" as-path filter.
  const bool no_transit = phy->attr("no_transit").truthy();
  if (no_transit) o["no_transit"] = true;

  Array ebgp_neighbors;
  if (in_ebgp) {
    auto node = *anm["ebgp"].node(ctx.device);
    for (const auto& e : node.edges()) {
      auto peer = e.dst();
      auto peer_phy = anm["phy"].node(peer.name());
      Object n;
      n["neighbor"] = peer_address_on_shared_link(anm, ctx.device, peer.name());
      n["remote_as"] = peer_phy ? peer_phy->asn() : 0;
      n["description"] = peer.name();
      if (no_transit) n["only_local_out"] = true;
      // Ingress preference / egress MED policies from the session edge
      // (§7.3).
      if (auto lp = e.attr("local_pref").as_int()) n["local_pref_in"] = *lp;
      if (auto med = e.attr("med").as_int()) n["med_out"] = *med;
      ebgp_neighbors.emplace_back(std::move(n));
    }
  }
  o["ebgp_neighbors"] = Value(std::move(ebgp_neighbors));

  rec.data["bgp"] = Value(std::move(o));
}

void DeviceCompiler::services(const CompileContext& ctx,
                              nidb::DeviceRecord& rec) const {
  const auto& anm = *ctx.anm;
  if (anm.has_overlay("dns")) {
    auto node = anm["dns"].node(ctx.device);
    if (node) {
      Object d;
      if (node->attr("dns_server").truthy()) {
        d["server"] = true;
        if (const auto* zone = node->attr("zone").as_string()) d["zone"] = *zone;
        // Zone contents, derived from the IP allocations so names and
        // addresses stay consistent (§3.3).
        Array records;
        if (anm.has_overlay("ip")) {
          auto g_ip = anm["ip"];
          auto phy_self = anm["phy"].node(ctx.device);
          for (const auto& member : g_ip.nodes()) {
            if (member.attr("collision_domain").truthy()) continue;
            if (phy_self && member.asn() != phy_self->asn()) continue;
            std::string addr;
            if (const auto* lo = member.attr("loopback").as_string()) {
              addr = strip_len(*lo);
            } else {
              for (const auto& ie : member.edges()) {
                if (const auto* ip = ie.attr("ip").as_string()) {
                  addr = strip_len(*ip);
                  break;
                }
              }
            }
            if (addr.empty()) continue;
            Object record;
            record["name"] = member.name();
            record["address"] = addr;
            records.emplace_back(std::move(record));
          }
        }
        d["records"] = Value(std::move(records));
      } else {
        // Find this client's resolver: the target of its resolves_via edge.
        for (const auto& e : node->edges()) {
          auto server = e.dst();
          auto server_ip = anm["ip"].node(server.name());
          std::string resolver;
          if (server_ip) {
            if (const auto* lo = server_ip->attr("loopback").as_string()) {
              resolver = strip_len(*lo);
            } else {
              for (const auto& ie : server_ip->edges()) {
                if (const auto* ip = ie.attr("ip").as_string()) {
                  resolver = strip_len(*ip);
                  break;
                }
              }
            }
          }
          d["resolver"] = resolver;
          break;
        }
      }
      rec.data["dns"] = Value(std::move(d));
    }
  }

  if (anm.has_overlay("rpki")) {
    auto node = anm["rpki"].node(ctx.device);
    if (node) {
      Object r;
      if (const auto* role = node->attr("rpki_role").as_string()) r["role"] = *role;
      if (node->attr("trust_anchor").truthy()) r["trust_anchor"] = true;
      Array children;
      for (const auto& e : node->edges()) {
        Object child;
        child["name"] = e.dst().name();
        if (const auto* rel = e.attr("relation").as_string()) child["relation"] = *rel;
        children.emplace_back(std::move(child));
      }
      r["children"] = Value(std::move(children));
      rec.data["rpki"] = Value(std::move(r));
    }
  }
}

void LinuxCompiler::compile(const CompileContext& ctx,
                            nidb::DeviceRecord& rec) const {
  base(ctx, rec);
  interfaces(ctx, rec);
  services(ctx, rec);
}

const DeviceCompiler& device_compiler_for(std::string_view syntax) {
  static const QuaggaCompiler quagga;
  static const IosCompiler ios;
  static const JunosCompiler junos;
  static const CbgpCompiler cbgp;
  static const LinuxCompiler linux_host;
  if (syntax == "quagga") return quagga;
  if (syntax == "ios") return ios;
  if (syntax == "junos") return junos;
  if (syntax == "cbgp") return cbgp;
  if (syntax == "linux") return linux_host;
  throw std::invalid_argument("no device compiler for syntax '" +
                              std::string(syntax) + "'");
}

}  // namespace autonet::compiler

// Juniper Junos device compiler: hierarchical configuration; the template
// renders the braces structure from the same canonical record.
#include "compiler/device_compiler.hpp"

namespace autonet::compiler {

void JunosCompiler::compile(const CompileContext& ctx,
                            nidb::DeviceRecord& rec) const {
  DeviceCompiler::compile(ctx, rec);
  nidb::Object junos;
  junos["version"] = "12.1";
  rec.data["junos"] = nidb::Value(std::move(junos));
}

}  // namespace autonet::compiler

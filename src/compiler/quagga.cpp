// Quagga device compiler: Netkit's default syntax. Configuration lives in
// /etc/quagga with one daemon config per protocol (zebra, ospfd, bgpd).
#include "compiler/device_compiler.hpp"

namespace autonet::compiler {

void QuaggaCompiler::compile(const CompileContext& ctx,
                             nidb::DeviceRecord& rec) const {
  DeviceCompiler::compile(ctx, rec);
  nidb::Object zebra;
  zebra["hostname"] = ctx.device;
  zebra["password"] = "1234";
  rec.data["zebra"] = nidb::Value(std::move(zebra));
  // Quagga's bgpd does not apply the IGP-metric tie-break by default —
  // the behaviour the paper's Bad-Gadget experiment exposed (§7.2).
  if (rec.data.find("bgp") != nullptr) {
    rec.data["bgp"]["igp_tiebreak"] = false;
  }
}

}  // namespace autonet::compiler

// C-BGP device compiler. C-BGP is a routing solver scripted through
// net/bgp add statements; nodes are identified by address rather than
// hostname, so the compiler records the loopback as the node id.
#include "compiler/device_compiler.hpp"

namespace autonet::compiler {

namespace {

std::string strip_len(std::string addr) {
  if (auto slash = addr.find('/'); slash != std::string::npos) addr.resize(slash);
  return addr;
}

}  // namespace

void CbgpCompiler::compile(const CompileContext& ctx,
                           nidb::DeviceRecord& rec) const {
  DeviceCompiler::compile(ctx, rec);
  if (!ctx.loopback.empty()) {
    rec.data["cbgp_id"] = strip_len(ctx.loopback);
  }
  // C-BGP addresses peers by node id (loopback), not by interface
  // address: rewrite the eBGP neighbor endpoints accordingly.
  if (nidb::Value* bgp = [&rec]() -> nidb::Value* {
        return rec.data.find("bgp") != nullptr ? &rec.data["bgp"] : nullptr;
      }()) {
    const nidb::Value* ebgp = bgp->find("ebgp_neighbors");
    if (ebgp != nullptr && ebgp->as_array() != nullptr) {
      nidb::Array rewritten;
      for (const nidb::Value& n : *ebgp->as_array()) {
        nidb::Object entry = *n.as_object();
        const nidb::Value* desc = n.find("description");
        const std::string* peer = desc ? desc->as_string() : nullptr;
        if (peer != nullptr && ctx.anm->has_overlay("ip")) {
          if (auto peer_node = ctx.anm->overlay("ip").node(*peer)) {
            if (const auto* lo = peer_node->attr("loopback").as_string()) {
              entry["neighbor"] = strip_len(*lo);
              // A node-id session is not on a shared collision domain;
              // mark it so adjacency lint knows this is by design.
              entry["multihop"] = true;
            }
          }
        }
        rewritten.emplace_back(std::move(entry));
      }
      (*bgp)["ebgp_neighbors"] = nidb::Value(std::move(rewritten));
    }
  }
}

}  // namespace autonet::compiler

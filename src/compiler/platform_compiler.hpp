// Platform compilers (paper §5.4): "constructs information needed by a
// particular emulation platform, allocates platform specified information,
// such as interface names..., and management IP addresses, and performs
// platform based formatting, such as removing any invalid characters from
// hostnames." Reference implementations are provided for Netkit, Dynagen,
// Junosphere and C-BGP, mirroring the paper.
#pragma once

#include <cstddef>
#include <set>
#include <string>

#include "anm/anm.hpp"
#include "compiler/device_compiler.hpp"
#include "nidb/nidb.hpp"

namespace autonet::compiler {

struct PlatformOptions {
  /// Emulation host devices deploy to unless a node carries a `host`
  /// attribute.
  std::string default_host = "localhost";
  /// Management (TAP) address block.
  std::string mgmt_block = "172.16.0.0/16";
};

/// Incremental-compile directive: devices listed in `devices` copy their
/// record from `baseline` instead of re-running the per-device syntax
/// compiler. Platform-wide sections (links, lab.conf, cross-connects) and
/// management addresses are always recomputed, so a reused record is
/// indistinguishable from a fresh one.
struct CompileReuse {
  const nidb::Nidb* baseline = nullptr;
  const std::set<std::string>* devices = nullptr;
  /// Incremented once per device actually reused (optional).
  std::size_t* reused_out = nullptr;
};

class PlatformCompiler {
 public:
  virtual ~PlatformCompiler() = default;

  [[nodiscard]] virtual std::string platform() const = 0;
  [[nodiscard]] virtual std::string default_syntax() const = 0;
  /// Name of the idx-th data-plane interface (0-based).
  [[nodiscard]] virtual std::string data_interface_name(std::size_t idx) const = 0;
  [[nodiscard]] virtual std::string loopback_name() const = 0;
  /// Name of the management (TAP) interface.
  [[nodiscard]] virtual std::string mgmt_interface_name() const { return "mgmt0"; }
  /// Strips characters the platform cannot digest in hostnames.
  [[nodiscard]] virtual std::string sanitize_hostname(std::string name) const;

  /// Runs the full platform compilation: resolves interfaces from the ip
  /// overlay, allocates management addresses, invokes the per-device
  /// syntax compilers, records device-level links, detects cross-host
  /// connections (GRE stitches), and calls platform_data(). Requires the
  /// 'phy' and 'ip' overlays. `reuse`, when given, short-circuits the
  /// per-device compilers for unchanged devices (incremental pipeline).
  [[nodiscard]] nidb::Nidb compile(const anm::AbstractNetworkModel& anm,
                                   const PlatformOptions& opts = {},
                                   const CompileReuse* reuse = nullptr) const;

 protected:
  /// Hook for platform-wide artefacts (e.g. Netkit's lab.conf entries).
  virtual void platform_data(const anm::AbstractNetworkModel& anm,
                             nidb::Nidb& nidb) const;
};

/// Netkit: Linux/UML VMs, Quagga routing, eth0 reserved for the TAP
/// management interface, lab.conf + per-device .startup files.
class NetkitCompiler : public PlatformCompiler {
 public:
  [[nodiscard]] std::string platform() const override { return "netkit"; }
  [[nodiscard]] std::string default_syntax() const override { return "quagga"; }
  [[nodiscard]] std::string data_interface_name(std::size_t idx) const override {
    return "eth" + std::to_string(idx + 1);  // eth0 is the TAP interface
  }
  [[nodiscard]] std::string mgmt_interface_name() const override { return "eth0"; }
  [[nodiscard]] std::string loopback_name() const override { return "lo"; }

 protected:
  void platform_data(const anm::AbstractNetworkModel& anm,
                     nidb::Nidb& nidb) const override;
};

/// Dynagen: emulated Cisco 7200s, IOS syntax, slot/port interface names.
class DynagenCompiler : public PlatformCompiler {
 public:
  [[nodiscard]] std::string platform() const override { return "dynagen"; }
  [[nodiscard]] std::string default_syntax() const override { return "ios"; }
  [[nodiscard]] std::string data_interface_name(std::size_t idx) const override {
    return "FastEthernet" + std::to_string(idx / 2) + "/" + std::to_string(idx % 2);
  }
  [[nodiscard]] std::string loopback_name() const override { return "Loopback0"; }

 protected:
  void platform_data(const anm::AbstractNetworkModel& anm,
                     nidb::Nidb& nidb) const override;
};

/// Junosphere: Juniper VJX images, em- interfaces.
class JunosphereCompiler : public PlatformCompiler {
 public:
  [[nodiscard]] std::string platform() const override { return "junosphere"; }
  [[nodiscard]] std::string default_syntax() const override { return "junos"; }
  [[nodiscard]] std::string data_interface_name(std::size_t idx) const override {
    return "em" + std::to_string(idx);
  }
  [[nodiscard]] std::string loopback_name() const override { return "lo0"; }
};

/// C-BGP: a routing solver; interfaces are abstract.
class CbgpPlatformCompiler : public PlatformCompiler {
 public:
  [[nodiscard]] std::string platform() const override { return "cbgp"; }
  [[nodiscard]] std::string default_syntax() const override { return "cbgp"; }
  [[nodiscard]] std::string data_interface_name(std::size_t idx) const override {
    return "if" + std::to_string(idx);
  }
  [[nodiscard]] std::string loopback_name() const override { return "lo"; }

 protected:
  void platform_data(const anm::AbstractNetworkModel& anm,
                     nidb::Nidb& nidb) const override;
};

/// Registry by platform name; throws on unknown platform.
[[nodiscard]] const PlatformCompiler& platform_compiler_for(std::string_view platform);

}  // namespace autonet::compiler

#include "design/services.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace autonet::design {

using anm::OverlayEdge;
using anm::OverlayGraph;
using anm::OverlayNode;

OverlayGraph build_dns(anm::AbstractNetworkModel& anm, const DnsOptions& opts) {
  OverlayGraph g_phy = anm["phy"];
  OverlayGraph g_dns = anm.add_overlay("dns", /*directed=*/true);

  std::map<std::int64_t, std::vector<OverlayNode>> members;
  for (const auto& n : g_phy.nodes()) {
    if (n.is_router() || n.is_server()) members[n.asn()].push_back(n);
  }

  for (const auto& [asn, devices] : members) {
    // Pick the zone server: explicit mark wins, then any server device,
    // then the lowest-named router.
    const OverlayNode* server = nullptr;
    for (const auto& d : devices) {
      if (d.attr("dns_server").truthy()) {
        server = &d;
        break;
      }
    }
    if (server == nullptr && opts.auto_nominate) {
      for (const auto& d : devices) {
        if (d.is_server() && (server == nullptr || d.name() < server->name())) {
          server = &d;
        }
      }
      if (server == nullptr) {
        for (const auto& d : devices) {
          if (server == nullptr || d.name() < server->name()) server = &d;
        }
      }
    }
    if (server == nullptr) continue;

    const std::string zone = "as" + std::to_string(asn) + "." + opts.domain_suffix;
    g_dns.data().insert_or_assign("zone_" + std::to_string(asn), zone);

    OverlayNode s = g_dns.add_node(server->name());
    s.set("dns_server", true);
    s.set("zone", zone);
    s.set("asn", asn);
    for (const auto& d : devices) {
      if (d.name() == server->name()) continue;
      OverlayNode c = g_dns.add_node(d.name());
      c.set("asn", asn);
      auto e = g_dns.add_edge(c, s);
      e.set("relation", std::string("resolves_via"));
    }
  }
  return g_dns;
}

std::vector<DnsRecord> dns_zone_records(const anm::AbstractNetworkModel& anm,
                                        std::int64_t asn) {
  std::vector<DnsRecord> records;
  if (!anm.has_overlay("ip")) return records;
  OverlayGraph g_ip = anm["ip"];
  for (const auto& n : g_ip.nodes()) {
    if (n.asn() != asn || n.attr("collision_domain").truthy()) continue;
    if (const auto* lo = n.attr("loopback").as_string()) {
      // Strip the /32 suffix: zone records carry bare addresses.
      std::string addr = *lo;
      if (auto slash = addr.find('/'); slash != std::string::npos) {
        addr.resize(slash);
      }
      records.push_back({n.name(), addr});
    } else {
      // Servers have no loopback; use their first interface address.
      for (const auto& e : n.edges()) {
        if (const auto* ip = e.attr("ip").as_string()) {
          std::string addr = *ip;
          if (auto slash = addr.find('/'); slash != std::string::npos) {
            addr.resize(slash);
          }
          records.push_back({n.name(), addr});
          break;
        }
      }
    }
  }
  std::sort(records.begin(), records.end(),
            [](const DnsRecord& a, const DnsRecord& b) { return a.name < b.name; });
  return records;
}

OverlayGraph build_rpki(anm::AbstractNetworkModel& anm, const RpkiOptions& opts) {
  OverlayGraph g_in = anm["input"];
  OverlayGraph g_rpki = anm.add_overlay("rpki", /*directed=*/true);

  for (const auto& n : g_in.nodes()) {
    const auto* role = n.attr("rpki_role").as_string();
    if (role == nullptr) continue;
    if (*role != "ca" && *role != "publication" && *role != "cache") {
      throw std::invalid_argument("build_rpki: unknown rpki_role '" + *role + "'");
    }
    OverlayNode copy = g_rpki.add_node(n.name());
    copy.set("rpki_role", *role);
    copy.set("asn", n.asn());
  }

  for (const auto& e : g_in.edges()) {
    const auto* relation = e.attr("relation").as_string();
    if (relation == nullptr) continue;
    if (!g_rpki.has_node(e.src().name()) || !g_rpki.has_node(e.dst().name())) {
      continue;
    }
    // Input edges are undirected; orient them down the hierarchy from the
    // role pair. `parent` edges point parent->child between CAs.
    auto oriented = g_rpki.add_edge(e.src().name(), e.dst().name());
    oriented.set("relation", *relation);
  }

  // Identify (or validate) the trust anchor: a CA with no incoming
  // `parent` edge.
  std::set<std::string> has_parent;
  for (const auto& e : g_rpki.edges_where("relation", "parent")) {
    has_parent.insert(e.dst().name());
  }
  std::string anchor = opts.trust_anchor;
  for (const auto& n : g_rpki.nodes_where("rpki_role", "ca")) {
    if (!has_parent.contains(n.name())) {
      if (anchor.empty()) anchor = n.name();
      n.set("trust_anchor", n.name() == anchor);
    }
  }
  if (anchor.empty()) {
    throw std::invalid_argument("build_rpki: no trust-anchor CA found");
  }
  g_rpki.data().insert_or_assign("trust_anchor", anchor);
  return g_rpki;
}

std::vector<Roa> derive_roas(const anm::AbstractNetworkModel& anm) {
  std::vector<Roa> roas;
  if (!anm.has_overlay("ip")) return roas;
  OverlayGraph g_ip = anm["ip"];

  std::string anchor;
  std::map<std::int64_t, std::string> ca_by_as;
  if (anm.has_overlay("rpki")) {
    OverlayGraph g_rpki = anm["rpki"];
    if (const auto* a = graph::attr_or_unset(g_rpki.data(), "trust_anchor").as_string()) {
      anchor = *a;
    }
    for (const auto& ca : g_rpki.nodes_where("rpki_role", "ca")) {
      ca_by_as.emplace(ca.asn(), ca.name());
    }
  }

  for (const auto& [key, value] : g_ip.data()) {
    constexpr std::string_view kPrefix = "infra_block_";
    if (!key.starts_with(kPrefix)) continue;
    std::int64_t asn = std::stoll(key.substr(kPrefix.size()));
    if (asn == 0) continue;  // shared inter-AS range has no single origin
    auto it = ca_by_as.find(asn);
    roas.push_back(Roa{value.to_string(), asn,
                       it != ca_by_as.end() ? it->second : anchor});
  }
  std::sort(roas.begin(), roas.end(),
            [](const Roa& a, const Roa& b) { return a.asn < b.asn; });
  return roas;
}

}  // namespace autonet::design

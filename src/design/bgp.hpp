// BGP design rules (paper Eqs. 2-3 and §7.1):
//   E_ibgp = {(i,j) in N x N | asn(i) == asn(j)}        (full mesh)
//   E_ebgp = {(i,j) in E_in  | asn(i) != asn(j)}
// plus the two route-reflector hierarchy constructions: attribute-based
// (`rr` flag on nodes) and algorithmic (most-central routers per AS).
#pragma once

#include <cstddef>

#include "anm/anm.hpp"

namespace autonet::design {

/// Builds the directed 'ebgp' overlay (Eq. 3): bidirectional sessions on
/// physical inter-AS links between routers.
anm::OverlayGraph build_ebgp(anm::AbstractNetworkModel& anm);

/// Builds the directed 'ibgp' overlay as a full mesh per AS (Eq. 2).
/// Session counts grow O(n^2) per AS — see build_ibgp_route_reflectors.
anm::OverlayGraph build_ibgp_full_mesh(anm::AbstractNetworkModel& anm);

/// Builds the directed 'ibgp' overlay as a route-reflector hierarchy from
/// node attributes (§7.1): nodes with `rr == true` peer in a full mesh;
/// each client peers with the reflectors of its AS (all of them, or the
/// one named by its `rr_cluster` attribute when present). Session edges
/// from a reflector to a client carry `rr_client = true`.
anm::OverlayGraph build_ibgp_route_reflectors(anm::AbstractNetworkModel& anm);

struct RrSelectOptions {
  /// Reflectors chosen per AS (clamped to the AS size).
  std::size_t per_as = 2;
  /// "degree", "betweenness" or "closeness".
  std::string metric = "degree";
  /// ASes with at most this many routers skip reflection (mesh is fine).
  std::size_t min_as_size = 4;
};

/// The §7.1 algorithmic designation: runs a centrality algorithm on each
/// AS's physical subgraph and marks the most central routers with
/// `rr = true` on the phy overlay. Returns the number marked.
std::size_t select_route_reflectors(anm::AbstractNetworkModel& anm,
                                    const RrSelectOptions& opts = {});

/// Total sessions in an overlay counting each directed pair once
/// (the number the §7.1 scalability argument is about).
[[nodiscard]] std::size_t session_count(const anm::OverlayGraph& g);

}  // namespace autonet::design

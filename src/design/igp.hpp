// IGP design rules (paper §4.2.1, Eq. 1 and §7):
//   E_ospf = {(i,j) in E_in | asn(i) == asn(j)}
// plus OSPF area handling, backbone marking (§5.2.2), and the IS-IS
// extension the paper uses to demonstrate extensibility.
#pragma once

#include <string>

#include "anm/anm.hpp"

namespace autonet::design {

/// Populates the default 'phy' overlay from 'input': copies every node
/// (retaining device_type/asn/platform/host/syntax and any x/y layout
/// hints) and the physical edges. Mirrors the §6.1 walkthrough.
anm::OverlayGraph build_phy(anm::AbstractNetworkModel& anm);

struct OspfOptions {
  std::int64_t default_area = 0;
  std::int64_t default_cost = 1;
  /// Name of the input edge attribute carrying explicit costs.
  std::string cost_attr = "ospf_cost";
  /// Name of the input node attribute carrying explicit areas.
  std::string area_attr = "ospf_area";
};

/// Builds the 'ospf' overlay over routers using Eq. 1, copying costs and
/// areas from the input attributes (defaulting otherwise), and marks
/// nodes with an area-0 adjacency as backbone routers (§5.2.2 example).
anm::OverlayGraph build_ospf(anm::AbstractNetworkModel& anm,
                             const OspfOptions& opts = {});

struct IsisOptions {
  std::int64_t default_metric = 10;
  std::string metric_attr = "isis_metric";
  /// IS-IS area in NET format is derived from the ASN: 49.<asn, 4 digits>.
  std::string net_prefix = "49";
};

/// The §7 extensibility example: "adding IS-IS requires ... 2 lines of
/// design code". The rule is the same edge algebra as OSPF; the overlay
/// carries metric and level attributes and per-node NET addresses are
/// assigned by the compiler.
anm::OverlayGraph build_isis(anm::AbstractNetworkModel& anm,
                             const IsisOptions& opts = {});

}  // namespace autonet::design

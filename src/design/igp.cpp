#include "design/igp.hpp"

namespace autonet::design {

using anm::OverlayEdge;
using anm::OverlayGraph;
using anm::OverlayNode;

OverlayGraph build_phy(anm::AbstractNetworkModel& anm) {
  OverlayGraph g_in = anm["input"];
  OverlayGraph g_phy = anm["phy"];
  // Copy every user attribute (internal "_"-prefixed bookkeeping stays in
  // the input layer) so later design rules can select on any annotation.
  for (const auto& n : g_in.nodes()) {
    auto copy = g_phy.add_node(n.name());
    for (const auto& [key, value] : g_in.unwrap().node_attrs(n.id())) {
      if (!key.starts_with("_")) copy.set(key, value);
    }
  }
  // Only explicitly non-physical edges (service relationships etc.) are
  // excluded; untyped edges default to physical.
  for (const auto& e : g_in.edges([](const OverlayEdge& e) {
         const auto& type = e.attr("type");
         return !type.is_set() || type == graph::AttrValue("physical");
       })) {
    auto copy = g_phy.add_edge(e.src().name(), e.dst().name());
    for (const auto& [key, value] : g_in.unwrap().edge_attrs(e.id())) {
      if (!key.starts_with("_")) copy.set(key, value);
    }
  }
  return g_phy;
}

OverlayGraph build_ospf(anm::AbstractNetworkModel& anm, const OspfOptions& opts) {
  OverlayGraph g_phy = anm["phy"];
  OverlayGraph g_ospf = anm.add_overlay("ospf", g_phy.routers(), false, {"asn"});

  // Area comes from the input node attribute when present.
  anm::copy_attr_from(g_phy, g_ospf, opts.area_attr, "area");
  for (const auto& n : g_ospf.nodes()) {
    if (!n.attr("area").is_set()) n.set("area", opts.default_area);
  }

  // Eq. 1: keep physical edges internal to one AS.
  auto intra = g_phy.edges([](const OverlayEdge& e) {
    return e.src().asn() == e.dst().asn() && e.src().is_router() &&
           e.dst().is_router();
  });
  auto added = g_ospf.add_edges_from(intra, {opts.cost_attr});
  for (const auto& e : added) {
    if (!e.attr(opts.cost_attr).is_set()) e.set(opts.cost_attr, opts.default_cost);
    // An adjacency's area is the lower of its endpoints' areas; backbone
    // (area 0) wins on inter-area links, matching common ABR practice.
    auto a1 = e.src().attr("area").as_int().value_or(opts.default_area);
    auto a2 = e.dst().attr("area").as_int().value_or(opts.default_area);
    e.set("area", std::min(a1, a2));
  }

  // §5.2.2: mark backbone routers (any adjacency in area 0).
  for (const auto& node : g_ospf.nodes()) {
    for (const auto& e : node.edges()) {
      if (e.attr("area") == graph::AttrValue(std::int64_t{0})) {
        node.set("backbone", true);
        break;
      }
    }
  }
  return g_ospf;
}

OverlayGraph build_isis(anm::AbstractNetworkModel& anm, const IsisOptions& opts) {
  OverlayGraph g_phy = anm["phy"];
  // The two design lines of §7: same-AS physical edges over routers.
  OverlayGraph g_isis = anm.add_overlay("isis", g_phy.routers(), false, {"asn"});
  auto added = g_isis.add_edges_from(
      g_phy.edges([](const OverlayEdge& e) {
        return e.src().asn() == e.dst().asn() && e.src().is_router() &&
               e.dst().is_router();
      }),
      {opts.metric_attr});
  for (const auto& e : added) {
    if (!e.attr(opts.metric_attr).is_set()) {
      e.set(opts.metric_attr, opts.default_metric);
    }
  }
  for (const auto& n : g_isis.nodes()) {
    n.set("level", std::string("level-2"));
    char area[16];
    std::snprintf(area, sizeof area, "%s.%04lld", opts.net_prefix.c_str(),
                  static_cast<long long>(n.asn()));
    n.set("isis_area", std::string(area));
  }
  return g_isis;
}

}  // namespace autonet::design

// IP addressing design (paper §5.3): builds the 'ip' overlay whose nodes
// are the devices plus one collision-domain node per layer-2 segment
// (point-to-point links are split(); switch clusters are aggregate()d),
// then automatically allocates loopback and infrastructure addresses in
// two distinct blocks, per AS, guaranteeing uniqueness and consistency.
#pragma once

#include <string>

#include "addressing/allocator.hpp"
#include "anm/anm.hpp"

namespace autonet::design {

struct IpOptions {
  /// Block carved into per-AS ranges for link subnets.
  std::string infra_block = "192.168.0.0/16";
  /// Block carved into per-AS ranges for router loopbacks (/32 each).
  std::string loopback_block = "10.0.0.0/16";
  /// Also allocate IPv6 (dual stack) when true.
  bool ipv6 = false;
  std::string ipv6_infra_block = "2001:db8::/32";
  std::string ipv6_loopback_block = "2001:db8:ffff::/48";
};

/// Builds and allocates the 'ip' overlay:
///  - collision-domain nodes carry `collision_domain=true` and `subnet`
///  - device->cd edges carry `ip` (and `ip6` when dual stack)
///  - router nodes carry `loopback`
///  - per-AS blocks are recorded in overlay data as
///    `infra_block_<asn>` / `loopback_block_<asn>` (paper §5.2.1)
/// Inter-AS collision domains are allocated from the reserved `_asn 0`
/// range. Throws addressing::AllocationError when a block is exhausted.
anm::OverlayGraph build_ip(anm::AbstractNetworkModel& anm, const IpOptions& opts = {});

/// Convenience lookups used by compilers and measurement: the loopback of
/// a device in the ip overlay ("" if absent).
[[nodiscard]] std::string loopback_of(const anm::AbstractNetworkModel& anm,
                                      std::string_view device);

}  // namespace autonet::design

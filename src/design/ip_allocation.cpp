#include "design/ip_allocation.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "graph/transforms.hpp"

namespace autonet::design {

using addressing::HostAllocator;
using addressing::Ipv4Prefix;
using addressing::SubnetAllocator;
using anm::OverlayGraph;
using anm::OverlayNode;

namespace {

/// Prefix length that fits `hosts` usable addresses (+ network/broadcast).
unsigned subnet_length_for(std::size_t hosts) {
  std::size_t need = hosts + 2;
  unsigned bits = 1;
  while ((std::size_t{1} << bits) < need) ++bits;
  return 32 - bits;
}

/// Smallest power-of-two-aligned block length holding `count` children of
/// length `child_len`.
unsigned block_length_for(std::size_t count, unsigned child_len) {
  unsigned bits = 0;
  while ((std::size_t{1} << bits) < count) ++bits;
  return child_len >= bits ? child_len - bits : 0;
}

}  // namespace

OverlayGraph build_ip(anm::AbstractNetworkModel& anm, const IpOptions& opts) {
  auto infra_block = Ipv4Prefix::parse(opts.infra_block);
  auto loopback_block = Ipv4Prefix::parse(opts.loopback_block);
  if (!infra_block || !loopback_block) {
    throw std::invalid_argument("build_ip: malformed block prefix");
  }

  OverlayGraph g_phy = anm["phy"];
  OverlayGraph g_ip = anm.add_overlay("ip");
  // Devices that terminate layer 3: routers and servers.
  for (const auto& n : g_phy.nodes()) {
    if (n.is_router() || n.is_server() || n.is_switch()) {
      auto copy = g_ip.add_node(n.name());
      copy.set("asn", n.asn());
      copy.set("device_type", n.device_type());
    }
  }
  g_ip.add_edges_from(g_phy.edges());

  graph::Graph& g = g_ip.unwrap();

  // Aggregate each switch cluster into a single collision domain
  // (paper §5.2.4), then split remaining point-to-point links.
  std::size_t sw_index = 0;
  while (true) {
    // Find a still-present switch and collect its connected switch group.
    graph::NodeId seed = graph::kInvalidNode;
    for (graph::NodeId n : g.nodes()) {
      if (g_ip.node(n).is_switch()) {
        seed = n;
        break;
      }
    }
    if (seed == graph::kInvalidNode) break;
    std::vector<graph::NodeId> cluster{seed};
    std::set<graph::NodeId> seen{seed};
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      for (graph::NodeId m : g.neighbors(cluster[i])) {
        if (g_ip.node(m).is_switch() && seen.insert(m).second) cluster.push_back(m);
      }
    }
    graph::NodeId cd =
        graph::aggregate_nodes(g, cluster, "cd_sw" + std::to_string(sw_index++));
    g.set_node_attr(cd, "collision_domain", true);
  }

  std::vector<graph::EdgeId> p2p;
  for (graph::EdgeId e : g.edges()) {
    bool src_cd = g.node_attr(g.edge_src(e), "collision_domain").truthy();
    bool dst_cd = g.node_attr(g.edge_dst(e), "collision_domain").truthy();
    if (!src_cd && !dst_cd) p2p.push_back(e);
  }
  for (graph::NodeId cd : graph::split_edges(g, p2p)) {
    g.set_node_attr(cd, "collision_domain", true);
  }

  // Group collision domains and routers by AS. A collision domain joins
  // an AS when all attached devices share it; otherwise it is inter-AS
  // (bucket 0, allocated from a shared range).
  std::map<std::int64_t, std::vector<graph::NodeId>> cds_by_as;
  std::map<std::int64_t, std::vector<graph::NodeId>> routers_by_as;
  for (graph::NodeId n : g.nodes()) {
    OverlayNode node = g_ip.node(n);
    if (node.attr("collision_domain").truthy()) {
      std::set<std::int64_t> asns;
      for (graph::NodeId m : g.neighbors(n)) asns.insert(g_ip.node(m).asn());
      cds_by_as[asns.size() == 1 ? *asns.begin() : 0].push_back(n);
    } else if (node.is_router()) {
      routers_by_as[node.asn()].push_back(n);
    }
  }

  // --- IPv4 infrastructure ---
  SubnetAllocator infra_alloc(*infra_block);
  for (const auto& [asn, cds] : cds_by_as) {
    // Worst-case per-AS need: a /30-sized child per point-to-point domain
    // is the common case; switch domains may need more, so size the AS
    // block from the actual lengths.
    std::size_t addresses = 0;
    std::vector<std::pair<graph::NodeId, unsigned>> lengths;
    lengths.reserve(cds.size());
    for (graph::NodeId cd : cds) {
      unsigned len = subnet_length_for(g.degree(cd));
      lengths.emplace_back(cd, len);
      addresses += std::size_t{1} << (32 - len);
    }
    unsigned bits = 2;  // x2 headroom absorbs alignment padding
    while ((std::size_t{1} << bits) < addresses * 2) ++bits;
    Ipv4Prefix as_block = infra_alloc.allocate(std::min(32 - bits, 30u));
    g_ip.data().insert_or_assign("infra_block_" + std::to_string(asn),
                                 as_block.to_string());
    SubnetAllocator as_alloc(as_block);
    for (auto& [cd, len] : lengths) {
      Ipv4Prefix subnet = as_alloc.allocate(len);
      g.set_node_attr(cd, "subnet", subnet.to_string());
      HostAllocator hosts(subnet);
      // Deterministic order: attached devices sorted by name.
      std::vector<graph::NodeId> attached = g.neighbors(cd);
      std::sort(attached.begin(), attached.end(), [&g](auto a, auto b) {
        return g.node_name(a) < g.node_name(b);
      });
      for (graph::NodeId dev : attached) {
        graph::EdgeId e = g.find_edge(cd, dev);
        g.set_edge_attr(e, "ip", hosts.allocate().to_string());
      }
    }
  }

  // --- IPv4 loopbacks (routers only, paper §5.3) ---
  SubnetAllocator loop_alloc(*loopback_block);
  for (const auto& [asn, routers] : routers_by_as) {
    unsigned as_len = block_length_for(std::max<std::size_t>(routers.size(), 1), 32);
    Ipv4Prefix as_block = loop_alloc.allocate(as_len);
    g_ip.data().insert_or_assign("loopback_block_" + std::to_string(asn),
                                 as_block.to_string());
    SubnetAllocator as_alloc(as_block);
    std::vector<graph::NodeId> ordered = routers;
    std::sort(ordered.begin(), ordered.end(), [&g](auto a, auto b) {
      return g.node_name(a) < g.node_name(b);
    });
    for (graph::NodeId r : ordered) {
      g.set_node_attr(r, "loopback", as_alloc.allocate(32).to_string());
    }
  }

  // --- Optional IPv6 (mirrors the IPv4 structure) ---
  if (opts.ipv6) {
    auto infra6 = addressing::Ipv6Prefix::parse(opts.ipv6_infra_block);
    auto loop6 = addressing::Ipv6Prefix::parse(opts.ipv6_loopback_block);
    if (!infra6 || !loop6) throw std::invalid_argument("build_ip: malformed IPv6 block");
    addressing::SubnetAllocator6 infra_alloc6(*infra6, 64);
    for (const auto& [asn, cds] : cds_by_as) {
      (void)asn;
      for (graph::NodeId cd : cds) {
        auto subnet = infra_alloc6.allocate();
        g.set_node_attr(cd, "subnet6", subnet.to_string());
        std::vector<graph::NodeId> attached = g.neighbors(cd);
        std::sort(attached.begin(), attached.end(), [&g](auto a, auto b) {
          return g.node_name(a) < g.node_name(b);
        });
        std::uint64_t host = 1;
        for (graph::NodeId dev : attached) {
          graph::EdgeId e = g.find_edge(cd, dev);
          g.set_edge_attr(e, "ip6", subnet.nth(host++).to_string() + "/64");
        }
      }
    }
    addressing::SubnetAllocator6 loop_alloc6(*loop6, 128);
    for (const auto& [asn, routers] : routers_by_as) {
      (void)asn;
      std::vector<graph::NodeId> ordered = routers;
      std::sort(ordered.begin(), ordered.end(), [&g](auto a, auto b) {
        return g.node_name(a) < g.node_name(b);
      });
      for (graph::NodeId r : ordered) {
        g.set_node_attr(r, "loopback6", loop_alloc6.allocate().to_string());
      }
    }
  }
  return g_ip;
}

std::string loopback_of(const anm::AbstractNetworkModel& anm,
                        std::string_view device) {
  if (!anm.has_overlay("ip")) return "";
  auto node = anm["ip"].node(device);
  if (!node) return "";
  const auto* lo = node->attr("loopback").as_string();
  return lo ? *lo : "";
}

}  // namespace autonet::design

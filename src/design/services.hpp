// Service overlays (paper §3.3): DNS and RPKI. Services are just more
// overlay graphs — nodes offering or consuming a service, edges the
// service relationships — compiled through the same pipeline as routing.
#pragma once

#include <string>
#include <vector>

#include "anm/anm.hpp"

namespace autonet::design {

struct DnsOptions {
  /// Zone suffix; per-AS zones are "as<asn>.<suffix>".
  std::string domain_suffix = "lab";
  /// When an AS has no node marked `dns_server`, nominate one: an
  /// existing server if present, else the lowest-named router.
  bool auto_nominate = true;
};

/// Builds the directed 'dns' overlay: client -> server edges within each
/// AS, server nodes marked `dns_server=true` and labelled with their
/// zone. Requires the 'ip' overlay (zone data maps names to loopbacks).
/// Per-AS zone names are recorded in overlay data as `zone_<asn>`.
anm::OverlayGraph build_dns(anm::AbstractNetworkModel& anm,
                            const DnsOptions& opts = {});

/// One forward record of a DNS zone.
struct DnsRecord {
  std::string name;
  std::string address;  // loopback (routers) or interface address
};

/// Zone contents for one AS, derived from the ip overlay allocations
/// ("configuration has to be consistent with the name and IP address
/// allocations in the network").
[[nodiscard]] std::vector<DnsRecord> dns_zone_records(
    const anm::AbstractNetworkModel& anm, std::int64_t asn);

struct RpkiOptions {
  /// Name of the trust-anchor CA node; auto-detected (the CA with no
  /// parent) when empty.
  std::string trust_anchor;
};

/// Builds the directed 'rpki' overlay from input nodes labelled with
/// `rpki_role` in {"ca","publication","cache"} and labelled edges with
/// `relation` in {"parent","publishes_to","feeds"} (paper §3.3: "this
/// graph holds the CA services and uses labelled edges to express the
/// relationships between the servers"). Edges point down the hierarchy:
/// parent CA -> child CA, CA -> publication point, publication -> cache,
/// cache -> router.
anm::OverlayGraph build_rpki(anm::AbstractNetworkModel& anm,
                             const RpkiOptions& opts = {});

/// A Route Origin Authorisation: this ASN may originate this prefix.
struct Roa {
  std::string prefix;
  std::int64_t asn = 0;
  std::string issuing_ca;
};

/// Derives the ROA set from the ip overlay's per-AS infrastructure
/// blocks, issued by each AS's nearest CA in the rpki overlay (falling
/// back to the trust anchor).
[[nodiscard]] std::vector<Roa> derive_roas(const anm::AbstractNetworkModel& anm);

}  // namespace autonet::design

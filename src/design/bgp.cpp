#include "design/bgp.hpp"

#include <map>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/transforms.hpp"

namespace autonet::design {

using anm::OverlayEdge;
using anm::OverlayGraph;
using anm::OverlayNode;

OverlayGraph build_ebgp(anm::AbstractNetworkModel& anm) {
  OverlayGraph g_phy = anm["phy"];
  OverlayGraph g_ebgp = anm.add_overlay("ebgp", g_phy.routers(), true, {"asn"});
  // Eq. 3, bidirected: a session in each direction per inter-AS link.
  // Policy attributes ride along (§7.3: "the routing policy can be stored
  // as a string attribute on the edge"): `local_pref` on an input link
  // makes both endpoints prefer routes received over it.
  g_ebgp.add_edges_from(
      g_phy.edges([](const OverlayEdge& e) {
        return e.src().asn() != e.dst().asn() && e.src().is_router() &&
               e.dst().is_router();
      }),
      {"local_pref", "med"}, /*bidirected=*/true);
  return g_ebgp;
}

OverlayGraph build_ibgp_full_mesh(anm::AbstractNetworkModel& anm) {
  OverlayGraph g_phy = anm["phy"];
  auto rtrs = g_phy.routers();
  OverlayGraph g_ibgp = anm.add_overlay("ibgp", rtrs, true, {"asn"});
  g_ibgp.data()["ibgp_mode"] = "mesh";
  // Eq. 2: (s, t) for every ordered same-AS router pair.
  for (const auto& s : rtrs) {
    for (const auto& t : rtrs) {
      if (s.name() != t.name() && s.asn() == t.asn()) {
        g_ibgp.add_edge(s.name(), t.name());
      }
    }
  }
  return g_ibgp;
}

OverlayGraph build_ibgp_route_reflectors(anm::AbstractNetworkModel& anm) {
  OverlayGraph g_phy = anm["phy"];
  auto rtrs = g_phy.routers();
  OverlayGraph g_ibgp =
      anm.add_overlay("ibgp", rtrs, true, {"asn", "rr", "rr_cluster"});
  g_ibgp.data()["ibgp_mode"] = "rr";

  std::map<std::int64_t, std::vector<OverlayNode>> reflectors;
  std::map<std::int64_t, std::vector<OverlayNode>> clients;
  for (const auto& n : g_ibgp.nodes()) {
    if (n.attr("rr").truthy()) reflectors[n.asn()].push_back(n);
    else clients[n.asn()].push_back(n);
  }

  for (const auto& [asn, rrs] : reflectors) {
    // (rr, rr) full mesh within the AS.
    for (const auto& a : rrs) {
      for (const auto& b : rrs) {
        if (a.name() != b.name()) g_ibgp.add_edge(a.name(), b.name());
      }
    }
  }
  for (auto& [asn, members] : clients) {
    auto rit = reflectors.find(asn);
    if (rit == reflectors.end()) {
      // No reflectors in this AS: fall back to a client full mesh so the
      // AS still has complete iBGP reachability.
      for (const auto& a : members) {
        for (const auto& b : members) {
          if (a.name() != b.name()) g_ibgp.add_edge(a.name(), b.name());
        }
      }
      continue;
    }
    for (const auto& c : members) {
      const auto* cluster = c.attr("rr_cluster").as_string();
      for (const auto& rr : rit->second) {
        if (cluster != nullptr && !cluster->empty() && *cluster != rr.name()) {
          continue;  // pinned to a specific reflector
        }
        auto down = g_ibgp.add_edge(rr.name(), c.name());
        down.set("rr_client", true);
        g_ibgp.add_edge(c.name(), rr.name());
      }
    }
  }
  return g_ibgp;
}

std::size_t select_route_reflectors(anm::AbstractNetworkModel& anm,
                                    const RrSelectOptions& opts) {
  OverlayGraph g_phy = anm["phy"];
  std::size_t marked = 0;

  // Per-AS subgraph of the physical topology, then centrality over it.
  auto groups = graph::group_by(g_phy.unwrap(), "asn");
  for (const auto& [asn_value, members] : groups) {
    if (!asn_value.is_set()) continue;
    std::vector<graph::NodeId> as_routers;
    for (graph::NodeId n : members) {
      if (g_phy.node(n).is_router()) as_routers.push_back(n);
    }
    if (as_routers.size() <= opts.min_as_size) continue;

    graph::Graph sub(false, "asn_subgraph");
    for (graph::NodeId n : as_routers) sub.add_node(g_phy.unwrap().node_name(n));
    for (graph::NodeId n : as_routers) {
      for (graph::EdgeId e : g_phy.unwrap().out_edges(n)) {
        graph::NodeId m = g_phy.unwrap().edge_other(e, n);
        graph::NodeId su = sub.find_node(g_phy.unwrap().node_name(n));
        graph::NodeId sv = sub.find_node(g_phy.unwrap().node_name(m));
        if (sv != graph::kInvalidNode && su < sv &&
            sub.find_edge(su, sv) == graph::kInvalidEdge) {
          sub.add_edge(su, sv);
        }
      }
    }

    std::map<graph::NodeId, double> centrality;
    if (opts.metric == "betweenness") centrality = graph::betweenness_centrality(sub);
    else if (opts.metric == "closeness") centrality = graph::closeness_centrality(sub);
    else if (opts.metric == "degree") centrality = graph::degree_centrality(sub);
    else throw std::invalid_argument("unknown centrality metric '" + opts.metric + "'");

    for (graph::NodeId top : graph::top_k_central(sub, centrality, opts.per_as)) {
      g_phy.node(sub.node_name(top))->set("rr", true);
      ++marked;
    }
  }
  return marked;
}

std::size_t session_count(const OverlayGraph& g) {
  // Directed overlays hold one edge per direction; a session is a pair.
  return g.directed() ? g.edge_count() / 2 : g.edge_count();
}

}  // namespace autonet::design

// Hop-by-hop packet forwarding over the converged FIBs. traceroute
// reports, per TTL, the address the probe's ICMP reply comes from — the
// *incoming* interface of each transit router, exactly as the real Linux
// traceroute binary the paper runs would see.
#include <stdexcept>

#include "emulation/network.hpp"

namespace autonet::emulation {

using addressing::Ipv4Addr;

TracerouteResult EmulatedNetwork::traceroute(std::string_view src_router,
                                             Ipv4Addr dst, int max_ttl) const {
  const VirtualRouter* src = router(src_router);
  if (src == nullptr) {
    throw std::invalid_argument("traceroute: unknown router " +
                                std::string(src_router));
  }
  if (!started_) {
    throw std::logic_error("traceroute: network not started");
  }

  // A failed router neither sources probes nor answers them.
  auto is_down = [this](const VirtualRouter* r) {
    auto it = by_name_.find(r->name());
    return it != by_name_.end() && router_failed(it->second);
  };

  TracerouteResult result;
  const VirtualRouter* current = src;
  double rtt = 0.0;
  if (is_down(current)) return result;
  if (current->owns_address(dst)) {
    result.hops.push_back({dst, current->name(), 0.1});
    result.reached = true;
    return result;
  }
  for (int ttl = 0; ttl < max_ttl; ++ttl) {
    const FibEntry* route = current->lookup(dst);
    if (route == nullptr) return result;  // !N — network unreachable
    rtt += 0.1;
    const VirtualRouter* next = nullptr;
    if (!route->next_hop) {
      // On-link: deliver if some router owns dst on that subnet.
      auto owner = owner_of(dst);
      if (!owner) return result;
      next = router(*owner);
    } else {
      auto owner = owner_of(*route->next_hop);
      if (!owner) return result;
      next = router(*owner);
    }
    if (is_down(next)) return result;  // dead node: probe goes unanswered
    if (next->owns_address(dst)) {
      // Destination hop: the reply comes from the probed address itself.
      result.hops.push_back({dst, next->name(), rtt});
      result.reached = true;
      return result;
    }
    // Transit hop: the reply source is the address the packet arrived
    // on — the next hop's interface address on the shared segment.
    result.hops.push_back({route->next_hop ? *route->next_hop : dst,
                           next->name(), rtt});
    current = next;
  }
  return result;  // TTL exceeded (forwarding loop)
}

TracerouteResult EmulatedNetwork::traceroute(std::string_view src_router,
                                             std::string_view dst_router,
                                             int max_ttl) const {
  const VirtualRouter* dst = router(dst_router);
  if (dst == nullptr) {
    throw std::invalid_argument("traceroute: unknown router " +
                                std::string(dst_router));
  }
  Ipv4Addr target;
  if (dst->config().loopback) {
    target = dst->config().loopback->address;
  } else if (!dst->config().interfaces.empty()) {
    target = dst->config().interfaces[0].address.address;
  } else {
    throw std::invalid_argument("traceroute: " + std::string(dst_router) +
                                " has no addresses");
  }
  return traceroute(src_router, target, max_ttl);
}

bool EmulatedNetwork::ping(std::string_view src_router, Ipv4Addr dst) const {
  return traceroute(src_router, dst).reached;
}

}  // namespace autonet::emulation

#include "emulation/router.hpp"

#include <algorithm>

namespace autonet::emulation {

using addressing::Ipv4Addr;
using addressing::Ipv4Prefix;

std::string BgpRoute::fingerprint() const {
  std::string out = prefix.to_string() + "|";
  for (auto as : as_path) out += std::to_string(as) + ",";
  out += "|" + next_hop.to_string() + "|" + from_peer.to_string() + "|" +
         std::to_string(local_pref);
  return out;
}

Ipv4Addr VirtualRouter::router_id() const {
  if (config_.router_id) return *config_.router_id;
  if (config_.loopback) return config_.loopback->address;
  Ipv4Addr best;
  for (const auto& iface : config_.interfaces) {
    best = std::max(best, iface.address.address);
  }
  return best;
}

bool VirtualRouter::ospf_covers(const Ipv4Prefix& subnet, std::int64_t* area) const {
  if (!config_.ospf_enabled) return false;
  for (const auto& net : config_.ospf_networks) {
    if (net.network.contains(subnet)) {
      if (area != nullptr) *area = net.area;
      return true;
    }
  }
  return false;
}

bool VirtualRouter::owns_address(Ipv4Addr addr) const {
  if (config_.loopback && config_.loopback->address == addr) return true;
  for (const auto& iface : config_.interfaces) {
    if (iface.address.address == addr) return true;
  }
  return false;
}

const FibEntry* VirtualRouter::lookup(Ipv4Addr dst) const {
  const FibEntry* best = nullptr;
  for (const auto& entry : fib_) {
    if (!entry.prefix.contains(dst)) continue;
    if (best == nullptr) {
      best = &entry;
      continue;
    }
    if (entry.prefix.length() != best->prefix.length()) {
      if (entry.prefix.length() > best->prefix.length()) best = &entry;
      continue;
    }
    const int ad_new = admin_distance(entry.source);
    const int ad_best = admin_distance(best->source);
    if (ad_new != ad_best) {
      if (ad_new < ad_best) best = &entry;
      continue;
    }
    if (entry.metric < best->metric) best = &entry;
  }
  return best;
}

}  // namespace autonet::emulation

// Scripted incident execution (paper §8: "creating tools to emulate
// workflow, or incidents"). An incident timeline is a sequence of
// fail/restore operations on links and nodes; the runner applies each
// step to a running EmulatedNetwork, reconverges the control plane under
// a watchdog budget (bounded rounds/updates, bounded oscillation
// recovery), and records the loopback-reachability delta every step —
// which pairs went dark, which came back.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"
#include "emulation/network.hpp"

namespace autonet::emulation {

enum class IncidentAction { kFailLink, kRestoreLink, kFailNode, kRestoreNode };

[[nodiscard]] const char* to_string(IncidentAction action);

struct IncidentStep {
  IncidentAction action;
  std::string a;  // router for node ops; first endpoint for link ops
  std::string b;  // second endpoint for link ops; empty for node ops
};

class IncidentError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses an incident script: one step per line, `#` comments and blank
/// lines skipped. Verbs: fail_link A B, restore_link A B, fail_node R,
/// restore_node R. Throws IncidentError on unknown verbs or bad arity.
[[nodiscard]] std::vector<IncidentStep> parse_incident_script(
    std::string_view text);

/// Watchdog limits for per-step reconvergence.
struct ConvergenceBudget {
  std::size_t max_rounds = 128;
  /// Abort when a reconvergence processes more updates than this.
  std::size_t max_updates = 1u << 20;
  /// On round exhaustion (or oscillation), rerun with a doubled round
  /// budget this many times before reporting a convergence error.
  int recovery_retries = 1;
};

/// Loopback reachability over the network's routers — computed without
/// the measurement layer so the emulation subsystem stays self-contained.
struct ReachabilitySnapshot {
  std::vector<std::string> routers;
  /// reached[i][j]: router i reaches router j's loopback.
  std::vector<std::vector<bool>> reached;
  [[nodiscard]] std::size_t reachable_pairs() const;
};

struct IncidentStepOutcome {
  IncidentStep step;
  /// False when the step was a no-op (unknown router, non-adjacent pair,
  /// nothing to restore).
  bool applied = false;
  ConvergenceReport convergence;
  /// Reconvergence runs taken (1 = no watchdog recovery needed).
  int convergence_attempts = 0;
  std::size_t pairs_before = 0;
  std::size_t pairs_after = 0;
  /// Ordered "src->dst" pairs that changed state across this step.
  std::vector<std::string> lost;
  std::vector<std::string> regained;
  std::optional<core::Error> error;

  [[nodiscard]] std::string to_string() const;
};

struct IncidentReport {
  /// True when every step applied and reconverged within budget.
  bool ok = true;
  std::size_t baseline_pairs = 0;
  std::vector<IncidentStepOutcome> steps;

  /// Human-readable timeline, one line per step.
  [[nodiscard]] std::string to_string() const;
};

class IncidentRunner {
 public:
  explicit IncidentRunner(EmulatedNetwork& network,
                          ConvergenceBudget budget = {})
      : net_(&network), budget_(budget) {}

  /// Executes the timeline step by step. The network must have been
  /// start()ed already (the baseline snapshot needs converged FIBs).
  IncidentReport run(const std::vector<IncidentStep>& timeline);
  /// Parses `script` (see parse_incident_script) and runs it.
  IncidentReport run_script(std::string_view script);

 private:
  [[nodiscard]] ReachabilitySnapshot snapshot() const;

  EmulatedNetwork* net_;
  ConvergenceBudget budget_;
};

}  // namespace autonet::emulation

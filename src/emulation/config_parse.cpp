#include "emulation/config_parse.hpp"

#include <charconv>
#include <sstream>

namespace autonet::emulation {

using addressing::Ipv4Addr;
using addressing::Ipv4Interface;
using addressing::Ipv4Prefix;

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream in{std::string(line)};
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

std::vector<std::string> lines_of(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < text.size()) lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::int64_t to_int(const std::string& s, const char* what) {
  std::int64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) {
    throw ConfigError(std::string("bad ") + what + " '" + s + "'");
  }
  return v;
}

Ipv4Addr to_addr(const std::string& s, const char* what) {
  auto a = Ipv4Addr::parse(s);
  if (!a) throw ConfigError(std::string("bad ") + what + " '" + s + "'");
  return *a;
}

unsigned mask_to_len(Ipv4Addr mask) {
  std::uint32_t m = mask.value();
  unsigned len = 0;
  while (len < 32 && (m & 0x80000000u)) {
    m <<= 1;
    ++len;
  }
  if (m != 0) throw ConfigError("non-contiguous netmask");
  return len;
}

void apply_ospf_costs(RouterConfig& cfg) {
  for (const auto& [id, cost] : cfg.ospf_costs) {
    for (auto& iface : cfg.interfaces) {
      if (iface.id == id) iface.ospf_cost = cost;
    }
  }
}

BgpNeighborConfig& neighbor_entry(RouterConfig& cfg, Ipv4Addr addr) {
  for (auto& n : cfg.bgp_neighbors) {
    if (n.neighbor == addr) return n;
  }
  cfg.bgp_neighbors.push_back(BgpNeighborConfig{.neighbor = addr,
                                                .remote_as = 0,
                                                .update_source_loopback = false,
                                                .next_hop_self = false,
                                                .rr_client = false,
                                                .only_local_out = false,
                                                .local_pref_in = 0,
                                                .med_out = -1,
                                                .description = ""});
  return cfg.bgp_neighbors.back();
}

// Shared "router bgp" body parser: Quagga and IOS use the same neighbor
// statement grammar.
void parse_bgp_line(RouterConfig& cfg, const std::vector<std::string>& tokens) {
  if (tokens.size() >= 2 && tokens[0] == "network") {
    // Quagga: "network 10.0.0.0/24"; IOS: "network 10.0.0.0 mask m".
    if (tokens.size() >= 4 && tokens[2] == "mask") {
      cfg.bgp_networks.push_back(Ipv4Prefix(
          to_addr(tokens[1], "network"), mask_to_len(to_addr(tokens[3], "mask"))));
    } else if (auto p = Ipv4Prefix::parse(tokens[1])) {
      cfg.bgp_networks.push_back(*p);
    } else {
      throw ConfigError("bad bgp network statement");
    }
    return;
  }
  if (tokens.size() >= 3 && tokens[0] == "bgp" && tokens[1] == "router-id") {
    cfg.router_id = to_addr(tokens[2], "router-id");
    return;
  }
  if (tokens.size() >= 3 && tokens[0] == "neighbor") {
    Ipv4Addr peer = to_addr(tokens[1], "neighbor");
    BgpNeighborConfig& n = neighbor_entry(cfg, peer);
    const std::string& verb = tokens[2];
    if (verb == "remote-as" && tokens.size() >= 4) {
      n.remote_as = to_int(tokens[3], "remote-as");
    } else if (verb == "update-source") {
      n.update_source_loopback = true;
    } else if (verb == "next-hop-self") {
      n.next_hop_self = true;
    } else if (verb == "route-reflector-client") {
      n.rr_client = true;
    } else if (verb == "route-map" && tokens.size() >= 5 &&
               tokens[3] == "only-local" && tokens[4] == "out") {
      // The reference templates pair this with `ip as-path access-list 1
      // permit ^$`: export only locally originated prefixes.
      n.only_local_out = true;
    } else if (verb == "description") {
      std::string desc;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        if (!desc.empty()) desc += ' ';
        desc += tokens[i];
      }
      n.description = desc;
    }
    return;
  }
}

}  // namespace

const InterfaceConfig* RouterConfig::interface(std::string_view id) const {
  for (const auto& iface : interfaces) {
    if (iface.id == id) return &iface;
  }
  return nullptr;
}

RouterConfig parse_quagga_device(const render::ConfigTree& tree,
                                 const std::string& device_dir,
                                 const std::string& hostname) {
  RouterConfig cfg;
  cfg.hostname = hostname;
  cfg.syntax = "quagga";
  cfg.igp_tiebreak = false;  // Quagga bgpd default (§7.2)

  // Interface addresses come from the .startup ifconfig lines, exactly as
  // Netkit brings them up.
  const std::string* startup = tree.get(device_dir + "/.startup");
  if (startup == nullptr) {
    throw ConfigError("missing .startup for " + device_dir);
  }
  for (const auto& line : lines_of(*startup)) {
    auto tokens = tokenize(line);
    // /sbin/ifconfig eth1 192.168.1.1 netmask 255.255.255.252 up
    if (tokens.size() >= 5 && tokens[0].ends_with("ifconfig") &&
        tokens[3] == "netmask") {
      Ipv4Addr addr = to_addr(tokens[2], "interface address");
      unsigned len = mask_to_len(to_addr(tokens[4], "netmask"));
      if (tokens[1].starts_with("lo")) {
        cfg.loopback = Ipv4Interface{addr, Ipv4Prefix(addr, len)};
      } else {
        cfg.interfaces.push_back(
            InterfaceConfig{tokens[1], Ipv4Interface{addr, Ipv4Prefix(addr, len)}, 1});
      }
    }
  }

  if (const std::string* ospfd = tree.get(device_dir + "/etc/quagga/ospfd.conf")) {
    std::string current_interface;
    for (const auto& line : lines_of(*ospfd)) {
      auto tokens = tokenize(line);
      if (tokens.empty() || tokens[0] == "!") continue;
      if (tokens[0] == "interface" && tokens.size() >= 2) {
        current_interface = tokens[1];
      } else if (tokens.size() >= 4 && tokens[0] == "ip" && tokens[1] == "ospf" &&
                 tokens[2] == "cost") {
        cfg.ospf_costs.emplace_back(current_interface, to_int(tokens[3], "cost"));
      } else if (tokens.size() >= 2 && tokens[0] == "router" && tokens[1] == "ospf") {
        cfg.ospf_enabled = true;
      } else if (tokens.size() >= 3 && tokens[0] == "ospf" &&
                 tokens[1] == "router-id") {
        cfg.router_id = to_addr(tokens[2], "router-id");
      } else if (cfg.ospf_enabled && tokens.size() >= 4 && tokens[0] == "network" &&
                 tokens[2] == "area") {
        auto p = Ipv4Prefix::parse(tokens[1]);
        if (!p) throw ConfigError("bad ospf network " + tokens[1]);
        cfg.ospf_networks.push_back({*p, to_int(tokens[3], "area")});
      }
    }
  }

  if (const std::string* bgpd = tree.get(device_dir + "/etc/quagga/bgpd.conf")) {
    std::string current_routemap;
    for (const auto& line : lines_of(*bgpd)) {
      auto tokens = tokenize(line);
      if (tokens.empty() || tokens[0] == "!") continue;
      if (tokens.size() >= 3 && tokens[0] == "router" && tokens[1] == "bgp") {
        cfg.bgp_enabled = true;
        cfg.asn = to_int(tokens[2], "asn");
      } else if (tokens.size() >= 2 && tokens[0] == "route-map") {
        current_routemap = tokens[1];
      } else if (tokens.size() >= 3 && tokens[0] == "set" &&
                 tokens[1] == "local-preference" &&
                 current_routemap.starts_with("lp-")) {
        // Template idiom: route-map lp-<neighbor-ip> sets the ingress
        // preference for that neighbor.
        if (auto ip = Ipv4Addr::parse(current_routemap.substr(3))) {
          neighbor_entry(cfg, *ip).local_pref_in = to_int(tokens[2], "local-pref");
        }
      } else if (tokens.size() >= 3 && tokens[0] == "set" && tokens[1] == "metric" &&
                 current_routemap.starts_with("med-")) {
        if (auto ip = Ipv4Addr::parse(current_routemap.substr(4))) {
          neighbor_entry(cfg, *ip).med_out = to_int(tokens[2], "metric");
        }
      } else if (cfg.bgp_enabled) {
        parse_bgp_line(cfg, tokens);
      }
    }
  }

  apply_ospf_costs(cfg);
  return cfg;
}

RouterConfig parse_ios_config(std::string_view text) {
  RouterConfig cfg;
  cfg.syntax = "ios";
  cfg.igp_tiebreak = true;

  enum class Section { kNone, kInterface, kOspf, kBgp, kIsis, kRouteMap };
  Section section = Section::kNone;
  std::string current_interface;
  std::string current_routemap;

  for (const auto& line : lines_of(text)) {
    auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0] == "!") {
      if (!tokens.empty() || line.empty()) section = Section::kNone;
      if (!line.empty() && line[0] == '!') section = Section::kNone;
      continue;
    }
    const bool top_level = line[0] != ' ';
    if (top_level) {
      section = Section::kNone;
      if (tokens[0] == "hostname" && tokens.size() >= 2) {
        cfg.hostname = tokens[1];
      } else if (tokens[0] == "interface" && tokens.size() >= 2) {
        section = Section::kInterface;
        current_interface = tokens[1];
      } else if (tokens[0] == "router" && tokens.size() >= 2) {
        if (tokens[1] == "ospf") {
          section = Section::kOspf;
          cfg.ospf_enabled = true;
        } else if (tokens[1] == "bgp" && tokens.size() >= 3) {
          section = Section::kBgp;
          cfg.bgp_enabled = true;
          cfg.asn = to_int(tokens[2], "asn");
        } else if (tokens[1] == "isis") {
          section = Section::kIsis;
        }
      } else if (tokens[0] == "route-map" && tokens.size() >= 2) {
        section = Section::kRouteMap;
        current_routemap = tokens[1];
      }
      continue;
    }
    switch (section) {
      case Section::kInterface:
        if (tokens.size() >= 4 && tokens[0] == "ip" && tokens[1] == "address") {
          Ipv4Addr addr = to_addr(tokens[2], "interface address");
          unsigned len = mask_to_len(to_addr(tokens[3], "mask"));
          if (current_interface.starts_with("Loopback") ||
              current_interface.starts_with("lo")) {
            cfg.loopback = Ipv4Interface{addr, Ipv4Prefix(addr, len)};
          } else {
            cfg.interfaces.push_back(InterfaceConfig{
                current_interface, Ipv4Interface{addr, Ipv4Prefix(addr, len)}, 1});
          }
        } else if (tokens.size() >= 4 && tokens[0] == "ip" && tokens[1] == "ospf" &&
                   tokens[2] == "cost") {
          cfg.ospf_costs.emplace_back(current_interface, to_int(tokens[3], "cost"));
        }
        break;
      case Section::kOspf:
        if (tokens.size() >= 2 && tokens[0] == "router-id") {
          cfg.router_id = to_addr(tokens[1], "router-id");
        } else if (tokens.size() >= 5 && tokens[0] == "network" &&
                   tokens[3] == "area") {
          Ipv4Addr net = to_addr(tokens[1], "network");
          Ipv4Addr wildcard = to_addr(tokens[2], "wildcard");
          unsigned len = mask_to_len(Ipv4Addr(~wildcard.value()));
          cfg.ospf_networks.push_back(
              {Ipv4Prefix(net, len), to_int(tokens[4], "area")});
        }
        break;
      case Section::kBgp:
        parse_bgp_line(cfg, tokens);
        break;
      case Section::kRouteMap:
        if (tokens.size() >= 3 && tokens[0] == "set" &&
            tokens[1] == "local-preference" && current_routemap.starts_with("lp-")) {
          if (auto ip = Ipv4Addr::parse(current_routemap.substr(3))) {
            neighbor_entry(cfg, *ip).local_pref_in = to_int(tokens[2], "local-pref");
          }
        } else if (tokens.size() >= 3 && tokens[0] == "set" &&
                   tokens[1] == "metric" && current_routemap.starts_with("med-")) {
          if (auto ip = Ipv4Addr::parse(current_routemap.substr(4))) {
            neighbor_entry(cfg, *ip).med_out = to_int(tokens[2], "metric");
          }
        }
        break;
      default:
        break;
    }
  }
  apply_ospf_costs(cfg);
  return cfg;
}

RouterConfig parse_junos_config(std::string_view text) {
  RouterConfig cfg;
  cfg.syntax = "junos";
  cfg.igp_tiebreak = true;

  // A light structural walk: track the brace path and interpret the
  // statements this template set emits.
  std::vector<std::string> path;
  std::string current_interface;
  std::string current_neighbor;
  std::string group_type;
  std::vector<std::string> ospf_interfaces;
  bool ebgp_export_only_local = false;

  auto in_path = [&path](std::initializer_list<std::string_view> want) {
    if (path.size() < want.size()) return false;
    std::size_t i = 0;
    for (auto w : want) {
      if (path[i] != w) return false;
      ++i;
    }
    return true;
  };

  for (const auto& raw : lines_of(text)) {
    auto tokens = tokenize(raw);
    if (tokens.empty()) continue;
    std::string last = tokens.back();
    if (last == "{") {
      tokens.pop_back();
      std::string name;
      for (const auto& t : tokens) name = t;  // last identifier before '{'
      if (in_path({"interfaces"}) && path.size() == 1) current_interface = name;
      if (in_path({"protocols", "bgp"}) && !tokens.empty() && tokens[0] == "group") {
        group_type.clear();
      }
      if (!tokens.empty() && tokens[0] == "neighbor" && tokens.size() >= 2) {
        current_neighbor = tokens[1];
        BgpNeighborConfig& n =
            neighbor_entry(cfg, to_addr(current_neighbor, "neighbor"));
        if (group_type == "internal") {
          n.remote_as = cfg.asn;
          n.update_source_loopback = true;
          n.next_hop_self = true;
        }
      }
      // OSPF interface blocks: protocols { ospf { area X { interface Y.0
      if (path.size() == 3 && path[0] == "protocols" && path[1] == "ospf" &&
          !tokens.empty() && tokens[0] == "interface") {
        std::string iface = name;
        if (auto dot = iface.rfind(".0"); dot != std::string::npos &&
            dot == iface.size() - 2) {
          iface.resize(dot);
        }
        ospf_interfaces.push_back(iface);
      }
      // Path element: the block's name token ("em0", "ospf", "0.0.0.0").
      path.push_back(name);
      continue;
    }
    if (tokens[0] == "}") {
      if (!path.empty()) path.pop_back();
      continue;
    }
    // statement line ending in ';'
    if (!tokens.empty() && tokens.back().ends_with(";")) {
      tokens.back().pop_back();
      if (tokens.back().empty()) tokens.pop_back();
    }
    if (tokens.empty()) continue;

    if (in_path({"system"}) && tokens[0] == "host-name" && tokens.size() >= 2) {
      cfg.hostname = tokens[1];
    } else if (in_path({"interfaces"}) && tokens[0] == "address" && tokens.size() >= 2) {
      auto p = Ipv4Prefix::parse(tokens[1]);
      if (!p) throw ConfigError("bad junos address " + tokens[1]);
      auto addr = Ipv4Addr::parse(tokens[1].substr(0, tokens[1].find('/')));
      Ipv4Interface iface{*addr, *p};
      if (current_interface.starts_with("lo")) {
        cfg.loopback = iface;
      } else {
        cfg.interfaces.push_back(InterfaceConfig{current_interface, iface, 1});
      }
    } else if (in_path({"routing-options"})) {
      if (tokens[0] == "autonomous-system" && tokens.size() >= 2) {
        cfg.asn = to_int(tokens[1], "asn");
      } else if (tokens[0] == "router-id" && tokens.size() >= 2) {
        cfg.router_id = to_addr(tokens[1], "router-id");
      } else if (tokens[0] == "route" && tokens.size() >= 2) {
        // `static { route X discard; }` + the implicit export policy the
        // template pairs with it: originate X into BGP.
        auto p = Ipv4Prefix::parse(tokens[1]);
        if (!p) throw ConfigError("bad junos static route " + tokens[1]);
        cfg.bgp_networks.push_back(*p);
      }
    } else if (in_path({"protocols", "ospf"})) {
      cfg.ospf_enabled = true;
      if (tokens[0] == "metric" && tokens.size() >= 2 && path.size() >= 4) {
        // interface name is the path element: protocols ospf area interface
        std::string iface = path.back();
        if (auto dot = iface.find(".0"); dot != std::string::npos) iface.resize(dot);
        cfg.ospf_costs.emplace_back(iface, to_int(tokens[1], "metric"));
      }
    } else if (in_path({"protocols", "bgp"})) {
      cfg.bgp_enabled = true;
      if (tokens[0] == "type" && tokens.size() >= 2) {
        group_type = tokens[1];
      } else if (tokens[0] == "export" && tokens.size() >= 2 &&
                 tokens[1] == "only-local" && group_type == "external") {
        ebgp_export_only_local = true;
      } else if (tokens[0] == "peer-as" && tokens.size() >= 2 &&
                 !current_neighbor.empty()) {
        neighbor_entry(cfg, to_addr(current_neighbor, "neighbor")).remote_as =
            to_int(tokens[1], "peer-as");
      } else if (tokens[0] == "metric-out" && tokens.size() >= 2 &&
                 !current_neighbor.empty()) {
        neighbor_entry(cfg, to_addr(current_neighbor, "neighbor")).med_out =
            to_int(tokens[1], "metric-out");
      } else if (tokens[0] == "cluster" && !current_neighbor.empty()) {
        neighbor_entry(cfg, to_addr(current_neighbor, "neighbor")).rr_client = true;
      }
    } else if (in_path({"policy-options"}) && path.size() >= 2 &&
               path[1].starts_with("lp-") && tokens.size() >= 2 &&
               tokens[0] == "local-preference") {
      // policy-statement lp-<neighbor-ip> { then { local-preference N; } }
      if (auto ip = Ipv4Addr::parse(path[1].substr(3))) {
        neighbor_entry(cfg, *ip).local_pref_in = to_int(tokens[1], "local-pref");
      }
    }
  }

  // Junos runs OSPF exactly on the interfaces listed under
  // protocols/ospf: their subnets are the OSPF networks.
  if (cfg.ospf_enabled) {
    for (const auto& name : ospf_interfaces) {
      if (const InterfaceConfig* iface = cfg.interface(name)) {
        cfg.ospf_networks.push_back({iface->address.prefix, 0});
      } else if (cfg.loopback && name.starts_with("lo")) {
        cfg.ospf_networks.push_back({cfg.loopback->prefix, 0});
      }
    }
  }
  // Junos internal groups: neighbors with no peer-as are internal.
  for (auto& n : cfg.bgp_neighbors) {
    if (n.remote_as == 0) {
      n.remote_as = cfg.asn;
      n.update_source_loopback = true;
      n.next_hop_self = true;
    } else if (n.remote_as != cfg.asn && ebgp_export_only_local) {
      n.only_local_out = true;
    }
  }
  apply_ospf_costs(cfg);
  return cfg;
}

CbgpNetwork parse_cbgp_script(std::string_view text) {
  CbgpNetwork net;
  auto router_index = [&net](Ipv4Addr id) -> std::size_t {
    for (std::size_t i = 0; i < net.routers.size(); ++i) {
      const auto& r = net.routers[i];
      if (r.loopback && r.loopback->address == id) return i;
    }
    RouterConfig cfg;
    cfg.syntax = "cbgp";
    cfg.igp_tiebreak = true;
    cfg.hostname = id.to_string();
    cfg.loopback = Ipv4Interface{id, Ipv4Prefix(id, 32)};
    cfg.router_id = id;
    net.routers.push_back(std::move(cfg));
    return net.routers.size() - 1;
  };
  auto router_by_id = [&](Ipv4Addr id) -> RouterConfig& {
    return net.routers[router_index(id)];
  };

  // Track the `bgp router` context as an index: later `net add node` /
  // `bgp add router` lines can grow the vector and would invalidate a
  // reference.
  constexpr std::size_t kNoRouter = static_cast<std::size_t>(-1);
  std::size_t current = kNoRouter;
  for (const auto& line : lines_of(text)) {
    auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0].starts_with("#")) continue;
    if (tokens[0] == "net" && tokens.size() >= 4 && tokens[1] == "add" &&
        tokens[2] == "node") {
      router_by_id(to_addr(tokens[3], "node"));
    } else if (tokens[0] == "net" && tokens.size() >= 4 && tokens[1] == "node" &&
               tokens[3] == "domain" && tokens.size() >= 5) {
      router_by_id(to_addr(tokens[2], "node")).igp_domain =
          to_int(tokens[4], "domain");
    } else if (tokens[0] == "net" && tokens.size() >= 5 && tokens[1] == "add" &&
               tokens[2] == "link") {
      net.links.push_back(
          {to_addr(tokens[3], "link"), to_addr(tokens[4], "link"), 1});
    } else if (tokens[0] == "net" && tokens.size() >= 7 && tokens[1] == "link" &&
               tokens[4] == "igp-weight") {
      Ipv4Addr a = to_addr(tokens[2], "link");
      Ipv4Addr b = to_addr(tokens[3], "link");
      std::int64_t w = to_int(tokens.back(), "igp-weight");
      for (auto& l : net.links) {
        if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) l.weight = w;
      }
    } else if (tokens[0] == "bgp" && tokens.size() >= 5 && tokens[1] == "add" &&
               tokens[2] == "router") {
      RouterConfig& r = router_by_id(to_addr(tokens[4], "router"));
      r.bgp_enabled = true;
      r.asn = to_int(tokens[3], "asn");
    } else if (tokens[0] == "bgp" && tokens.size() >= 3 && tokens[1] == "router") {
      current = router_index(to_addr(tokens[2], "router"));
    } else if (current != kNoRouter && tokens[0] == "add" && tokens.size() >= 3 &&
               tokens[1] == "network") {
      auto p = Ipv4Prefix::parse(tokens[2]);
      if (!p) throw ConfigError("bad cbgp network " + tokens[2]);
      net.routers[current].bgp_networks.push_back(*p);
    } else if (current != kNoRouter && tokens[0] == "add" && tokens.size() >= 4 &&
               tokens[1] == "peer") {
      BgpNeighborConfig& n = neighbor_entry(net.routers[current], to_addr(tokens[3], "peer"));
      n.remote_as = to_int(tokens[2], "peer-as");
      if (n.remote_as == net.routers[current].asn) {
        n.update_source_loopback = true;
        n.next_hop_self = true;
      }
    } else if (current != kNoRouter && tokens[0] == "peer" && tokens.size() >= 3 &&
               tokens[2] == "rr-client") {
      neighbor_entry(net.routers[current], to_addr(tokens[1], "peer")).rr_client = true;
    } else if (current != kNoRouter && tokens[0] == "peer" && tokens.size() >= 5 &&
               tokens[2] == "filter" && tokens[3] == "out" &&
               tokens[4] == "path-empty") {
      neighbor_entry(net.routers[current], to_addr(tokens[1], "peer")).only_local_out = true;
    } else if (current != kNoRouter && tokens[0] == "peer" && tokens.size() >= 4 &&
               tokens[2] == "local-pref") {
      neighbor_entry(net.routers[current], to_addr(tokens[1], "peer")).local_pref_in =
          to_int(tokens[3], "local-pref");
    } else if (current != kNoRouter && tokens[0] == "peer" && tokens.size() >= 4 &&
               tokens[2] == "med") {
      neighbor_entry(net.routers[current], to_addr(tokens[1], "peer")).med_out =
          to_int(tokens[3], "med");
    } else if (tokens[0] == "exit") {
      current = kNoRouter;
    }
  }
  return net;
}

}  // namespace autonet::emulation

// The virtual router: configuration plus control-plane state (RIB/FIB,
// BGP Adj-RIB-In and selections). The emulation substitutes for running
// real Quagga/IOS images: it implements the same decision processes —
// including the vendor divergence in the BGP IGP-metric tie-break that
// the paper's §7.2 experiment hinges on.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "emulation/config_parse.hpp"

namespace autonet::emulation {

/// Route source, with conventional administrative distances.
enum class RouteSource { kConnected, kOspf, kEbgp, kIbgp };

[[nodiscard]] constexpr int admin_distance(RouteSource s) {
  switch (s) {
    case RouteSource::kConnected: return 0;
    case RouteSource::kEbgp: return 20;
    case RouteSource::kOspf: return 110;
    case RouteSource::kIbgp: return 200;
  }
  return 255;
}

struct FibEntry {
  addressing::Ipv4Prefix prefix;
  RouteSource source = RouteSource::kConnected;
  std::string out_interface;  // "" for loopback-owned prefixes
  /// Immediate next hop; nullopt when the destination is on-link.
  std::optional<addressing::Ipv4Addr> next_hop;
  double metric = 0;
};

/// A BGP route as held in Adj-RIB-In (attributes after ingress policy).
struct BgpRoute {
  addressing::Ipv4Prefix prefix;
  std::vector<std::int64_t> as_path;
  addressing::Ipv4Addr next_hop;
  std::int64_t local_pref = 100;
  std::int64_t med = 0;
  /// Cisco-style weight; locally originated routes get 32768.
  std::int64_t weight = 0;
  bool ebgp_learned = false;   // session type at *this* router
  bool local_originated = false;
  addressing::Ipv4Addr originator_id;  // original router-id (RR-safe)
  std::vector<addressing::Ipv4Addr> cluster_list;
  addressing::Ipv4Addr from_peer;      // session address it arrived over

  /// Stable identity for oscillation detection.
  [[nodiscard]] std::string fingerprint() const;

  friend bool operator==(const BgpRoute&, const BgpRoute&) = default;
};

class VirtualRouter {
 public:
  explicit VirtualRouter(RouterConfig config) : config_(std::move(config)) {}

  [[nodiscard]] const RouterConfig& config() const { return config_; }
  /// Mutable config access for hot-apply (incremental pipeline): scoped
  /// edits — an interface cost change — take effect on the next start().
  [[nodiscard]] RouterConfig& mutable_config() { return config_; }
  [[nodiscard]] const std::string& name() const { return config_.hostname; }
  /// Renames the router (used when mapping C-BGP address-named nodes back
  /// to device names).
  void rename(std::string hostname) { config_.hostname = std::move(hostname); }
  [[nodiscard]] std::int64_t asn() const { return config_.asn; }

  /// The router id: explicit, else loopback, else highest interface.
  [[nodiscard]] addressing::Ipv4Addr router_id() const;

  /// True when this router's OSPF process covers `subnet` (a network
  /// statement matches it); `area` receives the configured area.
  [[nodiscard]] bool ospf_covers(const addressing::Ipv4Prefix& subnet,
                                 std::int64_t* area = nullptr) const;

  /// Does any local address (interface or loopback) equal `addr`?
  [[nodiscard]] bool owns_address(addressing::Ipv4Addr addr) const;

  // --- FIB --------------------------------------------------------------
  [[nodiscard]] const std::vector<FibEntry>& fib() const { return fib_; }
  std::vector<FibEntry>& mutable_fib() { return fib_; }
  /// Longest-prefix match (ties: lowest admin distance, then metric);
  /// nullptr when no route covers `dst`.
  [[nodiscard]] const FibEntry* lookup(addressing::Ipv4Addr dst) const;

  // --- OSPF state -------------------------------------------------------
  [[nodiscard]] const std::vector<std::string>& ospf_neighbors() const {
    return ospf_neighbors_;
  }
  std::vector<std::string>& mutable_ospf_neighbors() { return ospf_neighbors_; }

  // --- BGP state ----------------------------------------------------------
  /// Adj-RIB-In keyed by (prefix, from_peer): at most one route per
  /// neighbor per prefix.
  using RibInKey = std::pair<std::string, std::uint32_t>;
  [[nodiscard]] std::map<RibInKey, BgpRoute>& rib_in() { return rib_in_; }
  [[nodiscard]] const std::map<RibInKey, BgpRoute>& rib_in() const { return rib_in_; }

  [[nodiscard]] std::map<std::string, BgpRoute>& bgp_best() { return bgp_best_; }
  [[nodiscard]] const std::map<std::string, BgpRoute>& bgp_best() const {
    return bgp_best_;
  }

 private:
  RouterConfig config_;
  std::vector<FibEntry> fib_;
  std::vector<std::string> ospf_neighbors_;
  std::map<RibInKey, BgpRoute> rib_in_;
  std::map<std::string, BgpRoute> bgp_best_;  // key: prefix string
};

}  // namespace autonet::emulation

// Configuration parsers: read the *rendered* device configurations back
// into router models, exactly as the emulation platform's routing daemons
// would. This closes the loop the paper relies on — the emulated network
// runs from the generated configs, so template or compiler errors surface
// as routing errors, not silent skips.
//
// Quagga (zebra/ospfd/bgpd + .startup), IOS (startup-config.cfg) and
// Junos (juniper.conf) flavours are supported; C-BGP's network.cli is
// parsed as a whole-network script.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "addressing/ipv4.hpp"
#include "render/config_tree.hpp"

namespace autonet::emulation {

class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct InterfaceConfig {
  std::string id;
  addressing::Ipv4Interface address;
  std::int64_t ospf_cost = 1;
};

struct OspfNetworkConfig {
  addressing::Ipv4Prefix network;
  std::int64_t area = 0;
};

struct BgpNeighborConfig {
  addressing::Ipv4Addr neighbor;
  std::int64_t remote_as = 0;
  bool update_source_loopback = false;
  bool next_hop_self = false;
  bool rr_client = false;
  /// Outbound "^$" as-path policy: export only locally originated
  /// prefixes (stub/no-transit customers).
  bool only_local_out = false;
  /// Ingress local-preference policy; 0 = provider default (100).
  std::int64_t local_pref_in = 0;
  /// Egress MED attached to routes advertised over this session; -1 =
  /// none (MED 0).
  std::int64_t med_out = -1;
  std::string description;
};

/// Everything a routing daemon learns from one device's configuration.
struct RouterConfig {
  std::string hostname;
  std::string syntax;  // quagga | ios | junos | cbgp
  std::vector<InterfaceConfig> interfaces;
  std::optional<addressing::Ipv4Interface> loopback;

  bool ospf_enabled = false;
  std::optional<addressing::Ipv4Addr> router_id;
  std::vector<OspfNetworkConfig> ospf_networks;
  /// Per-interface costs (by interface id), from `ip ospf cost` lines.
  std::vector<std::pair<std::string, std::int64_t>> ospf_costs;

  bool bgp_enabled = false;
  std::int64_t asn = 0;
  std::vector<addressing::Ipv4Prefix> bgp_networks;
  std::vector<BgpNeighborConfig> bgp_neighbors;

  /// Vendor behaviour: whether the BGP decision process includes the
  /// IGP-metric step (§7.2: true for IOS/Junos/C-BGP, false for Quagga).
  bool igp_tiebreak = true;

  /// IGP domain id (C-BGP `net node X domain N`); -1 when unscoped.
  std::int64_t igp_domain = -1;

  /// Resolves an interface id to its config; nullptr when unknown.
  [[nodiscard]] const InterfaceConfig* interface(std::string_view id) const;
};

/// Parses a Quagga device directory (paths relative to the device folder:
/// ".startup", "etc/quagga/ospfd.conf", "etc/quagga/bgpd.conf").
[[nodiscard]] RouterConfig parse_quagga_device(const render::ConfigTree& tree,
                                               const std::string& device_dir,
                                               const std::string& hostname);

/// Parses an IOS startup-config.
[[nodiscard]] RouterConfig parse_ios_config(std::string_view text);

/// Parses a Junos configuration.
[[nodiscard]] RouterConfig parse_junos_config(std::string_view text);

/// Parses a network-wide C-BGP script into one RouterConfig per node
/// (hostnames are the node addresses) plus explicit links.
struct CbgpLink {
  addressing::Ipv4Addr a;
  addressing::Ipv4Addr b;
  std::int64_t weight = 1;
};
struct CbgpNetwork {
  std::vector<RouterConfig> routers;
  std::vector<CbgpLink> links;
};
[[nodiscard]] CbgpNetwork parse_cbgp_script(std::string_view text);

}  // namespace autonet::emulation

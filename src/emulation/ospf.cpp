// OSPF computation over the emulated network.
//
// Subnet mode (rendered-config networks): full multi-area semantics —
// adjacencies form between routers whose interfaces share a subnet and
// whose OSPF processes cover it *in the same area*; SPF runs per area;
// inter-area routes go through area-0 ABRs (distance = intra-area to the
// ABR + backbone + remote area); intra-area routes are preferred over
// inter-area ones regardless of cost, as OSPF mandates. Inter-AS links,
// which the design rules exclude from OSPF, never form adjacencies.
//
// Explicit-links mode (C-BGP): one weighted SPF per IGP domain.
#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>

#include "emulation/network.hpp"

namespace autonet::emulation {

using addressing::Ipv4Addr;
using addressing::Ipv4Prefix;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Adjacency {
  std::size_t to;
  double cost;
  std::string out_interface;
  Ipv4Addr next_hop;  // peer's interface address on the shared subnet
};

/// Dijkstra over one adjacency map; returns distances and the first
/// adjacency taken from `src` towards each destination.
struct SpfResult {
  std::map<std::size_t, double> dist;
  std::map<std::size_t, const Adjacency*> first_hop;
};

SpfResult spf(std::size_t src,
              const std::map<std::size_t, std::vector<Adjacency>>& adj) {
  SpfResult out;
  out.dist[src] = 0;
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    auto du = out.dist.find(u);
    if (du != out.dist.end() && d > du->second) continue;
    auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (const auto& a : it->second) {
      double nd = d + a.cost;
      auto dv = out.dist.find(a.to);
      if (dv == out.dist.end() || nd < dv->second) {
        out.dist[a.to] = nd;
        out.first_hop[a.to] = u == src ? &a : out.first_hop[u];
        heap.emplace(nd, a.to);
      }
    }
  }
  return out;
}

}  // namespace

void EmulatedNetwork::compute_ospf() {
  const std::size_t n = routers_.size();
  igp_dist_.assign(n, {});
  direct_neighbors_.assign(n, {});

  // ==== Explicit-links (C-BGP) mode =========================================
  if (!explicit_links_.empty()) {
    std::map<std::size_t, std::vector<Adjacency>> adj;
    for (const auto& link : explicit_links_) {
      auto ra = by_address_.find(link.a.value());
      auto rb = by_address_.find(link.b.value());
      if (ra == by_address_.end() || rb == by_address_.end()) continue;
      if (router_failed(ra->second) || router_failed(rb->second)) continue;
      stats_.lsa_floods += 2;  // each end originates a router-LSA update
      direct_neighbors_[ra->second].insert(rb->second);
      direct_neighbors_[rb->second].insert(ra->second);
      const std::int64_t da = routers_[ra->second].config().igp_domain;
      const std::int64_t db = routers_[rb->second].config().igp_domain;
      if (da >= 0 && db >= 0 && da != db) continue;
      adj[ra->second].push_back(
          {rb->second, static_cast<double>(link.weight), "", link.b});
      adj[rb->second].push_back(
          {ra->second, static_cast<double>(link.weight), "", link.a});
    }
    for (std::size_t r = 0; r < n; ++r) {
      auto& neighbors = routers_[r].mutable_ospf_neighbors();
      neighbors.clear();
      if (router_failed(r)) {
        routers_[r].mutable_fib().clear();
        igp_dist_[r].clear();
        continue;
      }
      for (std::size_t m : direct_neighbors_[r]) {
        const std::int64_t da = routers_[r].config().igp_domain;
        const std::int64_t db = routers_[m].config().igp_domain;
        if (da >= 0 && db >= 0 && da != db) continue;
        neighbors.push_back(routers_[m].name());
      }
      std::sort(neighbors.begin(), neighbors.end());

      ++stats_.spf_runs;
      ++stats_.spf_per_router[routers_[r].name()];
      auto result = spf(r, adj);
      auto& fib = routers_[r].mutable_fib();
      fib.clear();
      const RouterConfig& cfg = routers_[r].config();
      if (cfg.loopback) {
        fib.push_back(FibEntry{cfg.loopback->prefix, RouteSource::kConnected, "",
                               std::nullopt, 0});
      }
      igp_dist_[r].clear();
      for (const auto& [d, dist] : result.dist) {
        if (d == r) continue;
        igp_dist_[r][d] = dist;
        const RouterConfig& dc = routers_[d].config();
        if (dc.loopback) {
          const Adjacency* hop = result.first_hop.at(d);
          fib.push_back(FibEntry{dc.loopback->prefix, RouteSource::kOspf, "",
                                 hop->next_hop, dist});
        }
      }
    }
    return;
  }

  // ==== Subnet (rendered-config) mode ======================================
  // Adjacency per area: both ends must cover the shared subnet in the
  // same area.
  std::map<std::int64_t, std::map<std::size_t, std::vector<Adjacency>>> area_adj;
  std::map<std::size_t, std::set<std::int64_t>> router_areas;
  for (const auto& segment : segments_) {
    for (const auto& a : segment.members) {
      std::int64_t area_a = 0;
      if (!routers_[a.router].ospf_covers(segment.subnet, &area_a)) continue;
      router_areas[a.router].insert(area_a);
      const auto& iface_a = routers_[a.router].config().interfaces[a.iface];
      for (const auto& b : segment.members) {
        if (a.router == b.router) continue;
        std::int64_t area_b = 0;
        if (!routers_[b.router].ospf_covers(segment.subnet, &area_b)) continue;
        if (area_a != area_b) continue;  // mismatched areas: no adjacency
        const auto& iface_b = routers_[b.router].config().interfaces[b.iface];
        area_adj[area_a][a.router].push_back(
            {b.router, static_cast<double>(iface_a.ospf_cost), iface_a.id,
             iface_b.address.address});
      }
    }
  }
  // Loopback/stub coverage also places a router in an area.
  for (std::size_t r = 0; r < n; ++r) {
    const RouterConfig& cfg = routers_[r].config();
    if (!cfg.ospf_enabled) continue;
    if (cfg.loopback) {
      std::int64_t area = 0;
      if (routers_[r].ospf_covers(cfg.loopback->prefix, &area)) {
        router_areas[r].insert(area);
      }
    }
  }

  // Record OSPF neighbors (design-vs-running validation, §5.7).
  for (std::size_t r = 0; r < n; ++r) {
    auto& neighbors = routers_[r].mutable_ospf_neighbors();
    neighbors.clear();
    std::set<std::size_t> seen;
    for (const auto& [area, adj] : area_adj) {
      auto it = adj.find(r);
      if (it == adj.end()) continue;
      for (const auto& a : it->second) {
        if (seen.insert(a.to).second) neighbors.push_back(routers_[a.to].name());
      }
    }
    std::sort(neighbors.begin(), neighbors.end());
  }

  // Per-(router, area) SPF.
  std::map<std::pair<std::size_t, std::int64_t>, SpfResult> spf_of;
  for (const auto& [area, adj] : area_adj) {
    for (const auto& [r, list] : adj) {
      (void)list;
      ++stats_.spf_runs;
      ++stats_.spf_per_router[routers_[r].name()];
      spf_of[{r, area}] = spf(r, adj);
    }
  }
  auto spf_for = [&spf_of](std::size_t r, std::int64_t area) -> const SpfResult* {
    auto it = spf_of.find({r, area});
    return it == spf_of.end() ? nullptr : &it->second;
  };

  // ABRs of an area: routers present in both the area and the backbone.
  std::map<std::int64_t, std::vector<std::size_t>> abrs;
  for (const auto& [r, areas] : router_areas) {
    if (!areas.contains(0)) continue;
    for (std::int64_t area : areas) {
      if (area != 0) abrs[area].push_back(r);
    }
  }

  // Every advertised prefix: (owner, prefix, area, stub cost 0).
  struct Advertised {
    std::size_t owner;
    Ipv4Prefix prefix;
    std::int64_t area;
  };
  std::vector<Advertised> prefixes;
  for (const auto& segment : segments_) {
    std::set<std::pair<std::size_t, std::int64_t>> done;
    for (const auto& m : segment.members) {
      std::int64_t area = 0;
      if (!routers_[m.router].ospf_covers(segment.subnet, &area)) continue;
      if (done.insert({m.router, area}).second) {
        prefixes.push_back({m.router, segment.subnet, area});
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    const RouterConfig& cfg = routers_[r].config();
    std::int64_t area = 0;
    if (cfg.loopback && routers_[r].ospf_covers(cfg.loopback->prefix, &area)) {
      prefixes.push_back({r, cfg.loopback->prefix, area});
    }
  }
  // Each advertised prefix is one LSA origination flooded through its area.
  stats_.lsa_floods += prefixes.size();

  // Distance helpers: reach a destination router within one area.
  auto intra_dist = [&](std::size_t r, std::int64_t area,
                        std::size_t d) -> std::pair<double, const Adjacency*> {
    if (r == d) return {0.0, nullptr};
    const SpfResult* result = spf_for(r, area);
    if (result == nullptr) return {kInf, nullptr};
    auto it = result->dist.find(d);
    if (it == result->dist.end()) return {kInf, nullptr};
    return {it->second, result->first_hop.at(d)};
  };

  // --- Build FIBs -----------------------------------------------------------
  for (std::size_t r = 0; r < n; ++r) {
    auto& fib = routers_[r].mutable_fib();
    fib.clear();
    if (router_failed(r)) {
      igp_dist_[r].clear();
      continue;
    }
    const RouterConfig& cfg = routers_[r].config();
    for (const auto& iface : cfg.interfaces) {
      fib.push_back(FibEntry{iface.address.prefix, RouteSource::kConnected,
                             iface.id, std::nullopt, 0});
    }
    if (cfg.loopback) {
      fib.push_back(FibEntry{cfg.loopback->prefix, RouteSource::kConnected, "",
                             std::nullopt, 0});
    }
    if (!cfg.ospf_enabled) continue;
    const auto& my_areas = router_areas[r];

    // Best OSPF candidate per prefix: intra-area beats inter-area.
    struct Candidate {
      bool intra = false;
      double metric = kInf;
      const Adjacency* hop = nullptr;
    };
    std::map<Ipv4Prefix, Candidate> best;

    auto offer = [&best](const Ipv4Prefix& prefix, bool intra, double metric,
                         const Adjacency* hop) {
      if (metric == kInf || hop == nullptr) return;
      Candidate& cur = best[prefix];
      if ((intra && !cur.intra) ||
          (intra == cur.intra && metric < cur.metric)) {
        cur = {intra, metric, hop};
      }
    };

    for (const auto& adv : prefixes) {
      if (adv.owner == r) continue;
      // Intra-area: r shares the prefix's area.
      if (my_areas.contains(adv.area)) {
        auto [dist, hop] = intra_dist(r, adv.area, adv.owner);
        offer(adv.prefix, true, dist, hop);
      }
      // Inter-area, via the backbone. Sources: if r is in area 0, reach
      // one of the target area's ABRs through area 0; otherwise reach
      // one of *our* area's ABRs first.
      if (adv.area != 0 || !my_areas.contains(0)) {
        const auto& target_abrs =
            adv.area == 0 ? std::vector<std::size_t>{adv.owner} : abrs[adv.area];
        for (std::size_t abr_b : target_abrs) {
          // Remote leg: ABR(B) -> owner within area B (0 if same router).
          double remote = 0.0;
          if (abr_b != adv.owner) {
            remote = intra_dist(abr_b, adv.area, adv.owner).first;
          }
          if (remote == kInf) continue;
          if (my_areas.contains(0)) {
            auto [d0, hop] = intra_dist(r, 0, abr_b);
            offer(adv.prefix, false, d0 + remote, hop);
          } else {
            for (std::int64_t area : my_areas) {
              for (std::size_t abr_a : abrs[area]) {
                double backbone = abr_a == abr_b
                                      ? 0.0
                                      : intra_dist(abr_a, 0, abr_b).first;
                if (backbone == kInf) continue;
                auto [da, hop] = intra_dist(r, area, abr_a);
                offer(adv.prefix, false, da + backbone + remote, hop);
              }
            }
          }
        }
      }
    }

    igp_dist_[r].clear();
    for (const auto& [prefix, cand] : best) {
      bool connected = false;
      for (const auto& iface : cfg.interfaces) {
        if (iface.address.prefix == prefix) connected = true;
      }
      if (cfg.loopback && cfg.loopback->prefix == prefix) connected = true;
      if (connected) continue;
      fib.push_back(FibEntry{prefix, RouteSource::kOspf, cand.hop->out_interface,
                             cand.hop->next_hop, cand.metric});
    }

    // IGP distances to routers (BGP next-hop metric): distance to the
    // router's loopback route, falling back to any interface prefix.
    for (std::size_t d = 0; d < n; ++d) {
      if (d == r) continue;
      double metric = kInf;
      const RouterConfig& dc = routers_[d].config();
      if (dc.loopback) {
        auto it = best.find(dc.loopback->prefix);
        if (it != best.end()) metric = it->second.metric;
      }
      if (metric == kInf) {
        for (const auto& iface : dc.interfaces) {
          auto it = best.find(iface.address.prefix);
          if (it != best.end()) metric = std::min(metric, it->second.metric);
        }
      }
      if (metric != kInf) igp_dist_[r][d] = metric;
    }
  }
}

}  // namespace autonet::emulation

// BGP route propagation and best-path selection.
//
// Decision process (in order): weight, local-pref, AS-path length,
// origin (constant here), MED (not modelled), eBGP-over-iBGP, IGP metric
// to next hop (*only when the vendor applies it* — §7.2: IOS/Junos/C-BGP
// yes, Quagga no), originator router-id, neighbor address.
//
// Route reflection follows RFC 4456: client routes reflect to all peers,
// non-client routes reflect to clients only; ORIGINATOR_ID and
// CLUSTER_LIST provide loop prevention. next-hop-self rewrites the next
// hop for locally-originated and eBGP-learned routes advertised over
// iBGP, but never for reflected routes.
//
// Propagation runs in deterministic round-robin rounds until a full round
// produces no change (converged) or the global state revisits an earlier
// fingerprint (oscillation detected — the Bad-Gadget signature).
#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <set>

#include "emulation/network.hpp"
#include "obs/recorder.hpp"

namespace autonet::emulation {

using addressing::Ipv4Addr;
using addressing::Ipv4Prefix;

namespace {

/// Returns the local address a router uses on a session to `peer_addr`:
/// its interface on the shared subnet for direct sessions, else its
/// loopback.
Ipv4Addr session_source(const RouterConfig& cfg, Ipv4Addr peer_addr,
                        bool update_source_loopback) {
  if (!update_source_loopback) {
    for (const auto& iface : cfg.interfaces) {
      if (iface.address.prefix.contains(peer_addr)) return iface.address.address;
    }
  }
  if (cfg.loopback) return cfg.loopback->address;
  return cfg.interfaces.empty() ? Ipv4Addr{} : cfg.interfaces[0].address.address;
}

}  // namespace

ConvergenceReport EmulatedNetwork::run_bgp(std::size_t max_rounds,
                                           core::RunControl* control) {
  // --- Establish sessions ---------------------------------------------------
  sessions_.clear();
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    const RouterConfig& cfg = routers_[r].config();
    if (!cfg.bgp_enabled || router_failed(r)) continue;
    for (const auto& n : cfg.bgp_neighbors) {
      auto owner = by_address_.find(n.neighbor.value());
      if (owner == by_address_.end()) continue;
      std::size_t peer = owner->second;
      if (peer == r || router_failed(peer)) continue;
      const RouterConfig& pc = routers_[peer].config();
      if (!pc.bgp_enabled) continue;
      // The peer must have a matching neighbor statement back to one of
      // our addresses with the right AS (sessions are bidirectional).
      bool matched = false;
      for (const auto& pn : pc.bgp_neighbors) {
        if (routers_[r].owns_address(pn.neighbor) && pn.remote_as == cfg.asn &&
            n.remote_as == pc.asn) {
          matched = true;
          break;
        }
      }
      if (!matched) continue;
      BgpSession s;
      s.local = r;
      s.peer = peer;
      s.peer_addr = n.neighbor;
      s.local_addr = session_source(cfg, n.neighbor, n.update_source_loopback);
      s.ebgp = cfg.asn != pc.asn;
      s.peer_is_client = n.rr_client;
      s.next_hop_self = n.next_hop_self;
      s.only_local_out = n.only_local_out;
      s.med_out = n.med_out;

      // The TCP session must be able to form: the neighbor address is on
      // a live connected subnet, IGP-reachable, or a direct C-BGP link.
      bool reachable = false;
      for (const auto& iface : cfg.interfaces) {
        if (iface.address.prefix.contains(n.neighbor) &&
            !subnet_down(iface.address.prefix)) {
          reachable = true;
          break;
        }
      }
      if (!reachable) {
        reachable = igp_metric_to(r, n.neighbor) !=
                    std::numeric_limits<double>::infinity();
      }
      if (!reachable && !direct_neighbors_.empty()) {
        reachable = direct_neighbors_[r].contains(peer);
      }
      if (!reachable) continue;
      sessions_.push_back(s);
    }
  }
  stats_.bgp_sessions = sessions_.size();

  // Sessions by advertising router, deterministic order.
  std::vector<std::vector<std::size_t>> sessions_of(routers_.size());
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    sessions_of[sessions_[i].local].push_back(i);
  }

  // Ingress local-preference policies: (receiver, neighbor addr) -> pref.
  std::map<std::pair<std::size_t, std::uint32_t>, std::int64_t> pref_in;
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    for (const auto& n : routers_[r].config().bgp_neighbors) {
      if (n.local_pref_in > 0) pref_in[{r, n.neighbor.value()}] = n.local_pref_in;
    }
  }

  // --- Seed locally originated routes ---------------------------------------
  for (auto& router : routers_) {
    router.rib_in().clear();
    router.bgp_best().clear();
  }
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    if (router_failed(r)) continue;
    const RouterConfig& cfg = routers_[r].config();
    for (const auto& prefix : cfg.bgp_networks) {
      BgpRoute route;
      route.prefix = prefix;
      route.next_hop = routers_[r].router_id();
      route.weight = 32768;
      route.local_originated = true;
      route.originator_id = routers_[r].router_id();
      routers_[r].rib_in()[{prefix.to_string(), 0}] = route;
    }
  }

  // --- Decision process -------------------------------------------------
  auto better = [this](std::size_t r, const BgpRoute& a, const BgpRoute& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
    if (a.as_path.size() != b.as_path.size()) {
      return a.as_path.size() < b.as_path.size();
    }
    // MED: compared only between routes from the same neighboring AS
    // (the standard, non-always-compare behaviour the §7.2-cited MED
    // oscillation analyses assume).
    if (!a.as_path.empty() && !b.as_path.empty() &&
        a.as_path.front() == b.as_path.front() && a.med != b.med) {
      return a.med < b.med;
    }
    if (a.ebgp_learned != b.ebgp_learned) return a.ebgp_learned;
    if (routers_[r].config().igp_tiebreak) {
      double ma = igp_metric_to(r, a.next_hop);
      double mb = igp_metric_to(r, b.next_hop);
      if (ma != mb) return ma < mb;
    }
    if (a.originator_id != b.originator_id) return a.originator_id < b.originator_id;
    return a.from_peer < b.from_peer;
  };

  auto select_best = [this, &better](std::size_t r) {
    std::map<std::string, BgpRoute> best;
    for (const auto& [key, route] : routers_[r].rib_in()) {
      // Next hop must resolve (connected, IGP-known, or self).
      if (!route.local_originated) {
        bool resolvable = routers_[r].owns_address(route.next_hop);
        if (!resolvable) {
          for (const auto& iface : routers_[r].config().interfaces) {
            if (iface.address.prefix.contains(route.next_hop)) resolvable = true;
          }
        }
        if (!resolvable) {
          resolvable = igp_metric_to(r, route.next_hop) !=
                       std::numeric_limits<double>::infinity();
        }
        if (!resolvable && !direct_neighbors_.empty()) {
          // Explicit-links mode: a directly linked node resolves even
          // across IGP domain boundaries (connected route in C-BGP).
          auto owner = by_address_.find(route.next_hop.value());
          if (owner != by_address_.end()) {
            resolvable = direct_neighbors_[r].contains(owner->second);
          }
        }
        if (!resolvable) continue;
      }
      auto it = best.find(key.first);
      if (it == best.end() || better(r, route, it->second)) {
        best[key.first] = route;
      }
    }
    return best;
  };

  ConvergenceReport report;
  std::map<std::size_t, std::size_t> seen_states;  // fingerprint hash -> round
  // Routers whose selection changed in the most recent round: the
  // partial state reported when the round budget runs out.
  std::set<std::size_t> unsettled;

  for (std::size_t round = 1; round <= max_rounds; ++round) {
    // Cooperative cancellation: convergence on large topologies is the
    // longest emulation stage, so an interrupt lands within one round.
    core::checkpoint(control, "emulation.bgp.round");
    bool changed = false;
    unsettled.clear();
    for (std::size_t r = 0; r < routers_.size(); ++r) {
      if (!routers_[r].config().bgp_enabled || router_failed(r)) continue;
      ++stats_.decision_reruns;
      auto best = select_best(r);
      if (best == routers_[r].bgp_best() && round > 1) continue;

      // Withdraw prefixes no longer selected.
      for (const auto& [prefix, old_route] : routers_[r].bgp_best()) {
        if (best.contains(prefix)) continue;
        for (std::size_t si : sessions_of[r]) {
          const BgpSession& s = sessions_[si];
          // At the peer, routes from us are keyed by our session address.
          routers_[s.peer].rib_in().erase({prefix, s.local_addr.value()});
          ++report.updates;
          ++stats_.bgp_withdrawals;
        }
        changed = true;
        unsettled.insert(r);
      }

      // Advertise (possibly re-advertise) the current selections.
      for (const auto& [prefix, route] : best) {
        const BgpRoute* previous = nullptr;
        auto prev_it = routers_[r].bgp_best().find(prefix);
        if (prev_it != routers_[r].bgp_best().end()) previous = &prev_it->second;
        const bool is_new = previous == nullptr || !(*previous == route);
        if (!is_new) continue;
        changed = true;
        unsettled.insert(r);
        for (std::size_t si : sessions_of[r]) {
          const BgpSession& s = sessions_[si];
          const auto rib_key =
              std::make_pair(prefix, s.local_addr.value());

          // Split horizon: never send a route back over the session it
          // arrived on.
          if (!route.local_originated && route.from_peer == s.peer_addr) {
            routers_[s.peer].rib_in().erase(rib_key);
            continue;
          }
          // "^$" export policy: stub routers advertise only their own
          // prefixes (paper's Small-Internet lab marks AS200 this way).
          if (s.only_local_out && !route.local_originated) {
            routers_[s.peer].rib_in().erase(rib_key);
            continue;
          }

          bool advertise = false;
          BgpRoute out = route;
          out.from_peer = s.local_addr;
          out.weight = 0;
          out.local_originated = false;  // the receiver learned it
          if (s.ebgp) {
            advertise = true;
            out.as_path.insert(out.as_path.begin(), routers_[r].asn());
            out.next_hop = s.local_addr;
            // Receiver-side ingress policy (or the provider default).
            auto pref = pref_in.find({s.peer, s.local_addr.value()});
            out.local_pref = pref == pref_in.end() ? 100 : pref->second;
            // Egress MED (advertiser-side policy; 0 when unset).
            out.med = s.med_out >= 0 ? s.med_out : 0;
            out.originator_id = Ipv4Addr{};
            out.cluster_list.clear();
            out.ebgp_learned = true;  // as seen by the receiver
          } else {
            out.ebgp_learned = false;
            if (route.local_originated || route.ebgp_learned) {
              advertise = true;
              if (s.next_hop_self || route.local_originated) {
                out.next_hop = session_source(routers_[r].config(), s.peer_addr,
                                              true);
              }
              // The speaker's id serves as the tie-break identity for
              // non-reflected iBGP advertisements.
              out.originator_id = routers_[r].router_id();
            } else {
              // iBGP-learned: reflect per RFC 4456.
              const bool learned_from_client = [&]() {
                for (std::size_t lj : sessions_of[r]) {
                  const BgpSession& ls = sessions_[lj];
                  if (ls.peer_addr == route.from_peer) return ls.peer_is_client;
                }
                return false;
              }();
              advertise = learned_from_client || s.peer_is_client;
              if (advertise) {
                out.cluster_list.push_back(routers_[r].router_id());
                // ORIGINATOR_ID is preserved; next hop unchanged.
              }
            }
          }
          if (!advertise) {
            routers_[s.peer].rib_in().erase(rib_key);
            continue;
          }

          // Receiver-side loop prevention.
          bool drop = false;
          if (s.ebgp) {
            for (auto as : out.as_path) {
              if (as == routers_[s.peer].asn()) drop = true;
            }
          } else {
            if (out.originator_id == routers_[s.peer].router_id()) drop = true;
            for (const auto& cluster : out.cluster_list) {
              if (cluster == routers_[s.peer].router_id()) drop = true;
            }
          }
          ++report.updates;
          if (drop) {
            routers_[s.peer].rib_in().erase(rib_key);
          } else {
            routers_[s.peer].rib_in()[rib_key] = out;
          }
        }
      }
      routers_[r].bgp_best() = std::move(best);
    }

    obs::record("emulation", "bgp.round",
                {{"round", std::to_string(round)},
                 {"changed", changed ? "1" : "0"},
                 {"updates", std::to_string(report.updates)}});

    if (!changed) {
      report.converged = true;
      report.rounds = round;
      obs::record("emulation", "bgp.converged",
                  {{"rounds", std::to_string(round)},
                   {"updates", std::to_string(report.updates)}});
      return report;
    }

    // Oscillation detection: fingerprint the global selection state.
    std::string state;
    for (const auto& router : routers_) {
      state += router.name() + "{";
      for (const auto& [prefix, route] : router.bgp_best()) {
        state += route.fingerprint() + ";";
      }
      state += "}";
    }
    std::size_t h = std::hash<std::string>{}(state);
    auto [it, inserted] = seen_states.emplace(h, round);
    if (!inserted) {
      report.oscillating = true;
      report.rounds = round;
      report.period = round - it->second;
      obs::record("emulation", obs::Severity::kWarning, "bgp.oscillating",
                  {{"rounds", std::to_string(round)},
                   {"period", std::to_string(report.period)}});
      return report;
    }
  }
  // Round budget exhausted without convergence or oscillation: report
  // the partial state instead of silently capping.
  report.rounds = max_rounds;
  core::ConvergenceTimeout timeout;
  timeout.rounds_completed = max_rounds;
  timeout.budget_rounds = max_rounds;
  for (std::size_t r : unsettled) {
    timeout.unsettled_routers.push_back(routers_[r].name());
  }
  std::sort(timeout.unsettled_routers.begin(), timeout.unsettled_routers.end());
  obs::record("emulation", obs::Severity::kWarning, "bgp.timeout",
              {{"budget_rounds", std::to_string(max_rounds)},
               {"unsettled", std::to_string(timeout.unsettled_routers.size())}});
  report.timeout = std::move(timeout);
  return report;
}

void EmulatedNetwork::install_bgp_routes() {
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    VirtualRouter& router = routers_[r];
    auto& fib = router.mutable_fib();
    // Drop previously installed BGP routes (start() may be re-run).
    std::erase_if(fib, [](const FibEntry& e) {
      return e.source == RouteSource::kEbgp || e.source == RouteSource::kIbgp;
    });
    for (const auto& [prefix_str, route] : router.bgp_best()) {
      if (route.local_originated) continue;
      // Resolve the BGP next hop: directly connected, or recursively via
      // an IGP/connected route.
      std::string out_interface;
      std::optional<Ipv4Addr> immediate;
      bool resolved = false;
      for (const auto& iface : router.config().interfaces) {
        if (iface.address.prefix.contains(route.next_hop)) {
          out_interface = iface.id;
          immediate = route.next_hop;
          resolved = true;
          break;
        }
      }
      if (!resolved) {
        const FibEntry* via = router.lookup(route.next_hop);
        if (via != nullptr && via->source != RouteSource::kEbgp &&
            via->source != RouteSource::kIbgp) {
          out_interface = via->out_interface;
          immediate = via->next_hop ? via->next_hop : route.next_hop;
          resolved = true;
        }
      }
      if (!resolved && !direct_neighbors_.empty()) {
        auto owner = by_address_.find(route.next_hop.value());
        if (owner != by_address_.end() &&
            direct_neighbors_[r].contains(owner->second)) {
          immediate = route.next_hop;
          resolved = true;
        }
      }
      if (!resolved) continue;
      fib.push_back(FibEntry{
          route.prefix,
          route.ebgp_learned ? RouteSource::kEbgp : RouteSource::kIbgp,
          out_interface, immediate,
          static_cast<double>(route.as_path.size())});
    }
  }
}

}  // namespace autonet::emulation

#include "emulation/network.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace autonet::emulation {

using addressing::Ipv4Addr;
using addressing::Ipv4Prefix;

EmulatedNetwork EmulatedNetwork::from_nidb(const nidb::Nidb& nidb,
                                           const render::ConfigTree& configs,
                                           const std::set<std::string>* only) {
  std::vector<RouterConfig> parsed;
  for (const auto* rec : nidb.devices()) {
    const nidb::Value* type = rec->data.find("device_type");
    const std::string* type_s = type ? type->as_string() : nullptr;
    if (type_s == nullptr || *type_s != "router") continue;
    if (only != nullptr && !only->contains(rec->name)) continue;

    const nidb::Value* syntax = rec->data.find("syntax");
    const std::string* syntax_s = syntax ? syntax->as_string() : nullptr;
    const std::string dir = rec->dst_folder();
    if (syntax_s == nullptr) continue;
    if (*syntax_s == "quagga") {
      parsed.push_back(parse_quagga_device(configs, dir, rec->name));
    } else if (*syntax_s == "ios") {
      const std::string* text = configs.get(dir + "/startup-config.cfg");
      if (text == nullptr) throw ConfigError("missing IOS config for " + rec->name);
      parsed.push_back(parse_ios_config(*text));
    } else if (*syntax_s == "junos") {
      const std::string* text = configs.get(dir + "/juniper.conf");
      if (text == nullptr) throw ConfigError("missing Junos config for " + rec->name);
      parsed.push_back(parse_junos_config(*text));
    } else if (*syntax_s == "cbgp") {
      // handled network-wide below
    }
  }

  // A C-BGP platform renders one network-wide script.
  if (const std::string* script = configs.get("network.cli")) {
    CbgpNetwork net = parse_cbgp_script(*script);
    EmulatedNetwork out = from_router_configs(std::move(net.routers));
    out.explicit_links_ = std::move(net.links);
    // Map the address-named routers back to device names via the NIDB.
    for (auto& r : out.routers_) {
      // hostnames are loopback addresses in cbgp mode; try to resolve.
      if (auto owner = nidb.device_for_ip(r.name())) {
        out.by_name_.erase(r.name());
        r.rename(*owner);
        out.by_name_[*owner] = static_cast<std::size_t>(&r - out.routers_.data());
      }
    }
    return out;
  }
  return from_router_configs(std::move(parsed));
}

EmulatedNetwork EmulatedNetwork::from_netkit_tree(const render::ConfigTree& configs,
                                                  const std::string& host) {
  // Device directories are the parents of ".startup" files under
  // <host>/netkit/.
  const std::string prefix = host + "/netkit/";
  std::vector<RouterConfig> parsed;
  for (const auto& path : configs.paths_under(prefix)) {
    if (!path.ends_with("/.startup")) continue;
    std::string dir = path.substr(0, path.size() - std::string("/.startup").size());
    std::string device = dir.substr(prefix.size());
    // Routers have a quagga directory; plain servers do not.
    if (configs.get(dir + "/etc/quagga/daemons") != nullptr) {
      parsed.push_back(parse_quagga_device(configs, dir, device));
    }
  }
  if (parsed.empty()) {
    throw ConfigError("no Netkit devices found under " + prefix);
  }
  return from_router_configs(std::move(parsed));
}

EmulatedNetwork EmulatedNetwork::from_cbgp_script(std::string_view script) {
  CbgpNetwork net = parse_cbgp_script(script);
  EmulatedNetwork out = from_router_configs(std::move(net.routers));
  out.explicit_links_ = std::move(net.links);
  return out;
}

EmulatedNetwork EmulatedNetwork::from_router_configs(
    std::vector<RouterConfig> configs) {
  EmulatedNetwork net;
  std::sort(configs.begin(), configs.end(),
            [](const RouterConfig& a, const RouterConfig& b) {
              return a.hostname < b.hostname;
            });
  for (auto& cfg : configs) {
    if (net.by_name_.contains(cfg.hostname)) {
      throw ConfigError("duplicate router hostname " + cfg.hostname);
    }
    net.by_name_[cfg.hostname] = net.routers_.size();
    net.routers_.emplace_back(std::move(cfg));
  }
  return net;
}

void EmulatedNetwork::index_addresses() {
  by_address_.clear();
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    const RouterConfig& cfg = routers_[r].config();
    if (cfg.loopback) by_address_[cfg.loopback->address.value()] = r;
    for (const auto& iface : cfg.interfaces) {
      by_address_[iface.address.address.value()] = r;
    }
  }
}

void EmulatedNetwork::build_segments() {
  segments_.clear();
  // Group interfaces by subnet: interfaces sharing a subnet share a
  // collision domain (that is exactly how the IP design rules allocate).
  // Administratively failed segments are excluded entirely.
  std::map<Ipv4Prefix, std::vector<SegmentMember>> groups;
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    if (router_failed(r)) continue;
    const RouterConfig& cfg = routers_[r].config();
    for (std::size_t i = 0; i < cfg.interfaces.size(); ++i) {
      const Ipv4Prefix& subnet = cfg.interfaces[i].address.prefix;
      if (subnet_down(subnet)) continue;
      groups[subnet].push_back(SegmentMember{r, i});
    }
  }
  segments_.reserve(groups.size());
  for (auto& [subnet, members] : groups) {
    segments_.push_back(Segment{subnet, std::move(members)});
  }
}

namespace {

/// The subnet shared by two routers, if any.
std::optional<Ipv4Prefix> shared_subnet(const RouterConfig& a,
                                        const RouterConfig& b) {
  for (const auto& ia : a.interfaces) {
    for (const auto& ib : b.interfaces) {
      if (ia.address.prefix == ib.address.prefix) return ia.address.prefix;
    }
  }
  return std::nullopt;
}

}  // namespace

bool EmulatedNetwork::fail_link(std::string_view router_a,
                                std::string_view router_b) {
  const VirtualRouter* a = router(router_a);
  const VirtualRouter* b = router(router_b);
  if (a == nullptr || b == nullptr) return false;
  auto subnet = shared_subnet(a->config(), b->config());
  if (!subnet) return false;
  failed_subnets_.insert(*subnet);
  return true;
}

bool EmulatedNetwork::restore_link(std::string_view router_a,
                                   std::string_view router_b) {
  const VirtualRouter* a = router(router_a);
  const VirtualRouter* b = router(router_b);
  if (a == nullptr || b == nullptr) return false;
  auto subnet = shared_subnet(a->config(), b->config());
  if (!subnet) return false;
  return failed_subnets_.erase(*subnet) > 0;
}

bool EmulatedNetwork::set_link_cost(std::string_view router_a,
                                    std::string_view router_b,
                                    std::int64_t cost) {
  VirtualRouter* a = router(router_a);
  VirtualRouter* b = router(router_b);
  if (a == nullptr || b == nullptr) return false;
  auto subnet = shared_subnet(a->config(), b->config());
  if (!subnet) return false;
  for (VirtualRouter* r : {a, b}) {
    for (auto& iface : r->mutable_config().interfaces) {
      if (iface.address.prefix == *subnet) iface.ospf_cost = cost;
    }
  }
  return true;
}

bool EmulatedNetwork::fail_node(std::string_view router_name) {
  auto it = by_name_.find(router_name);
  if (it == by_name_.end()) return false;
  if (!failed_routers_.insert(it->second).second) return false;
  for (const auto& iface : routers_[it->second].config().interfaces) {
    node_failed_subnets_.insert(iface.address.prefix);
  }
  return true;
}

bool EmulatedNetwork::restore_node(std::string_view router_name) {
  auto it = by_name_.find(router_name);
  if (it == by_name_.end()) return false;
  if (failed_routers_.erase(it->second) == 0) return false;
  // Rebuild the node-failure subnet set from the routers still down (two
  // failed routers can share a segment).
  node_failed_subnets_.clear();
  for (std::size_t r : failed_routers_) {
    for (const auto& iface : routers_[r].config().interfaces) {
      node_failed_subnets_.insert(iface.address.prefix);
    }
  }
  return true;
}

std::vector<std::string> EmulatedNetwork::failed_nodes() const {
  std::vector<std::string> out;
  out.reserve(failed_routers_.size());
  for (std::size_t r : failed_routers_) out.push_back(routers_[r].name());
  std::sort(out.begin(), out.end());
  return out;
}

std::string EmulationStats::to_text() const {
  std::ostringstream out;
  out << "bgp sessions: " << bgp_sessions << "\n";
  out << "bgp updates: " << bgp_updates << "\n";
  out << "bgp withdrawals: " << bgp_withdrawals << "\n";
  out << "convergence rounds: " << convergence_rounds << "\n";
  out << "convergence runs: " << convergence_runs << "\n";
  out << "decision process reruns: " << decision_reruns << "\n";
  out << "lsa floods: " << lsa_floods << "\n";
  out << "oscillation detections: " << oscillations << "\n";
  out << "spf runs: " << spf_runs << "\n";
  for (const auto& [router, runs] : spf_per_router) {
    out << "  spf[" << router << "]: " << runs << "\n";
  }
  return out.str();
}

ConvergenceReport EmulatedNetwork::start(std::size_t max_bgp_rounds,
                                         core::RunControl* control) {
  // The hot loops below touch only the plain stats_ struct; telemetry
  // publication happens once, as per-run deltas, after they finish.
  const EmulationStats before = stats_;
  core::checkpoint(control, "emulation.start");
  index_addresses();
  build_segments();
  {
    obs::Span span("emulation.ospf");
    compute_ospf();
  }
  core::checkpoint(control, "emulation.bgp");
  {
    obs::Span span("emulation.bgp");
    report_ = run_bgp(max_bgp_rounds, control);
  }
  install_bgp_routes();
  stats_.bgp_updates += report_.updates;
  stats_.convergence_rounds += report_.rounds;
  ++stats_.convergence_runs;
  if (report_.oscillating) ++stats_.oscillations;
  started_ = true;

  obs::Registry& obs = obs::Registry::current();
  if (obs.enabled()) {
    auto scope = obs.scope("emulation");
    scope.counter("spf_runs").inc(stats_.spf_runs - before.spf_runs);
    scope.counter("lsa_floods").inc(stats_.lsa_floods - before.lsa_floods);
    scope.counter("bgp_updates").inc(stats_.bgp_updates - before.bgp_updates);
    scope.counter("bgp_withdrawals")
        .inc(stats_.bgp_withdrawals - before.bgp_withdrawals);
    scope.counter("decision_reruns")
        .inc(stats_.decision_reruns - before.decision_reruns);
    scope.counter("convergence_rounds").inc(report_.rounds);
    scope.counter("convergence_runs").inc();
    if (report_.oscillating) scope.counter("oscillations").inc();
    scope.gauge("bgp_sessions").set(static_cast<std::int64_t>(sessions_.size()));
    scope.gauge("routers").set(static_cast<std::int64_t>(routers_.size()));
  }
  return report_;
}

std::vector<std::string> EmulatedNetwork::router_names() const {
  std::vector<std::string> out;
  out.reserve(routers_.size());
  for (const auto& [name, idx] : by_name_) out.push_back(name);
  return out;
}

const VirtualRouter* EmulatedNetwork::router(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &routers_[it->second];
}

VirtualRouter* EmulatedNetwork::router(std::string_view name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &routers_[it->second];
}

std::optional<std::string> EmulatedNetwork::owner_of(Ipv4Addr addr) const {
  auto it = by_address_.find(addr.value());
  if (it == by_address_.end()) return std::nullopt;
  return routers_[it->second].name();
}

double EmulatedNetwork::igp_metric_to(std::size_t r, Ipv4Addr addr) const {
  auto owner = by_address_.find(addr.value());
  if (owner == by_address_.end()) return std::numeric_limits<double>::infinity();
  if (owner->second == r) return 0.0;
  const auto& dist = igp_dist_[r];
  auto it = dist.find(owner->second);
  return it == dist.end() ? std::numeric_limits<double>::infinity() : it->second;
}

std::string EmulatedNetwork::exec(std::string_view router_name,
                                  std::string_view command) const {
  const VirtualRouter* r = router(router_name);
  if (r == nullptr) {
    throw std::invalid_argument("exec: unknown router " + std::string(router_name));
  }
  std::istringstream in{std::string(command)};
  std::vector<std::string> argv;
  std::string tok;
  while (in >> tok) argv.push_back(tok);
  if (argv.empty()) return "";

  if (argv[0] == "traceroute") {
    // accept flags (-naU etc.) between the command and the target
    std::string target;
    for (std::size_t i = 1; i < argv.size(); ++i) {
      if (!argv[i].starts_with("-")) target = argv[i];
    }
    auto dst = Ipv4Addr::parse(target);
    if (!dst) {
      // allow hostnames of emulated routers
      const VirtualRouter* t = router(target);
      if (t != nullptr && t->config().loopback) {
        dst = t->config().loopback->address;
      }
    }
    if (!dst) return "traceroute: unknown host " + target + "\n";
    return traceroute(router_name, *dst).to_text();
  }
  if (command == "show metrics") {
    // Control-plane work counters (§3.2-style workload visibility).
    return stats_.to_text();
  }
  if (command == "show failures" || command == "show incidents") {
    // Incident summary for what-if/fault studies: link and node state.
    std::string out = "failed links: " + std::to_string(failed_link_count()) + "\n";
    out += "failed routers: " + std::to_string(failed_node_count());
    std::string names;
    for (const auto& name : failed_nodes()) {
      names += names.empty() ? name : " " + name;
    }
    if (!names.empty()) out += " (" + names + ")";
    out += "\n";
    return out;
  }
  if (command == "show ip ospf neighbor" || command == "show ospf neighbors") {
    std::string out = "Neighbor ID     State\n";
    for (const auto& n : r->ospf_neighbors()) {
      const VirtualRouter* peer = router(n);
      out += (peer ? peer->router_id().to_string() : n) + "  Full  # " + n + "\n";
    }
    return out;
  }
  if (command == "show ip bgp") {
    // One line per best route: ">" marker, prefix, next hop, AS path.
    std::string out = "BGP table version is 1, local router ID is " +
                      r->router_id().to_string() + "\n";
    for (const auto& [prefix, route] : r->bgp_best()) {
      out += ">  " + prefix + "  " + route.next_hop.to_string() + "  ";
      for (auto as : route.as_path) out += std::to_string(as) + " ";
      out += route.local_originated ? "i\n" : "e\n";
    }
    return out;
  }
  if (command == "show ip bgp summary") {
    std::string out = "BGP router identifier " + r->router_id().to_string() +
                      ", local AS number " + std::to_string(r->asn()) + "\n";
    for (const auto& s : sessions_) {
      if (routers_[s.local].name() != router_name) continue;
      out += s.peer_addr.to_string() + "  AS" +
             std::to_string(routers_[s.peer].asn()) + "  Established\n";
    }
    return out;
  }
  return "unknown command: " + std::string(command) + "\n";
}

std::string TracerouteResult::to_text() const {
  // Mirrors "traceroute -n" output: "<ttl>  <ip>  <rtt> ms".
  std::ostringstream out;
  int ttl = 1;
  for (const auto& hop : hops) {
    out << " " << ttl++ << "  " << hop.address.to_string() << "  " << hop.rtt_ms
        << " ms\n";
  }
  if (!reached) out << " " << ttl << "  * * *\n";
  return out.str();
}

}  // namespace autonet::emulation

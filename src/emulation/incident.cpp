#include "emulation/incident.hpp"

#include <sstream>

namespace autonet::emulation {

const char* to_string(IncidentAction action) {
  switch (action) {
    case IncidentAction::kFailLink: return "fail_link";
    case IncidentAction::kRestoreLink: return "restore_link";
    case IncidentAction::kFailNode: return "fail_node";
    case IncidentAction::kRestoreNode: return "restore_node";
  }
  return "?";
}

std::vector<IncidentStep> parse_incident_script(std::string_view text) {
  std::vector<IncidentStep> steps;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::string verb, a, b, extra;
    if (!(fields >> verb)) continue;  // blank / comment-only line
    fields >> a >> b >> extra;
    const auto fail = [&](const std::string& why) {
      throw IncidentError("incident script line " + std::to_string(lineno) +
                          ": " + why);
    };
    IncidentStep step;
    if (verb == "fail_link" || verb == "restore_link") {
      step.action = verb == "fail_link" ? IncidentAction::kFailLink
                                        : IncidentAction::kRestoreLink;
      if (a.empty() || b.empty()) fail(verb + " needs two routers");
      if (!extra.empty()) fail("trailing tokens after " + verb);
      step.a = a;
      step.b = b;
    } else if (verb == "fail_node" || verb == "restore_node") {
      step.action = verb == "fail_node" ? IncidentAction::kFailNode
                                        : IncidentAction::kRestoreNode;
      if (a.empty()) fail(verb + " needs a router");
      if (!b.empty()) fail("trailing tokens after " + verb);
      step.a = a;
    } else {
      fail("unknown verb '" + verb + "'");
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

std::size_t ReachabilitySnapshot::reachable_pairs() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < reached.size(); ++i) {
    for (std::size_t j = 0; j < reached[i].size(); ++j) {
      if (i != j && reached[i][j]) ++count;
    }
  }
  return count;
}

ReachabilitySnapshot IncidentRunner::snapshot() const {
  ReachabilitySnapshot s;
  s.routers = net_->router_names();
  const std::size_t n = s.routers.size();
  s.reached.assign(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const VirtualRouter* dst = net_->router(s.routers[j]);
      if (dst == nullptr || !dst->config().loopback) continue;
      s.reached[i][j] = net_->ping(s.routers[i], dst->config().loopback->address);
    }
  }
  return s;
}

IncidentReport IncidentRunner::run(const std::vector<IncidentStep>& timeline) {
  IncidentReport report;
  ReachabilitySnapshot before = snapshot();
  report.baseline_pairs = before.reachable_pairs();

  for (const IncidentStep& step : timeline) {
    IncidentStepOutcome out;
    out.step = step;
    out.pairs_before = before.reachable_pairs();

    switch (step.action) {
      case IncidentAction::kFailLink:
        out.applied = net_->fail_link(step.a, step.b);
        break;
      case IncidentAction::kRestoreLink:
        out.applied = net_->restore_link(step.a, step.b);
        break;
      case IncidentAction::kFailNode:
        out.applied = net_->fail_node(step.a);
        break;
      case IncidentAction::kRestoreNode:
        out.applied = net_->restore_node(step.a);
        break;
    }
    if (!out.applied) {
      out.error = core::Error{
          core::ErrorCategory::kConfig,
          step.b.empty() ? step.a : step.a + "--" + step.b,
          std::string(to_string(step.action)) + " did not apply", false};
      report.ok = false;
      out.pairs_after = out.pairs_before;
      report.steps.push_back(std::move(out));
      continue;
    }

    // Reconverge under the watchdog: bounded rounds and updates, with a
    // bounded number of enlarged-budget recovery attempts.
    std::size_t rounds = budget_.max_rounds;
    for (int attempt = 1;; ++attempt) {
      out.convergence = net_->start(rounds);
      out.convergence_attempts = attempt;
      const bool within_budget = out.convergence.converged &&
                                 out.convergence.updates <= budget_.max_updates;
      if (within_budget) break;
      if (attempt > budget_.recovery_retries) {
        out.error = core::Error{
            core::ErrorCategory::kConvergence,
            step.b.empty() ? step.a : step.a + "--" + step.b,
            out.convergence.oscillating
                ? "oscillation persisted after " + std::to_string(attempt) +
                      " attempts (period " +
                      std::to_string(out.convergence.period) + ")"
                : out.convergence.converged
                      ? "update budget exceeded (" +
                            std::to_string(out.convergence.updates) + " > " +
                            std::to_string(budget_.max_updates) + ")"
                      : "no convergence within " + std::to_string(rounds) +
                            " rounds",
            false};
        report.ok = false;
        break;
      }
      rounds *= 2;  // oscillation recovery: retry with a larger budget
    }

    ReachabilitySnapshot after = snapshot();
    out.pairs_after = after.reachable_pairs();
    for (std::size_t i = 0; i < before.routers.size(); ++i) {
      for (std::size_t j = 0; j < before.routers.size(); ++j) {
        if (i == j) continue;
        const std::string pair = before.routers[i] + "->" + before.routers[j];
        if (before.reached[i][j] && !after.reached[i][j]) {
          out.lost.push_back(pair);
        } else if (!before.reached[i][j] && after.reached[i][j]) {
          out.regained.push_back(pair);
        }
      }
    }
    before = std::move(after);
    report.steps.push_back(std::move(out));
  }
  return report;
}

IncidentReport IncidentRunner::run_script(std::string_view script) {
  return run(parse_incident_script(script));
}

std::string IncidentStepOutcome::to_string() const {
  std::string out = emulation::to_string(step.action);
  out += " " + step.a;
  if (!step.b.empty()) out += " " + step.b;
  if (!applied) return out + ": NOT APPLIED";
  out += ": " + std::to_string(pairs_before) + " -> " +
         std::to_string(pairs_after) + " pairs (-" +
         std::to_string(lost.size()) + "/+" + std::to_string(regained.size()) +
         "), " +
         (convergence.converged
              ? "converged in " + std::to_string(convergence.rounds) + " rounds"
              : (convergence.oscillating ? "OSCILLATING" : "NOT CONVERGED"));
  if (convergence_attempts > 1) {
    out += " after " + std::to_string(convergence_attempts) + " attempts";
  }
  if (error) out += " [" + error->to_string() + "]";
  return out;
}

std::string IncidentReport::to_string() const {
  std::string out =
      "baseline: " + std::to_string(baseline_pairs) + " reachable pairs\n";
  for (const auto& step : steps) out += step.to_string() + "\n";
  out += ok ? "timeline completed\n" : "timeline completed WITH ERRORS\n";
  return out;
}

}  // namespace autonet::emulation

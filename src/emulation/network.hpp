// The emulated network (the substrate substituting for Netkit/Dynagen/
// Junosphere): boots virtual routers from rendered configurations, wires
// them by collision-domain subnets, runs OSPF SPF and the BGP decision
// process to convergence (with oscillation detection, §7.2), and forwards
// packets hop by hop for traceroute/ping measurements.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/cancel.hpp"
#include "core/error.hpp"
#include "emulation/router.hpp"
#include "nidb/nidb.hpp"
#include "render/config_tree.hpp"

namespace autonet::emulation {

struct ConvergenceReport {
  bool converged = false;
  bool oscillating = false;
  std::size_t rounds = 0;
  /// Cycle length when oscillating (state revisit distance).
  std::size_t period = 0;
  /// Advertisement messages processed.
  std::size_t updates = 0;
  /// Set when the round budget ran out before convergence: how far the
  /// loop got and which routers were still unsettled (no more silent
  /// capping at max_bgp_rounds).
  std::optional<core::ConvergenceTimeout> timeout;
};

/// Cumulative control-plane work counters, accumulated across start()
/// calls (reconvergence after fail_link/fail_node adds to them). The
/// counters live in this plain struct so the SPF/BGP hot loops pay no
/// telemetry cost; start() publishes the per-run deltas to the current
/// obs registry under the "emulation" scope.
struct EmulationStats {
  std::uint64_t spf_runs = 0;
  std::uint64_t lsa_floods = 0;
  std::uint64_t bgp_sessions = 0;  // sessions established by the last run
  std::uint64_t bgp_updates = 0;
  std::uint64_t bgp_withdrawals = 0;
  std::uint64_t decision_reruns = 0;
  std::uint64_t convergence_rounds = 0;
  std::uint64_t convergence_runs = 0;
  std::uint64_t oscillations = 0;
  std::map<std::string, std::uint64_t> spf_per_router;
  /// The "show metrics" rendering: one "key: value" line per counter,
  /// keys sorted, then the per-router SPF breakdown.
  [[nodiscard]] std::string to_text() const;
};

struct TracerouteHop {
  addressing::Ipv4Addr address;
  std::string router;  // resolved from the emulation's address table
  double rtt_ms = 0;   // synthetic: 0.1ms per hop
};

struct TracerouteResult {
  bool reached = false;
  std::vector<TracerouteHop> hops;
  /// Raw output in the standard Linux traceroute text format (the
  /// measurement module parses this with TextFSM, as the paper does).
  [[nodiscard]] std::string to_text() const;
};

class EmulatedNetwork {
 public:
  /// Boots from an NIDB + rendered configuration tree: each device's
  /// config directory is parsed with the parser for its syntax. When
  /// `only` is given, just those devices boot — the surviving
  /// subnetwork of a degraded deployment (dead host / failed machines).
  static EmulatedNetwork from_nidb(const nidb::Nidb& nidb,
                                   const render::ConfigTree& configs,
                                   const std::set<std::string>* only = nullptr);

  /// Boots purely from a rendered Netkit directory tree (lab.conf +
  /// device folders under `<host>/netkit/`), with no knowledge of the
  /// design-side model — the strictest fidelity check.
  static EmulatedNetwork from_netkit_tree(const render::ConfigTree& configs,
                                          const std::string& host = "localhost");

  /// Boots from a network-wide C-BGP script.
  static EmulatedNetwork from_cbgp_script(std::string_view script);

  /// Direct construction from parsed configs (unit tests / synthetic).
  static EmulatedNetwork from_router_configs(std::vector<RouterConfig> configs);

  /// Runs the control plane: OSPF SPF, then BGP to convergence (or until
  /// the `max_bgp_rounds` budget, reported as a ConvergenceTimeout), then
  /// installs BGP routes in the FIBs. An optional RunControl is polled
  /// every BGP round, so cancellation/deadlines interrupt convergence
  /// within one round.
  ConvergenceReport start(std::size_t max_bgp_rounds = 128,
                          core::RunControl* control = nullptr);

  // --- What-if experimentation (paper §8: "creating tools to emulate
  // workflow, or incidents") -------------------------------------------
  /// Takes the link between two routers down (their shared collision
  /// domain stops carrying traffic and adjacencies). Returns false when
  /// the routers share no link. Call start() again to reconverge.
  bool fail_link(std::string_view router_a, std::string_view router_b);
  /// Restores a previously failed link.
  bool restore_link(std::string_view router_a, std::string_view router_b);
  /// Hot-applies a new OSPF cost to the link between two routers: both
  /// endpoints' interfaces on the shared subnet take the cost, without a
  /// reboot — adjacencies and BGP sessions survive. Returns false when
  /// the routers share no link. Call start() again to reconverge.
  bool set_link_cost(std::string_view router_a, std::string_view router_b,
                     std::int64_t cost);
  [[nodiscard]] std::size_t failed_link_count() const {
    return failed_subnets_.size();
  }
  /// Takes a router down entirely: every segment it participates in stops
  /// carrying traffic, its control plane leaves the network, and probes
  /// to its addresses go unanswered. Returns false for unknown or
  /// already-failed routers. Call start() again to reconverge.
  bool fail_node(std::string_view router_name);
  /// Brings a failed router back. Returns false when it was not failed.
  bool restore_node(std::string_view router_name);
  [[nodiscard]] std::size_t failed_node_count() const {
    return failed_routers_.size();
  }
  /// Names of currently failed routers, sorted.
  [[nodiscard]] std::vector<std::string> failed_nodes() const;

  // --- Introspection ------------------------------------------------------
  [[nodiscard]] std::size_t router_count() const { return routers_.size(); }
  [[nodiscard]] std::vector<std::string> router_names() const;
  [[nodiscard]] const VirtualRouter* router(std::string_view name) const;
  [[nodiscard]] VirtualRouter* router(std::string_view name);
  [[nodiscard]] const ConvergenceReport& last_report() const { return report_; }
  /// Control-plane work counters (also via exec "show metrics").
  [[nodiscard]] const EmulationStats& stats() const { return stats_; }

  /// Which router owns this address (interface or loopback)?
  [[nodiscard]] std::optional<std::string> owner_of(addressing::Ipv4Addr addr) const;

  // --- Data plane -----------------------------------------------------------
  [[nodiscard]] TracerouteResult traceroute(std::string_view src_router,
                                            addressing::Ipv4Addr dst,
                                            int max_ttl = 30) const;
  [[nodiscard]] TracerouteResult traceroute(std::string_view src_router,
                                            std::string_view dst_router,
                                            int max_ttl = 30) const;
  [[nodiscard]] bool ping(std::string_view src_router,
                          addressing::Ipv4Addr dst) const;

  /// Runs a command against a router, emulating the measurement client's
  /// remote execution: supports "traceroute -naU <ip>" and
  /// "show ip ospf neighbor". Returns raw text output.
  [[nodiscard]] std::string exec(std::string_view router_name,
                                 std::string_view command) const;

  // Internals shared by the ospf/bgp/dataplane translation units.
  struct SegmentMember {
    std::size_t router;
    std::size_t iface;  // index into RouterConfig::interfaces
  };
  struct Segment {
    addressing::Ipv4Prefix subnet;
    std::vector<SegmentMember> members;
  };
  struct BgpSession {
    std::size_t local;           // router index
    std::size_t peer;            // router index
    addressing::Ipv4Addr local_addr;
    addressing::Ipv4Addr peer_addr;
    bool ebgp = false;
    bool peer_is_client = false;  // local reflects to peer
    bool next_hop_self = false;
    bool only_local_out = false;  // "^$" export policy on this session
    std::int64_t med_out = -1;    // egress MED; -1 = none
  };

 private:
  EmulatedNetwork() = default;

  void index_addresses();
  void build_segments();
  void compute_ospf();        // ospf.cpp
  ConvergenceReport run_bgp(std::size_t max_rounds,
                            core::RunControl* control);  // bgp.cpp
  void install_bgp_routes();  // bgp.cpp

  /// IGP metric from router r to address `addr`; infinity when unknown.
  [[nodiscard]] double igp_metric_to(std::size_t r, addressing::Ipv4Addr addr) const;

  std::vector<VirtualRouter> routers_;
  std::map<std::string, std::size_t, std::less<>> by_name_;
  std::map<std::uint32_t, std::size_t> by_address_;  // addr -> router index
  std::vector<Segment> segments_;
  std::vector<BgpSession> sessions_;
  /// igp_dist_[r] : router index -> distance (same IGP domain only).
  std::vector<std::map<std::size_t, double>> igp_dist_;
  /// Explicit adjacency (C-BGP mode): pairs + weight; empty otherwise.
  std::vector<CbgpLink> explicit_links_;
  /// Direct neighbors per router (explicit-links mode), irrespective of
  /// IGP domain — used for eBGP next-hop resolution.
  std::vector<std::set<std::size_t>> direct_neighbors_;
  /// True when the subnet's segment is down — failed directly or owned
  /// by a failed router.
  [[nodiscard]] bool subnet_down(const addressing::Ipv4Prefix& subnet) const {
    return failed_subnets_.contains(subnet) ||
           node_failed_subnets_.contains(subnet);
  }
  [[nodiscard]] bool router_failed(std::size_t r) const {
    return failed_routers_.contains(r);
  }

  /// Subnets whose segment is administratively down (what-if analysis).
  std::set<addressing::Ipv4Prefix> failed_subnets_;
  /// Routers taken down by fail_node, plus the segments they drag down.
  std::set<std::size_t> failed_routers_;
  std::set<addressing::Ipv4Prefix> node_failed_subnets_;
  ConvergenceReport report_;
  EmulationStats stats_;
  bool started_ = false;

  friend struct NetworkTestPeer;
};

}  // namespace autonet::emulation

// Declarative experiment campaigns (the paper's "specify, deploy,
// measure" loop, lifted from one invocation to a swept matrix). A
// campaign names a base topology, parameter axes (each a workflow knob
// with a list of values), scenario hooks (an incident timeline applied
// to every deployed network, measurement probes), and a repetition
// count; expansion takes the Cartesian product of the axes times the
// repetitions and derives a deterministic per-run seed from the run's
// identity, so the matrix is a pure function of the spec.
//
// The spec format is line-oriented like the incident scripts (`#`
// comments, blank lines skipped):
//
//   campaign rr-sweep
//   topology small-internet
//   repetitions 3
//   seed 42
//   axis ibgp mesh rr rr-auto
//   axis topology line:8 ring:8 small-internet
//   axis backoff_base_ms range 50 150 step 50
//   option platform netkit
//   incident fail_link as20r1 as20r2
//   incident restore_link as20r1 as20r2
//   probe reachability
//   probe traceroute as300r2 as100r2
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/workflow.hpp"
#include "emulation/incident.hpp"
#include "graph/graph.hpp"

namespace autonet::experiment {

class CampaignError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One swept parameter: a known workflow knob and the values it takes.
struct Axis {
  std::string key;
  std::vector<std::string> values;
};

/// A measurement probe executed against every successfully deployed run.
struct Probe {
  /// "reachability" (loopback matrix summary) or "traceroute".
  std::string kind;
  std::string src;  // traceroute only
  std::string dst;  // traceroute only
};

struct CampaignSpec {
  std::string name;
  /// Base topology (see resolve_topology); an axis named "topology"
  /// overrides it per run.
  std::string topology = "small-internet";
  int repetitions = 1;
  std::uint64_t seed = 0;
  /// Default worker count for the runner (0 = hardware concurrency).
  int jobs = 0;
  std::vector<Axis> axes;
  /// Fixed (non-swept) knob assignments, applied before axis values.
  std::vector<std::pair<std::string, std::string>> options;
  /// Incident timeline run against every deployed network.
  std::vector<emulation::IncidentStep> incident;
  std::vector<Probe> probes;

  /// Total runs in the expanded matrix.
  [[nodiscard]] std::size_t run_count() const;
};

/// One cell of the expanded matrix.
struct RunSpec {
  /// Position in the deterministic matrix order (axis-major, repetition
  /// last); doubles as the journal's tiebreaker.
  std::size_t index = 0;
  /// Stable identity: "ibgp=mesh,topology=line:8/rep0". Journal entries
  /// are keyed by this, so a resumed campaign recognises completed runs
  /// regardless of execution order.
  std::string id;
  /// Axis key/value assignments in axis-declaration order.
  std::vector<std::pair<std::string, std::string>> axis_values;
  int repetition = 0;
  /// Deterministic per-run seed: FNV-1a over (campaign seed, run id).
  /// Feeds deploy backoff jitter so retries replay byte-identically.
  std::uint64_t seed = 0;
  /// Topology spec after axis overrides.
  std::string topology;
  /// Fully assembled workflow options for this run.
  core::WorkflowOptions workflow;
};

/// Parses a campaign spec. Throws CampaignError on unknown directives,
/// unknown axis/option keys, or values the key cannot take.
[[nodiscard]] CampaignSpec parse_campaign(std::string_view text);
/// Reads and parses a campaign file.
[[nodiscard]] CampaignSpec load_campaign_file(const std::string& path);

/// Expands the spec into its run matrix (Cartesian product of axes,
/// times repetitions), assembling per-run WorkflowOptions and seeds.
[[nodiscard]] std::vector<RunSpec> expand(const CampaignSpec& spec);

/// Resolves a topology spec: a builtin name (figure5, small-internet,
/// bad-gadget, nren), a generator spec (line:N, ring:N, star:N, mesh:N,
/// grid:WxH, multi-as:N), or a topology file path.
[[nodiscard]] graph::Graph resolve_topology(const std::string& spec);

/// FNV-1a 64-bit, the seed-derivation hash (stable across platforms).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data,
                                    std::uint64_t basis = 14695981039346656037ull);

}  // namespace autonet::experiment

// Statistical aggregation over campaign results: runs are grouped by
// their axis assignment (repetitions collapse into one group), and every
// scalar metric in a group is summarised as count/mean/min/max/p50/p95.
// Percentiles are exact order statistics with linear interpolation
// (obs::sample_percentile) — repetitions are few, so there is no reason
// to approximate. Exports are byte-deterministic: groups sort by their
// canonical key, metrics by name, and all numbers format with %.6g.
#pragma once

#include <string>
#include <vector>

#include "experiment/journal.hpp"

namespace autonet::experiment {

struct MetricSummary {
  std::string name;
  std::size_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
};

struct GroupAggregate {
  /// Canonical group key: axis pairs sorted by key, "k=v,k=v" ("base"
  /// for an axis-less campaign).
  std::string key;
  std::vector<std::pair<std::string, std::string>> axis_values;
  std::size_t runs = 0;
  std::size_t failed = 0;
  std::vector<MetricSummary> metrics;
};

/// Groups and summarises. Metrics of failed runs are excluded (their
/// absence is visible in `failed`); groups appear even when every run
/// failed.
[[nodiscard]] std::vector<GroupAggregate> aggregate(
    const std::vector<RunResult>& results);

/// CSV: header "group,metric,count,mean,min,max,p50,p95", one row per
/// group x metric, both sorted.
[[nodiscard]] std::string to_csv(const std::vector<GroupAggregate>& groups);

/// JSONL: one {"group":...,"axes":{...},"runs":N,"failed":N,
/// "metrics":{name:{count,mean,min,max,p50,p95}}} object per group.
[[nodiscard]] std::string to_jsonl(const std::vector<GroupAggregate>& groups);

/// Human-readable table for the CLI.
[[nodiscard]] std::string to_text(const std::vector<GroupAggregate>& groups);

}  // namespace autonet::experiment

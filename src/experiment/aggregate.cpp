#include "experiment/aggregate.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <sstream>

#include "nidb/value.hpp"
#include "obs/stats.hpp"

namespace autonet::experiment {

namespace {

std::string canonical_key(
    std::vector<std::pair<std::string, std::string>> axis_values) {
  if (axis_values.empty()) return "base";
  std::sort(axis_values.begin(), axis_values.end());
  std::string key;
  for (const auto& [axis, value] : axis_values) {
    if (!key.empty()) key += ',';
    key += axis + "=" + value;
  }
  return key;
}

/// %.6g — enough digits to round-trip the summaries we produce, short
/// enough to stay stable across compilers' default float formatting.
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::vector<GroupAggregate> aggregate(const std::vector<RunResult>& results) {
  struct Accumulator {
    std::vector<std::pair<std::string, std::string>> axis_values;
    std::size_t runs = 0;
    std::size_t failed = 0;
    std::map<std::string, std::vector<double>> samples;
  };
  std::map<std::string, Accumulator> by_key;
  for (const RunResult& result : results) {
    const std::string key = canonical_key(result.axis_values);
    Accumulator& acc = by_key[key];
    if (acc.runs == 0) {
      acc.axis_values = result.axis_values;
      std::sort(acc.axis_values.begin(), acc.axis_values.end());
    }
    ++acc.runs;
    if (!result.ok) {
      ++acc.failed;
      continue;
    }
    for (const auto& [name, value] : result.metrics) {
      acc.samples[name].push_back(value);
    }
  }

  std::vector<GroupAggregate> groups;
  groups.reserve(by_key.size());
  for (auto& [key, acc] : by_key) {
    GroupAggregate group;
    group.key = key;
    group.axis_values = std::move(acc.axis_values);
    group.runs = acc.runs;
    group.failed = acc.failed;
    for (auto& [name, samples] : acc.samples) {
      MetricSummary summary;
      summary.name = name;
      summary.count = samples.size();
      summary.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
                     static_cast<double>(samples.size());
      summary.min = *std::min_element(samples.begin(), samples.end());
      summary.max = *std::max_element(samples.begin(), samples.end());
      summary.p50 = obs::sample_percentile(samples, 50);
      summary.p95 = obs::sample_percentile(samples, 95);
      group.metrics.push_back(std::move(summary));
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

std::string to_csv(const std::vector<GroupAggregate>& groups) {
  std::string out = "group,metric,count,mean,min,max,p50,p95\n";
  for (const GroupAggregate& group : groups) {
    for (const MetricSummary& m : group.metrics) {
      out += group.key + "," + m.name + "," + std::to_string(m.count) + "," +
             fmt(m.mean) + "," + fmt(m.min) + "," + fmt(m.max) + "," +
             fmt(m.p50) + "," + fmt(m.p95) + "\n";
    }
  }
  return out;
}

std::string to_jsonl(const std::vector<GroupAggregate>& groups) {
  std::string out;
  for (const GroupAggregate& group : groups) {
    nidb::Object object;
    object["group"] = group.key;
    nidb::Object axes;
    for (const auto& [axis, value] : group.axis_values) axes[axis] = value;
    object["axes"] = std::move(axes);
    object["runs"] = static_cast<std::int64_t>(group.runs);
    object["failed"] = static_cast<std::int64_t>(group.failed);
    nidb::Object metrics;
    for (const MetricSummary& m : group.metrics) {
      nidb::Object s;
      s["count"] = static_cast<std::int64_t>(m.count);
      // Store the formatted value: parse_json(to_jsonl(x)) must equal
      // what the CSV shows, and %.6g is the deterministic contract.
      s["mean"] = std::stod(fmt(m.mean));
      s["min"] = std::stod(fmt(m.min));
      s["max"] = std::stod(fmt(m.max));
      s["p50"] = std::stod(fmt(m.p50));
      s["p95"] = std::stod(fmt(m.p95));
      metrics[m.name] = std::move(s);
    }
    object["metrics"] = std::move(metrics);
    out += nidb::Value(std::move(object)).to_json() + "\n";
  }
  return out;
}

std::string to_text(const std::vector<GroupAggregate>& groups) {
  std::ostringstream out;
  for (const GroupAggregate& group : groups) {
    out << group.key << "  (" << group.runs << " runs";
    if (group.failed > 0) out << ", " << group.failed << " FAILED";
    out << ")\n";
    for (const MetricSummary& m : group.metrics) {
      out << "  " << m.name << ": mean=" << fmt(m.mean) << " min=" << fmt(m.min)
          << " max=" << fmt(m.max) << " p50=" << fmt(m.p50)
          << " p95=" << fmt(m.p95) << " (n=" << m.count << ")\n";
    }
  }
  return out.str();
}

}  // namespace autonet::experiment

// The campaign journal: one JSON line per completed run, appended and
// flushed as results land, so a campaign killed mid-matrix resumes by
// replaying the journal and executing only the missing runs — the same
// philosophy as the deployer's retries, applied at campaign scope. A
// truncated final line (the kill landed mid-write) is skipped on load.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace autonet::experiment {

/// Outcome of one run of the matrix. Metrics are scalar name/value
/// pairs, kept sorted by name for deterministic exports.
struct RunResult {
  std::string id;
  std::size_t index = 0;
  int repetition = 0;
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, std::string>> axis_values;
  bool ok = false;
  std::string error;
  std::vector<std::pair<std::string, double>> metrics;

  [[nodiscard]] double metric(const std::string& name, double fallback = 0) const;
  /// One JSON object (single line, sorted keys).
  [[nodiscard]] std::string to_json() const;
  /// Parses a journal line; throws std::runtime_error on malformed JSON.
  [[nodiscard]] static RunResult from_json(const std::string& line);
};

class Journal {
 public:
  /// An empty path disables persistence (in-memory campaign).
  explicit Journal(std::string path) : path_(std::move(path)) {}

  /// Loads completed results keyed by run id. Malformed trailing lines
  /// (from a mid-write kill) are ignored; a missing file is an empty
  /// journal.
  [[nodiscard]] std::map<std::string, RunResult> load() const;

  /// Appends one result and flushes (thread-safe; workers call this as
  /// runs finish).
  void append(const RunResult& result);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::mutex mutex_;
};

}  // namespace autonet::experiment

// The campaign journal: one JSON line per completed run, appended
// durably (O_APPEND + fsync) as results land, so a campaign killed
// mid-matrix resumes by replaying the journal and executing only the
// missing runs — the same philosophy as the deployer's retries, applied
// at campaign scope. A truncated final line (the kill landed mid-write)
// is skipped on load. Besides results, the journal records checkpoint
// pointers ({"ckpt":...} lines) for runs interrupted mid-pipeline, so a
// resumed campaign restarts those runs from their last completed phase.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace autonet::experiment {

/// Outcome of one run of the matrix. Metrics are scalar name/value
/// pairs, kept sorted by name for deterministic exports.
struct RunResult {
  std::string id;
  std::size_t index = 0;
  int repetition = 0;
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, std::string>> axis_values;
  bool ok = false;
  std::string error;
  std::vector<std::pair<std::string, double>> metrics;
  /// Path of the run's run_report.json, when report writing was on.
  /// Deliberately the only provenance field: whether a run resumed is
  /// derived from the journal's structure (see Journal::resumed_ids) so
  /// a resumed run's result line stays byte-identical to a fresh one.
  std::string report_path;

  [[nodiscard]] double metric(const std::string& name, double fallback = 0) const;
  /// One JSON object (single line, sorted keys).
  [[nodiscard]] std::string to_json() const;
  /// Parses a journal line; throws std::runtime_error on malformed JSON.
  [[nodiscard]] static RunResult from_json(const std::string& line);
};

/// A journal record for a run that was interrupted (cancelled, deadline
/// expired, process killed) after some phases checkpointed: where the
/// checkpoint directory is and how far the pipeline got. Serialized as a
/// {"ckpt": {...}} line, which result loaders skip (no "id" key).
struct CheckpointRecord {
  std::string run_id;
  /// The Workflow::checkpoint_to() directory for this run.
  std::string dir;
  /// Why the run stopped ("cancelled", "deadline", an error message).
  std::string reason;
  /// Phases durably completed when the run stopped, pipeline order.
  std::vector<std::string> phases;

  [[nodiscard]] std::string to_json() const;
  /// Parses a {"ckpt": ...} line; nullopt when the line is a result (or
  /// anything else); throws std::runtime_error on malformed JSON.
  [[nodiscard]] static std::optional<CheckpointRecord> from_json(
      const std::string& line);
};

class Journal {
 public:
  /// An empty path disables persistence (in-memory campaign).
  explicit Journal(std::string path) : path_(std::move(path)) {}

  /// Loads completed results keyed by run id. Malformed trailing lines
  /// (from a mid-write kill) and checkpoint records are ignored; a
  /// missing file is an empty journal.
  [[nodiscard]] std::map<std::string, RunResult> load() const;

  /// Loads checkpoint records keyed by run id (latest wins). Runs that
  /// later completed — a result line follows the ckpt line — are
  /// excluded: their checkpoints are spent.
  [[nodiscard]] std::map<std::string, CheckpointRecord> load_checkpoints() const;

  /// Run ids that were interrupted mid-pipeline and later completed: a
  /// {"ckpt":...} line superseded by an ok result. Resume provenance is
  /// derived from the journal's shape, never stored on the result, so
  /// resumed and fresh result lines stay byte-identical.
  [[nodiscard]] std::vector<std::string> resumed_ids() const;

  /// Appends one result durably — O_APPEND + fsync, so a crash can tear
  /// at most the final line, never reorder or interleave (thread-safe;
  /// workers call this as runs finish).
  void append(const RunResult& result);

  /// Appends a checkpoint pointer for an interrupted run (same
  /// durability).
  void append_checkpoint(const CheckpointRecord& record);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::mutex mutex_;
};

}  // namespace autonet::experiment

#include "experiment/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "core/checkpoint.hpp"
#include "measure/client.hpp"
#include "obs/span.hpp"
#include "obs/stats.hpp"
#include "report/run_report.hpp"

namespace autonet::experiment {

namespace {

void put_metric(RunResult& result, std::string name, double value) {
  result.metrics.emplace_back(std::move(name), value);
}

// Workflow-level metrics (convergence, deploy effort, emulation stats,
// phase durations) live in report::workflow_metrics so the run report
// and the journal derive from the same values; snapping also matches
// (report::snap_metric) so journal-replayed aggregates stay
// byte-identical to fresh ones.
void collect_metrics(RunResult& result, core::Workflow& wf, bool deployed) {
  for (auto& [name, value] : report::workflow_metrics(wf, deployed)) {
    put_metric(result, std::move(name), value);
  }
}

void run_probes(RunResult& result, core::Workflow& wf, const CampaignSpec& spec) {
  for (const Probe& probe : spec.probes) {
    if (probe.kind == "reachability") {
      const auto matrix = wf.measurement().reachability();
      const std::size_t total =
          matrix.routers.size() * (matrix.routers.size() - 1);
      const std::size_t pairs = matrix.reachable_pairs();
      put_metric(result, "probe.reachability.pairs", static_cast<double>(pairs));
      put_metric(result, "probe.reachability.total", static_cast<double>(total));
      put_metric(result, "probe.reachability.frac",
                 total == 0 ? 1.0
                            : static_cast<double>(pairs) /
                                  static_cast<double>(total));
    } else if (probe.kind == "traceroute") {
      const auto trace = wf.measurement().traceroute(probe.src, probe.dst);
      const std::string stem = "probe.trace." + probe.src + "-" + probe.dst;
      put_metric(result, stem + ".reached", trace.reached ? 1 : 0);
      put_metric(result, stem + ".hops",
                 static_cast<double>(trace.node_path.size()));
    }
  }
}

void run_incident(RunResult& result, core::Workflow& wf,
                  const CampaignSpec& spec) {
  if (spec.incident.empty()) return;
  emulation::IncidentRunner runner(wf.network());
  const emulation::IncidentReport report = runner.run(spec.incident);
  put_metric(result, "incident.ok", report.ok ? 1 : 0);
  put_metric(result, "incident.steps", static_cast<double>(report.steps.size()));
  std::size_t applied = 0;
  std::size_t lost_max = 0;
  for (const auto& step : report.steps) {
    if (step.applied) ++applied;
    lost_max = std::max(lost_max, step.lost.size());
  }
  put_metric(result, "incident.applied", static_cast<double>(applied));
  put_metric(result, "incident.pairs_lost_max", static_cast<double>(lost_max));
  put_metric(result, "incident.baseline_pairs",
             static_cast<double>(report.baseline_pairs));
  put_metric(result, "incident.final_pairs",
             report.steps.empty()
                 ? static_cast<double>(report.baseline_pairs)
                 : static_cast<double>(report.steps.back().pairs_after));
}

}  // namespace

std::string checkpoint_dir_name(const std::string& run_id) {
  std::string out;
  out.reserve(run_id.size() + 17);
  for (const char c : run_id) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  out += '-';
  out += std::to_string(core::checkpoint_hash(run_id) % 1000000000ULL);
  return out;
}

CampaignRunner::CampaignRunner(CampaignSpec spec, RunnerOptions options)
    : spec_(std::move(spec)), options_(options),
      owned_obs_(std::make_unique<obs::Registry>(
          std::make_unique<obs::VirtualClock>())) {}

RunResult CampaignRunner::execute_run(const RunSpec& run,
                                      const CampaignSpec& spec,
                                      obs::Registry* run_registry,
                                      const std::string& checkpoint_dir,
                                      core::RunControl* control,
                                      const std::string& report_path,
                                      const std::string& baseline_dir) {
  RunResult result;
  result.id = run.id;
  result.index = run.index;
  result.repetition = run.repetition;
  result.seed = run.seed;
  result.axis_values = run.axis_values;

  // Own registry + virtual clock: the run's telemetry is isolated from
  // every other run and deterministic regardless of scheduling.
  std::unique_ptr<obs::Registry> owned;
  if (run_registry == nullptr) {
    owned = std::make_unique<obs::Registry>(std::make_unique<obs::VirtualClock>());
    run_registry = owned.get();
  }
  obs::RegistryScope scope(*run_registry);

  core::Workflow wf(run.workflow);
  wf.use_telemetry(run_registry);
  wf.use_control(control);
  if (!checkpoint_dir.empty()) wf.checkpoint_to(checkpoint_dir);
  if (!baseline_dir.empty()) wf.incremental_from(baseline_dir);
  try {
    wf.run(resolve_topology(run.topology));
    const bool deployed = wf.deploy_result().success;
    if (deployed) {
      wf.measure();
      run_probes(result, wf, spec);
      run_incident(result, wf, spec);
      result.ok = wf.deploy_result().errors.empty();
      if (!result.ok) result.error = wf.errors().front().to_string();
    } else {
      result.error = wf.errors().empty() ? "deployment failed"
                                         : wf.errors().front().to_string();
    }
    collect_metrics(result, wf, deployed);
    // Incremental savings, journalled per run (not in workflow_metrics:
    // they depend on the baseline, so they must never enter the
    // byte-compared run report). `exp report` aggregates them per axis.
    if (wf.incremental_report().enabled) {
      const core::IncrementalReport& incr = wf.incremental_report();
      const double dirty = static_cast<double>(incr.plan.dirty_devices.size());
      const double reused = static_cast<double>(incr.plan.reused_devices.size());
      put_metric(result, "delta.dirty_devices", dirty);
      put_metric(result, "delta.reused_devices", reused);
      put_metric(result, "delta.reuse_ratio",
                 dirty + reused == 0 ? (incr.mode == "warm" ? 1.0 : 0.0)
                                     : reused / (dirty + reused));
    }
  } catch (const core::Interrupted&) {
    // Cancellation/deadline is not a run failure: completed phases are
    // checkpointed; the caller journals a pointer and stops gracefully.
    throw;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  if (!report_path.empty()) {
    // Observability artifact: failing to write it must not turn a good
    // run into a failed one.
    try {
      report::write_run_report(wf, report_path);
      result.report_path = report_path;
    } catch (const std::exception&) {
    }
  }
  std::sort(result.metrics.begin(), result.metrics.end());
  for (auto& [name, value] : result.metrics) value = report::snap_metric(value);
  return result;
}

CampaignResult CampaignRunner::run() {
  obs::Registry& campaign_obs = telemetry();
  obs::RegistryScope campaign_scope(campaign_obs);
  obs::Span root(campaign_obs, "campaign." + spec_.name);

  std::vector<RunSpec> matrix;
  {
    obs::Span span(campaign_obs, "campaign.expand");
    matrix = expand(spec_);
  }

  if (!options_.report_dir.empty()) {
    std::filesystem::create_directories(options_.report_dir);
  }

  Journal journal(options_.journal_path);
  std::map<std::string, RunResult> done =
      options_.resume ? journal.load() : std::map<std::string, RunResult>{};
  std::map<std::string, CheckpointRecord> pending_ckpts =
      options_.resume ? journal.load_checkpoints()
                      : std::map<std::string, CheckpointRecord>{};

  CampaignResult campaign;
  campaign.name = spec_.name;
  campaign.results.resize(matrix.size());
  std::vector<std::vector<obs::Registry::HistogramSnapshot>> run_histograms(
      matrix.size());

  int jobs = options_.jobs != 0 ? options_.jobs : spec_.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 2;
  }
  jobs = std::min<int>(jobs, static_cast<int>(matrix.size()));
  jobs = std::max(jobs, 1);

  // Incremental campaigns: matrix[0] completes first (synchronously) and
  // becomes the delta-engine baseline every later cell chains off.
  std::string baseline_dir;
  if (options_.incremental && !options_.checkpoint_dir.empty() &&
      !matrix.empty()) {
    baseline_dir =
        options_.checkpoint_dir + "/" + checkpoint_dir_name(matrix[0].id);
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> skipped{0};
  std::atomic<std::size_t> resumed{0};
  std::atomic<bool> stop{false};
  // One matrix cell, start to journalled finish. Returns false when the
  // pool must drain (cancellation / expired deadline).
  auto process = [&](std::size_t i) -> bool {
    const RunSpec& run = matrix[i];
    if (const auto it = done.find(run.id); it != done.end() && it->second.ok) {
      // Journal hit: the run completed in a previous invocation.
      campaign.results[i] = it->second;
      campaign.results[i].index = run.index;
      skipped.fetch_add(1);
      return true;
    }
    std::string ckpt_dir;
    if (!options_.checkpoint_dir.empty()) {
      ckpt_dir = options_.checkpoint_dir + "/" + checkpoint_dir_name(run.id);
    }
    std::string report_path;
    if (!options_.report_dir.empty()) {
      report_path = options_.report_dir + "/" + checkpoint_dir_name(run.id) +
                    ".report.json";
    }
    if (pending_ckpts.find(run.id) != pending_ckpts.end()) {
      resumed.fetch_add(1);
    }
    obs::Registry run_registry(std::make_unique<obs::VirtualClock>());
    try {
      RunResult result =
          execute_run(run, spec_, &run_registry, ckpt_dir, options_.control,
                      report_path, i == 0 ? std::string() : baseline_dir);
      journal.append(result);
      campaign_obs.log_event("exp", {{"campaign", spec_.name},
                                     {"run", result.id},
                                     {"ok", result.ok ? "true" : "false"}});
      run_histograms[i] = run_registry.histogram_values();
      campaign.results[i] = std::move(result);
      executed.fetch_add(1);
    } catch (const core::Interrupted& e) {
      // Journal where this run got to, so the next invocation resumes
      // it from its last completed phase, then drain the pool.
      if (!ckpt_dir.empty()) {
        CheckpointRecord record;
        record.run_id = run.id;
        record.dir = ckpt_dir;
        record.reason = e.what();
        record.phases = core::CheckpointStore(ckpt_dir).phases();
        journal.append_checkpoint(record);
      }
      stop.store(true);
      return false;
    }
    return true;
  };
  auto worker = [&]() {
    for (;;) {
      // A cancellation or expired deadline stops the pool between runs;
      // the run that observed it has already checkpointed its progress.
      if (stop.load() ||
          (options_.control != nullptr && options_.control->should_stop())) {
        stop.store(true);
        return;
      }
      const std::size_t i = next.fetch_add(1);
      if (i >= matrix.size()) return;
      if (!process(i)) return;
    }
  };

  {
    obs::Span span(campaign_obs, "campaign.execute");
    span.arg("runs", std::to_string(matrix.size()))
        .arg("jobs", std::to_string(jobs));
    if (!baseline_dir.empty()) {
      // The baseline cell runs alone; every other cell plans against its
      // finished checkpoint directory.
      next.store(1);
      if (!process(0)) stop.store(true);
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }

  {
    // Merge per-phase span histograms across runs in matrix order; the
    // merge is order-independent (see obs::merge_histograms), so the
    // result is identical however the pool interleaved.
    obs::Span span(campaign_obs, "campaign.aggregate");
    std::map<std::string, std::vector<obs::Registry::HistogramSnapshot>> by_name;
    for (const auto& snapshots : run_histograms) {
      for (const auto& snapshot : snapshots) {
        if (snapshot.name.starts_with("span.")) {
          by_name[snapshot.name].push_back(snapshot);
        }
      }
    }
    for (auto& [name, parts] : by_name) {
      campaign.merged_spans.emplace(name, obs::merge_histograms(name, parts));
    }
  }

  campaign.executed = executed.load();
  campaign.skipped = skipped.load();
  campaign.resumed = resumed.load();
  campaign.interrupted = stop.load();
  if (campaign.interrupted) {
    // Drop the placeholder slots of runs the stopped pool never reached;
    // what remains is exactly what completed (and is journalled).
    std::erase_if(campaign.results,
                  [](const RunResult& r) { return r.id.empty(); });
  }
  for (const RunResult& result : campaign.results) {
    if (!result.ok) ++campaign.failed;
  }
  return campaign;
}

}  // namespace autonet::experiment

// Executes an expanded campaign matrix on a pool of worker threads.
// Isolation is the design invariant: each run builds its own Workflow
// (own ANM/NIDB/config tree/emulation host) and records telemetry into
// its own obs::Registry driven by a VirtualClock, made current on the
// worker via obs::RegistryScope — so runs never share mutable state, and
// every per-run duration/metric is a pure function of the run's code
// path (byte-deterministic across invocations and across thread
// interleavings).
//
// The campaign itself gets a span tree in a campaign-level registry
// (expand / execute / aggregate children under "campaign.<name>"), one
// "exp" log event per completed run, and merged per-phase span
// histograms (obs::merge_histograms over the per-run registries, in
// matrix order).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "experiment/campaign.hpp"
#include "experiment/journal.hpp"
#include "obs/registry.hpp"

namespace autonet::experiment {

struct RunnerOptions {
  /// Worker threads; 0 = spec.jobs, then hardware concurrency.
  int jobs = 0;
  /// Journal path; empty = no persistence (every run executes).
  std::string journal_path;
  /// When false, previously journalled runs are re-executed.
  bool resume = true;
  /// Root for per-run checkpoint directories
  /// (<checkpoint_dir>/<sanitized-run-id>); empty = no mid-run
  /// checkpointing. With a journal, interrupted runs leave a {"ckpt":...}
  /// pointer and a later invocation resumes them at the last completed
  /// phase instead of from scratch.
  std::string checkpoint_dir;
  /// Root for per-run run_report.json files
  /// (<report_dir>/<sanitized-run-id>.report.json); empty = no reports.
  /// A run's report is byte-deterministic (same spec + seed ⇒ same
  /// bytes, resumed or not), so committed reports gate regressions via
  /// `autonet report diff`.
  std::string report_dir;
  /// Incremental campaigns (needs checkpoint_dir): the first matrix cell
  /// runs to completion first and every later cell chains off its
  /// checkpoint directory through the delta engine, so per-axis sweeps
  /// recompute only what each axis value actually dirties. Each run
  /// journals delta.* metrics (dirty/reused devices, reuse ratio) that
  /// `exp report` aggregates per axis.
  bool incremental = false;
  /// Campaign-wide supervision (non-owning): cancellation and the run
  /// deadline are observed by every worker between runs and by the
  /// running workflows at every phase/sub-phase boundary.
  core::RunControl* control = nullptr;
};

struct CampaignResult {
  std::string name;
  /// All results, sorted by matrix index (deterministic order).
  std::vector<RunResult> results;
  std::size_t executed = 0;  // runs actually executed this invocation
  std::size_t skipped = 0;   // runs satisfied from the journal
  std::size_t resumed = 0;   // runs restarted from a mid-run checkpoint
  std::size_t failed = 0;    // results with ok == false
  /// True when the campaign stopped early on cancellation or an expired
  /// deadline; `results` then holds what completed (partial results are
  /// preserved, and journalled runs stay resumable).
  bool interrupted = false;
  /// Merged per-phase span histograms across all runs, keyed
  /// "span.<phase>.us" (see obs::merge_histograms).
  std::map<std::string, obs::Registry::HistogramSnapshot> merged_spans;

  [[nodiscard]] bool all_ok() const { return failed == 0; }
};

/// The filesystem-safe checkpoint directory name for a run id: non-
/// alphanumerics become '_', with a content-hash suffix so distinct ids
/// never collide after sanitization.
[[nodiscard]] std::string checkpoint_dir_name(const std::string& run_id);

class CampaignRunner {
 public:
  CampaignRunner(CampaignSpec spec, RunnerOptions options = {});

  /// Expands, executes (in parallel), and journals the campaign.
  /// Telemetry lands in telemetry() — a virtual-clock registry unless
  /// use_telemetry() was given one.
  [[nodiscard]] CampaignResult run();

  /// Executes exactly one RunSpec in isolation (no journal, no pool).
  /// The building block workers call; exposed for tests and for
  /// embedding runs in other drivers. A non-empty `checkpoint_dir`
  /// snapshots phases there (and restores any already recorded); an
  /// attached `control` makes the run cancellable — core::Interrupted
  /// propagates to the caller, with completed phases checkpointed.
  /// A non-empty `report_path` writes the run's run_report.json there
  /// (best-effort; a report write failure never fails the run).
  /// A non-empty `baseline_dir` chains the run off that checkpoint
  /// directory through the incremental delta engine and journals the
  /// resulting delta.* metrics.
  [[nodiscard]] static RunResult execute_run(const RunSpec& run,
                                             const CampaignSpec& spec,
                                             obs::Registry* run_registry = nullptr,
                                             const std::string& checkpoint_dir = "",
                                             core::RunControl* control = nullptr,
                                             const std::string& report_path = "",
                                             const std::string& baseline_dir = "");

  /// Campaign-level telemetry registry override (tests).
  CampaignRunner& use_telemetry(obs::Registry* registry) {
    obs_ = registry;
    return *this;
  }
  [[nodiscard]] obs::Registry& telemetry() {
    return obs_ != nullptr ? *obs_ : *owned_obs_;
  }

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }

 private:
  CampaignSpec spec_;
  RunnerOptions options_;
  std::unique_ptr<obs::Registry> owned_obs_;
  obs::Registry* obs_ = nullptr;
};

}  // namespace autonet::experiment

#include "experiment/campaign.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "topology/builtin.hpp"
#include "topology/generators.hpp"
#include "topology/load.hpp"

namespace autonet::experiment {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) {
    if (token.starts_with('#')) break;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

bool parse_bool(const std::string& v) {
  if (v == "on" || v == "true" || v == "1") return true;
  if (v == "off" || v == "false" || v == "0") return false;
  throw CampaignError("campaign: expected on/off, got '" + v + "'");
}

std::int64_t parse_int(const std::string& v) {
  try {
    std::size_t pos = 0;
    const std::int64_t n = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return n;
  } catch (const std::exception&) {
    throw CampaignError("campaign: expected an integer, got '" + v + "'");
  }
}

// The swept/fixable knobs. Each key validates its values at parse time
// (a typo fails the spec, not run #37 of the matrix) and knows how to
// apply itself to a RunSpec during expansion.
struct KnobDef {
  const char* key;
  void (*validate)(const std::string&);
  void (*apply)(RunSpec&, const std::string&);
};

const KnobDef kKnobs[] = {
    {"topology", [](const std::string&) {},
     [](RunSpec& run, const std::string& v) { run.topology = v; }},
    {"ibgp",
     [](const std::string& v) {
       if (v != "mesh" && v != "rr" && v != "rr-auto") {
         throw CampaignError("campaign: ibgp must be mesh|rr|rr-auto, got '" +
                             v + "'");
       }
     },
     [](RunSpec& run, const std::string& v) { run.workflow.ibgp = v; }},
    {"platform", [](const std::string&) {},
     [](RunSpec& run, const std::string& v) { run.workflow.platform = v; }},
    {"isis", [](const std::string& v) { parse_bool(v); },
     [](RunSpec& run, const std::string& v) {
       run.workflow.enable_isis = parse_bool(v);
     }},
    {"dns", [](const std::string& v) { parse_bool(v); },
     [](RunSpec& run, const std::string& v) {
       run.workflow.enable_dns = parse_bool(v);
     }},
    {"ospf_cost", [](const std::string& v) { parse_int(v); },
     [](RunSpec& run, const std::string& v) {
       run.workflow.ospf.default_cost = parse_int(v);
     }},
    {"rr_per_as", [](const std::string& v) { parse_int(v); },
     [](RunSpec& run, const std::string& v) {
       run.workflow.rr_select.per_as = static_cast<std::size_t>(parse_int(v));
     }},
    {"backoff_base_ms", [](const std::string& v) { parse_int(v); },
     [](RunSpec& run, const std::string& v) {
       run.workflow.deploy.backoff_base_ms = static_cast<int>(parse_int(v));
     }},
    {"max_transfer_attempts", [](const std::string& v) { parse_int(v); },
     [](RunSpec& run, const std::string& v) {
       run.workflow.deploy.max_transfer_attempts = static_cast<int>(parse_int(v));
     }},
    {"max_boot_attempts", [](const std::string& v) { parse_int(v); },
     [](RunSpec& run, const std::string& v) {
       run.workflow.deploy.max_boot_attempts = static_cast<int>(parse_int(v));
     }},
    {"allow_partial", [](const std::string& v) { parse_bool(v); },
     [](RunSpec& run, const std::string& v) {
       run.workflow.deploy.allow_partial = parse_bool(v);
     }},
};

const KnobDef* find_knob(const std::string& key) {
  for (const KnobDef& knob : kKnobs) {
    if (key == knob.key) return &knob;
  }
  return nullptr;
}

}  // namespace

std::size_t CampaignSpec::run_count() const {
  std::size_t cells = 1;
  for (const Axis& axis : axes) cells *= axis.values.size();
  return cells * static_cast<std::size_t>(repetitions);
}

CampaignSpec parse_campaign(std::string_view text) {
  CampaignSpec spec;
  std::set<std::string> seen_axes;
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& verb = tokens[0];
    auto fail = [&](const std::string& why) {
      throw CampaignError("campaign line " + std::to_string(line_no) + ": " +
                          why);
    };
    if (verb == "campaign") {
      if (tokens.size() != 2) fail("campaign expects a name");
      spec.name = tokens[1];
    } else if (verb == "topology") {
      if (tokens.size() != 2) fail("topology expects one spec");
      spec.topology = tokens[1];
    } else if (verb == "repetitions") {
      if (tokens.size() != 2) fail("repetitions expects a count");
      spec.repetitions = static_cast<int>(parse_int(tokens[1]));
      if (spec.repetitions < 1) fail("repetitions must be >= 1");
    } else if (verb == "seed") {
      if (tokens.size() != 2) fail("seed expects an integer");
      spec.seed = static_cast<std::uint64_t>(parse_int(tokens[1]));
    } else if (verb == "jobs") {
      if (tokens.size() != 2) fail("jobs expects a count");
      spec.jobs = static_cast<int>(parse_int(tokens[1]));
      if (spec.jobs < 0) fail("jobs must be >= 0");
    } else if (verb == "axis") {
      if (tokens.size() < 3) fail("axis expects a key and values");
      Axis axis;
      axis.key = tokens[1];
      const KnobDef* knob = find_knob(axis.key);
      if (knob == nullptr) fail("unknown axis key '" + axis.key + "'");
      if (!seen_axes.insert(axis.key).second) {
        fail("duplicate axis '" + axis.key + "'");
      }
      if (tokens.size() >= 5 && tokens[2] == "range") {
        // axis <key> range <lo> <hi> [step <s>]
        const std::int64_t lo = parse_int(tokens[3]);
        const std::int64_t hi = parse_int(tokens[4]);
        std::int64_t step = 1;
        if (tokens.size() == 7 && tokens[5] == "step") {
          step = parse_int(tokens[6]);
        } else if (tokens.size() != 5) {
          fail("axis range syntax: range <lo> <hi> [step <s>]");
        }
        if (step < 1 || hi < lo) fail("axis range must ascend with step >= 1");
        for (std::int64_t v = lo; v <= hi; v += step) {
          axis.values.push_back(std::to_string(v));
        }
      } else {
        axis.values.assign(tokens.begin() + 2, tokens.end());
      }
      for (const std::string& value : axis.values) knob->validate(value);
      spec.axes.push_back(std::move(axis));
    } else if (verb == "option") {
      if (tokens.size() != 3) fail("option expects a key and a value");
      const KnobDef* knob = find_knob(tokens[1]);
      if (knob == nullptr) fail("unknown option key '" + tokens[1] + "'");
      knob->validate(tokens[2]);
      spec.options.emplace_back(tokens[1], tokens[2]);
    } else if (verb == "incident") {
      // Delegate verb/arity checking to the incident parser.
      std::string step_line;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (i > 1) step_line += ' ';
        step_line += tokens[i];
      }
      try {
        auto steps = emulation::parse_incident_script(step_line);
        spec.incident.insert(spec.incident.end(), steps.begin(), steps.end());
      } catch (const emulation::IncidentError& e) {
        fail(e.what());
      }
    } else if (verb == "probe") {
      if (tokens.size() == 2 && tokens[1] == "reachability") {
        spec.probes.push_back({"reachability", "", ""});
      } else if (tokens.size() == 4 && tokens[1] == "traceroute") {
        spec.probes.push_back({"traceroute", tokens[2], tokens[3]});
      } else {
        fail("probe expects 'reachability' or 'traceroute <src> <dst>'");
      }
    } else {
      fail("unknown directive '" + verb + "'");
    }
  }
  if (spec.name.empty()) throw CampaignError("campaign: missing 'campaign <name>'");
  return spec;
}

CampaignSpec load_campaign_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw CampaignError("campaign: cannot read " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return parse_campaign(text.str());
}

std::uint64_t fnv1a64(std::string_view data, std::uint64_t basis) {
  std::uint64_t hash = basis;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::vector<RunSpec> expand(const CampaignSpec& spec) {
  std::vector<RunSpec> runs;
  runs.reserve(spec.run_count());
  // Odometer over the axes (axis-major order, repetition innermost):
  // the matrix order — and therefore every run id and seed — is a pure
  // function of the spec.
  std::vector<std::size_t> odometer(spec.axes.size(), 0);
  const std::size_t cells = spec.axes.empty() ? 1
                                              : [&] {
                                                  std::size_t n = 1;
                                                  for (const Axis& a : spec.axes)
                                                    n *= a.values.size();
                                                  return n;
                                                }();
  for (std::size_t cell = 0; cell < cells; ++cell) {
    for (int rep = 0; rep < spec.repetitions; ++rep) {
      RunSpec run;
      run.index = runs.size();
      run.repetition = rep;
      run.topology = spec.topology;
      for (const auto& [key, value] : spec.options) {
        find_knob(key)->apply(run, value);
      }
      std::string id;
      for (std::size_t a = 0; a < spec.axes.size(); ++a) {
        const Axis& axis = spec.axes[a];
        const std::string& value = axis.values[odometer[a]];
        find_knob(axis.key)->apply(run, value);
        run.axis_values.emplace_back(axis.key, value);
        if (!id.empty()) id += ',';
        id += axis.key + "=" + value;
      }
      if (id.empty()) id = "base";
      run.id = id + "/rep" + std::to_string(rep);
      run.seed = fnv1a64(run.id, fnv1a64(spec.name) ^ spec.seed);
      run.workflow.deploy.backoff_seed = run.seed;
      runs.push_back(std::move(run));
    }
    // Advance the odometer (last axis fastest).
    for (std::size_t a = spec.axes.size(); a-- > 0;) {
      if (++odometer[a] < spec.axes[a].values.size()) break;
      odometer[a] = 0;
    }
  }
  return runs;
}

graph::Graph resolve_topology(const std::string& spec) {
  if (spec == "figure5") return topology::figure5();
  if (spec == "small-internet") return topology::small_internet();
  if (spec == "bad-gadget") return topology::bad_gadget();
  if (spec == "nren") return topology::make_nren_model();
  const auto colon = spec.find(':');
  if (colon != std::string::npos) {
    const std::string kind = spec.substr(0, colon);
    const std::string arg = spec.substr(colon + 1);
    auto size = [&](const std::string& v) {
      const std::int64_t n = parse_int(v);
      if (n < 1) throw CampaignError("topology size must be >= 1: " + spec);
      return static_cast<std::size_t>(n);
    };
    if (kind == "line") return topology::make_line(size(arg));
    if (kind == "ring") return topology::make_ring(size(arg));
    if (kind == "star") return topology::make_star(size(arg));
    if (kind == "mesh") return topology::make_full_mesh(size(arg));
    if (kind == "grid") {
      const auto x = arg.find('x');
      if (x == std::string::npos) {
        throw CampaignError("grid topology expects WxH: " + spec);
      }
      return topology::make_grid(size(arg.substr(0, x)), size(arg.substr(x + 1)));
    }
    if (kind == "multi-as") {
      topology::MultiAsOptions opts;
      opts.as_count = size(arg);
      return topology::make_multi_as(opts);
    }
    throw CampaignError("unknown topology generator '" + kind + "' in " + spec);
  }
  return topology::load_topology_file(spec);
}

}  // namespace autonet::experiment

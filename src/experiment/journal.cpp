#include "experiment/journal.hpp"

#include <fstream>
#include <sstream>

#include "core/checkpoint.hpp"
#include "nidb/value.hpp"

namespace autonet::experiment {

double RunResult::metric(const std::string& name, double fallback) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return fallback;
}

std::string RunResult::to_json() const {
  nidb::Object object;
  object["id"] = id;
  object["index"] = static_cast<std::int64_t>(index);
  object["rep"] = repetition;
  object["seed"] = static_cast<std::int64_t>(seed);
  object["ok"] = ok;
  if (!error.empty()) object["error"] = error;
  // Conditional key: report-less runs serialize exactly as they did
  // before the field existed.
  if (!report_path.empty()) object["report"] = report_path;
  nidb::Object axes;
  for (const auto& [key, value] : axis_values) axes[key] = value;
  object["axes"] = std::move(axes);
  nidb::Object metric_obj;
  for (const auto& [key, value] : metrics) metric_obj[key] = value;
  object["metrics"] = std::move(metric_obj);
  return nidb::Value(std::move(object)).to_json();
}

RunResult RunResult::from_json(const std::string& line) {
  const nidb::Value value = nidb::parse_json(line);
  RunResult result;
  if (const nidb::Value* v = value.find("id"); v && v->as_string()) {
    result.id = *v->as_string();
  } else {
    throw std::runtime_error("journal line without an id");
  }
  if (const nidb::Value* v = value.find("index")) {
    result.index = static_cast<std::size_t>(v->as_int().value_or(0));
  }
  if (const nidb::Value* v = value.find("rep")) {
    result.repetition = static_cast<int>(v->as_int().value_or(0));
  }
  if (const nidb::Value* v = value.find("seed")) {
    result.seed = static_cast<std::uint64_t>(v->as_int().value_or(0));
  }
  if (const nidb::Value* v = value.find("ok")) {
    result.ok = v->as_bool().value_or(false);
  }
  if (const nidb::Value* v = value.find("error"); v && v->as_string()) {
    result.error = *v->as_string();
  }
  if (const nidb::Value* v = value.find("report"); v && v->as_string()) {
    result.report_path = *v->as_string();
  }
  if (const nidb::Value* v = value.find("axes")) {
    if (const nidb::Object* object = v->as_object()) {
      for (const auto& [key, axis_value] : *object) {
        result.axis_values.emplace_back(key, axis_value.to_display());
      }
    }
  }
  if (const nidb::Value* v = value.find("metrics")) {
    if (const nidb::Object* object = v->as_object()) {
      for (const auto& [key, metric_value] : *object) {
        result.metrics.emplace_back(key, metric_value.as_double().value_or(0));
      }
    }
  }
  return result;
}

std::string CheckpointRecord::to_json() const {
  nidb::Object inner;
  inner["run_id"] = run_id;
  inner["dir"] = dir;
  if (!reason.empty()) inner["reason"] = reason;
  nidb::Array done;
  for (const std::string& phase : phases) done.emplace_back(phase);
  inner["phases"] = nidb::Value(std::move(done));
  nidb::Object object;
  object["ckpt"] = nidb::Value(std::move(inner));
  return nidb::Value(std::move(object)).to_json();
}

std::optional<CheckpointRecord> CheckpointRecord::from_json(
    const std::string& line) {
  const nidb::Value value = nidb::parse_json(line);
  const nidb::Value* inner = value.find("ckpt");
  if (inner == nullptr || !inner->is_object()) return std::nullopt;
  CheckpointRecord record;
  if (const nidb::Value* v = inner->find("run_id"); v && v->as_string()) {
    record.run_id = *v->as_string();
  } else {
    throw std::runtime_error("ckpt journal line without a run_id");
  }
  if (const nidb::Value* v = inner->find("dir"); v && v->as_string()) {
    record.dir = *v->as_string();
  }
  if (const nidb::Value* v = inner->find("reason"); v && v->as_string()) {
    record.reason = *v->as_string();
  }
  if (const nidb::Value* v = inner->find("phases")) {
    if (const nidb::Array* arr = v->as_array()) {
      for (const auto& phase : *arr) {
        if (const auto* s = phase.as_string()) record.phases.push_back(*s);
      }
    }
  }
  return record;
}

std::map<std::string, RunResult> Journal::load() const {
  std::map<std::string, RunResult> results;
  if (path_.empty()) return results;
  std::ifstream file(path_, std::ios::binary);
  if (!file) return results;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    try {
      RunResult result = RunResult::from_json(line);
      std::string key = result.id;
      results.insert_or_assign(std::move(key), std::move(result));
    } catch (const std::exception&) {
      // A kill mid-append leaves at most one torn line; skip it and let
      // the runner redo that run.
      continue;
    }
  }
  return results;
}

std::map<std::string, CheckpointRecord> Journal::load_checkpoints() const {
  std::map<std::string, CheckpointRecord> records;
  if (path_.empty()) return records;
  std::ifstream file(path_, std::ios::binary);
  if (!file) return records;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    try {
      if (auto record = CheckpointRecord::from_json(line)) {
        std::string key = record->run_id;
        records.insert_or_assign(std::move(key), std::move(*record));
        continue;
      }
      // A completed result supersedes any earlier checkpoint pointer for
      // the same run.
      const RunResult result = RunResult::from_json(line);
      if (result.ok) records.erase(result.id);
    } catch (const std::exception&) {
      continue;  // torn tail
    }
  }
  return records;
}

std::vector<std::string> Journal::resumed_ids() const {
  std::vector<std::string> resumed;
  if (path_.empty()) return resumed;
  std::ifstream file(path_, std::ios::binary);
  if (!file) return resumed;
  std::map<std::string, bool> pending;  // run id -> still unspent
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    try {
      if (auto record = CheckpointRecord::from_json(line)) {
        pending[record->run_id] = true;
        continue;
      }
      const RunResult result = RunResult::from_json(line);
      auto it = pending.find(result.id);
      if (it != pending.end() && it->second && result.ok) {
        it->second = false;
        resumed.push_back(result.id);
      }
    } catch (const std::exception&) {
      continue;  // torn tail
    }
  }
  return resumed;
}

void Journal::append(const RunResult& result) {
  if (path_.empty()) return;
  const std::string line = result.to_json();
  std::lock_guard lock(mutex_);
  core::append_line_durable(path_, line);
}

void Journal::append_checkpoint(const CheckpointRecord& record) {
  if (path_.empty()) return;
  const std::string line = record.to_json();
  std::lock_guard lock(mutex_);
  core::append_line_durable(path_, line);
}

}  // namespace autonet::experiment

#include "report/run_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "core/workflow.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "verify/analysis/cache.hpp"

namespace autonet::report {

namespace {

// Pipeline order; must match core::Workflow's kPipeline.
constexpr const char* kPipeline[] = {"load",   "design", "compile", "render",
                                     "lint",   "deploy", "measure"};

// %.17g: doubles round-trip exactly, matching the checkpoint manifest,
// so a restored phase duration serializes to the same bytes as the
// fresh one.
std::string fmt_ms(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", ms);
  return buf;
}

// Journal precision: integral values exact, everything else %.6g — the
// same snap the experiment journal applies, so report metrics and
// journal metrics agree byte-for-byte.
std::string fmt_metric(double value) {
  if (value == static_cast<double>(static_cast<std::int64_t>(value))) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

void put_metric(std::vector<std::pair<std::string, double>>& out,
                std::string name, double value) {
  out.emplace_back(std::move(name), value);
}

double number_of(const nidb::Value& v) {
  if (auto i = v.as_int()) return static_cast<double>(*i);
  if (auto d = v.as_double()) return *d;
  return 0;
}

// Ordered key/number extraction used by diff_reports on "phases" (an
// array of {name, ms}) and on the flat "metrics"/"event_counts"
// objects.
std::vector<std::pair<std::string, double>> phases_of(const nidb::Value& report) {
  std::vector<std::pair<std::string, double>> out;
  const nidb::Value* phases = report.find("phases");
  if (phases == nullptr || !phases->is_array()) return out;
  for (const nidb::Value& entry : *phases->as_array()) {
    const nidb::Value* name = entry.find("name");
    const nidb::Value* ms = entry.find("ms");
    if (name != nullptr && name->as_string() != nullptr && ms != nullptr) {
      out.emplace_back(*name->as_string(), number_of(*ms));
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> object_numbers_of(
    const nidb::Value& report, const char* key) {
  std::vector<std::pair<std::string, double>> out;
  const nidb::Value* obj = report.find(key);
  if (obj == nullptr || !obj->is_object()) return out;
  for (const auto& [name, value] : *obj->as_object()) {
    out.emplace_back(name, number_of(value));
  }
  return out;
}

std::string string_of(const nidb::Value& report, const char* key) {
  const nidb::Value* v = report.find(key);
  return v != nullptr && v->as_string() != nullptr ? *v->as_string() : "";
}

bool past_threshold(double a, double b, double threshold_pct) {
  if (a == b) return false;
  if (a == 0) return true;  // appeared from nothing: always drift
  return std::fabs(b - a) / std::fabs(a) * 100.0 > threshold_pct;
}

// Walks the name-sorted union of two metric lists, reporting pairs
// where only one side has the key or the values drift past the
// threshold.
void diff_numbers(const std::vector<std::pair<std::string, double>>& a,
                  const std::vector<std::pair<std::string, double>>& b,
                  const std::string& kind, double threshold_pct,
                  std::vector<ReportDiff::Entry>& out) {
  std::map<std::string, double> mb(b.begin(), b.end());
  std::map<std::string, double> ma(a.begin(), a.end());
  for (const auto& [key, va] : ma) {
    auto it = mb.find(key);
    if (it == mb.end()) {
      out.push_back({kind, key, fmt_metric(va), "-"});
    } else if (past_threshold(va, it->second, threshold_pct)) {
      out.push_back({kind, key, fmt_metric(va), fmt_metric(it->second)});
    }
  }
  for (const auto& [key, vb] : mb) {
    if (ma.find(key) == ma.end()) {
      out.push_back({kind, key, "-", fmt_metric(vb)});
    }
  }
}

}  // namespace

double snap_metric(double value) {
  if (value == static_cast<double>(static_cast<std::int64_t>(value))) {
    return value;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return std::stod(buf);
}

std::vector<std::pair<std::string, double>> workflow_metrics(core::Workflow& wf,
                                                             bool deployed) {
  std::vector<std::pair<std::string, double>> m;
  const auto& deploy = wf.deploy_result();
  put_metric(m, "convergence.converged", deploy.convergence.converged ? 1 : 0);
  put_metric(m, "convergence.rounds",
             static_cast<double>(deploy.convergence.rounds));
  put_metric(m, "convergence.updates",
             static_cast<double>(deploy.convergence.updates));
  put_metric(m, "deploy.transfer_attempts", deploy.transfer_attempts);
  put_metric(m, "deploy.boot_attempts", deploy.boot_attempts);
  put_metric(m, "deploy.backoff_ms", deploy.backoff_ms);
  put_metric(m, "deploy.booted", static_cast<double>(deploy.booted.size()));
  put_metric(m, "deploy.failed_machines",
             static_cast<double>(deploy.failed_machines.size()));
  if (deployed) {
    const auto& stats = wf.network().stats();
    put_metric(m, "emulation.spf_runs", static_cast<double>(stats.spf_runs));
    put_metric(m, "emulation.lsa_floods",
               static_cast<double>(stats.lsa_floods));
    put_metric(m, "emulation.bgp_updates",
               static_cast<double>(stats.bgp_updates));
    put_metric(m, "emulation.bgp_withdrawals",
               static_cast<double>(stats.bgp_withdrawals));
    put_metric(m, "emulation.decision_reruns",
               static_cast<double>(stats.decision_reruns));
    put_metric(m, "emulation.convergence_rounds",
               static_cast<double>(stats.convergence_rounds));
    put_metric(m, "emulation.oscillations",
               static_cast<double>(stats.oscillations));
  }
  for (const auto& [phase, ms] : wf.timings().ms) {
    put_metric(m, "phase." + phase + ".ms", ms);
  }
  std::sort(m.begin(), m.end());
  return m;
}

std::string run_report_json(core::Workflow& wf) {
  const auto& deploy = wf.deploy_result();
  const bool deployed = deploy.success;
  const bool ran_deploy = wf.timings().ms.count("deploy") != 0;
  const char* status = !ran_deploy    ? "incomplete"
                       : !deployed    ? "failed"
                       : deploy.errors.empty() ? "ok"
                                               : "degraded";

  std::vector<std::pair<std::string, double>> metrics =
      workflow_metrics(wf, deployed);

  // Per-category and per-severity event counts over the full timeline.
  std::map<std::string, std::size_t> by_category;
  std::size_t by_severity[3] = {0, 0, 0};
  std::size_t total_events = 0;
  for (const char* phase : kPipeline) {
    auto it = wf.phase_events().find(phase);
    if (it == wf.phase_events().end()) continue;
    for (const obs::RecorderEvent& event : it->second) {
      ++by_category[event.category];
      ++by_severity[static_cast<std::size_t>(event.severity)];
      ++total_events;
    }
  }

  std::ostringstream out;
  out << "{\n";
  out << "  \"version\": 1,\n";
  out << "  \"status\": \"" << status << "\",\n";
  out << "  \"input_hash\": \"" << obs::json_escape(wf.input_hash()) << "\",\n";
  out << "  \"options_signature\": \"" << obs::json_escape(wf.options_signature())
      << "\",\n";
  // The compiled NIDB's content hash: lets two reports assert "same
  // design" (the incremental equivalence contract) without the artifact
  // directories. Empty until compile() has run.
  out << "  \"nidb_hash\": \""
      << (wf.has_nidb()
              ? std::to_string(verify::analysis::nidb_content_hash(wf.nidb()))
              : "")
      << "\",\n";

  out << "  \"phases\": [";
  bool first = true;
  for (const char* phase : kPipeline) {
    auto it = wf.timings().ms.find(phase);
    if (it == wf.timings().ms.end()) continue;
    if (!first) out << ",";
    first = false;
    out << "\n    {\"name\": \"" << phase << "\", \"ms\": " << fmt_ms(it->second)
        << "}";
  }
  out << (first ? "]," : "\n  ],") << "\n";

  out << "  \"metrics\": {";
  first = true;
  for (const auto& [name, value] : metrics) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << obs::json_escape(name)
        << "\": " << fmt_metric(snap_metric(value));
  }
  out << (first ? "}," : "\n  },") << "\n";

  const auto& conv = deploy.convergence;
  out << "  \"convergence\": {\"converged\": "
      << (conv.converged ? "true" : "false")
      << ", \"oscillating\": " << (conv.oscillating ? "true" : "false")
      << ", \"rounds\": " << conv.rounds << ", \"updates\": " << conv.updates
      << "},\n";

  out << "  \"event_counts\": {";
  first = true;
  for (const auto& [category, count] : by_category) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << obs::json_escape(category) << "\": " << count;
  }
  out << (first ? "}," : "\n  },") << "\n";

  out << "  \"severity_counts\": {\"error\": " << by_severity[2]
      << ", \"info\": " << by_severity[0] << ", \"warning\": " << by_severity[1]
      << "},\n";

  out << "  \"events\": [";
  std::size_t emitted = 0;
  for (const char* phase : kPipeline) {
    auto it = wf.phase_events().find(phase);
    if (it == wf.phase_events().end()) continue;
    for (const obs::RecorderEvent& event : it->second) {
      out << (emitted == 0 ? "\n    " : ",\n    ") << obs::event_to_json(event);
      ++emitted;
    }
  }
  out << (emitted == 0 ? "]" : "\n  ]") << "\n";
  out << "}\n";
  return out.str();
}

void write_run_report(core::Workflow& wf, const std::string& path) {
  core::write_file_atomic(path, run_report_json(wf));
}

nidb::Value load_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read run report " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  nidb::Value doc = nidb::parse_json(ss.str());
  if (doc.find("version") == nullptr) {
    throw std::runtime_error(path + " is not a run report (no \"version\")");
  }
  return doc;
}

std::vector<obs::RecorderEvent> report_events(const nidb::Value& report) {
  std::vector<obs::RecorderEvent> out;
  const nidb::Value* events = report.find("events");
  if (events == nullptr || !events->is_array()) return out;
  out.reserve(events->as_array()->size());
  for (const nidb::Value& entry : *events->as_array()) {
    out.push_back(core::event_from_value(entry));
  }
  return out;
}

std::string ReportDiff::to_string() const {
  std::ostringstream out;
  for (const Entry& entry : entries) {
    out << entry.kind << " " << entry.key << ": " << entry.a << " -> "
        << entry.b << "\n";
  }
  return out.str();
}

ReportDiff diff_reports(const nidb::Value& a, const nidb::Value& b,
                        const DiffOptions& options) {
  ReportDiff diff;
  for (const char* key : {"status", "input_hash", "options_signature", "nidb_hash"}) {
    const std::string va = string_of(a, key);
    const std::string vb = string_of(b, key);
    if (va != vb) {
      diff.entries.push_back({"meta", key, va.empty() ? "-" : va,
                              vb.empty() ? "-" : vb});
    }
  }
  diff_numbers(phases_of(a), phases_of(b), "phase", options.threshold_pct,
               diff.entries);
  diff_numbers(object_numbers_of(a, "metrics"), object_numbers_of(b, "metrics"),
               "metric", options.threshold_pct, diff.entries);
  // Event-count drift is always structural, never noise: the threshold
  // does not apply.
  diff_numbers(object_numbers_of(a, "event_counts"),
               object_numbers_of(b, "event_counts"), "events", 0,
               diff.entries);
  return diff;
}

}  // namespace autonet::report

// Run reports: every workflow run folds its flight-recorder timeline,
// phase timings, and derived metrics into one deterministic
// run_report.json. The same graph + options + seed produce a
// byte-identical report — including a run that was killed mid-pipeline
// and resumed from its checkpoint (restored phases replay the event
// slice their original execution persisted). That byte-stability is
// what makes `autonet report diff` a regression gate: an empty diff
// means the two runs did the same work.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nidb/value.hpp"
#include "obs/event.hpp"

namespace autonet::core {
class Workflow;
}

namespace autonet::report {

/// Snaps a metric to the journal's JSON precision (6 significant
/// digits, integral values exact), so aggregates over journal-replayed
/// results are byte-identical to aggregates over fresh ones. Shared
/// with experiment::CampaignRunner.
[[nodiscard]] double snap_metric(double value);

/// The scalar metrics a finished (or failed) workflow run yields:
/// convergence outcome, deploy effort, emulation control-plane work
/// (only when `deployed` — the network must exist), and per-phase
/// virtual durations. Sorted by name; values are NOT snapped (the
/// journal snaps on collection, the report formats with the same
/// precision).
[[nodiscard]] std::vector<std::pair<std::string, double>> workflow_metrics(
    core::Workflow& wf, bool deployed);

/// Builds the deterministic run-report JSON for a workflow that has
/// completed (or failed) its pipeline. Fixed key order, %.17g phase
/// durations (matching checkpoint manifests, so restored timings
/// round-trip exactly), %.6g metrics (matching the journal snap), and
/// a timeline that concatenates the per-phase flight-recorder slices in
/// pipeline order. Deliberately carries no resume provenance: a
/// resumed run's report is byte-identical to an uninterrupted one.
[[nodiscard]] std::string run_report_json(core::Workflow& wf);

/// Writes run_report_json(wf) to `path` crash-consistently
/// (write-temp + fsync + rename).
void write_run_report(core::Workflow& wf, const std::string& path);

/// Parses a run report file; throws std::runtime_error when the file is
/// missing or not a report.
[[nodiscard]] nidb::Value load_report(const std::string& path);

/// The flight-recorder timeline of a parsed report (its "events"
/// array).
[[nodiscard]] std::vector<obs::RecorderEvent> report_events(
    const nidb::Value& report);

struct DiffOptions {
  /// Phase-duration and metric deltas within this percentage of the
  /// baseline are noise, not drift. Event-count and metadata changes
  /// are always reported (0% → any change reports).
  double threshold_pct = 0.0;
};

/// One cross-run difference. `kind` is "meta" (hash/signature/status),
/// "phase" (duration drift past the threshold), "metric" (value drift
/// past the threshold), or "events" (per-category event-count drift).
struct ReportDiff {
  struct Entry {
    std::string kind;
    std::string key;
    std::string a;  // baseline value ("-" when absent)
    std::string b;  // candidate value ("-" when absent)
  };
  std::vector<Entry> entries;

  [[nodiscard]] bool empty() const { return entries.empty(); }
  /// One line per entry: "kind key: a -> b". Empty string when empty().
  [[nodiscard]] std::string to_string() const;
};

/// Compares two parsed run reports: phase-time deltas past the
/// threshold, metric deltas past the threshold, event-count drift per
/// category, and metadata changes (input hash, options signature,
/// status). Two byte-identical reports diff empty.
[[nodiscard]] ReportDiff diff_reports(const nidb::Value& a,
                                      const nidb::Value& b,
                                      const DiffOptions& options = {});

}  // namespace autonet::report

#include "anm/overlay.hpp"

#include "anm/anm.hpp"

namespace autonet::anm {

std::vector<OverlayEdge> OverlayNode::edges() const {
  std::vector<OverlayEdge> out;
  for (graph::EdgeId e : g_->out_edges(id_)) out.emplace_back(anm_, g_, e);
  return out;
}

std::vector<OverlayNode> OverlayNode::neighbors() const {
  std::vector<OverlayNode> out;
  for (graph::NodeId n : g_->neighbors(id_)) out.emplace_back(anm_, g_, n);
  return out;
}

std::optional<OverlayNode> OverlayNode::in_layer(std::string_view overlay) const {
  if (anm_ == nullptr || !anm_->has_overlay(overlay)) return std::nullopt;
  return anm_->overlay(overlay).node(name());
}

OverlayNode OverlayGraph::add_node(std::string_view name) {
  return OverlayNode(anm_, g_, g_->add_node(name));
}

std::optional<OverlayNode> OverlayGraph::node(std::string_view name) const {
  graph::NodeId id = g_->find_node(name);
  if (id == graph::kInvalidNode) return std::nullopt;
  return OverlayNode(anm_, g_, id);
}

OverlayNode OverlayGraph::node(graph::NodeId id) const {
  return OverlayNode(anm_, g_, id);
}

std::vector<OverlayNode> OverlayGraph::nodes() const {
  std::vector<OverlayNode> out;
  out.reserve(g_->node_count());
  for (graph::NodeId id : g_->nodes()) out.emplace_back(anm_, g_, id);
  return out;
}

std::vector<OverlayNode> OverlayGraph::nodes(const NodePredicate& pred) const {
  std::vector<OverlayNode> out;
  for (graph::NodeId id : g_->nodes()) {
    OverlayNode n(anm_, g_, id);
    if (pred(n)) out.push_back(n);
  }
  return out;
}

std::vector<OverlayNode> OverlayGraph::nodes_where(
    std::string_view attr, const graph::AttrValue& value) const {
  return nodes([&](const OverlayNode& n) { return n.attr(attr) == value; });
}

OverlayEdge OverlayGraph::add_edge(const OverlayNode& u, const OverlayNode& v) {
  // Endpoints may come from another overlay; resolve by name.
  return add_edge(u.name(), v.name());
}

OverlayEdge OverlayGraph::add_edge(std::string_view u, std::string_view v) {
  return OverlayEdge(anm_, g_, g_->add_edge(u, v));
}

void OverlayGraph::remove_edges(const std::vector<OverlayEdge>& edges) {
  for (const auto& e : edges) g_->remove_edge(e.id());
}

std::vector<OverlayEdge> OverlayGraph::edges() const {
  std::vector<OverlayEdge> out;
  out.reserve(g_->edge_count());
  for (graph::EdgeId id : g_->edges()) out.emplace_back(anm_, g_, id);
  return out;
}

std::vector<OverlayEdge> OverlayGraph::edges(const EdgePredicate& pred) const {
  std::vector<OverlayEdge> out;
  for (graph::EdgeId id : g_->edges()) {
    OverlayEdge e(anm_, g_, id);
    if (pred(e)) out.push_back(e);
  }
  return out;
}

std::vector<OverlayEdge> OverlayGraph::edges_where(
    std::string_view attr, const graph::AttrValue& value) const {
  return edges([&](const OverlayEdge& e) { return e.attr(attr) == value; });
}

std::vector<OverlayNode> OverlayGraph::add_nodes_from(
    const std::vector<OverlayNode>& nodes, const std::vector<std::string>& retain) {
  std::vector<OverlayNode> out;
  out.reserve(nodes.size());
  for (const auto& src : nodes) {
    OverlayNode dst = add_node(src.name());
    for (const auto& key : retain) {
      const auto& v = src.attr(key);
      if (v.is_set()) dst.set(key, v);
    }
    out.push_back(dst);
  }
  return out;
}

std::vector<OverlayNode> OverlayGraph::add_nodes_from(
    const OverlayGraph& src, const std::vector<std::string>& retain) {
  return add_nodes_from(src.nodes(), retain);
}

std::vector<OverlayEdge> OverlayGraph::add_edges_from(
    const std::vector<OverlayEdge>& edges, const std::vector<std::string>& retain,
    bool bidirected) {
  std::vector<OverlayEdge> out;
  for (const auto& src : edges) {
    const std::string& u = src.src().name();
    const std::string& v = src.dst().name();
    if (!has_node(u) || !has_node(v)) continue;
    auto copy_to = [&](OverlayEdge dst) {
      for (const auto& key : retain) {
        const auto& val = src.attr(key);
        if (val.is_set()) dst.set(key, val);
      }
      out.push_back(dst);
    };
    copy_to(add_edge(u, v));
    if (bidirected && directed()) copy_to(add_edge(v, u));
  }
  return out;
}

void copy_attr_from(const OverlayGraph& src, OverlayGraph& dst,
                    std::string_view attr, std::string_view dst_attr) {
  const std::string target(dst_attr.empty() ? attr : dst_attr);
  for (const auto& n : src.nodes()) {
    if (auto d = dst.node(n.name())) {
      const auto& v = n.attr(attr);
      if (v.is_set()) d->set(target, v);
    }
  }
}

}  // namespace autonet::anm

// Overlay accessors (paper §5.2): lightweight wrappers over the underlying
// attribute graphs that present nodes and edges as objects with attribute
// access and cross-layer lookup, mirroring the reference system's API
// (`G_ip.node(ibgp_node).loopback` style access).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace autonet::anm {

class AbstractNetworkModel;
class OverlayGraph;
class OverlayEdge;

/// A node in one overlay. Identity across overlays is the node name, so
/// `in_layer("ip")` finds the same device in the IP overlay.
class OverlayNode {
 public:
  OverlayNode(const AbstractNetworkModel* anm, graph::Graph* g, graph::NodeId id)
      : anm_(anm), g_(g), id_(id) {}

  [[nodiscard]] graph::NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return g_->node_name(id_); }
  [[nodiscard]] const std::string& overlay_name() const { return g_->name(); }

  /// Attribute access; returns the unset value for missing keys.
  [[nodiscard]] const graph::AttrValue& attr(std::string_view key) const {
    return g_->node_attr(id_, key);
  }
  [[nodiscard]] const graph::AttrValue& operator[](std::string_view key) const {
    return attr(key);
  }
  void set(std::string_view key, graph::AttrValue value) const {
    g_->set_node_attr(id_, key, std::move(value));
  }

  /// Common attribute shortcuts used throughout the design rules.
  [[nodiscard]] std::int64_t asn() const { return attr("asn").as_int().value_or(0); }
  [[nodiscard]] std::string device_type() const {
    const auto* s = attr("device_type").as_string();
    return s ? *s : "";
  }
  [[nodiscard]] bool is_router() const { return device_type() == "router"; }
  [[nodiscard]] bool is_server() const { return device_type() == "server"; }
  [[nodiscard]] bool is_switch() const { return device_type() == "switch"; }

  /// Incident edges in this overlay (outgoing for directed overlays).
  [[nodiscard]] std::vector<OverlayEdge> edges() const;
  [[nodiscard]] std::vector<OverlayNode> neighbors() const;
  [[nodiscard]] std::size_t degree() const { return g_->degree(id_); }

  /// The same device in another overlay; nullopt if it is not present
  /// there (paper §5.2.3 cross-layer access).
  [[nodiscard]] std::optional<OverlayNode> in_layer(std::string_view overlay) const;

  friend bool operator==(const OverlayNode& a, const OverlayNode& b) {
    return a.g_ == b.g_ && a.id_ == b.id_;
  }
  friend bool operator<(const OverlayNode& a, const OverlayNode& b) {
    return a.g_ == b.g_ ? a.id_ < b.id_ : a.g_ < b.g_;
  }

 private:
  friend class OverlayGraph;
  const AbstractNetworkModel* anm_;
  graph::Graph* g_;
  graph::NodeId id_;
};

/// An edge in one overlay, with endpoint and attribute access.
class OverlayEdge {
 public:
  OverlayEdge(const AbstractNetworkModel* anm, graph::Graph* g, graph::EdgeId id)
      : anm_(anm), g_(g), id_(id) {}

  [[nodiscard]] graph::EdgeId id() const { return id_; }
  [[nodiscard]] OverlayNode src() const {
    return OverlayNode(anm_, g_, g_->edge_src(id_));
  }
  [[nodiscard]] OverlayNode dst() const {
    return OverlayNode(anm_, g_, g_->edge_dst(id_));
  }
  /// The endpoint that is not `n`.
  [[nodiscard]] OverlayNode other(const OverlayNode& n) const {
    return OverlayNode(anm_, g_, g_->edge_other(id_, n.id()));
  }

  [[nodiscard]] const graph::AttrValue& attr(std::string_view key) const {
    return g_->edge_attr(id_, key);
  }
  [[nodiscard]] const graph::AttrValue& operator[](std::string_view key) const {
    return attr(key);
  }
  void set(std::string_view key, graph::AttrValue value) const {
    g_->set_edge_attr(id_, key, std::move(value));
  }

  friend bool operator==(const OverlayEdge& a, const OverlayEdge& b) {
    return a.g_ == b.g_ && a.id_ == b.id_;
  }

 private:
  const AbstractNetworkModel* anm_;
  graph::Graph* g_;
  graph::EdgeId id_;
};

/// Predicate used by node/edge selectors.
using NodePredicate = std::function<bool(const OverlayNode&)>;
using EdgePredicate = std::function<bool(const OverlayEdge&)>;

/// A named overlay within the ANM, wrapping one attribute graph.
class OverlayGraph {
 public:
  OverlayGraph(const AbstractNetworkModel* anm, graph::Graph* g)
      : anm_(anm), g_(g) {}

  [[nodiscard]] const std::string& name() const { return g_->name(); }
  [[nodiscard]] bool directed() const { return g_->directed(); }
  [[nodiscard]] std::size_t node_count() const { return g_->node_count(); }
  [[nodiscard]] std::size_t edge_count() const { return g_->edge_count(); }

  /// Overlay-level data (paper §5.2.1, e.g. per-AS infrastructure blocks).
  [[nodiscard]] graph::AttrMap& data() { return g_->data(); }
  [[nodiscard]] const graph::AttrMap& data() const { return g_->data(); }

  /// Direct access to the underlying attribute graph (paper §7.1
  /// `unwrap_graph`), for running graph algorithms.
  [[nodiscard]] graph::Graph& unwrap() { return *g_; }
  [[nodiscard]] const graph::Graph& unwrap() const { return *g_; }

  // --- Nodes ---
  OverlayNode add_node(std::string_view name);
  [[nodiscard]] std::optional<OverlayNode> node(std::string_view name) const;
  [[nodiscard]] OverlayNode node(graph::NodeId id) const;
  [[nodiscard]] bool has_node(std::string_view name) const {
    return g_->has_node(name);
  }
  void remove_node(const OverlayNode& n) { g_->remove_node(n.id()); }

  [[nodiscard]] std::vector<OverlayNode> nodes() const;
  [[nodiscard]] std::vector<OverlayNode> nodes(const NodePredicate& pred) const;
  /// Attribute-equality selector (paper: G_in.nodes(type="physical")).
  [[nodiscard]] std::vector<OverlayNode> nodes_where(std::string_view attr,
                                                     const graph::AttrValue& value) const;
  [[nodiscard]] std::vector<OverlayNode> routers() const {
    return nodes_where("device_type", "router");
  }
  [[nodiscard]] std::vector<OverlayNode> servers() const {
    return nodes_where("device_type", "server");
  }
  [[nodiscard]] std::vector<OverlayNode> switches() const {
    return nodes_where("device_type", "switch");
  }

  // --- Edges ---
  OverlayEdge add_edge(const OverlayNode& u, const OverlayNode& v);
  OverlayEdge add_edge(std::string_view u, std::string_view v);
  void remove_edge(const OverlayEdge& e) { g_->remove_edge(e.id()); }
  void remove_edges(const std::vector<OverlayEdge>& edges);

  [[nodiscard]] std::vector<OverlayEdge> edges() const;
  [[nodiscard]] std::vector<OverlayEdge> edges(const EdgePredicate& pred) const;
  [[nodiscard]] std::vector<OverlayEdge> edges_where(std::string_view attr,
                                                     const graph::AttrValue& value) const;

  /// Copies nodes from another overlay, retaining the listed attributes
  /// (paper §5.2.1 `add_nodes_from(..., retain=[...])`).
  std::vector<OverlayNode> add_nodes_from(
      const std::vector<OverlayNode>& nodes,
      const std::vector<std::string>& retain = {});
  std::vector<OverlayNode> add_nodes_from(
      const OverlayGraph& src, const std::vector<std::string>& retain = {});

  /// Copies edges (by endpoint names) from another overlay. Endpoints must
  /// already exist in this overlay; edges whose endpoints are missing are
  /// skipped, mirroring the reference semantics of selective overlays.
  std::vector<OverlayEdge> add_edges_from(
      const std::vector<OverlayEdge>& edges,
      const std::vector<std::string>& retain = {},
      bool bidirected = false);

 private:
  const AbstractNetworkModel* anm_;
  graph::Graph* g_;
};

/// Copies a node attribute between overlays for all shared nodes
/// (paper: copy_attr_from(G_in, G_ospf, "ospf_area", dst_attr="area")).
void copy_attr_from(const OverlayGraph& src, OverlayGraph& dst,
                    std::string_view attr, std::string_view dst_attr = {});

}  // namespace autonet::anm

// The Abstract Network Model (paper §5.2): a named collection of overlay
// attribute graphs sharing node identity (by device name), with the
// 'input' and 'phy' overlays present by default.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "anm/overlay.hpp"
#include "graph/graph.hpp"

namespace autonet::anm {

class AbstractNetworkModel {
 public:
  AbstractNetworkModel();

  AbstractNetworkModel(const AbstractNetworkModel&) = delete;
  AbstractNetworkModel& operator=(const AbstractNetworkModel&) = delete;
  AbstractNetworkModel(AbstractNetworkModel&&) = default;
  AbstractNetworkModel& operator=(AbstractNetworkModel&&) = default;

  /// Creates a new overlay; throws if the name is taken.
  OverlayGraph add_overlay(std::string_view name, bool directed = false);

  /// Creates a new overlay pre-populated with the given nodes (paper:
  /// `anm.add_overlay("ospf", rtrs)`).
  OverlayGraph add_overlay(std::string_view name,
                           const std::vector<OverlayNode>& nodes,
                           bool directed = false,
                           const std::vector<std::string>& retain = {});

  [[nodiscard]] bool has_overlay(std::string_view name) const;
  /// Access an overlay; throws if absent. Also spelled anm["ospf"].
  [[nodiscard]] OverlayGraph overlay(std::string_view name) const;
  [[nodiscard]] OverlayGraph operator[](std::string_view name) const {
    return overlay(name);
  }
  void remove_overlay(std::string_view name);

  /// Overlay names in creation order.
  [[nodiscard]] std::vector<std::string> overlay_names() const;

 private:
  // unique_ptr keeps Graph addresses stable across map growth so the
  // lightweight accessors can hold raw pointers.
  std::map<std::string, std::unique_ptr<graph::Graph>, std::less<>> overlays_;
  std::vector<std::string> order_;
};

}  // namespace autonet::anm

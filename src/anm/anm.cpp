#include "anm/anm.hpp"

#include <stdexcept>

namespace autonet::anm {

AbstractNetworkModel::AbstractNetworkModel() {
  add_overlay("input");
  add_overlay("phy");
}

OverlayGraph AbstractNetworkModel::add_overlay(std::string_view name, bool directed) {
  if (has_overlay(name)) {
    throw std::invalid_argument("overlay '" + std::string(name) + "' already exists");
  }
  auto g = std::make_unique<graph::Graph>(directed, std::string(name));
  auto* ptr = g.get();
  overlays_.emplace(std::string(name), std::move(g));
  order_.emplace_back(name);
  return OverlayGraph(this, ptr);
}

OverlayGraph AbstractNetworkModel::add_overlay(
    std::string_view name, const std::vector<OverlayNode>& nodes, bool directed,
    const std::vector<std::string>& retain) {
  OverlayGraph g = add_overlay(name, directed);
  g.add_nodes_from(nodes, retain);
  return g;
}

bool AbstractNetworkModel::has_overlay(std::string_view name) const {
  return overlays_.find(name) != overlays_.end();
}

OverlayGraph AbstractNetworkModel::overlay(std::string_view name) const {
  auto it = overlays_.find(name);
  if (it == overlays_.end()) {
    throw std::out_of_range("no overlay named '" + std::string(name) + "'");
  }
  return OverlayGraph(this, it->second.get());
}

void AbstractNetworkModel::remove_overlay(std::string_view name) {
  auto it = overlays_.find(name);
  if (it == overlays_.end()) {
    throw std::out_of_range("no overlay named '" + std::string(name) + "'");
  }
  overlays_.erase(it);
  std::erase(order_, std::string(name));
}

std::vector<std::string> AbstractNetworkModel::overlay_names() const {
  return order_;
}

}  // namespace autonet::anm

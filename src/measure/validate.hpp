// Design-vs-running validation (paper §5.7/§8): "the OSPF neighbors
// command could be run on each router, used to construct the OSPF graph
// of the running network, and compared against the OSPF overlay
// constructed at design-time ... a powerful framework for automated
// validation that the experimental topology is indeed correct — an
// essential step in the scientific method."
#pragma once

#include <string>
#include <vector>

#include "anm/anm.hpp"
#include "emulation/network.hpp"

namespace autonet::measure {

struct ValidationReport {
  bool ok = true;
  /// Edges present in the design overlay but not observed running.
  std::vector<std::string> missing;
  /// Adjacencies observed running but absent from the design.
  std::vector<std::string> unexpected;

  [[nodiscard]] std::string to_string() const;
};

/// Collects OSPF adjacencies from the running network (via the
/// measurement interface) and compares them against the design overlay
/// `G_ospf`.
[[nodiscard]] ValidationReport validate_ospf(
    const emulation::EmulatedNetwork& network,
    const anm::AbstractNetworkModel& anm);

/// Compares established BGP sessions against the design 'ibgp' and
/// 'ebgp' overlays.
[[nodiscard]] ValidationReport validate_bgp(
    const emulation::EmulatedNetwork& network,
    const anm::AbstractNetworkModel& anm);

}  // namespace autonet::measure

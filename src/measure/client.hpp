// The measurement client (paper §5.7): "a single measurement client on
// the emulation server can connect to multiple virtual machines on the
// same physical host, speeding up data collection"; results are parsed
// with TextFSM and the known IP allocations map addresses back to the
// hosts they represent — yielding node paths and AS paths ready for
// analysis.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "emulation/network.hpp"
#include "measure/textfsm.hpp"
#include "nidb/nidb.hpp"

namespace autonet::measure {

/// A traceroute parsed, reverse-mapped and annotated.
struct TraceResult {
  std::string source;
  std::string target_ip;
  bool reached = false;
  std::vector<std::string> hop_ips;
  /// Node path including the source, as the paper prints:
  /// [as300r2, as40r1, as1r1, ...].
  std::vector<std::string> node_path;
  /// AS path condensed from the node path.
  std::vector<std::int64_t> as_path;
};

struct CommandResult {
  std::string host;
  std::string raw_output;
  std::vector<Record> records;
  /// Set when the command could not run (unknown/unreachable VM); the
  /// sweep continues over the remaining hosts rather than aborting.
  std::optional<core::Error> error;
};

class MeasurementClient {
 public:
  /// The client runs on the emulation server next to the VMs; the NIDB
  /// supplies the IP-to-name mapping.
  MeasurementClient(const emulation::EmulatedNetwork& network,
                    const nidb::Nidb& nidb)
      : network_(&network), nidb_(&nidb) {}

  /// Runs `command` on every named VM, parsing output with `parser`
  /// (paper: `measure.send(nidb, cmd, hosts)`).
  [[nodiscard]] std::vector<CommandResult> send(
      const std::vector<std::string>& hosts, const std::string& command,
      const TextFsm& parser) const;

  /// Convenience: traceroute from `src` to `dst` (an address, or an
  /// emulated hostname resolved to its loopback), fully annotated.
  [[nodiscard]] TraceResult traceroute(const std::string& src,
                                       const std::string& dst) const;

  /// Traceroutes from every router to `dst_ip`.
  [[nodiscard]] std::vector<TraceResult> traceroute_all(
      const std::string& dst_ip) const;

  /// Maps an address back to its device name ("" when unknown).
  [[nodiscard]] std::string device_for_ip(const std::string& ip) const;
  /// ASN of a device (0 when unknown).
  [[nodiscard]] std::int64_t asn_of(const std::string& device) const;

  /// Full loopback reachability matrix over the emulated routers:
  /// result[src][dst] (src != dst). The summary measurement behind
  /// what-if/resilience studies.
  struct ReachabilityMatrix {
    std::vector<std::string> routers;
    /// reached[i][j]: router i reaches router j's loopback.
    std::vector<std::vector<bool>> reached;
    [[nodiscard]] std::size_t reachable_pairs() const;
    [[nodiscard]] bool fully_connected() const;
  };
  [[nodiscard]] ReachabilityMatrix reachability() const;

 private:
  const emulation::EmulatedNetwork* network_;
  const nidb::Nidb* nidb_;
};

}  // namespace autonet::measure

#include "measure/client.hpp"

namespace autonet::measure {

std::vector<CommandResult> MeasurementClient::send(
    const std::vector<std::string>& hosts, const std::string& command,
    const TextFsm& parser) const {
  std::vector<CommandResult> results;
  results.reserve(hosts.size());
  for (const auto& host : hosts) {
    CommandResult r;
    r.host = host;
    // One unreachable VM must not abort a whole measurement sweep
    // (§5.7 collects from many machines): record a typed error and
    // carry on.
    try {
      r.raw_output = network_->exec(host, command);
      r.records = parser.run(r.raw_output);
    } catch (const std::exception& e) {
      r.error = core::Error{core::ErrorCategory::kMeasurement, host, e.what(),
                            false};
    }
    results.push_back(std::move(r));
  }
  return results;
}

std::string MeasurementClient::device_for_ip(const std::string& ip) const {
  if (auto device = nidb_->device_for_ip(ip)) return *device;
  // Fall back to the running network's address table (covers addresses
  // the NIDB does not track).
  if (auto addr = addressing::Ipv4Addr::parse(ip)) {
    if (auto owner = network_->owner_of(*addr)) return *owner;
  }
  return "";
}

std::int64_t MeasurementClient::asn_of(const std::string& device) const {
  const nidb::DeviceRecord* rec = nidb_->device(device);
  if (rec == nullptr) return 0;
  const nidb::Value* asn = rec->data.find("asn");
  if (asn == nullptr) return 0;
  return asn->as_int().value_or(0);
}

TraceResult MeasurementClient::traceroute(const std::string& src,
                                          const std::string& dst) const {
  TraceResult out;
  out.source = src;
  // Accept either an address or an emulated hostname (resolved to its
  // loopback, as DNS would).
  std::string dst_ip = dst;
  if (!addressing::Ipv4Addr::parse(dst)) {
    const auto* target = network_->router(dst);
    if (target != nullptr && target->config().loopback) {
      dst_ip = target->config().loopback->address.to_string();
    }
  }
  out.target_ip = dst_ip;

  const std::string raw = network_->exec(src, "traceroute -naU " + dst_ip);
  auto records = TextFsm::traceroute_template().run(raw);

  out.node_path.push_back(src);
  for (const auto& rec : records) {
    auto it = rec.find("IP");
    if (it == rec.end() || it->second.empty()) continue;
    out.hop_ips.push_back(it->second);
    std::string device = device_for_ip(it->second);
    if (!device.empty() &&
        (out.node_path.empty() || out.node_path.back() != device)) {
      out.node_path.push_back(device);
    }
  }
  // Reached when the final hop resolves to the address owner.
  out.reached = !out.hop_ips.empty() && out.hop_ips.back() == dst_ip;
  if (!out.reached && !out.hop_ips.empty()) {
    // Target may answer from a different interface; accept when the
    // device owning dst_ip is the last node.
    std::string target_device = device_for_ip(dst_ip);
    out.reached = !target_device.empty() && out.node_path.back() == target_device;
  }

  for (const auto& node : out.node_path) {
    std::int64_t asn = asn_of(node);
    if (asn != 0 && (out.as_path.empty() || out.as_path.back() != asn)) {
      out.as_path.push_back(asn);
    }
  }
  return out;
}

std::size_t MeasurementClient::ReachabilityMatrix::reachable_pairs() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < reached.size(); ++i) {
    for (std::size_t j = 0; j < reached[i].size(); ++j) {
      if (i != j && reached[i][j]) ++count;
    }
  }
  return count;
}

bool MeasurementClient::ReachabilityMatrix::fully_connected() const {
  const std::size_t n = routers.size();
  return n < 2 || reachable_pairs() == n * (n - 1);
}

MeasurementClient::ReachabilityMatrix MeasurementClient::reachability() const {
  ReachabilityMatrix m;
  m.routers = network_->router_names();
  const std::size_t n = m.routers.size();
  m.reached.assign(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto* dst = network_->router(m.routers[j]);
      if (dst == nullptr || !dst->config().loopback) continue;
      m.reached[i][j] =
          network_->ping(m.routers[i], dst->config().loopback->address);
    }
  }
  return m;
}

std::vector<TraceResult> MeasurementClient::traceroute_all(
    const std::string& dst_ip) const {
  std::vector<TraceResult> out;
  for (const auto& name : network_->router_names()) {
    out.push_back(traceroute(name, dst_ip));
  }
  return out;
}

}  // namespace autonet::measure

#include "measure/textfsm.hpp"

#include <cctype>
#include <sstream>

namespace autonet::measure {

namespace {

std::vector<std::string> lines_of(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < text.size()) lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string strip(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

TextFsm TextFsm::parse(std::string_view template_text) {
  TextFsm fsm;
  std::string current_state;

  for (const auto& raw : lines_of(template_text)) {
    const std::string line = strip(raw);
    if (line.empty() || line[0] == '#') continue;

    if (line.starts_with("Value ")) {
      std::istringstream in(line.substr(6));
      ValueDef def;
      std::string tok;
      std::vector<std::string> tokens;
      while (in >> tok) tokens.push_back(tok);
      // [options] NAME (regex) — regex may contain spaces; rejoin.
      std::size_t name_index = 0;
      while (name_index < tokens.size() &&
             (tokens[name_index] == "Filldown" || tokens[name_index] == "Required" ||
              tokens[name_index] == "List")) {
        if (tokens[name_index] == "Filldown") def.filldown = true;
        if (tokens[name_index] == "Required") def.required = true;
        if (tokens[name_index] == "List") def.list = true;
        ++name_index;
      }
      if (name_index >= tokens.size()) throw TextFsmError("Value without a name");
      def.name = tokens[name_index];
      for (char c : def.name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
          throw TextFsmError("bad Value name '" + def.name + "'");
        }
      }
      auto open = line.find('(');
      auto close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close < open) {
        throw TextFsmError("Value " + def.name + " missing (regex)");
      }
      def.pattern = line.substr(open + 1, close - open - 1);
      fsm.values_[def.name] = def;
      fsm.value_order_.push_back(def.name);
      continue;
    }

    if (line[0] == '^') {
      if (current_state.empty()) {
        throw TextFsmError("rule outside of a state: " + line);
      }
      // Split "pattern -> actions"
      std::string pattern = line;
      std::string actions;
      if (auto arrow = line.rfind(" -> "); arrow != std::string::npos) {
        pattern = line.substr(0, arrow);
        actions = strip(line.substr(arrow + 4));
      }
      // Substitute ${NAME} / $NAME with capture groups.
      Rule rule;
      std::string regex_text;
      for (std::size_t i = 0; i < pattern.size();) {
        if (pattern[i] != '$' || i + 1 >= pattern.size()) {
          regex_text += pattern[i++];
          continue;
        }
        std::size_t name_start = i + 1;
        bool braced = pattern[name_start] == '{';
        if (braced) ++name_start;
        std::size_t name_end = name_start;
        while (name_end < pattern.size() &&
               (std::isalnum(static_cast<unsigned char>(pattern[name_end])) ||
                pattern[name_end] == '_')) {
          ++name_end;
        }
        std::string name = pattern.substr(name_start, name_end - name_start);
        auto it = fsm.values_.find(name);
        if (name.empty() || it == fsm.values_.end()) {
          regex_text += pattern[i++];  // literal '$'
          continue;
        }
        regex_text += "(" + it->second.pattern + ")";
        rule.captures.push_back(name);
        i = name_end + (braced ? 1 : 0);
      }
      rule.pattern = std::regex(regex_text.substr(1));  // drop '^': we anchor below
      // actions: "Record", "Error", "Record State", "State"
      std::istringstream in(actions);
      std::string act;
      while (in >> act) {
        if (act == "Record") rule.record = true;
        else if (act == "Error") rule.error = true;
        else if (act == "Next" || act == "Continue") {
          // default behaviour
        } else {
          rule.next_state = act;
        }
      }
      fsm.states_[current_state].push_back(std::move(rule));
      continue;
    }

    // A bare word opens a state.
    current_state = line;
    fsm.states_.try_emplace(current_state);
  }
  if (!fsm.states_.contains("Start")) throw TextFsmError("missing Start state");
  return fsm;
}

std::vector<Record> TextFsm::run(std::string_view input) const {
  std::vector<Record> records;
  Record row;
  Record filldown;

  auto clear_row = [this, &row, &filldown]() {
    row.clear();
    for (const auto& [name, def] : values_) {
      if (def.filldown && filldown.contains(name)) row[name] = filldown[name];
    }
  };
  auto record_row = [this, &records, &row, &clear_row]() {
    for (const auto& [name, def] : values_) {
      if (def.required && (!row.contains(name) || row[name].empty())) {
        clear_row();
        return;
      }
    }
    // Normalise: every value present.
    for (const auto& name : value_order_) row.try_emplace(name, "");
    records.push_back(row);
    clear_row();
  };

  clear_row();
  std::string state = "Start";
  for (const auto& line : lines_of(input)) {
    if (state == "End") break;
    auto it = states_.find(state);
    if (it == states_.end()) break;
    for (const auto& rule : it->second) {
      std::smatch m;
      if (!std::regex_search(line, m, rule.pattern,
                             std::regex_constants::match_continuous)) {
        continue;
      }
      if (rule.error) {
        throw TextFsmError("input matched Error rule in state " + state + ": " + line);
      }
      for (std::size_t g = 0; g < rule.captures.size(); ++g) {
        const std::string& name = rule.captures[g];
        std::string captured = m[g + 1].str();
        const ValueDef& def = values_.at(name);
        if (def.list && row.contains(name) && !row[name].empty()) {
          row[name] += "," + captured;
        } else {
          row[name] = captured;
        }
        if (def.filldown) filldown[name] = row[name];
      }
      if (rule.record) record_row();
      if (!rule.next_state.empty()) state = rule.next_state;
      break;  // first matching rule wins
    }
  }
  return records;
}

const TextFsm& TextFsm::traceroute_template() {
  static const TextFsm fsm = TextFsm::parse(R"(# Linux traceroute -n
Value Required TTL (\d+)
Value Required IP (\d+\.\d+\.\d+\.\d+)
Value RTT ([\d.]+)

Start
  ^\s*${TTL}\s+${IP}\s+${RTT} ms -> Record
  ^\s*${TTL}\s+\* \* \*
)");
  return fsm;
}

const TextFsm& TextFsm::ospf_neighbor_template() {
  static const TextFsm fsm = TextFsm::parse(R"(# show ip ospf neighbor
Value Required NEIGHBOR_ID (\d+\.\d+\.\d+\.\d+)
Value STATE (\w+)
Value NAME (\S+)

Start
  ^\s*${NEIGHBOR_ID}\s+${STATE}\s+# ${NAME} -> Record
  ^\s*${NEIGHBOR_ID}\s+${STATE} -> Record
)");
  return fsm;
}

const TextFsm& TextFsm::bgp_table_template() {
  static const TextFsm fsm = TextFsm::parse(R"(# show ip bgp (best routes)
Value Required PREFIX (\d+\.\d+\.\d+\.\d+/\d+)
Value NEXTHOP (\d+\.\d+\.\d+\.\d+)
Value ASPATH ([0-9 ]*)

Start
  ^>\s+${PREFIX}\s+${NEXTHOP}\s+${ASPATH}[ie] -> Record
)");
  return fsm;
}

}  // namespace autonet::measure

#include "measure/validate.hpp"

#include <set>

#include "measure/textfsm.hpp"

namespace autonet::measure {

namespace {

std::string edge_key(const std::string& a, const std::string& b) {
  return a < b ? a + "--" + b : b + "--" + a;
}

ValidationReport compare(const std::set<std::string>& designed,
                         const std::set<std::string>& running) {
  ValidationReport report;
  for (const auto& e : designed) {
    if (!running.contains(e)) {
      report.missing.push_back(e);
      report.ok = false;
    }
  }
  for (const auto& e : running) {
    if (!designed.contains(e)) {
      report.unexpected.push_back(e);
      report.ok = false;
    }
  }
  return report;
}

}  // namespace

std::string ValidationReport::to_string() const {
  if (ok) return "OK: running network matches the design overlay";
  std::string out = "MISMATCH:";
  for (const auto& e : missing) out += "\n  missing (designed, not running): " + e;
  for (const auto& e : unexpected) out += "\n  unexpected (running, not designed): " + e;
  return out;
}

ValidationReport validate_ospf(const emulation::EmulatedNetwork& network,
                               const anm::AbstractNetworkModel& anm) {
  std::set<std::string> designed;
  if (anm.has_overlay("ospf")) {
    for (const auto& e : anm["ospf"].edges()) {
      designed.insert(edge_key(e.src().name(), e.dst().name()));
    }
  }

  // Collect adjacencies the way an experimenter would: run the neighbors
  // command on every router and parse it.
  std::set<std::string> running;
  const auto& parser = TextFsm::ospf_neighbor_template();
  for (const auto& name : network.router_names()) {
    const std::string raw = network.exec(name, "show ip ospf neighbor");
    for (const auto& rec : parser.run(raw)) {
      auto it = rec.find("NAME");
      if (it != rec.end() && !it->second.empty()) {
        running.insert(edge_key(name, it->second));
      }
    }
  }
  return compare(designed, running);
}

ValidationReport validate_bgp(const emulation::EmulatedNetwork& network,
                              const anm::AbstractNetworkModel& anm) {
  std::set<std::string> designed;
  for (const char* overlay : {"ibgp", "ebgp"}) {
    if (!anm.has_overlay(overlay)) continue;
    for (const auto& e : anm[overlay].edges()) {
      designed.insert(edge_key(e.src().name(), e.dst().name()));
    }
  }

  std::set<std::string> running;
  static const TextFsm parser = TextFsm::parse(R"(Value Required PEER (\d+\.\d+\.\d+\.\d+)
Value AS (\d+)

Start
  ^\s*${PEER}\s+AS${AS}\s+Established -> Record
)");
  for (const auto& name : network.router_names()) {
    const std::string raw = network.exec(name, "show ip bgp summary");
    for (const auto& rec : parser.run(raw)) {
      auto it = rec.find("PEER");
      if (it == rec.end()) continue;
      if (auto addr = addressing::Ipv4Addr::parse(it->second)) {
        if (auto peer = network.owner_of(*addr)) {
          running.insert(edge_key(name, *peer));
        }
      }
    }
  }
  return compare(designed, running);
}

}  // namespace autonet::measure

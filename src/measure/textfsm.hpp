// A TextFSM-compatible parser engine (paper §5.7: "TextFSM is used to
// parse the results back in a structured manner, and provides a reference
// template for Linux traceroute. It is user extendable").
//
// Supported template subset (the constructs the reference templates use):
//   Value [Filldown|Required|List] NAME (regex)
//   <blank line>
//   Start                       # and further state names
//     ^pattern -> Record
//     ^pattern -> NextState
//     ^pattern -> Record NextState
//     ^pattern -> Error
//     ^pattern                  # match, continue in state
// ${NAME} or $NAME inside patterns references a Value's regex as a
// capture group.
#pragma once

#include <map>
#include <regex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace autonet::measure {

class TextFsmError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed row: value name -> captured text ("" when absent).
using Record = std::map<std::string, std::string>;

class TextFsm {
 public:
  /// Compiles a template; throws TextFsmError on malformed templates.
  static TextFsm parse(std::string_view template_text);

  /// Runs the FSM over input text, returning the recorded rows.
  [[nodiscard]] std::vector<Record> run(std::string_view input) const;

  [[nodiscard]] const std::vector<std::string>& value_names() const {
    return value_order_;
  }

  /// Reference templates.
  static const TextFsm& traceroute_template();
  static const TextFsm& ospf_neighbor_template();
  static const TextFsm& bgp_table_template();

 private:
  struct ValueDef {
    std::string name;
    std::string pattern;
    bool filldown = false;
    bool required = false;
    bool list = false;
  };
  struct Rule {
    std::regex pattern;
    std::vector<std::string> captures;  // value name per capture group
    bool record = false;
    bool error = false;
    std::string next_state;  // "" = stay
  };

  std::map<std::string, ValueDef> values_;
  std::vector<std::string> value_order_;
  std::map<std::string, std::vector<Rule>> states_;
};

}  // namespace autonet::measure

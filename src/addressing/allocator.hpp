// Resource allocators (paper §5.3): "allocation must follow certain rules
// (primarily uniqueness and consistency), but in most emulated networks the
// actual values allocated are inconsequential... similar to allocating
// memory in traditional programming".
//
// SubnetAllocator carves fixed- or variable-length subnets out of a parent
// block sequentially; HostAllocator hands out host addresses within one
// subnet. Both guarantee uniqueness and containment by construction.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "addressing/ipv4.hpp"
#include "addressing/ipv6.hpp"

namespace autonet::addressing {

/// Thrown when a block is exhausted.
class AllocationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sequentially allocates child subnets from an IPv4 parent block.
/// Variable lengths are supported; allocation is first-fit on a rolling
/// cursor with alignment to the requested subnet size, so all results are
/// valid CIDR blocks and mutually disjoint.
class SubnetAllocator {
 public:
  explicit SubnetAllocator(Ipv4Prefix block);

  [[nodiscard]] const Ipv4Prefix& block() const { return block_; }

  /// Next free subnet of the given prefix length.
  Ipv4Prefix allocate(unsigned length);

  /// Addresses already consumed (including alignment padding).
  [[nodiscard]] std::uint64_t consumed() const { return cursor_; }
  [[nodiscard]] std::uint64_t remaining() const { return block_.size() - cursor_; }

 private:
  Ipv4Prefix block_;
  std::uint64_t cursor_ = 0;  // offset in addresses from block start
};

/// Sequentially allocates host addresses within one subnet, skipping the
/// network and broadcast addresses where applicable.
class HostAllocator {
 public:
  explicit HostAllocator(Ipv4Prefix subnet);

  [[nodiscard]] const Ipv4Prefix& subnet() const { return subnet_; }
  Ipv4Interface allocate();
  [[nodiscard]] std::uint64_t allocated() const { return next_ - first_; }

 private:
  Ipv4Prefix subnet_;
  std::uint64_t first_;
  std::uint64_t next_;
  std::uint64_t end_;  // one past the last usable offset
};

/// IPv6 equivalent of SubnetAllocator (fixed-length children only, which
/// is how the design rules use it: /64 per link, /128 per loopback).
class SubnetAllocator6 {
 public:
  SubnetAllocator6(Ipv6Prefix block, unsigned child_length);

  [[nodiscard]] const Ipv6Prefix& block() const { return block_; }
  Ipv6Prefix allocate();

 private:
  Ipv6Prefix block_;
  unsigned child_length_;
  std::uint64_t next_ = 0;
  std::uint64_t count_;
};

}  // namespace autonet::addressing

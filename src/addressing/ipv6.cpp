#include "addressing/ipv6.hpp"

#include <array>
#include <charconv>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace autonet::addressing {

namespace {

std::optional<std::uint16_t> parse_hextet(std::string_view text) {
  if (text.empty() || text.size() > 4) return std::nullopt;
  std::uint16_t v = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v, 16);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return v;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    auto pos = text.find(sep, start);
    parts.push_back(text.substr(start, pos - start));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return parts;
}

void mask_in_place(std::uint64_t& hi, std::uint64_t& lo, unsigned length) {
  if (length == 0) {
    hi = lo = 0;
  } else if (length <= 64) {
    hi &= length == 64 ? ~std::uint64_t{0} : ~std::uint64_t{0} << (64 - length);
    lo = 0;
  } else if (length < 128) {
    lo &= ~std::uint64_t{0} << (128 - length);
  }
}

}  // namespace

std::optional<Ipv6Addr> Ipv6Addr::parse(std::string_view text) {
  // Split on "::" first; each side is a list of hextets.
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  auto gap = text.find("::");
  auto parse_side = [](std::string_view side, std::vector<std::uint16_t>& out) {
    if (side.empty()) return true;
    for (auto part : split(side, ':')) {
      auto h = parse_hextet(part);
      if (!h) return false;
      out.push_back(*h);
    }
    return true;
  };
  if (gap == std::string_view::npos) {
    if (!parse_side(text, head) || head.size() != 8) return std::nullopt;
  } else {
    if (text.find("::", gap + 1) != std::string_view::npos) return std::nullopt;
    if (!parse_side(text.substr(0, gap), head)) return std::nullopt;
    if (!parse_side(text.substr(gap + 2), tail)) return std::nullopt;
    if (head.size() + tail.size() >= 8) return std::nullopt;
  }
  std::array<std::uint16_t, 8> hextets{};
  for (std::size_t i = 0; i < head.size(); ++i) hextets[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i) {
    hextets[8 - tail.size() + i] = tail[i];
  }
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) hi = (hi << 16) | hextets[i];
  for (int i = 4; i < 8; ++i) lo = (lo << 16) | hextets[i];
  return Ipv6Addr(hi, lo);
}

std::string Ipv6Addr::to_string() const {
  std::array<std::uint16_t, 8> hextets{};
  for (int i = 0; i < 4; ++i) hextets[i] = static_cast<std::uint16_t>(hi_ >> (48 - 16 * i));
  for (int i = 0; i < 4; ++i) hextets[4 + i] = static_cast<std::uint16_t>(lo_ >> (48 - 16 * i));

  // Find the longest run of zero hextets (length >= 2) for compression.
  int best_start = -1;
  int best_len = 1;
  for (int i = 0; i < 8;) {
    if (hextets[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && hextets[j] == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }

  // Emit hextets, substituting the compressed run with an empty token so
  // joining with ':' yields "::" (and leading/trailing runs work out).
  std::vector<std::string> tokens;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      if (i == 0) tokens.emplace_back();
      tokens.emplace_back();
      i += best_len;
      if (i == 8) tokens.emplace_back();
      continue;
    }
    std::snprintf(buf, sizeof buf, "%x", hextets[i]);
    tokens.emplace_back(buf);
    ++i;
  }
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i != 0) out += ':';
    out += tokens[i];
  }
  return out;
}

Ipv6Addr Ipv6Addr::plus(std::uint64_t offset) const {
  std::uint64_t lo = lo_ + offset;
  std::uint64_t hi = hi_ + (lo < lo_ ? 1 : 0);
  return Ipv6Addr(hi, lo);
}

Ipv6Prefix::Ipv6Prefix(Ipv6Addr addr, unsigned length) : length_(length) {
  if (length > 128) throw std::invalid_argument("IPv6 prefix length > 128");
  std::uint64_t hi = addr.hi();
  std::uint64_t lo = addr.lo();
  mask_in_place(hi, lo, length);
  addr_ = Ipv6Addr(hi, lo);
}

std::optional<Ipv6Prefix> Ipv6Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv6Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned len = 0;
  auto tail = text.substr(slash + 1);
  auto [ptr, ec] = std::from_chars(tail.data(), tail.data() + tail.size(), len);
  if (ec != std::errc{} || ptr != tail.data() + tail.size() || len > 128) {
    return std::nullopt;
  }
  return Ipv6Prefix(*addr, len);
}

bool Ipv6Prefix::contains(Ipv6Addr a) const {
  std::uint64_t hi = a.hi();
  std::uint64_t lo = a.lo();
  mask_in_place(hi, lo, length_);
  return hi == addr_.hi() && lo == addr_.lo();
}

bool Ipv6Prefix::contains(const Ipv6Prefix& other) const {
  return other.length_ >= length_ && contains(other.addr_);
}

Ipv6Prefix Ipv6Prefix::nth_subnet(unsigned new_length, std::uint64_t i) const {
  if (new_length < length_ || new_length > 128) {
    throw std::invalid_argument("invalid IPv6 subnet length");
  }
  const unsigned shift_bits = new_length - length_;
  if (shift_bits < 64 && i >= (std::uint64_t{1} << shift_bits)) {
    throw std::out_of_range("IPv6 subnet index beyond prefix");
  }
  // Place index i into bits [length_, new_length) of the address.
  std::uint64_t hi = addr_.hi();
  std::uint64_t lo = addr_.lo();
  if (new_length <= 64) {
    hi |= i << (64 - new_length);
  } else if (length_ >= 64) {
    lo |= i << (128 - new_length);
  } else {
    // Index straddles the 64-bit boundary.
    const unsigned lo_bits = new_length - 64;
    hi |= lo_bits == 64 ? 0 : i >> lo_bits;  // i >> 64 is UB, not 0
    lo |= lo_bits == 64 ? i : (i << (64 - lo_bits));
  }
  return Ipv6Prefix(Ipv6Addr(hi, lo), new_length);
}

Ipv6Addr Ipv6Prefix::nth(std::uint64_t i) const {
  return addr_.plus(i);
}

std::string Ipv6Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

}  // namespace autonet::addressing

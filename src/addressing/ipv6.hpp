// IPv6 address and prefix arithmetic. The design rules allocate IPv6 the
// same way as IPv4 (loopback + infrastructure blocks); only the formatting
// differs. Stored as two host-order 64-bit halves.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace autonet::addressing {

class Ipv6Addr {
 public:
  constexpr Ipv6Addr() = default;
  constexpr Ipv6Addr(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

  /// Parses full or `::`-compressed hextet notation.
  static std::optional<Ipv6Addr> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t hi() const { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const { return lo_; }

  /// RFC 5952 canonical text (lower-case, longest zero run compressed).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] Ipv6Addr plus(std::uint64_t offset) const;

  friend constexpr auto operator<=>(Ipv6Addr, Ipv6Addr) = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() = default;
  Ipv6Prefix(Ipv6Addr addr, unsigned length);

  static std::optional<Ipv6Prefix> parse(std::string_view text);

  [[nodiscard]] Ipv6Addr network() const { return addr_; }
  [[nodiscard]] unsigned length() const { return length_; }
  [[nodiscard]] bool contains(Ipv6Addr a) const;
  [[nodiscard]] bool contains(const Ipv6Prefix& other) const;

  /// The i-th subnet of the given (longer) length; subnet-index space is
  /// limited to 64 bits, ample for network design.
  [[nodiscard]] Ipv6Prefix nth_subnet(unsigned new_length, std::uint64_t i) const;
  [[nodiscard]] Ipv6Addr nth(std::uint64_t i) const;

  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Ipv6Prefix&, const Ipv6Prefix&) = default;

 private:
  Ipv6Addr addr_;
  unsigned length_ = 0;
};

}  // namespace autonet::addressing

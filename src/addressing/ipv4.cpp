#include "addressing/ipv4.hpp"

#include <charconv>
#include <stdexcept>

namespace autonet::addressing {

namespace {

std::optional<std::uint32_t> parse_u32(std::string_view text, std::uint32_t max) {
  std::uint32_t v = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size() || v > max) {
    return std::nullopt;
  }
  return v;
}

std::string dotted(std::uint32_t v) {
  return std::to_string((v >> 24) & 0xFF) + "." + std::to_string((v >> 16) & 0xFF) +
         "." + std::to_string((v >> 8) & 0xFF) + "." + std::to_string(v & 0xFF);
}

constexpr std::uint32_t mask_for(unsigned length) {
  return length == 0 ? 0U : ~std::uint32_t{0} << (32 - length);
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int octet = 0; octet < 4; ++octet) {
    auto dot = text.find('.');
    std::string_view part = octet < 3 ? text.substr(0, dot) : text;
    if (octet < 3 && dot == std::string_view::npos) return std::nullopt;
    if (part.empty() || part.size() > 3) return std::nullopt;
    auto v = parse_u32(part, 255);
    if (!v) return std::nullopt;
    value = (value << 8) | *v;
    if (octet < 3) text.remove_prefix(dot + 1);
  }
  return Ipv4Addr(value);
}

std::string Ipv4Addr::to_string() const { return dotted(value_); }

Ipv4Prefix::Ipv4Prefix(Ipv4Addr addr, unsigned length)
    : addr_(addr.value() & mask_for(length)), length_(length) {
  if (length > 32) throw std::invalid_argument("IPv4 prefix length > 32");
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  auto len = parse_u32(text.substr(slash + 1), 32);
  if (!addr || !len) return std::nullopt;
  return Ipv4Prefix(*addr, *len);
}

Ipv4Addr Ipv4Prefix::broadcast() const {
  return Ipv4Addr(addr_.value() | ~mask_for(length_));
}

std::uint32_t Ipv4Prefix::netmask() const { return mask_for(length_); }

std::string Ipv4Prefix::netmask_string() const { return dotted(netmask()); }

std::string Ipv4Prefix::wildcard_string() const { return dotted(wildcard()); }

std::uint64_t Ipv4Prefix::size() const {
  return std::uint64_t{1} << (32 - length_);
}

std::uint64_t Ipv4Prefix::host_count() const {
  if (length_ >= 31) return size();
  return size() - 2;
}

bool Ipv4Prefix::contains(Ipv4Addr a) const {
  return (a.value() & mask_for(length_)) == addr_.value();
}

bool Ipv4Prefix::contains(const Ipv4Prefix& other) const {
  return other.length_ >= length_ && contains(other.addr_);
}

bool Ipv4Prefix::overlaps(const Ipv4Prefix& other) const {
  return contains(other.addr_) || other.contains(addr_);
}

Ipv4Addr Ipv4Prefix::nth(std::uint64_t i) const {
  if (i >= size()) throw std::out_of_range("address index beyond prefix " + to_string());
  return Ipv4Addr(addr_.value() + static_cast<std::uint32_t>(i));
}

Ipv4Prefix Ipv4Prefix::nth_subnet(unsigned new_length, std::uint64_t i) const {
  if (new_length < length_ || new_length > 32) {
    throw std::invalid_argument("invalid subnet length " + std::to_string(new_length) +
                                " for prefix " + to_string());
  }
  const std::uint64_t count = std::uint64_t{1} << (new_length - length_);
  if (i >= count) throw std::out_of_range("subnet index beyond prefix " + to_string());
  const auto offset = static_cast<std::uint32_t>(i << (32 - new_length));
  return Ipv4Prefix(Ipv4Addr(addr_.value() + offset), new_length);
}

std::vector<Ipv4Prefix> Ipv4Prefix::subnets(unsigned new_length) const {
  if (new_length < length_ || new_length > 32) {
    throw std::invalid_argument("invalid subnet length");
  }
  const std::uint64_t count = std::uint64_t{1} << (new_length - length_);
  if (count > (std::uint64_t{1} << 20)) {
    throw std::invalid_argument("subnet expansion too large; iterate with nth_subnet");
  }
  std::vector<Ipv4Prefix> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(nth_subnet(new_length, i));
  return out;
}

std::string Ipv4Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

std::string Ipv4Interface::to_string() const {
  return address.to_string() + "/" + std::to_string(prefix.length());
}

}  // namespace autonet::addressing

#include "addressing/allocator.hpp"

namespace autonet::addressing {

SubnetAllocator::SubnetAllocator(Ipv4Prefix block) : block_(block) {}

Ipv4Prefix SubnetAllocator::allocate(unsigned length) {
  if (length < block_.length() || length > 32) {
    throw AllocationError("subnet length " + std::to_string(length) +
                          " invalid for block " + block_.to_string());
  }
  const std::uint64_t size = std::uint64_t{1} << (32 - length);
  // Align the cursor up to the subnet size so the result is a valid CIDR
  // block (its start is a multiple of its size within the parent).
  const std::uint64_t aligned = (cursor_ + size - 1) & ~(size - 1);
  if (aligned + size > block_.size()) {
    throw AllocationError("block " + block_.to_string() + " exhausted allocating /" +
                          std::to_string(length));
  }
  cursor_ = aligned + size;
  return Ipv4Prefix(block_.network() + static_cast<std::uint32_t>(aligned), length);
}

HostAllocator::HostAllocator(Ipv4Prefix subnet) : subnet_(subnet) {
  if (subnet.length() >= 31) {
    first_ = 0;
    end_ = subnet.size();
  } else {
    first_ = 1;                  // skip network address
    end_ = subnet.size() - 1;    // skip broadcast
  }
  next_ = first_;
}

Ipv4Interface HostAllocator::allocate() {
  if (next_ >= end_) {
    throw AllocationError("subnet " + subnet_.to_string() + " has no free hosts");
  }
  return Ipv4Interface{subnet_.nth(next_++), subnet_};
}

SubnetAllocator6::SubnetAllocator6(Ipv6Prefix block, unsigned child_length)
    : block_(block), child_length_(child_length) {
  if (child_length < block.length() || child_length > 128) {
    throw AllocationError("IPv6 child length invalid for block " + block.to_string());
  }
  const unsigned bits = child_length - block.length();
  count_ = bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits);
}

Ipv6Prefix SubnetAllocator6::allocate() {
  if (next_ >= count_) {
    throw AllocationError("IPv6 block " + block_.to_string() + " exhausted");
  }
  return block_.nth_subnet(child_length_, next_++);
}

}  // namespace autonet::addressing

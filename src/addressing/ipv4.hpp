// IPv4 address and prefix arithmetic (the paper delegates this to the
// Python `netaddr` library; built from scratch here).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace autonet::addressing {

/// An IPv4 address as a host-order 32-bit value.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parses dotted-quad; nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  constexpr Ipv4Addr operator+(std::uint32_t offset) const {
    return Ipv4Addr(value_ + offset);
  }
  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix: network address + length. The address is always stored
/// masked to the prefix length.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  Ipv4Prefix(Ipv4Addr addr, unsigned length);

  /// Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  [[nodiscard]] Ipv4Addr network() const { return addr_; }
  [[nodiscard]] unsigned length() const { return length_; }
  [[nodiscard]] Ipv4Addr broadcast() const;
  [[nodiscard]] std::uint32_t netmask() const;
  /// Inverse mask, as used by IOS OSPF network statements.
  [[nodiscard]] std::uint32_t wildcard() const { return ~netmask(); }
  [[nodiscard]] std::string netmask_string() const;
  [[nodiscard]] std::string wildcard_string() const;

  /// Number of addresses covered (2^(32-len); 0 means 2^32 for /0).
  [[nodiscard]] std::uint64_t size() const;
  /// Usable host count: size-2 for len<31, 2 for /31, 1 for /32.
  [[nodiscard]] std::uint64_t host_count() const;

  [[nodiscard]] bool contains(Ipv4Addr a) const;
  [[nodiscard]] bool contains(const Ipv4Prefix& other) const;
  [[nodiscard]] bool overlaps(const Ipv4Prefix& other) const;

  /// The i-th address in the prefix (0 = network address).
  [[nodiscard]] Ipv4Addr nth(std::uint64_t i) const;
  /// The i-th subnet of the given (longer) length.
  [[nodiscard]] Ipv4Prefix nth_subnet(unsigned new_length, std::uint64_t i) const;
  /// All subnets of the given length (throws if that would exceed 1<<20).
  [[nodiscard]] std::vector<Ipv4Prefix> subnets(unsigned new_length) const;

  /// "a.b.c.d/len".
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  Ipv4Addr addr_;
  unsigned length_ = 0;
};

/// An interface address: host address + the prefix it lives in
/// (e.g. 192.168.1.5/30).
struct Ipv4Interface {
  Ipv4Addr address;
  Ipv4Prefix prefix;

  [[nodiscard]] std::string to_string() const;  // "a.b.c.d/len"
  friend auto operator<=>(const Ipv4Interface&, const Ipv4Interface&) = default;
};

}  // namespace autonet::addressing

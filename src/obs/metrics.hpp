// The three metric primitives. All are lock-free (relaxed atomics): a
// Counter increment on a hot path costs one atomic add, so the emulation
// loops can afford them even at scale. Values are integral on purpose —
// counts of work items are exactly reproducible across runs, where
// float accumulation orders are not.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace autonet::obs {

/// Monotonically increasing count of events (SPF runs, BGP updates,
/// templates rendered, ...).
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that goes up and down (machines currently booted, routers in
/// the network).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed log-scale (power-of-two) bucket histogram: bucket i counts
/// observations <= 2^i, with one overflow bucket beyond 2^(kBuckets-1).
/// The fixed layout means no allocation, no locking, and identical
/// bucket boundaries in every export.
class Histogram {
 public:
  /// Finite buckets: upper bounds 2^0 .. 2^(kBuckets-1). In microseconds
  /// that spans 1us .. ~134s, plenty for span durations; in bytes it
  /// spans 1B .. 128MiB.
  static constexpr std::size_t kBuckets = 28;

  void observe(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Count in bucket i (0..kBuckets; index kBuckets is the overflow
  /// bucket, upper bound +Inf). Non-cumulative.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of finite bucket i.
  [[nodiscard]] static constexpr std::uint64_t bucket_bound(std::size_t i) {
    return std::uint64_t{1} << i;
  }
  /// Bucket an observation lands in.
  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) {
    if (v <= 1) return 0;
    const std::size_t idx = static_cast<std::size_t>(std::bit_width(v - 1));
    return idx < kBuckets ? idx : kBuckets;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace autonet::obs

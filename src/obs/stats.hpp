// Statistics over histogram snapshots: percentile extraction and
// multi-registry merging, used by the experiment aggregator to summarise
// span-duration distributions across campaign runs.
//
// Percentiles interpolate linearly *within* the containing bucket
// instead of snapping to its upper bound: a histogram whose mass sits
// exactly on a power-of-two boundary (every observation = 1024us, say)
// reports a p50 inside the bucket's (lower, upper] range, and two
// histograms that differ only below bucket resolution report percentiles
// that differ smoothly rather than jumping a whole power of two.
#pragma once

#include <vector>

#include "obs/registry.hpp"

namespace autonet::obs {

/// The q-th percentile (q in [0, 100]) of a histogram snapshot,
/// Prometheus-style: find the bucket containing the target cumulative
/// rank, then interpolate linearly between the bucket's lower and upper
/// bounds. Returns 0 for an empty histogram. Observations in the
/// overflow (+Inf) bucket clamp to the largest finite bound — there is
/// nothing to interpolate towards.
[[nodiscard]] double histogram_percentile(const Registry::HistogramSnapshot& snap,
                                          double q);

/// Merges snapshots by summing per-bucket counts, counts and sums.
/// Deterministic by construction: addition of unsigned integers is
/// order-independent, and the fixed bucket layout means no rebinning —
/// merging the same set of snapshots in any order yields byte-identical
/// results. The merged snapshot keeps `name`.
[[nodiscard]] Registry::HistogramSnapshot merge_histograms(
    std::string name, const std::vector<Registry::HistogramSnapshot>& parts);

/// Exact percentile over raw samples (linear interpolation between order
/// statistics, numpy's default): the aggregator uses this for per-run
/// scalar metrics where the full sample set is available.
[[nodiscard]] double sample_percentile(std::vector<double> samples, double q);

}  // namespace autonet::obs

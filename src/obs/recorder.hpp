// The flight recorder: an always-on, bounded ring buffer of structured
// RecorderEvents that every pipeline layer emits into — design rule
// decisions, per-device render outcomes, lint verdicts, deploy
// attempts/retries/faults, convergence rounds, measurement probes,
// checkpoint/cancel activity. Unlike --trace (opt-in, unbounded) the
// recorder is cheap enough to leave on: the hot path is a couple of
// relaxed atomics plus a slot write into a per-thread single-producer
// ring segment; no locks, no allocation beyond the event's own strings.
//
// Determinism: each event carries a recorder-global sequence number, so
// drain() returns events in one canonical order regardless of how many
// thread segments they were scattered across. Timestamps come from the
// registry clock's non-advancing peek_us() — recording an event never
// consumes a virtual-clock reading, so instrumenting a code path with
// recorder events does not perturb span durations or any existing
// golden export. While an obs::PhaseScope is open, timestamps are
// phase-relative, which makes a phase's event slice a pure function of
// the code executed inside it (the property checkpoint replay relies
// on; see core/checkpoint).
//
// Under AUTONET_OBS_DISABLED, obs::record() compiles to nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/event.hpp"

namespace autonet::obs {

class FlightRecorder {
 public:
  /// Slots per thread segment. The ring only ever needs to hold the
  /// events between two drain points (one pipeline phase); overflow
  /// drops the oldest events and counts them in dropped().
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit FlightRecorder(std::size_t segment_capacity = kDefaultCapacity);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends an event to this thread's segment, assigning it the next
  /// global sequence number (event.seq is overwritten). Lock-free after
  /// the thread's first call; the first call registers a segment under
  /// the recorder mutex.
  void record(RecorderEvent event);

  /// Re-records previously drained events (checkpoint replay). Contents
  /// are preserved verbatim — including timestamps — but each event
  /// gets a fresh sequence number so drain order stays consistent.
  void inject(const std::vector<RecorderEvent>& events);

  /// Consumes every unread event, merged across thread segments into
  /// sequence-number order. Call at quiescent points (phase boundaries,
  /// run end, interruption): producers must not be racing the drain or
  /// a lapped slot can tear.
  [[nodiscard]] std::vector<RecorderEvent> drain();

  /// Total events ever recorded (including later-dropped ones).
  [[nodiscard]] std::uint64_t recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring overflow (oldest-first) as observed by drain().
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  // One single-producer ring per recording thread. The producer writes
  // the slot, then publishes with a release store of head; drain reads
  // head with acquire, so slot contents for every index < head are
  // visible. head counts events ever pushed (not wrapped); next_read is
  // consumer-side state guarded by mutex_.
  struct Segment {
    explicit Segment(std::size_t capacity) : slots(capacity) {}
    std::vector<RecorderEvent> slots;
    std::atomic<std::uint64_t> head{0};
    std::uint64_t next_read = 0;
  };

  Segment& segment_for_this_thread();

  const std::size_t capacity_;
  // Distinguishes this recorder in the thread-local segment cache; a
  // plain `this` key could collide with a dead recorder's address.
  const std::uint64_t id_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex mutex_;
  std::vector<std::pair<std::thread::id, std::unique_ptr<Segment>>> segments_;
};

/// RAII marker for the currently-executing pipeline phase on this
/// thread. While open, obs::record() stamps events with this phase name
/// and a timestamp relative to the phase's start. Nests (design rules
/// inside the design phase keep the outer phase's frame unless they open
/// their own).
class PhaseScope {
 public:
  explicit PhaseScope(std::string name);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// Innermost open scope on this thread, else nullptr.
  [[nodiscard]] static const PhaseScope* current();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t start_us() const { return start_us_; }

 private:
  std::string name_;
  std::uint64_t start_us_ = 0;
  PhaseScope* previous_ = nullptr;
};

/// Records an event into Registry::current()'s flight recorder: stamps
/// the phase + phase-relative timestamp and enqueues. No-op when the
/// registry is disabled; compiles out entirely under
/// AUTONET_OBS_DISABLED.
void record(std::string category, Severity severity, std::string name,
            Fields fields = {});
inline void record(std::string category, std::string name, Fields fields = {}) {
  record(std::move(category), Severity::kInfo, std::move(name),
         std::move(fields));
}

/// One-line JSON encoding of an event, without the sequence number
/// (replayed events get fresh ones). Fields are emitted in sorted key
/// order so a serialize→parse→serialize round trip is byte-stable.
[[nodiscard]] std::string event_to_json(const RecorderEvent& event);
/// Newline-terminated event_to_json lines.
[[nodiscard]] std::string events_to_jsonl(const std::vector<RecorderEvent>& events);

}  // namespace autonet::obs

// Pluggable time source for the telemetry layer. Spans and events stamp
// themselves through a Clock so that tests can substitute virtual time:
// a VirtualClock advances by a fixed step per reading, which makes every
// recorded duration — and therefore every exported metric value — a pure
// function of the instrumented code path. Two identical seeded runs then
// produce byte-identical exports (the same property PR 1 gave the
// deployer's backoff delays).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace autonet::obs {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic microseconds since an arbitrary (per-clock) origin.
  virtual std::uint64_t now_us() = 0;
  /// Jumps the clock forward by `us` if this time source supports it
  /// (virtual clocks do; wall clocks cannot and return false). Lets the
  /// deployer account its virtual backoff waits in recorded timestamps
  /// without ever sleeping.
  virtual bool advance_us(std::uint64_t /*us*/) { return false; }
  /// Reads the clock WITHOUT consuming a virtual reading. The flight
  /// recorder stamps events through this so that instrumenting a code
  /// path never shifts span durations (which are counts of now_us()
  /// readings under a VirtualClock) or any golden export derived from
  /// them. For wall clocks peeking and reading are the same thing.
  virtual std::uint64_t peek_us() { return now_us(); }
};

/// Wall time: std::chrono::steady_clock, origin at clock construction so
/// trace timestamps start near zero.
class RealClock final : public Clock {
 public:
  RealClock() : origin_(std::chrono::steady_clock::now()) {}
  std::uint64_t now_us() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Deterministic time: every reading advances by `step_us`. Durations
/// become "number of clock readings in between", which is stable across
/// runs of a deterministic pipeline.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(std::uint64_t step_us = 1) : step_us_(step_us) {}
  std::uint64_t now_us() override {
    return now_us_.fetch_add(step_us_, std::memory_order_relaxed) + step_us_;
  }
  bool advance_us(std::uint64_t us) override {
    now_us_.fetch_add(us, std::memory_order_relaxed);
    return true;
  }
  std::uint64_t peek_us() override {
    return now_us_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_us_{0};
  std::uint64_t step_us_;
};

}  // namespace autonet::obs

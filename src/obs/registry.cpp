#include "obs/registry.hpp"

#include <set>

#include "obs/recorder.hpp"

namespace autonet::obs {

namespace {
thread_local Registry* t_current = nullptr;

// Live-registry set backing Registry::alive(). A plain static (not a
// function-local) would race with registries destroyed after main();
// keep it function-local so it outlives global() and every test-scoped
// registry.
std::mutex& live_mutex() {
  static std::mutex m;
  return m;
}
std::set<const Registry*>& live_registries() {
  static std::set<const Registry*> s;
  return s;
}
}  // namespace

Registry::Registry()
    : clock_(std::make_unique<RealClock>()),
      recorder_(std::make_unique<FlightRecorder>()) {
  std::lock_guard lock(live_mutex());
  live_registries().insert(this);
}

Registry::Registry(std::unique_ptr<Clock> clock)
    : clock_(std::move(clock)),
      recorder_(std::make_unique<FlightRecorder>()) {
  std::lock_guard lock(live_mutex());
  live_registries().insert(this);
}

Registry::~Registry() {
  std::lock_guard lock(live_mutex());
  live_registries().erase(this);
}

bool Registry::alive(const Registry* registry) {
  std::lock_guard lock(live_mutex());
  return live_registries().count(registry) != 0;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry& Registry::current() {
  return t_current != nullptr ? *t_current : global();
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::log_event(std::string kind, Fields fields) {
  if (!enabled()) return;
  const std::uint64_t ts = now_us();
  std::lock_guard lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(LogEvent{ts, std::move(kind), std::move(fields)});
}

void Registry::record_span(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  if (spans_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(event));
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> Registry::gauge_values() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) out.emplace_back(name, gauge->value());
  return out;
}

std::vector<Registry::HistogramSnapshot> Registry::histogram_values() const {
  std::lock_guard lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = histogram->count();
    snap.sum = histogram->sum();
    snap.buckets.resize(Histogram::kBuckets + 1);
    for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
      snap.buckets[i] = histogram->bucket_count(i);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<TraceEvent> Registry::trace_events() const {
  std::lock_guard lock(mutex_);
  return spans_;
}

std::vector<LogEvent> Registry::log_events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  spans_.clear();
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

RegistryScope::RegistryScope(Registry& registry) : previous_(t_current) {
  t_current = &registry;
}

RegistryScope::~RegistryScope() { t_current = previous_; }

}  // namespace autonet::obs

#include "obs/export.hpp"

#include <cstdio>
#include <sstream>

namespace autonet::obs {

namespace {

/// "render.device.us" -> "autonet_render_device_us". Dots, hyphens and
/// anything else outside [a-zA-Z0-9_] become underscores; the fixed
/// "autonet_" prefix keeps the result from starting with a digit, so
/// the output always matches the exposition-format name grammar.
std::string prometheus_name(std::string_view name) {
  std::string out = "autonet_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// Escaping for "# HELP" text: the exposition format requires backslash
/// and line feed escaped (and nothing else).
std::string prometheus_help_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Help text for a metric. Well-known families get real descriptions;
/// everything else falls back to naming its dotted source metric so the
/// exposition stays self-describing.
std::string prometheus_help(std::string_view name) {
  struct Entry {
    std::string_view prefix;
    std::string_view help;
  };
  static constexpr Entry kFamilies[] = {
      {"ckpt.", "Checkpoint store activity (core/checkpoint)."},
      {"cancel.", "Cooperative cancellation observations (core/cancel)."},
      {"deadline.", "Run deadline observations (core/cancel)."},
      {"deploy.", "Deployment attempts, retries and faults (deploy/)."},
      {"emulation.", "Control-plane emulation statistics (emulation/)."},
      {"lint.", "Static-analysis rule executions and findings (verify/)."},
      {"measure.", "Measurement probes and validation results (measure/)."},
      {"recorder.", "Flight-recorder bookkeeping (obs/recorder)."},
      {"render.", "Template rendering outcomes (render/)."},
      {"span.", "Span duration distribution in microseconds (obs/span)."},
  };
  for (const Entry& entry : kFamilies) {
    if (name.substr(0, entry.prefix.size()) == entry.prefix) {
      return std::string(entry.help) + " Source metric '" +
             std::string(name) + "'.";
    }
  }
  return "Source metric '" + std::string(name) + "'.";
}

void append_event_object(std::ostringstream& out, const LogEvent& event) {
  out << "{\"ts_us\":" << event.ts_us << ",\"kind\":\""
      << json_escape(event.kind) << "\"";
  for (const auto& [key, value] : event.fields) {
    out << ",\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
  }
  out << "}";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_chrome_trace(const Registry& registry) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : registry.trace_events()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(e.name)
        << "\",\"cat\":\"autonet\",\"ph\":\"X\",\"ts\":" << e.start_us
        << ",\"dur\":" << e.dur_us << ",\"pid\":1,\"tid\":1,\"args\":{"
        << "\"depth\":" << e.depth;
    for (const auto& [key, value] : e.args) {
      out << ",\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
    }
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

std::string to_prometheus(const Registry& registry) {
  std::ostringstream out;
  for (const auto& [name, value] : registry.counter_values()) {
    const std::string pname = prometheus_name(name);
    out << "# HELP " << pname << " " << prometheus_help_escape(prometheus_help(name))
        << "\n";
    out << "# TYPE " << pname << " counter\n" << pname << " " << value << "\n";
  }
  for (const auto& [name, value] : registry.gauge_values()) {
    const std::string pname = prometheus_name(name);
    out << "# HELP " << pname << " " << prometheus_help_escape(prometheus_help(name))
        << "\n";
    out << "# TYPE " << pname << " gauge\n" << pname << " " << value << "\n";
  }
  for (const auto& snap : registry.histogram_values()) {
    const std::string pname = prometheus_name(snap.name);
    out << "# HELP " << pname << " "
        << prometheus_help_escape(prometheus_help(snap.name)) << "\n";
    out << "# TYPE " << pname << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;
      cumulative += snap.buckets[i];
      out << pname << "_bucket{le=\"" << Histogram::bucket_bound(i) << "\"} "
          << cumulative << "\n";
    }
    out << pname << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
    out << pname << "_sum " << snap.sum << "\n";
    out << pname << "_count " << snap.count << "\n";
  }
  return out.str();
}

std::string to_jsonl(const Registry& registry) {
  std::ostringstream out;
  for (const LogEvent& event : registry.log_events()) {
    append_event_object(out, event);
    out << "\n";
  }
  return out.str();
}

std::string events_to_json(const Registry& registry) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const LogEvent& event : registry.log_events()) {
    if (!first) out << ",";
    first = false;
    out << "\n  ";
    append_event_object(out, event);
  }
  out << "\n]";
  return out.str();
}

}  // namespace autonet::obs

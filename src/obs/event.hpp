// Shared event vocabulary for the telemetry layer: the ordered key/value
// annotation list used by spans, log events and the flight recorder, the
// three-level severity scale, and the flight-recorder event record
// itself. Split out of registry.hpp so the recorder can be included by
// low-level code without pulling in the full registry.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace autonet::obs {

/// Ordered key/value annotations on spans and events.
using Fields = std::vector<std::pair<std::string, std::string>>;

/// Severity of a recorded event. The scale is deliberately small: the
/// recorder is a timeline, not a logger — anything needing more nuance
/// belongs in the event's fields.
enum class Severity : std::uint8_t { kInfo = 0, kWarning = 1, kError = 2 };

[[nodiscard]] constexpr const char* severity_label(Severity s) {
  switch (s) {
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    case Severity::kInfo: break;
  }
  return "info";
}

[[nodiscard]] constexpr Severity severity_from_label(std::string_view s) {
  if (s == "warning") return Severity::kWarning;
  if (s == "error") return Severity::kError;
  return Severity::kInfo;
}

/// One flight-recorder event. Timestamps are *phase-relative*: while an
/// obs::PhaseScope is open on the recording thread, ts_us is the offset
/// from the phase's start (read through the registry clock's
/// non-advancing peek), which makes a phase's event slice a pure
/// function of the code executed inside it — the property the
/// checkpoint/resume machinery relies on to replay restored phases'
/// events byte-identically. Outside any phase, ts_us is the absolute
/// clock reading and `phase` is empty.
struct RecorderEvent {
  /// Recorder-global sequence number (drain order). Not serialized into
  /// run reports: replayed events get fresh sequence numbers.
  std::uint64_t seq = 0;
  std::uint64_t ts_us = 0;
  /// Event family: "design", "render", "lint", "deploy", "emulation",
  /// "measure", "ckpt", "cancel", "run", ...
  std::string category;
  Severity severity = Severity::kInfo;
  /// The pipeline phase open when the event was recorded ("" = none).
  std::string phase;
  /// What happened ("boot", "bgp.round", rule id, device name, ...).
  std::string name;
  Fields fields;
};

}  // namespace autonet::obs

#include "obs/recorder.hpp"

#include <algorithm>

#include "obs/export.hpp"
#include "obs/registry.hpp"

namespace autonet::obs {

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// One-entry thread-local cache: the last (recorder, segment) pair this
// thread recorded into. Keyed by recorder id, never by address, so a
// recorder reallocated where a dead one lived cannot hit a stale entry.
struct SegmentCache {
  std::uint64_t recorder_id = 0;
  void* segment = nullptr;
};
thread_local SegmentCache t_segment_cache;

thread_local PhaseScope* t_phase_scope = nullptr;

}  // namespace

FlightRecorder::FlightRecorder(std::size_t segment_capacity)
    : capacity_(segment_capacity == 0 ? 1 : segment_capacity),
      id_(next_recorder_id()) {}

FlightRecorder::~FlightRecorder() {
  // Invalidate this thread's cache eagerly; other threads' stale entries
  // are defused by the id check.
  if (t_segment_cache.recorder_id == id_) t_segment_cache = {};
}

FlightRecorder::Segment& FlightRecorder::segment_for_this_thread() {
  if (t_segment_cache.recorder_id == id_ && t_segment_cache.segment != nullptr) {
    return *static_cast<Segment*>(t_segment_cache.segment);
  }
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [tid, segment] : segments_) {
    if (tid == self) {
      t_segment_cache = {id_, segment.get()};
      return *segment;
    }
  }
  segments_.emplace_back(self, std::make_unique<Segment>(capacity_));
  Segment* segment = segments_.back().second.get();
  t_segment_cache = {id_, segment};
  return *segment;
}

void FlightRecorder::record(RecorderEvent event) {
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  Segment& segment = segment_for_this_thread();
  const std::uint64_t head = segment.head.load(std::memory_order_relaxed);
  segment.slots[head % capacity_] = std::move(event);
  segment.head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::inject(const std::vector<RecorderEvent>& events) {
  for (const RecorderEvent& event : events) record(event);
}

std::vector<RecorderEvent> FlightRecorder::drain() {
  std::vector<RecorderEvent> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [tid, segment] : segments_) {
    (void)tid;
    const std::uint64_t head = segment->head.load(std::memory_order_acquire);
    std::uint64_t lo = segment->next_read;
    if (head - lo > capacity_) {
      // The ring lapped the last drain point: the oldest events are
      // gone. Account for them and pick up at the survivors.
      dropped_.fetch_add((head - capacity_) - lo, std::memory_order_relaxed);
      lo = head - capacity_;
    }
    for (std::uint64_t i = lo; i < head; ++i) {
      out.push_back(segment->slots[i % capacity_]);
    }
    segment->next_read = head;
  }
  std::sort(out.begin(), out.end(),
            [](const RecorderEvent& a, const RecorderEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

PhaseScope::PhaseScope(std::string name) : name_(std::move(name)) {
  if constexpr (kCompiledIn) {
    start_us_ = Registry::current().peek_us();
    previous_ = t_phase_scope;
    t_phase_scope = this;
  }
}

PhaseScope::~PhaseScope() {
  if constexpr (kCompiledIn) {
    t_phase_scope = previous_;
  }
}

const PhaseScope* PhaseScope::current() { return t_phase_scope; }

void record(std::string category, Severity severity, std::string name,
            Fields fields) {
  if constexpr (!kCompiledIn) return;
  Registry& registry = Registry::current();
  if (!registry.enabled()) return;
  RecorderEvent event;
  const std::uint64_t now = registry.peek_us();
  if (const PhaseScope* phase = PhaseScope::current()) {
    event.phase = phase->name();
    event.ts_us = now >= phase->start_us() ? now - phase->start_us() : 0;
  } else {
    event.ts_us = now;
  }
  event.category = std::move(category);
  event.severity = severity;
  event.name = std::move(name);
  event.fields = std::move(fields);
  registry.recorder().record(std::move(event));
}

std::string event_to_json(const RecorderEvent& event) {
  std::string out = "{\"ts_us\":" + std::to_string(event.ts_us);
  out += ",\"phase\":\"" + json_escape(event.phase) + "\"";
  out += ",\"category\":\"" + json_escape(event.category) + "\"";
  out += ",\"severity\":\"";
  out += severity_label(event.severity);
  out += "\",\"name\":\"" + json_escape(event.name) + "\"";
  out += ",\"fields\":{";
  Fields sorted = event.fields;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  bool first = true;
  for (const auto& [key, value] : sorted) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
  out += "}}";
  return out;
}

std::string events_to_jsonl(const std::vector<RecorderEvent>& events) {
  std::string out;
  for (const RecorderEvent& event : events) {
    out += event_to_json(event);
    out += "\n";
  }
  return out;
}

}  // namespace autonet::obs

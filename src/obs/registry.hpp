// The process-wide telemetry registry: named counters/gauges/histograms,
// completed-span trace events, and structured log events, all behind one
// thread-safe object. Library code reaches it through
// Registry::current() — a thread-local override (set by RegistryScope)
// falling back to Registry::global() — so instrumentation never needs a
// registry parameter threaded through every call, yet tests can capture
// a pipeline's telemetry into an isolated registry with a virtual clock
// and golden-compare the exports.
//
// Disabled mode (set_enabled(false)) drops span/event recording while
// leaving metric objects valid; hot paths keep only a relaxed atomic
// increment. Defining AUTONET_OBS_DISABLED compiles recording out
// entirely (kCompiledIn below folds every branch to the no-op side).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/clock.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"

namespace autonet::obs {

class FlightRecorder;

#ifdef AUTONET_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// A completed span (RAII timer), as recorded by obs::Span.
struct TraceEvent {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  /// Nesting depth at the time the span opened (0 = top level).
  int depth = 0;
  Fields args;
};

/// A structured log event (deployer transfer/boot/retry, ...).
struct LogEvent {
  std::uint64_t ts_us = 0;
  /// Event family, e.g. "deploy" or "bench".
  std::string kind;
  Fields fields;
};

class Registry {
 public:
  /// Real (steady_clock) time.
  Registry();
  /// Custom time source — pass a VirtualClock for deterministic exports.
  explicit Registry(std::unique_ptr<Clock> clock);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  /// True while `registry` points at a live Registry. Lets an RAII
  /// obs::Span that escaped its RegistryScope detect that its registry
  /// was destroyed instead of dereferencing a dangling pointer.
  [[nodiscard]] static bool alive(const Registry* registry);

  /// The process-wide default registry (real clock).
  static Registry& global();
  /// The active registry: the innermost RegistryScope on this thread,
  /// else global().
  static Registry& current();

  /// Runtime switch for span/event recording. Metric objects stay live
  /// either way; compiled-out builds ignore this entirely.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return kCompiledIn && enabled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t now_us() { return clock_->now_us(); }
  /// Non-advancing clock read; flight-recorder event timestamps use
  /// this so recording never perturbs span durations (see Clock).
  [[nodiscard]] std::uint64_t peek_us() { return clock_->peek_us(); }
  /// Advances a virtual clock (no-op returning false under a real one).
  /// The deployer calls this with its computed backoff delays so that,
  /// under a VirtualClock, retry events are spaced by exactly the
  /// backoff the logs claim — timestamps become a pure function of the
  /// executed code path, with no wall-clock leakage.
  bool advance_clock_us(std::uint64_t us) { return clock_->advance_us(us); }

  // --- Metrics (references are stable for the registry's lifetime) ------
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // --- Events -----------------------------------------------------------
  /// Appends a structured event (timestamped now). Dropped when disabled
  /// or past the buffer cap.
  void log_event(std::string kind, Fields fields);
  /// Appends a completed span. Normally called by obs::Span.
  void record_span(TraceEvent event);
  /// The registry's flight recorder (always present; gate writes on
  /// enabled()). Most callers should use the obs::record() helper in
  /// obs/recorder.hpp, which also stamps phase-relative timestamps.
  [[nodiscard]] FlightRecorder& recorder() { return *recorder_; }

  // --- Snapshots (copies; safe to export while instrumentation runs) ----
  struct HistogramSnapshot {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Non-cumulative per-bucket counts; index Histogram::kBuckets is
    /// the overflow (+Inf) bucket.
    std::vector<std::uint64_t> buckets;
  };
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counter_values()
      const;
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> gauge_values()
      const;
  [[nodiscard]] std::vector<HistogramSnapshot> histogram_values() const;
  [[nodiscard]] std::vector<TraceEvent> trace_events() const;
  [[nodiscard]] std::vector<LogEvent> log_events() const;
  /// Events discarded once a buffer hit kMaxEvents.
  [[nodiscard]] std::uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Clears all metrics and buffered events (tests, bench harness).
  void reset();

  /// Name-prefixing view: scope("emulation").counter("spf_runs") is
  /// counter("emulation.spf_runs").
  class ScopeView {
   public:
    ScopeView(Registry& registry, std::string prefix)
        : registry_(&registry), prefix_(std::move(prefix)) {}
    Counter& counter(std::string_view name) {
      return registry_->counter(prefix_ + "." + std::string(name));
    }
    Gauge& gauge(std::string_view name) {
      return registry_->gauge(prefix_ + "." + std::string(name));
    }
    Histogram& histogram(std::string_view name) {
      return registry_->histogram(prefix_ + "." + std::string(name));
    }
    void log_event(Fields fields) {
      registry_->log_event(prefix_, std::move(fields));
    }
    [[nodiscard]] Registry& registry() { return *registry_; }

   private:
    Registry* registry_;
    std::string prefix_;
  };
  [[nodiscard]] ScopeView scope(std::string prefix) {
    return ScopeView(*this, std::move(prefix));
  }

  /// Buffer cap per event stream; beyond it events are counted in
  /// dropped_events() instead of stored (keeps long benchmark loops from
  /// accumulating unbounded trace memory).
  static constexpr std::size_t kMaxEvents = 1 << 16;

 private:
  std::unique_ptr<Clock> clock_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex mutex_;
  // node-based maps: element references stay valid across inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<TraceEvent> spans_;
  std::vector<LogEvent> events_;
};

/// RAII thread-local registry override: while alive, Registry::current()
/// on this thread returns the given registry.
class RegistryScope {
 public:
  explicit RegistryScope(Registry& registry);
  ~RegistryScope();
  RegistryScope(const RegistryScope&) = delete;
  RegistryScope& operator=(const RegistryScope&) = delete;

 private:
  Registry* previous_;
};

}  // namespace autonet::obs

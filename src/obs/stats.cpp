#include "obs/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace autonet::obs {

double histogram_percentile(const Registry::HistogramSnapshot& snap, double q) {
  if (snap.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  // Target cumulative rank. Using count (not count-1) matches the
  // cumulative-bucket semantics of the Prometheus histogram_quantile.
  const double target = q / 100.0 * static_cast<double>(snap.count);

  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
    const std::uint64_t in_bucket = snap.buckets[i];
    if (in_bucket == 0) continue;
    const std::uint64_t next = cumulative + in_bucket;
    if (static_cast<double>(next) >= target) {
      if (i >= Histogram::kBuckets) {
        // Overflow bucket: clamp to the largest finite bound.
        return static_cast<double>(Histogram::bucket_bound(Histogram::kBuckets - 1));
      }
      const double upper = static_cast<double>(Histogram::bucket_bound(i));
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(Histogram::bucket_bound(i - 1));
      // Linear interpolation within (lower, upper]: the fraction of the
      // bucket's population below the target rank. Never snaps to
      // `upper` unless the target rank is the bucket's last observation.
      const double frac =
          (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative = next;
  }
  // All mass scanned without reaching the target (q == 0 with leading
  // empty buckets): the smallest populated bucket's upper bound.
  for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
    if (snap.buckets[i] > 0) {
      return static_cast<double>(
          Histogram::bucket_bound(std::min(i, Histogram::kBuckets - 1)));
    }
  }
  return 0.0;
}

Registry::HistogramSnapshot merge_histograms(
    std::string name, const std::vector<Registry::HistogramSnapshot>& parts) {
  Registry::HistogramSnapshot merged;
  merged.name = std::move(name);
  merged.buckets.assign(Histogram::kBuckets + 1, 0);
  for (const auto& part : parts) {
    if (part.buckets.size() != merged.buckets.size()) {
      throw std::invalid_argument(
          "merge_histograms: snapshot bucket layout mismatch");
    }
    merged.count += part.count;
    merged.sum += part.sum;
    for (std::size_t i = 0; i < merged.buckets.size(); ++i) {
      merged.buckets[i] += part.buckets[i];
    }
  }
  return merged;
}

double sample_percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 100.0);
  const double pos = q / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= samples.size()) return samples.back();
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

}  // namespace autonet::obs

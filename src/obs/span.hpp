// RAII span timer. Opening a span stamps the start time and bumps a
// thread-local nesting depth; closing it records a TraceEvent in the
// registry and feeds a per-name duration histogram
// ("span.<name>.us"). Spans always *measure* (callers like
// Workflow::timings() need durations even with telemetry off); they only
// *record* when the registry is enabled.
//
//   {
//     obs::Span phase(reg, "compile");
//     for (...) {
//       obs::Span dev("compile.device");      // uses Registry::current()
//       dev.arg("device", name);
//     }                                        // child closes first
//   }                                          // parent closes, depth 0
#pragma once

#include <string>
#include <utility>

#include "obs/registry.hpp"

namespace autonet::obs {

namespace detail {
inline thread_local int t_span_depth = 0;
}  // namespace detail

class Span {
 public:
  Span(Registry& registry, std::string name)
      : registry_(&registry), name_(std::move(name)),
        depth_(detail::t_span_depth++) {
    start_us_ = registry_->now_us();
  }
  /// Records into Registry::current().
  explicit Span(std::string name) : Span(Registry::current(), std::move(name)) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (!done_) stop_ms();
  }

  /// Annotates the recorded trace event.
  Span& arg(std::string key, std::string value) {
    args_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Ends the span (idempotent) and returns its duration in
  /// milliseconds — the value PhaseTimings is derived from. Safe to call
  /// after the registry died (a span that outlived its RegistryScope's
  /// registry): the span closes without recording and reports 0.
  double stop_ms() {
    if (done_) return static_cast<double>(dur_us_) / 1000.0;
    done_ = true;
    --detail::t_span_depth;
    if (!Registry::alive(registry_)) {
      dur_us_ = 0;
      return 0.0;
    }
    const std::uint64_t end_us = registry_->now_us();
    dur_us_ = end_us > start_us_ ? end_us - start_us_ : 0;
    if (registry_->enabled()) {
      registry_->record_span(
          TraceEvent{name_, start_us_, dur_us_, depth_, std::move(args_)});
      registry_->histogram("span." + name_ + ".us").observe(dur_us_);
    }
    return static_cast<double>(dur_us_) / 1000.0;
  }

 private:
  Registry* registry_;
  std::string name_;
  Fields args_;
  std::uint64_t start_us_ = 0;
  std::uint64_t dur_us_ = 0;
  int depth_;
  bool done_ = false;
};

}  // namespace autonet::obs

// Exporters over a Registry snapshot. Three formats, three audiences:
//  - Chrome trace-event JSON: load into Perfetto / chrome://tracing to
//    see the pipeline's span tree on a timeline (§3.2 phase methodology,
//    but zoomable).
//  - Prometheus text exposition: counters/gauges/histograms for scrape-
//    style collection and for byte-exact golden comparison in tests.
//  - JSONL: the structured-event log (deploy transfers/boots/retries,
//    bench results), one JSON object per line, greppable and streamable.
#pragma once

#include <string>
#include <string_view>

#include "obs/registry.hpp"

namespace autonet::obs {

/// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...},...]} —
/// complete ("X") events; nesting is reconstructed by the viewer from
/// ts/dur and recorded in args.depth.
[[nodiscard]] std::string to_chrome_trace(const Registry& registry);

/// Prometheus text exposition. Metric names are sanitized
/// ("render.files" -> "autonet_render_files"); histograms emit
/// cumulative buckets (non-empty finite buckets plus "+Inf"), _sum and
/// _count.
[[nodiscard]] std::string to_prometheus(const Registry& registry);

/// Structured-event log: one JSON object per line
/// ({"ts_us":...,"kind":...,<fields...>}).
[[nodiscard]] std::string to_jsonl(const Registry& registry);

/// The same structured events as a single JSON array document (used by
/// the bench harness for BENCH_<name>.json).
[[nodiscard]] std::string events_to_json(const Registry& registry);

/// JSON string escaping, shared by the exporters and the bench harness.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace autonet::obs

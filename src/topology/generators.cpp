#include "topology/generators.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace autonet::topology {

namespace {

std::string router_name(std::int64_t asn, std::size_t k) {
  return "as" + std::to_string(asn) + "r" + std::to_string(k + 1);
}

graph::NodeId add_router(graph::Graph& g, std::int64_t asn, std::size_t k) {
  graph::NodeId n = g.add_node(router_name(asn, k));
  g.set_node_attr(n, "asn", asn);
  g.set_node_attr(n, "device_type", "router");
  return n;
}

std::vector<graph::NodeId> add_routers(graph::Graph& g, std::int64_t asn,
                                       std::size_t count) {
  std::vector<graph::NodeId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(add_router(g, asn, i));
  return out;
}

}  // namespace

graph::Graph make_line(std::size_t n, std::int64_t asn) {
  graph::Graph g(false, "line");
  auto nodes = add_routers(g, asn, n);
  for (std::size_t i = 1; i < n; ++i) g.add_edge(nodes[i - 1], nodes[i]);
  return g;
}

graph::Graph make_ring(std::size_t n, std::int64_t asn) {
  graph::Graph g(false, "ring");
  auto nodes = add_routers(g, asn, n);
  for (std::size_t i = 1; i < n; ++i) g.add_edge(nodes[i - 1], nodes[i]);
  if (n > 2) g.add_edge(nodes[n - 1], nodes[0]);
  return g;
}

graph::Graph make_grid(std::size_t w, std::size_t h, std::int64_t asn) {
  graph::Graph g(false, "grid");
  auto nodes = add_routers(g, asn, w * h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      if (x + 1 < w) g.add_edge(nodes[y * w + x], nodes[y * w + x + 1]);
      if (y + 1 < h) g.add_edge(nodes[y * w + x], nodes[(y + 1) * w + x]);
    }
  }
  return g;
}

graph::Graph make_star(std::size_t n, std::int64_t asn) {
  graph::Graph g(false, "star");
  auto nodes = add_routers(g, asn, n);
  for (std::size_t i = 1; i < n; ++i) g.add_edge(nodes[0], nodes[i]);
  return g;
}

graph::Graph make_full_mesh(std::size_t n, std::int64_t asn) {
  graph::Graph g(false, "mesh");
  auto nodes = add_routers(g, asn, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) g.add_edge(nodes[i], nodes[j]);
  }
  return g;
}

graph::Graph make_random_connected(std::size_t n, double p, std::uint64_t seed,
                                   std::int64_t asn) {
  graph::Graph g(false, "random");
  auto nodes = add_routers(g, asn, n);
  std::mt19937_64 rng(seed);

  // Spanning path over a random permutation keeps the graph connected.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(nodes[order[i - 1]], nodes[order[i]]);
  }

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (g.find_edge(nodes[i], nodes[j]) != graph::kInvalidEdge) continue;
      if (coin(rng) < p) g.add_edge(nodes[i], nodes[j]);
    }
  }
  return g;
}

graph::Graph make_multi_as(const MultiAsOptions& opts) {
  if (opts.as_count == 0) throw std::invalid_argument("multi_as: as_count == 0");
  graph::Graph g(false, "multi_as");
  std::mt19937_64 rng(opts.seed);
  std::uniform_int_distribution<std::size_t> size_dist(opts.min_routers_per_as,
                                                       opts.max_routers_per_as);

  std::vector<std::vector<graph::NodeId>> as_nodes(opts.as_count + 1);
  for (std::size_t asn = 1; asn <= opts.as_count; ++asn) {
    const std::size_t count = size_dist(rng);
    auto nodes = add_routers(g, static_cast<std::int64_t>(asn), count);
    // Spanning path + extra chords.
    for (std::size_t i = 1; i < count; ++i) g.add_edge(nodes[i - 1], nodes[i]);
    auto extra = static_cast<std::size_t>(opts.intra_extra_fraction *
                                          static_cast<double>(count));
    std::uniform_int_distribution<std::size_t> pick(0, count - 1);
    for (std::size_t k = 0; k < extra; ++k) {
      std::size_t a = pick(rng);
      std::size_t b = pick(rng);
      if (a != b && g.find_edge(nodes[a], nodes[b]) == graph::kInvalidEdge) {
        g.add_edge(nodes[a], nodes[b]);
      }
    }
    as_nodes[asn] = std::move(nodes);
  }

  // AS 1 is the backbone: connect every other AS to it (or, with
  // links_per_as > 1, to further random ASes as well).
  for (std::size_t asn = 2; asn <= opts.as_count; ++asn) {
    for (std::size_t link = 0; link < opts.links_per_as; ++link) {
      std::size_t peer_as = 1;
      if (link > 0) {
        std::uniform_int_distribution<std::size_t> pick_as(1, opts.as_count);
        do {
          peer_as = pick_as(rng);
        } while (peer_as == asn);
      }
      std::uniform_int_distribution<std::size_t> pick_self(0, as_nodes[asn].size() - 1);
      std::uniform_int_distribution<std::size_t> pick_peer(0, as_nodes[peer_as].size() - 1);
      graph::NodeId u = as_nodes[asn][pick_self(rng)];
      graph::NodeId v = as_nodes[peer_as][pick_peer(rng)];
      if (g.find_edge(u, v) == graph::kInvalidEdge) g.add_edge(u, v);
    }
  }
  return g;
}

graph::Graph make_nren_model(const NrenOptions& opts) {
  if (opts.as_count < 2) throw std::invalid_argument("nren: need >= 2 ASes");
  graph::Graph g(false, "european_nren");
  std::mt19937_64 rng(opts.seed);

  // Backbone (GEANT-like) gets ~4% of routers; the remainder is spread
  // over the NRENs as evenly as possible so router_count is hit exactly.
  const std::size_t nren_count = opts.as_count - 1;
  std::size_t backbone_size = std::max<std::size_t>(3, opts.router_count / 25);
  std::size_t remaining = opts.router_count - backbone_size;
  std::vector<std::size_t> sizes(nren_count, remaining / nren_count);
  for (std::size_t i = 0; i < remaining % nren_count; ++i) ++sizes[i];

  std::size_t edges_budget = opts.link_count;
  std::vector<std::vector<graph::NodeId>> as_nodes(opts.as_count + 1);

  // Backbone ring with chords for resilience.
  as_nodes[1] = add_routers(g, 1, backbone_size);
  for (std::size_t i = 0; i < backbone_size; ++i) {
    g.add_edge(as_nodes[1][i], as_nodes[1][(i + 1) % backbone_size]);
  }
  for (std::size_t i = 0; i + backbone_size / 2 < backbone_size; i += 4) {
    g.add_edge(as_nodes[1][i], as_nodes[1][i + backbone_size / 2]);
  }

  // NRENs: spanning path each.
  for (std::size_t k = 0; k < nren_count; ++k) {
    const auto asn = static_cast<std::int64_t>(k + 2);
    as_nodes[k + 2] = add_routers(g, asn, sizes[k]);
    for (std::size_t i = 1; i < sizes[k]; ++i) {
      g.add_edge(as_nodes[k + 2][i - 1], as_nodes[k + 2][i]);
    }
  }

  // Inter-AS links: each NREN homes to the backbone once; larger NRENs
  // get a second (resilience) uplink.
  for (std::size_t k = 0; k < nren_count; ++k) {
    std::uniform_int_distribution<std::size_t> pick_bb(0, backbone_size - 1);
    std::uniform_int_distribution<std::size_t> pick_self(0, sizes[k] - 1);
    g.add_edge(as_nodes[k + 2][pick_self(rng)], as_nodes[1][pick_bb(rng)]);
    if (sizes[k] > 20) {
      graph::NodeId u = as_nodes[k + 2][pick_self(rng)];
      graph::NodeId v = as_nodes[1][pick_bb(rng)];
      if (g.find_edge(u, v) == graph::kInvalidEdge) g.add_edge(u, v);
    }
  }

  // Spend the remaining link budget on random intra-AS chords, weighted
  // towards the larger ASes (the Zoo model's NRENs are meshy nationally).
  while (g.edge_count() < edges_budget) {
    std::uniform_int_distribution<std::size_t> pick_as(1, opts.as_count);
    const auto& nodes = as_nodes[pick_as(rng)];
    if (nodes.size() < 3) continue;
    std::uniform_int_distribution<std::size_t> pick(0, nodes.size() - 1);
    graph::NodeId u = nodes[pick(rng)];
    graph::NodeId v = nodes[pick(rng)];
    if (u != v && g.find_edge(u, v) == graph::kInvalidEdge) g.add_edge(u, v);
  }
  return g;
}

void attach_servers(graph::Graph& g, std::size_t count, std::uint64_t seed,
                    const std::string& name_prefix) {
  auto routers = g.nodes();
  std::erase_if(routers, [&g](graph::NodeId n) {
    const auto* type = g.node_attr(n, "device_type").as_string();
    return type == nullptr || *type != "router";
  });
  if (routers.empty()) throw std::invalid_argument("attach_servers: no routers");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, routers.size() - 1);
  for (std::size_t i = 0; i < count; ++i) {
    graph::NodeId host = routers[pick(rng)];
    graph::NodeId server = g.add_node(name_prefix + std::to_string(i + 1));
    g.set_node_attr(server, "device_type", "server");
    g.set_node_attr(server, "asn", g.node_attr(host, "asn"));
    g.add_edge(server, host);
  }
}

}  // namespace autonet::topology

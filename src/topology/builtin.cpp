#include "topology/builtin.hpp"

#include <array>

#include "topology/graphml.hpp"

namespace autonet::topology {

namespace {

graph::NodeId router(graph::Graph& g, const char* name, std::int64_t asn) {
  graph::NodeId n = g.add_node(name);
  g.set_node_attr(n, "asn", asn);
  g.set_node_attr(n, "device_type", "router");
  return n;
}

}  // namespace

graph::Graph figure5() {
  graph::Graph g(false, "figure5");
  router(g, "r1", 1);
  router(g, "r2", 1);
  router(g, "r3", 1);
  router(g, "r4", 1);
  router(g, "r5", 2);
  g.add_edge("r1", "r2");
  g.add_edge("r1", "r3");
  g.add_edge("r2", "r4");
  g.add_edge("r3", "r4");
  g.add_edge("r3", "r5");
  g.add_edge("r4", "r5");
  return g;
}

graph::Graph small_internet() {
  graph::Graph g(false, "small_internet");
  // Seven ASes, fourteen routers (Fig. 1).
  router(g, "as1r1", 1);
  router(g, "as20r1", 20);
  router(g, "as20r2", 20);
  router(g, "as20r3", 20);
  router(g, "as30r1", 30);
  router(g, "as40r1", 40);
  router(g, "as100r1", 100);
  router(g, "as100r2", 100);
  router(g, "as100r3", 100);
  {
    // AS200 is a dual-homed stub customer: it must not provide transit
    // between its providers AS100 and AS300 (otherwise BGP would route
    // AS300->AS100 traffic through it, instead of the Fig. 7 path through
    // the AS40/AS1/AS20 carrier chain).
    graph::NodeId n = router(g, "as200r1", 200);
    g.set_node_attr(n, "no_transit", true);
  }
  router(g, "as300r1", 300);
  router(g, "as300r2", 300);
  router(g, "as300r3", 300);
  router(g, "as300r4", 300);

  // Intra-AS links.
  g.add_edge("as20r1", "as20r2");
  g.add_edge("as20r1", "as20r3");
  g.add_edge("as20r2", "as20r3");
  g.add_edge("as100r1", "as100r2");
  g.add_edge("as100r1", "as100r3");
  g.add_edge("as100r2", "as100r3");
  g.add_edge("as300r1", "as300r2");
  g.add_edge("as300r1", "as300r3");
  g.add_edge("as300r2", "as300r4");
  g.add_edge("as300r3", "as300r4");

  // Inter-AS links: AS1 is the transit hub; AS100 is AS20's customer;
  // AS200 dual-homes to AS100 and AS300; AS300 reaches the core via the
  // stub carriers AS30 and AS40.
  g.add_edge("as1r1", "as20r3");
  g.add_edge("as1r1", "as30r1");
  g.add_edge("as1r1", "as40r1");
  g.add_edge("as20r2", "as100r1");
  g.add_edge("as100r3", "as200r1");
  g.add_edge("as200r1", "as300r1");
  g.add_edge("as30r1", "as300r3");
  g.add_edge("as40r1", "as300r2");
  return g;
}

std::string small_internet_graphml() {
  return to_graphml(small_internet());
}

graph::Graph bad_gadget() {
  graph::Graph g(false, "bad_gadget");
  constexpr std::int64_t kAs = 65000;

  // Route reflectors and their clients (all in one AS).
  for (const char* name : {"rr1", "rr2", "rr3"}) {
    graph::NodeId n = router(g, name, kAs);
    g.set_node_attr(n, "rr", true);
  }
  const std::array<const char*, 3> clients{"c1", "c2", "c3"};
  const std::array<const char*, 3> rrs{"rr1", "rr2", "rr3"};
  for (std::size_t i = 0; i < 3; ++i) {
    graph::NodeId n = router(g, clients[i], kAs);
    g.set_node_attr(n, "rr_cluster", rrs[i]);
  }

  // External origins, one per private AS, all announcing the same prefix
  // so the AS has three equally-attractive exits.
  for (std::size_t i = 0; i < 3; ++i) {
    graph::NodeId n = router(g, (std::string("e") + std::to_string(i + 1)).c_str(),
                             65001 + static_cast<std::int64_t>(i));
    g.set_node_attr(n, "advertise_prefix", "203.0.113.0/24");
  }

  auto link = [&g](const char* u, const char* v, std::int64_t cost) {
    graph::EdgeId e = g.add_edge(u, v);
    g.set_edge_attr(e, "ospf_cost", cost);
  };

  // RR core ring: expensive, so it never shortcuts exit selection.
  link("rr1", "rr2", 100);
  link("rr2", "rr3", 100);
  link("rr3", "rr1", 100);
  // Each RR's own client is IGP-far...
  link("rr1", "c1", 50);
  link("rr2", "c2", 50);
  link("rr3", "c3", 50);
  // ...while the *next* RR's client is IGP-near, making the hot-potato
  // preferences cyclic: rr_i wants c_{i+1}'s exit, which is only
  // advertised while rr_{i+1} prefers its own client. No stable solution
  // exists when the IGP tie-break is part of the decision process.
  link("rr1", "c2", 10);
  link("rr2", "c3", 10);
  link("rr3", "c1", 10);
  // eBGP attachment of the three exits.
  g.add_edge("c1", "e1");
  g.add_edge("c2", "e2");
  g.add_edge("c3", "e3");
  return g;
}

graph::Graph med_oscillation() {
  graph::Graph g(false, "med_oscillation");
  constexpr std::int64_t kAs = 65100;

  for (const char* name : {"rr1", "rr2"}) {
    graph::NodeId n = router(g, name, kAs);
    g.set_node_attr(n, "rr", true);
  }
  // c1 is rr1's client; c2 and c3 are rr2's.
  for (auto [name, cluster] : {std::pair{"c1", "rr1"}, {"c2", "rr2"},
                               {"c3", "rr2"}}) {
    graph::NodeId n = router(g, name, kAs);
    g.set_node_attr(n, "rr_cluster", cluster);
  }
  // Provider B enters at c1 (MED 10) and c2 (MED 20); provider A at c3.
  for (auto [name, asn] : {std::pair{"b1", std::int64_t{65201}},
                           {"b2", std::int64_t{65201}},
                           {"a1", std::int64_t{65202}}}) {
    graph::NodeId n = router(g, name, asn);
    g.set_node_attr(n, "advertise_prefix", "198.51.100.0/24");
  }

  auto link = [&g](const char* u, const char* v, std::int64_t cost) {
    graph::EdgeId e = g.add_edge(u, v);
    g.set_edge_attr(e, "ospf_cost", cost);
  };
  // IGP geometry: rr2 is nearer c2 than c3, far from c1; rr1 is nearer
  // c3 than c1. The reflector core is expensive.
  link("rr1", "rr2", 100);
  link("rr1", "c1", 30);
  link("rr2", "c2", 10);
  link("rr2", "c3", 20);
  link("rr1", "c3", 6);

  auto ebgp = [&g](const char* u, const char* v, std::int64_t med) {
    graph::EdgeId e = g.add_edge(u, v);
    if (med >= 0) g.set_edge_attr(e, "med", med);
  };
  ebgp("c1", "b1", 10);
  ebgp("c2", "b2", 20);
  ebgp("c3", "a1", -1);
  return g;
}

}  // namespace autonet::topology

#include "topology/graphml.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <sstream>

#include "topology/xml_detail.hpp"

namespace autonet::topology {

namespace {

enum class KeyType { kString, kInt, kDouble, kBool };

struct KeyDecl {
  std::string attr_name;
  KeyType type = KeyType::kString;
  std::string domain;  // "node", "edge", "graph", or "all"
};

graph::AttrValue convert(const std::string& text, KeyType type) {
  switch (type) {
    case KeyType::kInt: {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc{} || p != text.data() + text.size()) {
        throw ParseError("GraphML: bad integer value '" + text + "'");
      }
      return v;
    }
    case KeyType::kDouble:
      try {
        return std::stod(text);
      } catch (const std::exception&) {
        throw ParseError("GraphML: bad float value '" + text + "'");
      }
    case KeyType::kBool:
      return text == "true" || text == "1";
    case KeyType::kString:
      return text;
  }
  return {};
}

std::string trim(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

void apply_data(const xml::Element& elem,
                const std::map<std::string, KeyDecl>& keys,
                graph::AttrMap& attrs) {
  for (const auto* data : elem.all("data")) {
    const std::string key_id = data->attr("key");
    auto it = keys.find(key_id);
    const std::string value = trim(data->text);
    if (it == keys.end()) {
      attrs.insert_or_assign(key_id, value);  // undeclared key: keep raw
    } else {
      attrs.insert_or_assign(it->second.attr_name, convert(value, it->second.type));
    }
  }
}

}  // namespace

graph::Graph load_graphml(std::string_view text) {
  std::unique_ptr<xml::Element> root;
  try {
    root = xml::parse(text);
  } catch (const std::exception& e) {
    throw ParseError(std::string("GraphML: ") + e.what());
  }
  if (root->name != "graphml") throw ParseError("GraphML: root element is not <graphml>");

  std::map<std::string, KeyDecl> keys;
  for (const auto* key : root->all("key")) {
    KeyDecl decl;
    decl.attr_name = key->attr("attr.name");
    if (decl.attr_name.empty()) decl.attr_name = key->attr("id");
    decl.domain = key->attr("for");
    const std::string type = key->attr("attr.type");
    if (type == "int" || type == "long" || type == "integer") decl.type = KeyType::kInt;
    else if (type == "float" || type == "double") decl.type = KeyType::kDouble;
    else if (type == "boolean" || type == "bool") decl.type = KeyType::kBool;
    keys[key->attr("id")] = decl;
  }

  const auto* graph_elem = root->first("graph");
  if (graph_elem == nullptr) throw ParseError("GraphML: missing <graph>");
  const bool directed = graph_elem->attr("edgedefault") == "directed";

  graph::Graph g(directed, graph_elem->attr("id"));
  apply_data(*graph_elem, keys, g.data());

  // Map raw GraphML node ids to graph node ids: a "label" attribute, when
  // present (yEd emits these), becomes the node name.
  std::map<std::string, graph::NodeId> by_raw_id;
  for (const auto* node : graph_elem->all("node")) {
    const std::string raw_id = node->attr("id");
    graph::AttrMap attrs;
    apply_data(*node, keys, attrs);
    std::string name = raw_id;
    if (auto it = attrs.find("label"); it != attrs.end() && it->second.is_string() &&
                                       !it->second.as_string()->empty()) {
      name = *it->second.as_string();
    }
    graph::NodeId id = g.add_node(name);
    g.node_attrs(id) = std::move(attrs);
    g.set_node_attr(id, "_graphml_id", raw_id);
    by_raw_id[raw_id] = id;
  }

  for (const auto* edge : graph_elem->all("edge")) {
    auto src = by_raw_id.find(edge->attr("source"));
    auto dst = by_raw_id.find(edge->attr("target"));
    if (src == by_raw_id.end() || dst == by_raw_id.end()) {
      throw ParseError("GraphML: edge references unknown node '" +
                       edge->attr("source") + "'/'" + edge->attr("target") + "'");
    }
    graph::EdgeId e = g.add_edge(src->second, dst->second);
    apply_data(*edge, keys, g.edge_attrs(e));
  }
  return g;
}

graph::Graph load_graphml_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("GraphML: cannot open file " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return load_graphml(ss.str());
  } catch (const ParseError& e) {
    // file:line context — the XML layer puts the line in its message.
    throw ParseError(path + ": " + e.what());
  }
}

namespace {

const char* type_name(const graph::AttrValue& v) {
  if (v.is_bool()) return "boolean";
  if (v.is_int()) return "long";
  if (v.is_double()) return "double";
  return "string";
}

}  // namespace

std::string to_graphml(const graph::Graph& g) {
  // Collect attribute keys and their types from first occurrence.
  struct Seen {
    std::string domain;
    std::string type;
  };
  std::map<std::string, Seen> keys;
  auto scan = [&keys](const graph::AttrMap& attrs, const char* domain) {
    for (const auto& [k, v] : attrs) {
      if (k.starts_with("_")) continue;  // internal bookkeeping attrs
      keys.try_emplace(std::string(domain) + ":" + k, Seen{domain, type_name(v)});
    }
  };
  for (graph::NodeId n : g.nodes()) scan(g.node_attrs(n), "node");
  for (graph::EdgeId e : g.edges()) scan(g.edge_attrs(e), "edge");
  scan(g.data(), "graph");

  std::ostringstream out;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
  std::map<std::string, std::string> key_ids;
  int next_key = 0;
  for (const auto& [qualified, seen] : keys) {
    std::string id = "d" + std::to_string(next_key++);
    key_ids[qualified] = id;
    const std::string attr_name = qualified.substr(qualified.find(':') + 1);
    out << "  <key id=\"" << id << "\" for=\"" << seen.domain << "\" attr.name=\""
        << xml::escape(attr_name) << "\" attr.type=\"" << seen.type << "\"/>\n";
  }

  out << "  <graph id=\"" << xml::escape(g.name()) << "\" edgedefault=\""
      << (g.directed() ? "directed" : "undirected") << "\">\n";

  auto emit_data = [&](const graph::AttrMap& attrs, const char* domain,
                       const char* indent) {
    for (const auto& [k, v] : attrs) {
      if (k.starts_with("_")) continue;
      auto it = key_ids.find(std::string(domain) + ":" + k);
      if (it == key_ids.end()) continue;
      out << indent << "<data key=\"" << it->second << "\">"
          << xml::escape(v.to_string()) << "</data>\n";
    }
  };

  emit_data(g.data(), "graph", "    ");
  for (graph::NodeId n : g.nodes()) {
    out << "    <node id=\"" << xml::escape(g.node_name(n)) << "\">\n";
    emit_data(g.node_attrs(n), "node", "      ");
    out << "    </node>\n";
  }
  for (graph::EdgeId e : g.edges()) {
    out << "    <edge source=\"" << xml::escape(g.node_name(g.edge_src(e)))
        << "\" target=\"" << xml::escape(g.node_name(g.edge_dst(e))) << "\">\n";
    emit_data(g.edge_attrs(e), "edge", "      ");
    out << "    </edge>\n";
  }
  out << "  </graph>\n</graphml>\n";
  return out.str();
}

}  // namespace autonet::topology

#include "topology/load.hpp"

#include "topology/gml.hpp"
#include "topology/graphml.hpp"
#include "topology/rocketfuel.hpp"

namespace autonet::topology {

graph::Graph load_topology_file(const std::string& path) {
  auto dot = path.rfind('.');
  std::string ext = dot == std::string::npos ? "" : path.substr(dot + 1);
  if (ext == "graphml" || ext == "xml") return load_graphml_file(path);
  if (ext == "gml") return load_gml_file(path);
  if (ext == "cch" || ext == "rocketfuel") return load_rocketfuel_file(path);
  throw ParseError("unknown topology format '." + ext +
                   "' (expected .graphml, .gml, or .cch)");
}

}  // namespace autonet::topology

#include "topology/xml_detail.hpp"

#include <cctype>
#include <stdexcept>

namespace autonet::topology::xml {

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  [[nodiscard]] bool starts_with(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }
  char next() { return text_[pos_++]; }
  void advance(std::size_t n) { pos_ += n; }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }
  /// Consumes until `delim` appears; returns text before it and skips it.
  std::string_view until(std::string_view delim) {
    auto found = text_.find(delim, pos_);
    if (found == std::string_view::npos) {
      throw std::runtime_error("XML: unterminated construct, expected '" +
                               std::string(delim) + "'");
    }
    auto out = text_.substr(pos_, found - pos_);
    pos_ = found + delim.size();
    return out;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

std::string local_name(std::string_view qname) {
  auto colon = qname.rfind(':');
  return std::string(colon == std::string_view::npos ? qname
                                                     : qname.substr(colon + 1));
}

std::string unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size();) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    auto semi = text.find(';', i);
    if (semi == std::string_view::npos) {
      out += text[i++];
      continue;
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "lt") out += '<';
    else if (entity == "gt") out += '>';
    else if (entity == "amp") out += '&';
    else if (entity == "quot") out += '"';
    else if (entity == "apos") out += '\'';
    else if (!entity.empty() && entity[0] == '#') {
      int code = std::stoi(std::string(entity.substr(entity[1] == 'x' ? 2 : 1)),
                           nullptr, entity[1] == 'x' ? 16 : 10);
      out += static_cast<char>(code);
    } else {
      out += '&';
      out += entity;
      out += ';';
    }
    i = semi + 1;
  }
  return out;
}

std::string read_name(Cursor& c) {
  std::string name;
  while (!c.eof() && is_name_char(c.peek())) name += c.next();
  if (name.empty()) throw std::runtime_error("XML: expected a name");
  return name;
}

void read_attrs(Cursor& c, std::map<std::string, std::string>& attrs) {
  while (true) {
    c.skip_ws();
    if (c.eof()) throw std::runtime_error("XML: unterminated tag");
    if (c.peek() == '>' || c.peek() == '/') return;
    std::string key = local_name(read_name(c));
    c.skip_ws();
    if (c.eof() || c.next() != '=') throw std::runtime_error("XML: expected '='");
    c.skip_ws();
    char quote = c.next();
    if (quote != '"' && quote != '\'') {
      throw std::runtime_error("XML: expected quoted attribute value");
    }
    std::string_view raw = c.until(std::string_view(&quote, 1));
    attrs[key] = unescape(raw);
  }
}

std::unique_ptr<Element> parse_element(Cursor& c);

// Parses the body of `elem` (children + text) up to and including the
// close tag.
void parse_body(Cursor& c, Element& elem, std::string_view qname) {
  while (true) {
    if (c.eof()) throw std::runtime_error("XML: missing </" + std::string(qname) + ">");
    if (c.peek() != '<') {
      std::string chunk;
      while (!c.eof() && c.peek() != '<') chunk += c.next();
      elem.text += unescape(chunk);
      continue;
    }
    if (c.starts_with("<!--")) {
      c.advance(4);
      c.until("-->");
      continue;
    }
    if (c.starts_with("<![CDATA[")) {
      c.advance(9);
      elem.text += std::string(c.until("]]>"));
      continue;
    }
    if (c.starts_with("<?")) {
      c.advance(2);
      c.until("?>");
      continue;
    }
    if (c.starts_with("</")) {
      c.advance(2);
      std::string close = read_name(c);
      c.skip_ws();
      if (c.eof() || c.next() != '>') throw std::runtime_error("XML: malformed close tag");
      if (local_name(close) != elem.name) {
        throw std::runtime_error("XML: mismatched close tag </" + close + "> for <" +
                                 elem.name + ">");
      }
      return;
    }
    elem.children.push_back(parse_element(c));
  }
}

std::unique_ptr<Element> parse_element(Cursor& c) {
  if (c.eof() || c.next() != '<') throw std::runtime_error("XML: expected '<'");
  std::string qname = read_name(c);
  auto elem = std::make_unique<Element>();
  elem->name = local_name(qname);
  read_attrs(c, elem->attrs);
  c.skip_ws();
  if (c.peek() == '/') {
    c.advance(1);
    if (c.eof() || c.next() != '>') throw std::runtime_error("XML: malformed empty tag");
    return elem;
  }
  if (c.next() != '>') throw std::runtime_error("XML: malformed tag");
  parse_body(c, *elem, qname);
  return elem;
}

}  // namespace

const Element* Element::first(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::all(std::string_view child_name) const {
  std::vector<const Element*> out;
  for (const auto& c : children) {
    if (c->name == child_name) out.push_back(c.get());
  }
  return out;
}

std::string Element::attr(std::string_view key) const {
  auto it = attrs.find(std::string(key));
  return it == attrs.end() ? "" : it->second;
}

std::unique_ptr<Element> parse(std::string_view text) {
  Cursor c(text);
  while (true) {
    c.skip_ws();
    if (c.eof()) throw std::runtime_error("XML: empty document");
    if (c.starts_with("<?")) {
      c.advance(2);
      c.until("?>");
      continue;
    }
    if (c.starts_with("<!--")) {
      c.advance(4);
      c.until("-->");
      continue;
    }
    if (c.starts_with("<!")) {  // DOCTYPE
      c.advance(2);
      c.until(">");
      continue;
    }
    break;
  }
  return parse_element(c);
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += ch;
    }
  }
  return out;
}

}  // namespace autonet::topology::xml

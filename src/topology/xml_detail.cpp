#include "topology/xml_detail.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <stdexcept>

namespace autonet::topology::xml {

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : text_[pos_]; }
  [[nodiscard]] bool starts_with(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }
  char next() {
    if (eof()) fail("unexpected end of document");
    return text_[pos_++];
  }
  void advance(std::size_t n) { pos_ = std::min(pos_ + n, text_.size()); }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }
  /// Consumes until `delim` appears; returns text before it and skips it.
  std::string_view until(std::string_view delim) {
    auto found = text_.find(delim, pos_);
    if (found == std::string_view::npos) {
      fail("unterminated construct, expected '" + std::string(delim) + "'");
    }
    auto out = text_.substr(pos_, found - pos_);
    pos_ = found + delim.size();
    return out;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

  /// 1-based line of the current position; computed lazily (errors only),
  /// so the parse hot path carries no bookkeeping.
  [[nodiscard]] std::size_t line() const {
    const std::size_t upto = std::min(pos_, text_.size());
    return 1 + static_cast<std::size_t>(std::count(
                   text_.begin(),
                   text_.begin() + static_cast<std::ptrdiff_t>(upto), '\n'));
  }

  /// All parse errors carry the line of the offending construct.
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("XML: " + message + " (line " +
                             std::to_string(line()) + ")");
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

std::string local_name(std::string_view qname) {
  auto colon = qname.rfind(':');
  return std::string(colon == std::string_view::npos ? qname
                                                     : qname.substr(colon + 1));
}

/// Appends `code` as UTF-8.
void append_utf8(std::string& out, std::uint32_t code) {
  if (code < 0x80) {
    out += static_cast<char>(code);
  } else if (code < 0x800) {
    out += static_cast<char>(0xC0 | (code >> 6));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else if (code < 0x10000) {
    out += static_cast<char>(0xE0 | (code >> 12));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (code >> 18));
    out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  }
}

/// Decodes a numeric character reference body ("#65", "#x41"). Rejects —
/// via Cursor::fail, carrying the line — empty, non-numeric and
/// out-of-range references instead of crashing (the reference "&#;" used
/// to read past the entity text, and huge values overflowed std::stoi).
void append_char_ref(std::string& out, std::string_view entity,
                     const Cursor& c) {
  std::string_view digits = entity.substr(1);  // past '#'
  const bool hex = !digits.empty() && (digits[0] == 'x' || digits[0] == 'X');
  if (hex) digits.remove_prefix(1);
  if (digits.empty()) {
    c.fail("bad character reference '&" + std::string(entity) + ";'");
  }
  std::uint32_t code = 0;
  for (char ch : digits) {
    std::uint32_t v = 0;
    if (ch >= '0' && ch <= '9') {
      v = static_cast<std::uint32_t>(ch - '0');
    } else if (hex && ch >= 'a' && ch <= 'f') {
      v = static_cast<std::uint32_t>(ch - 'a' + 10);
    } else if (hex && ch >= 'A' && ch <= 'F') {
      v = static_cast<std::uint32_t>(ch - 'A' + 10);
    } else {
      c.fail("bad character reference '&" + std::string(entity) + ";'");
    }
    code = code * (hex ? 16u : 10u) + v;
    if (code > 0x10FFFF) {
      c.fail("character reference out of range '&" + std::string(entity) +
             ";'");
    }
  }
  append_utf8(out, code);
}

std::string unescape(std::string_view text, const Cursor& c) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size();) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    auto semi = text.find(';', i);
    if (semi == std::string_view::npos) {
      out += text[i++];
      continue;
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "lt") out += '<';
    else if (entity == "gt") out += '>';
    else if (entity == "amp") out += '&';
    else if (entity == "quot") out += '"';
    else if (entity == "apos") out += '\'';
    else if (!entity.empty() && entity[0] == '#') {
      append_char_ref(out, entity, c);
    } else {
      // Unknown named entity: passed through literally (lenient; real
      // GraphML writers only emit the five predefined entities).
      out += '&';
      out += entity;
      out += ';';
    }
    i = semi + 1;
  }
  return out;
}

std::string read_name(Cursor& c) {
  std::string name;
  while (!c.eof() && is_name_char(c.peek())) name += c.next();
  if (name.empty()) c.fail("expected a name");
  return name;
}

void read_attrs(Cursor& c, std::map<std::string, std::string>& attrs) {
  while (true) {
    c.skip_ws();
    if (c.eof()) c.fail("unterminated tag");
    if (c.peek() == '>' || c.peek() == '/') return;
    std::string key = local_name(read_name(c));
    c.skip_ws();
    if (c.eof() || c.next() != '=') c.fail("expected '=' after attribute '" + key + "'");
    c.skip_ws();
    char quote = c.next();
    if (quote != '"' && quote != '\'') {
      c.fail("expected quoted value for attribute '" + key + "'");
    }
    std::string_view raw = c.until(std::string_view(&quote, 1));
    attrs[key] = unescape(raw, c);
  }
}

std::unique_ptr<Element> parse_element(Cursor& c);

// Parses the body of `elem` (children + text) up to and including the
// close tag.
void parse_body(Cursor& c, Element& elem, std::string_view qname) {
  while (true) {
    if (c.eof()) c.fail("missing </" + std::string(qname) + ">");
    if (c.peek() != '<') {
      std::string chunk;
      while (!c.eof() && c.peek() != '<') chunk += c.next();
      elem.text += unescape(chunk, c);
      continue;
    }
    if (c.starts_with("<!--")) {
      c.advance(4);
      c.until("-->");
      continue;
    }
    if (c.starts_with("<![CDATA[")) {
      c.advance(9);
      elem.text += std::string(c.until("]]>"));
      continue;
    }
    if (c.starts_with("<?")) {
      c.advance(2);
      c.until("?>");
      continue;
    }
    if (c.starts_with("</")) {
      c.advance(2);
      std::string close = read_name(c);
      c.skip_ws();
      if (c.eof() || c.next() != '>') c.fail("malformed close tag");
      if (local_name(close) != elem.name) {
        c.fail("mismatched close tag </" + close + "> for <" + elem.name + ">");
      }
      return;
    }
    elem.children.push_back(parse_element(c));
  }
}

std::unique_ptr<Element> parse_element(Cursor& c) {
  if (c.eof() || c.next() != '<') c.fail("expected '<'");
  std::string qname = read_name(c);
  auto elem = std::make_unique<Element>();
  elem->name = local_name(qname);
  read_attrs(c, elem->attrs);
  c.skip_ws();
  if (c.peek() == '/') {
    c.advance(1);
    if (c.eof() || c.next() != '>') c.fail("malformed empty tag");
    return elem;
  }
  if (c.next() != '>') c.fail("malformed tag <" + qname + ">");
  parse_body(c, *elem, qname);
  return elem;
}

}  // namespace

const Element* Element::first(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::all(std::string_view child_name) const {
  std::vector<const Element*> out;
  for (const auto& c : children) {
    if (c->name == child_name) out.push_back(c.get());
  }
  return out;
}

std::string Element::attr(std::string_view key) const {
  auto it = attrs.find(std::string(key));
  return it == attrs.end() ? "" : it->second;
}

std::unique_ptr<Element> parse(std::string_view text) {
  Cursor c(text);
  while (true) {
    c.skip_ws();
    if (c.eof()) c.fail("empty document");
    if (c.starts_with("<?")) {
      c.advance(2);
      c.until("?>");
      continue;
    }
    if (c.starts_with("<!--")) {
      c.advance(4);
      c.until("-->");
      continue;
    }
    if (c.starts_with("<!")) {  // DOCTYPE
      c.advance(2);
      c.until(">");
      continue;
    }
    break;
  }
  return parse_element(c);
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += ch;
    }
  }
  return out;
}

}  // namespace autonet::topology::xml

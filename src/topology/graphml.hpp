// GraphML import/export (paper §5.1: "takes a labelled graph as input (in
// GraphML, a graph interchange format)"). Implements the subset of GraphML
// produced by graphical editors such as yEd: <key> declarations with
// attr.name/attr.type, <node>/<edge> elements with <data> children.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "graph/graph.hpp"

namespace autonet::topology {

/// Thrown on malformed input files of any of the supported formats.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a GraphML document into an attribute graph. Typed <key>
/// declarations map to AttrValue types (int/long -> int, float/double ->
/// double, boolean -> bool, else string). Node ids become node names
/// unless a "label" data key is present, in which case the label wins and
/// the raw id is kept in the "_graphml_id" attribute.
[[nodiscard]] graph::Graph load_graphml(std::string_view text);

/// Reads a GraphML file from disk.
[[nodiscard]] graph::Graph load_graphml_file(const std::string& path);

/// Serialises a graph to GraphML, with keys declared for every attribute
/// seen (typed from the first occurrence).
[[nodiscard]] std::string to_graphml(const graph::Graph& g);

}  // namespace autonet::topology

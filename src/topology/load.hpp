// Convenience loader dispatching on file extension (.graphml, .gml,
// .cch/.rocketfuel) — "the system has been designed to easily accept
// data from a variety of formats" (§3.2).
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace autonet::topology {

/// Loads a topology file, picking the parser from the extension.
/// Throws ParseError on unknown extensions or malformed content.
[[nodiscard]] graph::Graph load_topology_file(const std::string& path);

}  // namespace autonet::topology

// Rocketfuel ISP-map reader (paper §5.1: "we provide an extension to read
// Rocketfuel data"). Parses the .cch router-level format:
//
//   uid @loc [+] [bb] ... [&ext] -> <nuid> <nuid> ... {-euid} ... =name rn
//
// Negative uids are external (neighbouring-ISP) routers; `bb` marks
// backbone routers; `<n>` tokens are internal adjacencies and `{-n}`
// tokens external ones.
#pragma once

#include <string>
#include <string_view>

#include "graph/graph.hpp"
#include "topology/graphml.hpp"

namespace autonet::topology {

struct RocketfuelOptions {
  /// Drop external (negative-uid) routers and their links.
  bool internal_only = true;
  /// ASN assigned to every internal router.
  std::int64_t asn = 1;
};

/// Parses .cch text into an attribute graph. Node names come from the
/// `=name` field (falling back to "r<uid>"); `bb` maps to a boolean
/// `backbone` attribute and the location to `location`.
[[nodiscard]] graph::Graph load_rocketfuel(std::string_view text,
                                           const RocketfuelOptions& opts = {});

[[nodiscard]] graph::Graph load_rocketfuel_file(const std::string& path,
                                                const RocketfuelOptions& opts = {});

}  // namespace autonet::topology

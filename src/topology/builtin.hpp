// Built-in topologies used throughout the paper:
//  - figure5():       the 5-router, 2-AS example of Fig. 5 / Eqs. 1-3
//  - small_internet():the Netkit Small-Internet lab of §3.1 (7 ASes,
//                     14 routers)
//  - bad_gadget():    the §7.2 route-reflection gadget whose BGP decision
//                     oscillates when the IGP tie-break is active (IOS,
//                     Junos, C-BGP) and converges when it is not (Quagga)
#pragma once

#include "graph/graph.hpp"

namespace autonet::topology {

[[nodiscard]] graph::Graph figure5();

[[nodiscard]] graph::Graph small_internet();

/// GraphML text of the Small-Internet lab, as a graphical editor would
/// export it (used by the loader walkthrough in §6.1).
[[nodiscard]] std::string small_internet_graphml();

[[nodiscard]] graph::Graph bad_gadget();

/// The MED route-reflection churn scenario (§7.2 cites the MED
/// oscillation analyses; this is the RFC 3345-style instance): one AS
/// with two reflector clusters hears a prefix from provider B at two
/// exits with different MEDs and from provider A at a third. MED
/// elimination and hot-potato IGP selection interact cyclically, so the
/// IGP-tie-break vendors oscillate while Quagga settles.
[[nodiscard]] graph::Graph med_oscillation();

}  // namespace autonet::topology

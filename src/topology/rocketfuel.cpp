#include "topology/rocketfuel.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace autonet::topology {

namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  std::int64_t v = 0;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || p != text.data() + text.size()) return std::nullopt;
  return v;
}

struct CchRouter {
  std::int64_t uid = 0;
  std::string location;
  std::string name;
  bool backbone = false;
  std::vector<std::int64_t> neighbors;  // internal adjacencies
  std::vector<std::int64_t> externals;  // {-euid} adjacencies
};

/// Parses one .cch line. Blank lines and #-comments yield nullopt; a
/// non-comment line that does not start with a router uid is malformed
/// and throws a ParseError carrying the 1-based line number (the old
/// behaviour of silently skipping such lines turned typos into missing
/// routers and, downstream, "no routers parsed" on entire files).
std::optional<CchRouter> parse_line(std::string_view line, std::size_t lineno) {
  auto tokens = tokenize(line);
  if (tokens.empty() || tokens[0].starts_with("#")) return std::nullopt;
  auto uid = parse_int(tokens[0]);
  if (!uid) {
    throw ParseError("Rocketfuel: line " + std::to_string(lineno) +
                     ": expected a router uid, got '" + std::string(tokens[0]) +
                     "'");
  }

  CchRouter r;
  r.uid = *uid;
  bool after_arrow = false;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::string_view t = tokens[i];
    if (t == "->") {
      after_arrow = true;
    } else if (t.starts_with("@")) {
      r.location = std::string(t.substr(1));
    } else if (t == "bb") {
      r.backbone = true;
    } else if (t.starts_with("=")) {
      if (r.name.empty()) r.name = std::string(t.substr(1));
    } else if (after_arrow && t.size() > 2 && t.front() == '<' && t.back() == '>') {
      if (auto n = parse_int(t.substr(1, t.size() - 2))) r.neighbors.push_back(*n);
    } else if (after_arrow && t.size() > 2 && t.front() == '{' && t.back() == '}') {
      if (auto n = parse_int(t.substr(1, t.size() - 2))) r.externals.push_back(*n);
    }
    // '+', neighbour counts, '&ext', trailing 'rn' markers are ignored.
  }
  return r;
}

}  // namespace

graph::Graph load_rocketfuel(std::string_view text, const RocketfuelOptions& opts) {
  std::vector<CchRouter> routers;
  std::size_t start = 0;
  std::size_t lineno = 1;
  while (start <= text.size()) {
    auto nl = text.find('\n', start);
    std::string_view line =
        text.substr(start, nl == std::string_view::npos ? text.size() - start
                                                        : nl - start);
    if (auto r = parse_line(line, lineno)) routers.push_back(std::move(*r));
    if (nl == std::string_view::npos) break;
    start = nl + 1;
    ++lineno;
  }
  if (routers.empty()) throw ParseError("Rocketfuel: no routers parsed");

  graph::Graph g(false, "rocketfuel");
  std::map<std::int64_t, graph::NodeId> by_uid;
  for (const auto& r : routers) {
    if (opts.internal_only && r.uid < 0) continue;
    std::string name = r.name.empty() ? "r" + std::to_string(r.uid) : r.name;
    while (g.has_node(name)) name += "_";
    graph::NodeId n = g.add_node(name);
    g.set_node_attr(n, "asn", opts.asn);
    g.set_node_attr(n, "device_type", "router");
    g.set_node_attr(n, "backbone", r.backbone);
    if (!r.location.empty()) g.set_node_attr(n, "location", r.location);
    by_uid[r.uid] = n;
  }
  for (const auto& r : routers) {
    auto self = by_uid.find(r.uid);
    if (self == by_uid.end()) continue;
    auto connect = [&](const std::vector<std::int64_t>& ids) {
      for (std::int64_t nbr : ids) {
        auto other = by_uid.find(nbr);
        if (other == by_uid.end()) continue;
        // The file lists each adjacency on both endpoints; add once.
        if (r.uid < nbr && g.find_edge(self->second, other->second) == graph::kInvalidEdge) {
          g.add_edge(self->second, other->second);
        }
      }
    };
    connect(r.neighbors);
    if (!opts.internal_only) connect(r.externals);
  }
  return g;
}

graph::Graph load_rocketfuel_file(const std::string& path,
                                  const RocketfuelOptions& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("Rocketfuel: cannot open file " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return load_rocketfuel(ss.str(), opts);
  } catch (const ParseError& e) {
    // file:line context — parse errors already carry the line number.
    throw ParseError(path + ": " + e.what());
  }
}

}  // namespace autonet::topology

// Minimal non-validating XML parser used by the GraphML loader. Supports
// elements, attributes, text, comments, processing instructions and
// CDATA; ignores DTDs and namespaces beyond prefix stripping. Internal to
// the topology module.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace autonet::topology::xml {

struct Element {
  std::string name;  // local name, namespace prefix stripped
  std::map<std::string, std::string> attrs;
  std::vector<std::unique_ptr<Element>> children;
  std::string text;  // concatenated character data of this element

  [[nodiscard]] const Element* first(std::string_view child_name) const;
  [[nodiscard]] std::vector<const Element*> all(std::string_view child_name) const;
  [[nodiscard]] std::string attr(std::string_view key) const;
};

/// Parses a document; returns the root element. Throws std::runtime_error
/// on malformed XML.
[[nodiscard]] std::unique_ptr<Element> parse(std::string_view text);

/// Escapes &<>"' for attribute/text emission.
[[nodiscard]] std::string escape(std::string_view text);

}  // namespace autonet::topology::xml

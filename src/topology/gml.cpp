#include "topology/gml.hpp"

#include <cctype>
#include <charconv>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <variant>
#include <vector>

namespace autonet::topology {

namespace {

struct GmlList;
using GmlValue = std::variant<std::int64_t, double, std::string,
                              std::unique_ptr<GmlList>>;

struct GmlList {
  std::vector<std::pair<std::string, GmlValue>> items;

  [[nodiscard]] const GmlValue* first(std::string_view key) const {
    for (const auto& [k, v] : items) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  /// Token kinds: word, string, number, '[', ']', end.
  struct Token {
    enum class Kind { kWord, kString, kInt, kDouble, kOpen, kClose, kEnd };
    Kind kind = Kind::kEnd;
    std::string text;
    std::int64_t int_value = 0;
    double double_value = 0.0;
  };

  Token next() {
    skip_ws_and_comments();
    if (pos_ >= text_.size()) return {};
    char c = text_[pos_];
    if (c == '[') {
      ++pos_;
      return {Token::Kind::kOpen, "[", 0, 0};
    }
    if (c == ']') {
      ++pos_;
      return {Token::Kind::kClose, "]", 0, 0};
    }
    if (c == '"') return read_string();
    if (c == '-' || c == '+' || std::isdigit(static_cast<unsigned char>(c))) {
      return read_number();
    }
    return read_word();
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token read_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') out += text_[pos_++];
    if (pos_ >= text_.size()) throw ParseError("GML: unterminated string");
    ++pos_;  // closing quote
    return {Token::Kind::kString, std::move(out), 0, 0};
  }

  Token read_number() {
    std::size_t start = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' ||
                 ((c == '-' || c == '+') && (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))) {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string raw(text_.substr(start, pos_ - start));
    Token t;
    t.text = raw;
    // stod/stoll throw untyped std::invalid_argument / std::out_of_range
    // on a bare sign or an overflowing literal; corrupted input may only
    // surface as ParseError.
    try {
      if (is_double) {
        t.kind = Token::Kind::kDouble;
        t.double_value = std::stod(raw);
      } else {
        t.kind = Token::Kind::kInt;
        t.int_value = std::stoll(raw);
      }
    } catch (const std::exception&) {
      throw ParseError("GML: bad numeric literal '" + raw + "'");
    }
    return t;
  }

  Token read_word() {
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.') ++pos_;
      else break;
    }
    if (pos_ == start) throw ParseError("GML: unexpected character '" +
                                        std::string(1, text_[pos_]) + "'");
    return {Token::Kind::kWord, std::string(text_.substr(start, pos_ - start)), 0, 0};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

GmlValue parse_value(Lexer& lex, Lexer::Token token);

std::unique_ptr<GmlList> parse_list(Lexer& lex) {
  auto list = std::make_unique<GmlList>();
  while (true) {
    auto token = lex.next();
    if (token.kind == Lexer::Token::Kind::kClose ||
        token.kind == Lexer::Token::Kind::kEnd) {
      return list;
    }
    if (token.kind != Lexer::Token::Kind::kWord) {
      throw ParseError("GML: expected key, got '" + token.text + "'");
    }
    std::string key = token.text;
    list->items.emplace_back(std::move(key), parse_value(lex, lex.next()));
  }
}

GmlValue parse_value(Lexer& lex, Lexer::Token token) {
  using K = Lexer::Token::Kind;
  switch (token.kind) {
    case K::kInt: return token.int_value;
    case K::kDouble: return token.double_value;
    case K::kString: return token.text;
    case K::kWord: return token.text;  // bare words act as strings
    case K::kOpen: return parse_list(lex);
    default: throw ParseError("GML: unexpected token for value");
  }
}

const GmlList& as_list(const GmlValue& v, const char* what) {
  const auto* list = std::get_if<std::unique_ptr<GmlList>>(&v);
  if (list == nullptr) {
    throw ParseError(std::string("GML: ") + what + " is not a [...] block");
  }
  return **list;
}

graph::AttrValue to_attr(const GmlValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  return {};  // nested lists are not representable as attributes
}

}  // namespace

graph::Graph load_gml(std::string_view text) {
  Lexer lex(text);
  auto doc = parse_list(lex);
  const GmlValue* graph_val = doc->first("graph");
  if (graph_val == nullptr || !std::holds_alternative<std::unique_ptr<GmlList>>(*graph_val)) {
    throw ParseError("GML: missing 'graph [...]' block");
  }
  const GmlList& gl = *std::get<std::unique_ptr<GmlList>>(*graph_val);

  bool directed = false;
  if (const auto* d = gl.first("directed")) {
    if (const auto* i = std::get_if<std::int64_t>(d)) directed = *i != 0;
  }
  std::string name;
  if (const auto* label = gl.first("label")) {
    if (const auto* s = std::get_if<std::string>(label)) name = *s;
  }
  graph::Graph g(directed, name);

  std::map<std::int64_t, graph::NodeId> by_gml_id;
  for (const auto& [key, value] : gl.items) {
    if (key == "node") {
      const GmlList& fields = as_list(value, "node");
      const GmlValue* idv = fields.first("id");
      if (idv == nullptr || !std::holds_alternative<std::int64_t>(*idv)) {
        throw ParseError("GML: node without integer id");
      }
      std::int64_t gml_id = std::get<std::int64_t>(*idv);
      std::string node_name = "n" + std::to_string(gml_id);
      if (const auto* label = fields.first("label")) {
        if (const auto* s = std::get_if<std::string>(label); s != nullptr && !s->empty()) {
          node_name = *s;
        }
      }
      // Topology Zoo reuses labels across nodes occasionally; make unique.
      while (g.has_node(node_name)) node_name += "_";
      graph::NodeId n = g.add_node(node_name);
      for (const auto& [fk, fv] : fields.items) {
        if (fk == "id" || fk == "label") continue;
        if (std::holds_alternative<std::unique_ptr<GmlList>>(fv)) continue;
        g.set_node_attr(n, fk, to_attr(fv));
      }
      g.set_node_attr(n, "_gml_id", gml_id);
      by_gml_id[gml_id] = n;
    } else if (key == "edge") {
      const GmlList& fields = as_list(value, "edge");
      const GmlValue* sv = fields.first("source");
      const GmlValue* tv = fields.first("target");
      if (sv == nullptr || tv == nullptr) throw ParseError("GML: edge missing endpoints");
      const auto* si = std::get_if<std::int64_t>(sv);
      const auto* ti = std::get_if<std::int64_t>(tv);
      if (si == nullptr || ti == nullptr) {
        throw ParseError("GML: edge endpoint is not an integer id");
      }
      auto src = by_gml_id.find(*si);
      auto dst = by_gml_id.find(*ti);
      if (src == by_gml_id.end() || dst == by_gml_id.end()) {
        throw ParseError("GML: edge references unknown node id");
      }
      graph::EdgeId e = g.add_edge(src->second, dst->second);
      for (const auto& [fk, fv] : fields.items) {
        if (fk == "source" || fk == "target") continue;
        if (std::holds_alternative<std::unique_ptr<GmlList>>(fv)) continue;
        g.set_edge_attr(e, fk, to_attr(fv));
      }
    }
  }
  return g;
}

graph::Graph load_gml_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("GML: cannot open file " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return load_gml(ss.str());
  } catch (const ParseError& e) {
    throw ParseError(path + ": " + e.what());
  }
}

namespace {

void emit_attr(std::ostringstream& out, const std::string& key,
               const graph::AttrValue& v, const char* indent) {
  if (key.starts_with("_")) return;
  out << indent << key << " ";
  if (v.is_int()) out << *v.as_int();
  else if (v.is_double()) out << *v.as_double();
  else if (v.is_bool()) out << (*v.as_bool() ? 1 : 0);
  else out << '"' << v.to_string() << '"';
  out << "\n";
}

}  // namespace

std::string to_gml(const graph::Graph& g) {
  std::ostringstream out;
  out << "graph [\n";
  if (g.directed()) out << "  directed 1\n";
  if (!g.name().empty()) out << "  label \"" << g.name() << "\"\n";
  std::map<graph::NodeId, std::size_t> index;
  std::size_t next = 0;
  for (graph::NodeId n : g.nodes()) {
    index[n] = next++;
    out << "  node [\n    id " << index[n] << "\n    label \"" << g.node_name(n)
        << "\"\n";
    for (const auto& [k, v] : g.node_attrs(n)) emit_attr(out, k, v, "    ");
    out << "  ]\n";
  }
  for (graph::EdgeId e : g.edges()) {
    out << "  edge [\n    source " << index[g.edge_src(e)] << "\n    target "
        << index[g.edge_dst(e)] << "\n";
    for (const auto& [k, v] : g.edge_attrs(e)) emit_attr(out, k, v, "    ");
    out << "  ]\n";
  }
  out << "]\n";
  return out.str();
}

}  // namespace autonet::topology

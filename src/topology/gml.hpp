// GML (Graph Modelling Language) reader, the format of the Internet
// Topology Zoo dataset the paper draws its large-scale NREN model from
// (§3.2). Supports nested lists, quoted strings, ints and floats.
#pragma once

#include <string>
#include <string_view>

#include "graph/graph.hpp"
#include "topology/graphml.hpp"

namespace autonet::topology {

/// Parses a GML document. Node `label` becomes the node name (falling
/// back to the numeric id); all other scalar keys become attributes.
[[nodiscard]] graph::Graph load_gml(std::string_view text);

[[nodiscard]] graph::Graph load_gml_file(const std::string& path);

/// Serialises a graph to GML (scalar attributes only).
[[nodiscard]] std::string to_gml(const graph::Graph& g);

}  // namespace autonet::topology

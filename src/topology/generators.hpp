// Programmatic topology generators (paper §3.2: "programmatically
// generated network topologies" are one of the supported data sources).
// All generators are deterministic given the seed, label nodes
// `as<asn>r<k>`, and set the `asn` and `device_type` attributes the
// design rules expect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace autonet::topology {

/// Path of n routers in one AS.
[[nodiscard]] graph::Graph make_line(std::size_t n, std::int64_t asn = 1);

/// Cycle of n routers in one AS.
[[nodiscard]] graph::Graph make_ring(std::size_t n, std::int64_t asn = 1);

/// w x h grid of routers in one AS.
[[nodiscard]] graph::Graph make_grid(std::size_t w, std::size_t h, std::int64_t asn = 1);

/// Hub-and-spoke: node 0 is the hub.
[[nodiscard]] graph::Graph make_star(std::size_t n, std::int64_t asn = 1);

/// Clique of n routers in one AS.
[[nodiscard]] graph::Graph make_full_mesh(std::size_t n, std::int64_t asn = 1);

/// Connected random graph: a uniform spanning path plus each remaining
/// pair joined with probability p.
[[nodiscard]] graph::Graph make_random_connected(std::size_t n, double p,
                                                 std::uint64_t seed,
                                                 std::int64_t asn = 1);

/// Parameters for the multi-AS generator.
struct MultiAsOptions {
  std::size_t as_count = 5;
  std::size_t min_routers_per_as = 2;
  std::size_t max_routers_per_as = 8;
  /// Extra intra-AS edges beyond the spanning tree, as a fraction of n.
  double intra_extra_fraction = 0.3;
  /// Inter-AS links per non-backbone AS (>=1 keeps the graph connected).
  std::size_t links_per_as = 1;
  std::uint64_t seed = 1;
};

/// A multi-AS internet: AS 1 is a backbone ring that every other AS
/// attaches to (directly or via another AS), like provider hierarchies.
[[nodiscard]] graph::Graph make_multi_as(const MultiAsOptions& opts);

/// A synthetic stand-in for the Internet Topology Zoo "European
/// Interconnect" model used in §3.2: `as_count` ASes (one GEANT-like
/// backbone + NRENs), sized to produce exactly `router_count` routers and
/// approximately `link_count` links.
struct NrenOptions {
  std::size_t as_count = 42;
  std::size_t router_count = 1158;
  std::size_t link_count = 1470;
  std::uint64_t seed = 2013;
};
[[nodiscard]] graph::Graph make_nren_model(const NrenOptions& opts = {});

/// Attaches `count` server nodes (device_type="server") to randomly chosen
/// routers; used by the service-overlay experiments (§3.3).
void attach_servers(graph::Graph& g, std::size_t count, std::uint64_t seed,
                    const std::string& name_prefix = "server");

}  // namespace autonet::topology

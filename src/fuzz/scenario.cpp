#include "fuzz/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "fuzz/rng.hpp"
#include "topology/builtin.hpp"
#include "topology/graphml.hpp"

namespace autonet::fuzz {

namespace {

/// BFS connectivity over live nodes, optionally pretending `skip_node`
/// (and its incident edges) or `skip_edge` is gone.
bool is_connected(const graph::Graph& g, graph::NodeId skip_node,
                  graph::EdgeId skip_edge) {
  std::vector<graph::NodeId> nodes;
  for (graph::NodeId n : g.nodes()) {
    if (n != skip_node) nodes.push_back(n);
  }
  if (nodes.size() <= 1) return true;

  // Node ids are dense indices; track visits in a vector sized to the
  // max id + 1.
  graph::NodeId max_id = 0;
  for (graph::NodeId n : nodes) max_id = std::max(max_id, n);
  std::vector<char> visited(max_id + 1, 0);

  std::deque<graph::NodeId> queue{nodes.front()};
  visited[nodes.front()] = 1;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const graph::NodeId cur = queue.front();
    queue.pop_front();
    for (graph::EdgeId e : g.incident_edges(cur)) {
      if (e == skip_edge) continue;
      const graph::NodeId other = g.edge_other(e, cur);
      if (other == skip_node || other > max_id || visited[other]) continue;
      visited[other] = 1;
      ++reached;
      queue.push_back(other);
    }
  }
  return reached == nodes.size();
}

std::int64_t node_asn(const graph::Graph& g, graph::NodeId n) {
  const auto& attrs = g.node_attrs(n);
  auto it = attrs.find("asn");
  if (it == attrs.end()) return 0;
  return it->second.as_int().value_or(0);
}

/// Builds a connected multi-AS internet from the seed: AS 1..k with a
/// seeded intra-AS structure (path / ring / star plus extra links) and
/// ≥1 inter-AS link per non-first AS, keeping the whole graph connected.
graph::Graph synth_multi_as(Rng& rng, std::size_t max_nodes,
                            std::string& summary, bool& wants_rr) {
  graph::Graph g(false, "fuzz");
  const std::size_t budget = std::max<std::size_t>(max_nodes, 4);
  std::size_t as_count = 2 + rng.below(3);  // 2..4
  as_count = std::min(as_count, budget / 2);
  if (as_count == 0) as_count = 1;
  const std::size_t per_as_cap = std::max<std::size_t>(2, budget / as_count);

  wants_rr = rng.chance(1, 4);

  std::vector<std::vector<graph::NodeId>> as_nodes(as_count);
  std::size_t used = 0;
  for (std::size_t a = 0; a < as_count; ++a) {
    std::size_t size = 2 + rng.below(per_as_cap - 1);
    size = std::min(size, budget - used);
    if (size < 2) size = std::min<std::size_t>(2, budget - used);
    if (size == 0) break;
    const std::int64_t asn = static_cast<std::int64_t>(100 * (a + 1));
    for (std::size_t k = 0; k < size; ++k) {
      const std::string name =
          "as" + std::to_string(asn) + "r" + std::to_string(k + 1);
      const graph::NodeId n = g.add_node(name);
      g.set_node_attr(n, "asn", asn);
      g.set_node_attr(n, "device_type", "router");
      as_nodes[a].push_back(n);
    }
    used += size;

    // Intra-AS skeleton: 0 = path, 1 = ring, 2 = star.
    const auto& nodes = as_nodes[a];
    const std::uint64_t shape = rng.below(3);
    if (shape == 2 && nodes.size() > 2) {
      for (std::size_t k = 1; k < nodes.size(); ++k) {
        g.add_edge(nodes[0], nodes[k]);
      }
    } else {
      for (std::size_t k = 1; k < nodes.size(); ++k) {
        g.add_edge(nodes[k - 1], nodes[k]);
      }
      if (shape == 1 && nodes.size() > 2) {
        g.add_edge(nodes.back(), nodes.front());
      }
    }
    // Extra intra-AS links for path diversity.
    const std::uint64_t extra = rng.below(nodes.size() / 2 + 1);
    for (std::uint64_t k = 0; k < extra; ++k) {
      const graph::NodeId u = nodes[rng.below(nodes.size())];
      const graph::NodeId v = nodes[rng.below(nodes.size())];
      if (u != v && g.find_edge(u, v) == graph::kInvalidEdge) g.add_edge(u, v);
    }
    // A seeded route-reflector per AS (consumed only in "rr" iBGP mode).
    if (wants_rr) {
      g.set_node_attr(nodes[rng.below(nodes.size())], "rr", true);
    }
  }

  // Inter-AS links: each AS attaches to an earlier one, so the internet
  // is connected; a second parallel attachment makes a small eBGP mesh.
  for (std::size_t a = 1; a < as_count; ++a) {
    if (as_nodes[a].empty()) continue;
    const std::size_t peer = rng.below(a);
    if (as_nodes[peer].empty()) continue;
    const std::size_t links = 1 + (rng.chance(1, 3) ? 1 : 0);
    for (std::size_t k = 0; k < links; ++k) {
      const graph::NodeId u = as_nodes[a][rng.below(as_nodes[a].size())];
      const graph::NodeId v = as_nodes[peer][rng.below(as_nodes[peer].size())];
      if (g.find_edge(u, v) == graph::kInvalidEdge) g.add_edge(u, v);
    }
  }

  // Seeded OSPF costs on a third of the intra-AS links.
  for (graph::EdgeId e : g.edges()) {
    if (node_asn(g, g.edge_src(e)) != node_asn(g, g.edge_dst(e))) continue;
    if (rng.chance(1, 3)) {
      g.set_edge_attr(e, "ospf_cost", rng.range(1, 10));
    }
  }

  // A multi-area AS: both endpoints of one intra-AS link move into a
  // non-backbone area, making them ABRs toward their area-0 neighbours.
  if (rng.chance(1, 4)) {
    std::string tag = apply_mutation(g, MutationKind::kAreaReassign, rng.next());
    if (!tag.empty()) summary += tag;
  }

  summary = "multi-as(" + std::to_string(as_count) + "," +
            std::to_string(g.node_count()) + "n)" + summary;
  return g;
}

}  // namespace

std::string Scenario::shape() const {
  return std::to_string(graph.node_count()) + " nodes, " +
         std::to_string(graph.edge_count()) + " links";
}

bool connected_without(const graph::Graph& g, graph::NodeId victim) {
  return is_connected(g, victim, graph::kInvalidEdge);
}

std::string apply_mutation(graph::Graph& g, MutationKind kind,
                           std::uint64_t seed) {
  Rng rng(mix(seed, 0x6d75746174696f6eULL));  // "mutation"
  const auto nodes = g.nodes();
  const auto edges = g.edges();
  switch (kind) {
    case MutationKind::kAddLink: {
      if (nodes.size() < 2) return "";
      for (int attempt = 0; attempt < 10; ++attempt) {
        const graph::NodeId u = nodes[rng.below(nodes.size())];
        const graph::NodeId v = nodes[rng.below(nodes.size())];
        if (u == v || g.find_edge(u, v) != graph::kInvalidEdge) continue;
        const graph::EdgeId e = g.add_edge(u, v);
        if (node_asn(g, u) == node_asn(g, v) && rng.chance(1, 2)) {
          g.set_edge_attr(e, "ospf_cost", rng.range(1, 10));
        }
        return "+add-link";
      }
      return "";
    }
    case MutationKind::kRemoveLink: {
      if (edges.empty()) return "";
      const std::size_t start = rng.below(edges.size());
      for (std::size_t k = 0; k < edges.size(); ++k) {
        const graph::EdgeId e = edges[(start + k) % edges.size()];
        // Only remove links whose loss keeps the graph connected — a
        // partitioned input is a different scenario family, not a
        // mutation of this one.
        if (!is_connected(g, graph::kInvalidNode, e)) continue;
        g.remove_edge(e);
        return "+rm-link";
      }
      return "";
    }
    case MutationKind::kCostPerturb: {
      if (edges.empty()) return "";
      const graph::EdgeId e = edges[rng.below(edges.size())];
      g.set_edge_attr(e, "ospf_cost", rng.range(1, 20));
      return "+cost";
    }
    case MutationKind::kAreaReassign: {
      // Pick an intra-AS link and move both endpoints into the same
      // non-backbone area; their remaining links stay in area 0 (the
      // design rule assigns each link min(endpoint areas)), so the area
      // is always backbone-attached.
      std::vector<graph::EdgeId> intra;
      for (graph::EdgeId e : edges) {
        if (node_asn(g, g.edge_src(e)) == node_asn(g, g.edge_dst(e))) {
          intra.push_back(e);
        }
      }
      if (intra.empty()) return "";
      const graph::EdgeId e = intra[rng.below(intra.size())];
      const std::int64_t area = rng.range(1, 3);
      g.set_node_attr(g.edge_src(e), "ospf_area", area);
      g.set_node_attr(g.edge_dst(e), "ospf_area", area);
      return "+area";
    }
    case MutationKind::kPolicyFlip: {
      if (nodes.empty()) return "";
      const graph::NodeId n = nodes[rng.below(nodes.size())];
      const auto& attrs = g.node_attrs(n);
      auto it = attrs.find("no_transit");
      const bool cur = it != attrs.end() && it->second.truthy();
      g.set_node_attr(n, "no_transit", !cur);
      return "+policy";
    }
  }
  return "";
}

std::string apply_any_mutation(graph::Graph& g, std::uint64_t seed) {
  Rng rng(mix(seed, 0x616e79ULL));
  constexpr MutationKind kKinds[] = {
      MutationKind::kAddLink, MutationKind::kRemoveLink,
      MutationKind::kCostPerturb, MutationKind::kAreaReassign,
      MutationKind::kPolicyFlip};
  const std::size_t start = rng.below(5);
  for (std::size_t k = 0; k < 5; ++k) {
    const std::string tag =
        apply_mutation(g, kKinds[(start + k) % 5], rng.next());
    if (!tag.empty()) return tag;
  }
  return "";
}

Scenario generate_scenario(std::uint64_t seed, std::size_t max_nodes) {
  Rng rng(mix(seed, fnv1a("autonet.fuzz.scenario")));
  Scenario s;
  s.seed = seed;

  bool wants_rr = false;
  const std::uint64_t base = rng.below(6);
  if (base == 4) {
    s.graph = topology::figure5();
    s.summary = "fixture(figure5)";
  } else if (base == 5 && max_nodes >= 14) {
    s.graph = topology::small_internet();
    s.summary = "fixture(small-internet)";
  } else {
    s.graph = synth_multi_as(rng, max_nodes, s.summary, wants_rr);
    if (wants_rr) s.ibgp = "rr";
  }

  // 0..2 extra seeded mutations on top of the base shape.
  const std::uint64_t mutations = rng.below(3);
  for (std::uint64_t m = 0; m < mutations; ++m) {
    const std::string tag = apply_any_mutation(s.graph, rng.next());
    if (!tag.empty()) s.summary += tag;
  }
  return s;
}

std::string scenario_to_graphml(const Scenario& s) {
  graph::Graph g = s.graph;
  g.data().insert_or_assign("fuzz_seed", std::to_string(s.seed));
  g.data().insert_or_assign("fuzz_ibgp", s.ibgp);
  g.data().insert_or_assign("fuzz_platform", s.platform);
  return topology::to_graphml(g);
}

Scenario scenario_from_graphml(std::string_view text) {
  Scenario s;
  s.graph = topology::load_graphml(text);
  auto& data = s.graph.data();
  if (auto it = data.find("fuzz_seed"); it != data.end()) {
    if (const auto* str = it->second.as_string()) {
      s.seed = std::strtoull(str->c_str(), nullptr, 10);
    }
  }
  if (auto it = data.find("fuzz_ibgp"); it != data.end()) {
    if (const auto* str = it->second.as_string()) s.ibgp = *str;
  }
  if (auto it = data.find("fuzz_platform"); it != data.end()) {
    if (const auto* str = it->second.as_string()) s.platform = *str;
  }
  s.summary = "corpus";
  return s;
}

}  // namespace autonet::fuzz

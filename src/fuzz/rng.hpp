// Deterministic random stream for the fuzzing subsystem. Hand-rolled
// splitmix64 over an FNV-seeded state: unlike
// std::uniform_int_distribution (whose output is implementation-defined
// across standard libraries), every draw here is a pure function of the
// seed on every platform — the property the byte-deterministic fuzz
// journal and corpus depend on.
#pragma once

#include <cstdint>
#include <string_view>

namespace autonet::fuzz {

/// FNV-1a 64 over a byte string; the same hash the checkpoint and
/// incremental layers use for content addressing.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes two 64-bit values into one (FNV-style fold); used to derive
/// per-run seeds from the campaign seed and the run index.
[[nodiscard]] constexpr std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (a >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  for (int i = 0; i < 8; ++i) {
    h ^= (b >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64: tiny, fast, and fully specified. Good enough statistical
/// quality for scenario generation; never used for security.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform-ish draw in [0, n); n == 0 returns 0. Modulo bias is
  /// irrelevant at fuzzing's n << 2^64.
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

  /// Draw in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// True with probability ~ num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

 private:
  std::uint64_t state_;
};

}  // namespace autonet::fuzz

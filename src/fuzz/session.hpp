// The fuzz campaign driver: generates seed-addressed scenarios, runs
// them through the oracle registry round-robin, shrinks and persists
// violations, and journals every run as one JSONL line. The journal is
// the campaign's durable state: re-running the same campaign over an
// existing journal skips the runs already recorded (crash/^C-resumable),
// and a completed campaign re-run is a byte-for-byte no-op — the
// determinism contract `autonet fuzz --seed 1 --runs 50` is tested
// against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/shrink.hpp"

namespace autonet::fuzz {

struct FuzzOptions {
  /// Campaign seed; run i draws scenario seed mix(seed, i).
  std::uint64_t seed = 1;
  /// Scenario budget (each run = one scenario through one oracle).
  std::size_t runs = 100;
  /// Router cap per generated scenario.
  std::size_t max_nodes = 24;
  /// Restrict to one oracle by name; empty = round-robin over all six.
  std::string oracle;
  /// Wall-clock budget in seconds; 0 = unlimited. Checked between runs:
  /// expiry stops the campaign cleanly (journal intact, resumable).
  std::uint64_t time_budget_s = 0;
  /// Where minimized violations and the journal live.
  std::string corpus_dir = "corpus";
  /// Shrinker budget per violation.
  ShrinkLimits shrink;
};

/// One journal line's worth of outcome.
struct FuzzRunRecord {
  std::size_t run = 0;
  std::uint64_t seed = 0;
  std::string oracle;
  std::string scenario;  // generator summary
  std::string status;    // pass | fail | skip
  std::string detail;
  /// Corpus-relative path of the minimized repro ("" unless fail).
  std::string corpus_path;
};

struct FuzzReport {
  std::size_t executed = 0;
  std::size_t passed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  /// Runs satisfied from an existing journal instead of executing.
  std::size_t resumed = 0;
  std::size_t shrink_steps = 0;
  /// Stopped by the time budget before finishing `runs`.
  bool out_of_time = false;
  std::vector<FuzzRunRecord> violations;

  [[nodiscard]] bool clean() const { return failed == 0 && violations.empty(); }
};

/// Runs (or resumes) a campaign. Obs counters in the current registry:
/// fuzz.runs, fuzz.failures, fuzz.shrink_steps, and per-oracle
/// fuzz.<oracle>.runs / fuzz.<oracle>.failures. `control`, when given,
/// is polled between runs so ^C or a deadline interrupts the campaign at
/// a journal-consistent point.
FuzzReport run_fuzz(const FuzzOptions& options,
                    core::RunControl* control = nullptr);

/// Replays one scenario through one oracle (the `--replay` path and the
/// corpus regression test). Journals nothing.
[[nodiscard]] OracleResult replay_scenario(const Scenario& s,
                                           const Oracle& oracle);

/// JSON string escaping shared by the journal writer (exposed for tests).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace autonet::fuzz

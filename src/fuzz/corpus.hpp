// Corpus persistence: every minimized violation is written as
// `<corpus>/<oracle>/<seed>.graphml` (the self-contained scenario
// serialization) plus a sibling `<seed>.repro` holding the exact CLI
// command and the failure detail. Committed corpus entries become
// forever-regression cases via tests/fuzz_corpus_test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/scenario.hpp"

namespace autonet::fuzz {

struct CorpusEntry {
  std::string oracle;
  /// Path of the .graphml scenario file.
  std::string path;
};

/// Writes the minimized scenario + repro note under `corpus_dir`; returns
/// the .graphml path. Crash-consistent (write-temp + rename).
std::string save_corpus_entry(const std::string& corpus_dir,
                              const std::string& oracle, const Scenario& s,
                              const std::string& detail);

/// Every `<oracle>/<name>.graphml` under `corpus_dir`, sorted by oracle
/// then file name (deterministic replay order). Missing directory = empty.
[[nodiscard]] std::vector<CorpusEntry> list_corpus(const std::string& corpus_dir);

/// Loads one corpus .graphml back into a scenario.
[[nodiscard]] Scenario load_corpus_entry(const std::string& path);

}  // namespace autonet::fuzz

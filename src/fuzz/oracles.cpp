#include "fuzz/oracles.hpp"

#include <exception>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/workflow.hpp"
#include "emulation/config_parse.hpp"
#include "fuzz/rng.hpp"
#include "obs/registry.hpp"
#include "render/renderer.hpp"
#include "report/run_report.hpp"
#include "topology/gml.hpp"
#include "topology/graphml.hpp"
#include "topology/rocketfuel.hpp"
#include "verify/analysis/crosscheck.hpp"
#include "verify/rules.hpp"

namespace autonet::fuzz {

namespace {

namespace fs = std::filesystem;

/// Workflow options for a scenario: its platform and iBGP mode, lint gate
/// kept non-fatal — a generated topology with lint findings is a valid
/// input, and oracles judge specific invariants, not the gate threshold.
core::WorkflowOptions scenario_options(const Scenario& s) {
  core::WorkflowOptions opts;
  opts.platform = s.platform;
  opts.ibgp = s.ibgp;
  opts.lint.fail_fast = false;
  return opts;
}

/// A fresh virtual-clock registry: each oracle evaluation records its
/// telemetry into an isolated deterministic registry so that (a) two
/// evaluations of the same scenario are byte-identical and (b) fuzzing
/// never pollutes the campaign's own fuzz.* counters.
std::unique_ptr<obs::Registry> virtual_registry() {
  return std::make_unique<obs::Registry>(std::make_unique<obs::VirtualClock>(1));
}

/// Scratch directory under the system temp root, unique per (purpose,
/// seed); recreated empty.
class ScratchDir {
 public:
  ScratchDir(const std::string& purpose, std::uint64_t seed) {
    path_ = (fs::temp_directory_path() /
             ("autonet-fuzz-" + purpose + "-" + std::to_string(seed)))
                .string();
    std::error_code ec;
    fs::remove_all(path_, ec);
    fs::create_directories(path_, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string truncate_detail(std::string text, std::size_t limit = 400) {
  if (text.size() > limit) {
    text.resize(limit);
    text += "...";
  }
  return text;
}

/// Oracle 1 — fib-crosscheck: the static analyzer's predicted
/// traceroutes must match the emulated network hop for hop, for every
/// ordered router pair (the generalized `analyze --cross-check`).
OracleResult run_fib_crosscheck(const Scenario& s) {
  auto registry = virtual_registry();
  obs::RegistryScope scope(*registry);
  core::Workflow wf(scenario_options(s));
  wf.use_telemetry(registry.get());
  wf.load(s.graph).design().compile().render();
  const auto result = verify::analysis::cross_check(wf.nidb(), wf.configs(), 64);
  if (result.clean()) return OracleResult::pass();
  const auto& d = result.divergences.front();
  return OracleResult::fail(truncate_detail(
      std::to_string(result.divergences.size()) + "/" +
      std::to_string(result.pairs) + " pairs diverge; first " + d.src + "->" +
      d.dst + ": " + d.detail));
}

/// Oracle 2 — incr-equivalence: applying a seeded mutation and rebuilding
/// incrementally from the baseline checkpoint must produce the NIDB,
/// rendered configs, and lint report byte-identical to a from-scratch
/// build of the mutated input. The mutation is derived from the scenario
/// seed, so a shrunk graph re-derives its own (deterministic) mutation.
OracleResult run_incr_equivalence(const Scenario& s) {
  graph::Graph mutated = s.graph;
  const std::string tag =
      apply_any_mutation(mutated, mix(s.seed, fnv1a("autonet.fuzz.incr")));
  if (tag.empty()) return OracleResult::skip("no applicable mutation");

  ScratchDir base("incr", s.seed);

  // Baseline build, checkpointed (produces snapshot.json for the delta
  // engine).
  {
    auto registry = virtual_registry();
    obs::RegistryScope scope(*registry);
    core::Workflow wf(scenario_options(s));
    wf.use_telemetry(registry.get());
    wf.checkpoint_to(base.path());
    wf.run(s.graph);
  }

  std::string incr_nidb, incr_lint;
  render::ConfigTree incr_configs;
  {
    auto registry = virtual_registry();
    obs::RegistryScope scope(*registry);
    core::Workflow wf(scenario_options(s));
    wf.use_telemetry(registry.get());
    wf.incremental_from(base.path());
    wf.run(mutated);
    incr_nidb = wf.nidb().to_json();
    incr_configs = wf.configs();
    incr_lint = wf.lint_report().to_json();
  }

  std::string scratch_nidb, scratch_lint;
  render::ConfigTree scratch_configs;
  {
    auto registry = virtual_registry();
    obs::RegistryScope scope(*registry);
    core::Workflow wf(scenario_options(s));
    wf.use_telemetry(registry.get());
    wf.run(mutated);
    scratch_nidb = wf.nidb().to_json();
    scratch_configs = wf.configs();
    scratch_lint = wf.lint_report().to_json();
  }

  if (incr_nidb != scratch_nidb) {
    return OracleResult::fail("NIDB diverges after " + tag +
                              " (incremental vs scratch)");
  }
  if (!(incr_configs == scratch_configs)) {
    return OracleResult::fail("rendered configs diverge after " + tag +
                              " (incremental vs scratch)");
  }
  if (incr_lint != scratch_lint) {
    return OracleResult::fail("lint report diverges after " + tag +
                              " (incremental vs scratch)");
  }
  return OracleResult::pass();
}

/// Oracle 3 — ckpt-resume: killing the pipeline at a seeded phase
/// boundary and resuming from the checkpoint must produce a run report
/// byte-identical to the uninterrupted run.
OracleResult run_ckpt_resume(const Scenario& s) {
  // Probe: uninterrupted run, collecting every checkpoint boundary the
  // pipeline crosses — the candidate kill sites.
  std::vector<std::string> boundaries;
  std::string uninterrupted;
  {
    auto registry = virtual_registry();
    obs::RegistryScope scope(*registry);
    core::RunControl control;
    control.trip_hook = [&boundaries](std::string_view where) {
      boundaries.emplace_back(where);
      return false;
    };
    core::Workflow wf(scenario_options(s));
    wf.use_telemetry(registry.get());
    wf.use_control(&control);
    wf.run(s.graph);
    uninterrupted = report::run_report_json(wf);
  }
  if (boundaries.empty()) return OracleResult::skip("no kill sites");

  const std::string kill_at =
      boundaries[mix(s.seed, fnv1a("autonet.fuzz.kill")) % boundaries.size()];

  ScratchDir ckpt("ckpt", s.seed);
  {
    auto registry = virtual_registry();
    obs::RegistryScope scope(*registry);
    core::RunControl control;
    bool tripped = false;
    control.trip_hook = [&](std::string_view where) {
      if (tripped || where != kill_at) return false;
      tripped = true;
      return true;
    };
    core::Workflow wf(scenario_options(s));
    wf.use_telemetry(registry.get());
    wf.use_control(&control);
    wf.checkpoint_to(ckpt.path());
    try {
      wf.run(s.graph);
    } catch (const core::Interrupted&) {
      // The simulated kill.
    }
  }

  std::string resumed;
  {
    auto registry = virtual_registry();
    obs::RegistryScope scope(*registry);
    core::Workflow wf(scenario_options(s));
    wf.use_telemetry(registry.get());
    wf.checkpoint_to(ckpt.path());
    wf.run(s.graph);
    resumed = report::run_report_json(wf);
  }

  if (resumed != uninterrupted) {
    return OracleResult::fail("run report diverges after kill at '" + kill_at +
                              "' + resume");
  }
  return OracleResult::pass();
}

/// Oracle 4 — lint-determinism: the analysis report and its SARIF export
/// must be byte-identical whether the rules run on one worker or eight.
OracleResult run_lint_determinism(const Scenario& s) {
  std::string nidb_json;
  {
    auto registry = virtual_registry();
    obs::RegistryScope scope(*registry);
    core::Workflow wf(scenario_options(s));
    wf.use_telemetry(registry.get());
    wf.load(s.graph).design().compile();
    nidb_json = wf.nidb().to_json();
  }
  const nidb::Nidb nidb = nidb::Nidb::from_json(nidb_json);
  const auto& registry = verify::RuleRegistry::with_analysis();

  auto lint_with_jobs = [&](std::size_t jobs, std::string& report_out,
                            std::string& sarif_out) {
    auto obs_registry = virtual_registry();
    obs::RegistryScope scope(*obs_registry);
    verify::LintInput input;
    input.nidb = &nidb;
    input.templates = &render::TemplateStore::builtins();
    verify::LintOptions options;
    options.jobs = jobs;
    const verify::Report report = verify::run_lint(input, options, registry);
    report_out = report.to_json();
    sarif_out = verify::to_sarif(report, registry);
  };

  std::string report1, sarif1, report8, sarif8;
  lint_with_jobs(1, report1, sarif1);
  lint_with_jobs(8, report8, sarif8);

  if (report1 != report8) {
    return OracleResult::fail("lint report differs between --jobs 1 and 8");
  }
  if (sarif1 != sarif8) {
    return OracleResult::fail("SARIF export differs between --jobs 1 and 8");
  }
  return OracleResult::pass();
}

/// Oracle 5 — render-roundtrip: every rendered router configuration must
/// parse back (through the same parsers the emulation boots from) into a
/// coherent RouterConfig — right hostname, an address plan, a routing
/// protocol.
OracleResult run_render_roundtrip(const Scenario& s) {
  auto registry = virtual_registry();
  obs::RegistryScope scope(*registry);
  core::Workflow wf(scenario_options(s));
  wf.use_telemetry(registry.get());
  wf.load(s.graph).design().compile().render();

  std::size_t parsed = 0;
  for (const auto* rec : wf.nidb().devices()) {
    const nidb::Value* type = rec->data.find("device_type");
    const std::string* type_s = type ? type->as_string() : nullptr;
    if (type_s == nullptr || *type_s != "router") continue;
    const nidb::Value* syntax = rec->data.find("syntax");
    const std::string* syntax_s = syntax ? syntax->as_string() : nullptr;
    if (syntax_s == nullptr || *syntax_s != "quagga") continue;

    emulation::RouterConfig cfg;
    try {
      cfg = emulation::parse_quagga_device(wf.configs(), rec->dst_folder(),
                                           rec->name);
    } catch (const emulation::ConfigError& e) {
      return OracleResult::fail("config for " + rec->name +
                                " fails to parse back: " + e.what());
    }
    if (cfg.hostname != rec->name) {
      return OracleResult::fail("config for " + rec->name +
                                " parses back with hostname '" + cfg.hostname +
                                "'");
    }
    if (!cfg.loopback.has_value()) {
      return OracleResult::fail("config for " + rec->name +
                                " parses back without a loopback address");
    }
    if (cfg.interfaces.empty()) {
      return OracleResult::fail("config for " + rec->name +
                                " parses back with no interfaces");
    }
    if (!cfg.ospf_enabled && !cfg.bgp_enabled) {
      return OracleResult::fail("config for " + rec->name +
                                " parses back with no routing protocol");
    }
    ++parsed;
  }
  if (parsed == 0) return OracleResult::skip("no quagga routers rendered");
  return OracleResult::pass();
}

/// Synthesizes a Rocketfuel .cch text from the scenario graph so the cch
/// parser sees realistic inputs without a committed fixture.
std::string to_cch(const graph::Graph& g) {
  std::string out;
  std::vector<graph::NodeId> nodes = g.nodes();
  // uid = position + 1; cch uids are arbitrary positive integers.
  auto uid_of = [&nodes](graph::NodeId n) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == n) return i + 1;
    }
    return std::size_t{0};
  };
  for (graph::NodeId n : nodes) {
    out += std::to_string(uid_of(n)) + " @loc bb ->";
    for (graph::EdgeId e : g.incident_edges(n)) {
      out += " <" + std::to_string(uid_of(g.edge_other(e, n))) + ">";
    }
    out += " =" + g.node_name(n) + " rn\n";
  }
  return out;
}

/// One seeded corruption of a loader input text.
std::string corrupt(std::string text, Rng& rng) {
  if (text.empty()) return text;
  switch (rng.below(4)) {
    case 0:  // truncate
      text.resize(rng.below(text.size()));
      break;
    case 1:  // flip one byte
      text[rng.below(text.size())] =
          static_cast<char>(rng.below(256));
      break;
    case 2:  // insert one byte
      text.insert(text.begin() + static_cast<std::ptrdiff_t>(
                                     rng.below(text.size() + 1)),
                  static_cast<char>(rng.below(256)));
      break;
    default:  // duplicate a slice into a random position
      if (text.size() >= 2) {
        const std::size_t from = rng.below(text.size() - 1);
        const std::size_t len =
            1 + rng.below(std::min<std::size_t>(text.size() - from, 16));
        text.insert(rng.below(text.size()), text.substr(from, len));
      }
      break;
  }
  return text;
}

/// Oracle 6 — loader-robustness: corrupted serializations of the
/// scenario must make every loader either succeed or throw its typed
/// parse error (topology::ParseError / emulation::ConfigError); any
/// other exception — or a crash, which the sanitizer presets surface —
/// fails the oracle.
OracleResult run_loader_robustness(const Scenario& s) {
  struct Probe {
    const char* name;
    std::string text;
    std::function<void(const std::string&)> load;
  };
  std::vector<Probe> probes;
  probes.push_back({"graphml", scenario_to_graphml(s),
                    [](const std::string& t) { (void)topology::load_graphml(t); }});
  probes.push_back({"gml", topology::to_gml(s.graph),
                    [](const std::string& t) { (void)topology::load_gml(t); }});
  probes.push_back({"rocketfuel", to_cch(s.graph), [](const std::string& t) {
                      (void)topology::load_rocketfuel(t);
                    }});
  {
    // The C-BGP script loader, fed the scenario rendered for cbgp.
    Scenario cbgp = s;
    cbgp.platform = "cbgp";
    auto registry = virtual_registry();
    obs::RegistryScope scope(*registry);
    core::Workflow wf(scenario_options(cbgp));
    wf.use_telemetry(registry.get());
    wf.load(cbgp.graph).design().compile().render();
    if (const std::string* script = wf.configs().get("network.cli")) {
      probes.push_back({"cbgp", *script, [](const std::string& t) {
                          (void)emulation::parse_cbgp_script(t);
                        }});
    }
  }

  Rng rng(mix(s.seed, fnv1a("autonet.fuzz.corrupt")));
  for (const Probe& probe : probes) {
    for (int round = 0; round < 6; ++round) {
      const std::string corrupted = corrupt(probe.text, rng);
      try {
        probe.load(corrupted);
      } catch (const topology::ParseError&) {
        // Typed rejection: exactly the contract.
      } catch (const emulation::ConfigError&) {
        // Typed rejection: exactly the contract.
      } catch (const std::exception& e) {
        return OracleResult::fail(
            truncate_detail(std::string(probe.name) +
                            " loader escaped with untyped " + e.what()));
      } catch (...) {
        return OracleResult::fail(std::string(probe.name) +
                                  " loader escaped with a non-std exception");
      }
    }
  }
  return OracleResult::pass();
}

/// Wraps an oracle body: any exception escaping the pipeline itself is a
/// failure (oracles are pure predicates — they never throw).
template <typename F>
std::function<OracleResult(const Scenario&)> guarded(F body) {
  return [body](const Scenario& s) -> OracleResult {
    try {
      return body(s);
    } catch (const std::exception& e) {
      return OracleResult::fail(
          truncate_detail(std::string("pipeline threw: ") + e.what()));
    }
  };
}

}  // namespace

const std::vector<Oracle>& oracle_registry() {
  static const std::vector<Oracle> kOracles = {
      {"fib-crosscheck",
       "predicted FIBs match the emulated network hop for hop",
       guarded(run_fib_crosscheck)},
      {"incr-equivalence",
       "incremental rebuild equals from-scratch rebuild, byte for byte",
       guarded(run_incr_equivalence)},
      {"ckpt-resume",
       "kill + resume produces the uninterrupted run report, byte for byte",
       guarded(run_ckpt_resume)},
      {"lint-determinism",
       "analysis report and SARIF identical across --jobs",
       guarded(run_lint_determinism)},
      {"render-roundtrip",
       "rendered configs parse back into coherent routers",
       guarded(run_render_roundtrip)},
      {"loader-robustness",
       "corrupted loader inputs throw typed parse errors, never crash",
       guarded(run_loader_robustness)},
  };
  return kOracles;
}

const Oracle* find_oracle(std::string_view name) {
  for (const Oracle& oracle : oracle_registry()) {
    if (oracle.name == name) return &oracle;
  }
  return nullptr;
}

}  // namespace autonet::fuzz

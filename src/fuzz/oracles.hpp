// The cross-layer oracle registry: each oracle is a pure predicate over
// a Scenario that either passes, fails with a detail string, or skips
// (the scenario is outside the oracle's domain). The six built-in
// oracles generalize the pairwise correctness checks PRs 7-8 encoded ad
// hoc into reusable differential properties:
//
//   fib-crosscheck    predicted FIBs == emulated FIBs, hop for hop
//   incr-equivalence  incremental rebuild == from-scratch rebuild (bytes)
//   ckpt-resume       kill + resume run report == uninterrupted (bytes)
//   lint-determinism  analysis report/SARIF identical across --jobs
//   render-roundtrip  rendered configs parse back to coherent routers
//   loader-robustness corrupted inputs throw typed parse errors, never
//                     crash (graphml/gml/rocketfuel/cbgp loaders)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fuzz/scenario.hpp"

namespace autonet::fuzz {

struct OracleResult {
  enum class Status { kPass, kFail, kSkip };
  Status status = Status::kPass;
  /// Failure explanation or skip reason; empty on pass.
  std::string detail;

  [[nodiscard]] bool failed() const { return status == Status::kFail; }

  static OracleResult pass() { return {}; }
  static OracleResult fail(std::string detail) {
    return {Status::kFail, std::move(detail)};
  }
  static OracleResult skip(std::string detail) {
    return {Status::kSkip, std::move(detail)};
  }
};

struct Oracle {
  std::string name;
  std::string description;
  std::function<OracleResult(const Scenario&)> run;
};

/// The built-in oracles, stable order (round-robin scheduling and the
/// journal's oracle column depend on it).
[[nodiscard]] const std::vector<Oracle>& oracle_registry();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const Oracle* find_oracle(std::string_view name);

}  // namespace autonet::fuzz

// Seed-addressed scenario generation: every fuzz run is a Scenario — an
// input topology plus the workflow options that drive the pipeline over
// it — derived purely from a 64-bit seed. The generator builds multi-AS
// graphs with tunable AS counts, degree, OSPF areas, route-reflector
// hierarchies and eBGP meshes, or starts from a committed fixture, then
// applies seeded mutation operators (add/remove link, cost perturbation,
// area reassignment, policy flips). Scenarios round-trip through GraphML
// (options ride along as graph-level `fuzz_*` attributes), which is what
// makes a minimized corpus entry a self-contained repro.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace autonet::fuzz {

struct Scenario {
  graph::Graph graph;
  std::uint64_t seed = 0;
  /// iBGP mode for the workflow ("mesh" or "rr").
  std::string ibgp = "mesh";
  /// Target platform ("netkit" — the emulation-backed oracles need the
  /// quagga render path).
  std::string platform = "netkit";
  /// Human-readable provenance ("multi-as(3) +add-link +cost", journal).
  std::string summary;

  /// One-line shape description: "N nodes, M links".
  [[nodiscard]] std::string shape() const;
};

/// Deterministically generates a scenario from `seed`, never exceeding
/// `max_nodes` routers. The same (seed, max_nodes) produces a
/// byte-identical scenario on every platform.
[[nodiscard]] Scenario generate_scenario(std::uint64_t seed,
                                         std::size_t max_nodes);

/// The mutation operators, applied by generate_scenario and reusable by
/// oracles that need a deterministic second topology (the incremental
/// equivalence oracle diffs a scenario against one mutation of itself).
enum class MutationKind {
  kAddLink,
  kRemoveLink,
  kCostPerturb,
  kAreaReassign,
  kPolicyFlip,
};

/// Applies one seeded mutation in place. Returns a short tag ("+add-link")
/// or "" when the mutation was not applicable to this graph (nothing was
/// changed). Mutations preserve the pipeline's input invariants:
/// connectivity is kept, `asn`/`device_type` attributes stay intact.
std::string apply_mutation(graph::Graph& g, MutationKind kind,
                           std::uint64_t seed);

/// Applies the first applicable mutation starting from a seeded pick;
/// returns its tag ("" only for degenerate graphs where none applies).
std::string apply_any_mutation(graph::Graph& g, std::uint64_t seed);

/// Serializes a scenario to GraphML with its options embedded as
/// graph-level data (`fuzz_seed`, `fuzz_ibgp`, `fuzz_platform`).
[[nodiscard]] std::string scenario_to_graphml(const Scenario& s);

/// Rebuilds a scenario from scenario_to_graphml() output (or any plain
/// GraphML — absent fuzz_* attributes fall back to defaults).
[[nodiscard]] Scenario scenario_from_graphml(std::string_view text);

/// True when removing `victim` (a node or, with kInvalidNode, testing the
/// graph as-is) leaves every remaining node connected. Exposed for the
/// shrinker, which must not hand oracles disconnected inputs unless the
/// failing input already was.
[[nodiscard]] bool connected_without(const graph::Graph& g,
                                     graph::NodeId victim);

}  // namespace autonet::fuzz

#include "fuzz/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/checkpoint.hpp"
#include "topology/graphml.hpp"

namespace autonet::fuzz {

namespace fs = std::filesystem;

std::string save_corpus_entry(const std::string& corpus_dir,
                              const std::string& oracle, const Scenario& s,
                              const std::string& detail) {
  const fs::path dir = fs::path(corpus_dir) / oracle;
  fs::create_directories(dir);
  const std::string stem = std::to_string(s.seed);
  const std::string graphml_path = (dir / (stem + ".graphml")).string();
  core::write_file_atomic(graphml_path, scenario_to_graphml(s));

  std::string repro;
  repro += "oracle: " + oracle + "\n";
  repro += "seed: " + std::to_string(s.seed) + "\n";
  repro += "shape: " + s.shape() + "\n";
  repro += "summary: " + s.summary + "\n";
  repro += "detail: " + detail + "\n";
  // Relative to the corpus directory, so a committed corpus (and the
  // campaign journal pointing at it) is byte-identical wherever it lives.
  repro += "replay: autonet fuzz --replay " + oracle + "/" + stem +
           ".graphml --oracle " + oracle + "\n";
  core::write_file_atomic((dir / (stem + ".repro")).string(), repro);
  return graphml_path;
}

std::vector<CorpusEntry> list_corpus(const std::string& corpus_dir) {
  std::vector<CorpusEntry> out;
  std::error_code ec;
  for (const auto& oracle_dir : fs::directory_iterator(corpus_dir, ec)) {
    if (!oracle_dir.is_directory()) continue;
    for (const auto& file : fs::directory_iterator(oracle_dir.path())) {
      if (file.path().extension() != ".graphml") continue;
      out.push_back({oracle_dir.path().filename().string(),
                     file.path().string()});
    }
  }
  std::sort(out.begin(), out.end(), [](const CorpusEntry& a, const CorpusEntry& b) {
    return a.oracle != b.oracle ? a.oracle < b.oracle : a.path < b.path;
  });
  return out;
}

Scenario load_corpus_entry(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw topology::ParseError("fuzz corpus: cannot open file " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return scenario_from_graphml(buf.str());
}

}  // namespace autonet::fuzz
